// Minimal CSV writer used by benches and recorders to dump series/tables
// that external plotting tools can consume.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace egt::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits `header` as the first row.
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append a row; the cell count must match the header width.
  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<double> cells);

  const std::string& path() const noexcept { return path_; }

  /// Quote/escape a single cell per RFC 4180.
  static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::size_t width_;
  std::ofstream out_;
};

/// Format a double compactly ("3", "0.25", "1.7e+09").
std::string fmt_num(double v);

}  // namespace egt::util
