// Aligned plain-text table printer: benches use it to print rows in the
// same layout as the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace egt::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format numeric cells with %.4g, first cell is a label.
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::size_t width_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace egt::util
