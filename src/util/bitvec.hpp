// Dynamic bit vector sized at runtime.
//
// A pure memory-n strategy is a table of 4^n binary moves — up to 4,096 bits
// for memory-six. std::bitset needs a compile-time size and std::vector<bool>
// has no word-level access, so we keep our own minimal vector with the
// operations the simulation needs: bit get/set, word access (for hashing and
// fast compare), population count, and random fill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace egt::util {

class BitVec {
 public:
  BitVec() = default;

  /// Construct with `nbits` bits, all zero.
  explicit BitVec(std::size_t nbits);

  /// Construct from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) noexcept { words_[i >> 6] ^= 1ULL << (i & 63); }

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Number of positions where *this and other differ. Sizes must match.
  std::size_t hamming_distance(const BitVec& other) const;

  /// Fill with uniform random bits drawn from `rng`.
  template <class Rng>
  void randomize(Rng& rng) {
    for (auto& w : words_) w = rng();
    mask_tail();
  }

  void clear_all() noexcept;
  void set_all() noexcept;

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// 64-bit content hash (order-sensitive).
  std::uint64_t hash() const noexcept;

  /// '0'/'1' string, index 0 first.
  std::string to_string() const;

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

 private:
  void mask_tail() noexcept;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace egt::util
