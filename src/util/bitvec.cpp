#include "util/bitvec.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::util {

BitVec::BitVec(std::size_t nbits)
    : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EGT_REQUIRE_MSG(bits[i] == '0' || bits[i] == '1',
                    "BitVec::from_string expects only '0'/'1'");
    v.set(i, bits[i] == '1');
  }
  return v;
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  EGT_REQUIRE(nbits_ == other.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

void BitVec::clear_all() noexcept {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() noexcept {
  for (auto& w : words_) w = ~0ULL;
  mask_tail();
}

std::uint64_t BitVec::hash() const noexcept {
  std::uint64_t h = mix64(nbits_ + 0x9e3779b97f4a7c15ULL);
  for (auto w : words_) h = mix64(h ^ w);
  return h;
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

void BitVec::mask_tail() noexcept {
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace egt::util
