// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// The integrity primitive of the crash-consistent checkpoint store
// (core/checkpoint_store.hpp): every committed blob carries a CRC footer so
// a torn or bit-flipped write is *detected* on load instead of silently
// feeding garbage state into recovery. Software table implementation — the
// checkpoint path is not a hot path, and a dependency-free kernel keeps the
// container constraint (no new libraries) trivially satisfied.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace egt::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over multiple spans. The default seed starts a fresh CRC.
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace egt::util
