// Small statistics helpers used by analysis and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace egt::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  ///< by value: sorts a copy
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Shannon entropy (nats) of a discrete distribution given by counts.
double entropy_from_counts(std::span<const std::size_t> counts);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace egt::util
