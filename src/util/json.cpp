#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace egt::util {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  EGT_REQUIRE(indent >= 0);
}

void JsonWriter::newline() {
  if (indent_ == 0) return;
  os_ << '\n'
      << std::string(indent_ * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  EGT_REQUIRE_MSG(!root_done_, "JSON document already complete");
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  EGT_REQUIRE_MSG(stack_.empty() || stack_.back() == Scope::Array,
                  "object members need a key first");
  if (!stack_.empty()) {
    if (has_items_.back()) os_ << ',';
    has_items_.back() = true;
    newline();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                  "end_object without matching begin_object");
  EGT_REQUIRE_MSG(!expecting_value_, "dangling key");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline();
  os_ << '}';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                  "end_array without matching begin_array");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline();
  os_ << ']';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                  "keys only belong in objects");
  EGT_REQUIRE_MSG(!expecting_value_, "two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline();
  os_ << '"' << escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no Inf/NaN
  }
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) root_done_ = true;
  return *this;
}

bool JsonWriter::complete() const noexcept { return root_done_; }

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// -- parser -------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported —
          // the writer never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double num = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.number_ = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {
[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("JSON value is not ") + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) type_error("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) type_error("a number");
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  const double n = as_number();
  if (n < 0.0) type_error("a non-negative integer");
  return static_cast<std::uint64_t>(std::llround(n));
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) type_error("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) type_error("an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::Object) type_error("an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JSON object has no member \"" + key + "\"");
  }
  return *v;
}

std::size_t JsonValue::size() const noexcept {
  if (type_ == Type::Array) return items_.size();
  if (type_ == Type::Object) return members_.size();
  return 0;
}

}  // namespace egt::util
