#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace egt::util {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  EGT_REQUIRE(indent >= 0);
}

void JsonWriter::newline() {
  if (indent_ == 0) return;
  os_ << '\n'
      << std::string(indent_ * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  EGT_REQUIRE_MSG(!root_done_, "JSON document already complete");
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  EGT_REQUIRE_MSG(stack_.empty() || stack_.back() == Scope::Array,
                  "object members need a key first");
  if (!stack_.empty()) {
    if (has_items_.back()) os_ << ',';
    has_items_.back() = true;
    newline();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                  "end_object without matching begin_object");
  EGT_REQUIRE_MSG(!expecting_value_, "dangling key");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline();
  os_ << '}';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                  "end_array without matching begin_array");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline();
  os_ << ']';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  EGT_REQUIRE_MSG(!stack_.empty() && stack_.back() == Scope::Object,
                  "keys only belong in objects");
  EGT_REQUIRE_MSG(!expecting_value_, "two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline();
  os_ << '"' << escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no Inf/NaN
  }
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) root_done_ = true;
  return *this;
}

bool JsonWriter::complete() const noexcept { return root_done_; }

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace egt::util
