#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace egt::util {

TextTable::TextTable(std::vector<std::string> header)
    : width_(header.size()), header_(std::move(header)) {
  EGT_REQUIRE(width_ > 0);
}

void TextTable::add_row(std::vector<std::string> cells) {
  EGT_REQUIRE_MSG(cells.size() == width_, "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> w(width_, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width_; ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width_; ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      os << std::string(w[i] - row[i].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = width_ > 0 ? 2 * (width_ - 1) : 0;
  for (auto x : w) total += x;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace egt::util
