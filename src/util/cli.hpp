// Tiny declarative command-line parser for benches and examples.
//
//   egt::util::Cli cli("fig2_wsls_validation", "WSLS emergence validation");
//   auto ssets = cli.opt<int>("ssets", 256, "number of strategy sets");
//   auto gens  = cli.opt<double>("generations", 1e6, "generations to run");
//   cli.parse(argc, argv);        // exits on --help or bad input
//   run(*ssets, *gens);
//
// Accepted forms: --name value, --name=value, and --flag for booleans.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace egt::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register an option; the returned shared_ptr holds the parsed value.
  template <class T>
  std::shared_ptr<T> opt(const std::string& name, T default_value,
                         const std::string& help) {
    auto value = std::make_shared<T>(default_value);
    add_option(name, help, to_display(default_value),
               [value](const std::string& text) { *value = parse_as<T>(text); },
               /*is_flag=*/false);
    return value;
  }

  /// Register a boolean flag (present => true).
  std::shared_ptr<bool> flag(const std::string& name, const std::string& help);

  /// Parse argv. On --help prints usage and exits(0); on error prints a
  /// message and exits(2).
  void parse(int argc, char** argv);

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string default_display;
    std::function<void(const std::string&)> apply;
    bool is_flag;
  };

  void add_option(const std::string& name, const std::string& help,
                  std::string default_display,
                  std::function<void(const std::string&)> apply, bool is_flag);

  template <class T>
  static T parse_as(const std::string& text);

  template <class T>
  static std::string to_display(const T& v);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

template <>
std::int64_t Cli::parse_as<std::int64_t>(const std::string& text);
template <>
int Cli::parse_as<int>(const std::string& text);
template <>
double Cli::parse_as<double>(const std::string& text);
template <>
std::string Cli::parse_as<std::string>(const std::string& text);
template <>
std::uint64_t Cli::parse_as<std::uint64_t>(const std::string& text);

template <>
std::string Cli::to_display<std::int64_t>(const std::int64_t& v);
template <>
std::string Cli::to_display<int>(const int& v);
template <>
std::string Cli::to_display<double>(const double& v);
template <>
std::string Cli::to_display<std::string>(const std::string& v);
template <>
std::string Cli::to_display<std::uint64_t>(const std::uint64_t& v);

}  // namespace egt::util
