#include "util/rng.hpp"

namespace egt::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace egt::util
