// Minimal JSON support: a streaming writer (run manifests, result
// summaries) and a small recursive-descent parser (JsonValue) used to
// validate manifests in tests and read tool output back. Not a general
// JSON library — no streaming reads, object keys kept in document order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace egt::util {

class JsonWriter {
 public:
  /// Writes to `os`; `indent` spaces per level (0 = compact single line).
  explicit JsonWriter(std::ostream& os, int indent = 2);

  /// Root or nested containers.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <class T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once the root container is closed.
  bool complete() const noexcept;

  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool root_done_ = false;
};

/// Parsed JSON document node. Numbers are doubles (JSON has one number
/// type); u64 counters written by JsonWriter round-trip exactly up to
/// 2^53. Throws std::runtime_error on malformed input.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Parse one complete document (trailing whitespace allowed).
  static JsonValue parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_object() const noexcept { return type_ == Type::Object; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::uint64_t as_u64() const;  ///< number, rounded to nearest integer
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const;  ///< object members, document order

  /// Object lookup: null when missing (or not an object).
  const JsonValue* find(const std::string& key) const noexcept;
  /// Object lookup; throws std::runtime_error when missing.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  std::size_t size() const noexcept;  ///< array/object element count

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace egt::util
