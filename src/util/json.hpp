// Minimal streaming JSON writer — enough for run manifests (configuration +
// result summaries) that downstream tooling can parse. Handles nesting,
// comma placement, pretty-printing and string escaping; no reading.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace egt::util {

class JsonWriter {
 public:
  /// Writes to `os`; `indent` spaces per level (0 = compact single line).
  explicit JsonWriter(std::ostream& os, int indent = 2);

  /// Root or nested containers.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <class T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once the root container is closed.
  bool complete() const noexcept;

  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool root_done_ = false;
};

}  // namespace egt::util
