// Leveled logging to stderr. Quiet by default (Warn); benches/examples
// raise the level via --verbose or set_level().
#pragma once

#include <sstream>
#include <string>

namespace egt::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at `level` (no-op when below the current threshold).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  template <class T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::Debug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::Error);
}

}  // namespace egt::util
