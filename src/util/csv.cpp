#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace egt::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), width_(header.size()), out_(path) {
  EGT_REQUIRE_MSG(out_.good(), "cannot open CSV file " + path);
  EGT_REQUIRE(!header.empty());
  row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<std::string>& cells) {
  EGT_REQUIRE_MSG(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(fmt_num(v));
  row(s);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_num(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace egt::util
