#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace egt::util {

double mean(std::span<const double> xs) {
  EGT_REQUIRE(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  EGT_REQUIRE(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  EGT_REQUIRE(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  const double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double min_of(std::span<const double> xs) {
  EGT_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  EGT_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double entropy_from_counts(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace egt::util
