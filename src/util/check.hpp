// Lightweight precondition / invariant checking.
//
// EGT_REQUIRE is always on (argument validation on public API boundaries,
// throws std::invalid_argument). EGT_ASSERT is an internal invariant check
// that throws std::logic_error; it compiles away under NDEBUG+EGT_NO_ASSERT.
#pragma once

#include <stdexcept>
#include <string>

namespace egt::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace egt::util

#define EGT_REQUIRE(expr)                                            \
  do {                                                               \
    if (!(expr)) ::egt::util::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define EGT_REQUIRE_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr)) ::egt::util::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#if defined(NDEBUG) && defined(EGT_NO_ASSERT)
#define EGT_ASSERT(expr) ((void)0)
#else
#define EGT_ASSERT(expr)                                            \
  do {                                                              \
    if (!(expr)) ::egt::util::assert_failed(#expr, __FILE__, __LINE__); \
  } while (0)
#endif
