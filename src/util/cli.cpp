#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace egt::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::shared_ptr<bool> Cli::flag(const std::string& name,
                                const std::string& help) {
  auto value = std::make_shared<bool>(false);
  add_option(name, help, "false",
             [value](const std::string&) { *value = true; },
             /*is_flag=*/true);
  return value;
}

void Cli::add_option(const std::string& name, const std::string& help,
                     std::string default_display,
                     std::function<void(const std::string&)> apply,
                     bool is_flag) {
  options_.push_back(
      {name, help, std::move(default_display), std::move(apply), is_flag});
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n%s",
                   program_.c_str(), arg.c_str(), usage().c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Option* opt = nullptr;
    for (auto& o : options_) {
      if (o.name == name) {
        opt = &o;
        break;
      }
    }
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n%s", program_.c_str(),
                   name.c_str(), usage().c_str());
      std::exit(2);
    }
    if (!opt->is_flag && !has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' requires a value\n",
                     program_.c_str(), name.c_str());
        std::exit(2);
      }
      value = argv[++i];
      has_value = true;
    }
    try {
      opt->apply(value);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: bad value for '--%s': %s\n", program_.c_str(),
                   name.c_str(), e.what());
      std::exit(2);
    }
  }
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << " <value>";
    os << "  " << o.help << " (default: " << o.default_display << ")\n";
  }
  os << "  --help  show this message\n";
  return os.str();
}

namespace {
long long parse_ll(const std::string& text) {
  std::size_t pos = 0;
  // Accept scientific notation for integer options ("1e6").
  const double d = std::stod(text, &pos);
  if (pos != text.size()) throw std::invalid_argument("trailing characters");
  const auto ll = static_cast<long long>(d);
  if (static_cast<double>(ll) != d) {
    throw std::invalid_argument("not an integer");
  }
  return ll;
}
}  // namespace

template <>
std::int64_t Cli::parse_as<std::int64_t>(const std::string& text) {
  return static_cast<std::int64_t>(parse_ll(text));
}
template <>
int Cli::parse_as<int>(const std::string& text) {
  return static_cast<int>(parse_ll(text));
}
template <>
std::uint64_t Cli::parse_as<std::uint64_t>(const std::string& text) {
  return static_cast<std::uint64_t>(parse_ll(text));
}
template <>
double Cli::parse_as<double>(const std::string& text) {
  std::size_t pos = 0;
  const double d = std::stod(text, &pos);
  if (pos != text.size()) throw std::invalid_argument("trailing characters");
  return d;
}
template <>
std::string Cli::parse_as<std::string>(const std::string& text) {
  return text;
}

template <>
std::string Cli::to_display<std::int64_t>(const std::int64_t& v) {
  return std::to_string(v);
}
template <>
std::string Cli::to_display<int>(const int& v) {
  return std::to_string(v);
}
template <>
std::string Cli::to_display<std::uint64_t>(const std::uint64_t& v) {
  return std::to_string(v);
}
template <>
std::string Cli::to_display<double>(const double& v) {
  return fmt_num(v);
}
template <>
std::string Cli::to_display<std::string>(const std::string& v) {
  return v;
}

}  // namespace egt::util
