// Deterministic random number generation.
//
// Three generators with different roles:
//  * SplitMix64  — seeding / hashing primitive.
//  * Xoshiro256  — fast sequential generator (Nature Agent, tooling).
//  * StreamRng   — counter-based generator: the value of draw k from stream
//                  (seed, key) is a pure function of (seed, key, k). This is
//                  what makes game play independent of which rank computes a
//                  game and of the rank count (see DESIGN.md §5).
//
// All generators satisfy std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace egt::util {

/// Finalising 64-bit mix (Stafford variant 13); bijective.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// SplitMix64: tiny PRNG used to seed others and as a hash of integers.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna: fast, high-quality sequential PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;
  using StateArray = std::array<std::uint64_t, 4>;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  result_type operator()() noexcept;

  /// Advance 2^128 steps; yields independent sequences for parallel use.
  void long_jump() noexcept;

  /// Full generator state — checkpoint/restart support.
  StateArray state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const StateArray& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t s_[4];
};

/// Counter-based stream generator. Draw k of stream (seed, key) is
/// mix64-based and reproducible regardless of call interleaving elsewhere.
class StreamRng {
 public:
  using result_type = std::uint64_t;

  constexpr StreamRng(std::uint64_t seed, std::uint64_t key) noexcept
      : base_(mix64(seed ^ mix64(key + 0x632be59bd9b4e019ULL))), ctr_(0) {}

  constexpr result_type operator()() noexcept {
    return mix64(base_ + 0x9e3779b97f4a7c15ULL * ++ctr_);
  }

  /// Number of values drawn so far.
  constexpr std::uint64_t counter() const noexcept { return ctr_; }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t base_;
  std::uint64_t ctr_;
};

/// Combine stream-key components into a single 64-bit key.
constexpr std::uint64_t stream_key(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c = 0) noexcept {
  return mix64(a + 0x9e3779b97f4a7c15ULL * (b + 1) +
               0xc2b2ae3d27d4eb4fULL * (c + 1));
}

/// Uniform double in [0, 1) from a 64-bit draw (53-bit mantissa).
constexpr double to_unit_double(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Uniform double in [0,1).
template <class Rng>
double uniform01(Rng& rng) {
  return to_unit_double(rng());
}

/// Uniform integer in [0, n) without modulo bias (Lemire rejection method).
template <class Rng>
std::uint64_t uniform_below(Rng& rng, std::uint64_t n) {
  if (n == 0) return 0;
  // 128-bit multiply-shift with rejection of the biased zone.
  __extension__ using u128 = unsigned __int128;
  for (;;) {
    const std::uint64_t x = rng();
    const auto m = static_cast<u128>(x) * n;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= n || lo >= (0ULL - n) % n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

/// Bernoulli trial with success probability p.
template <class Rng>
bool bernoulli(Rng& rng, double p) {
  return uniform01(rng) < p;
}

/// Standard normal via Box–Muller (consumes exactly two draws; no state).
template <class Rng>
double normal(Rng& rng) {
  // Avoid log(0) by nudging u1 away from zero.
  const double u1 = (static_cast<double>(rng() >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = to_unit_double(rng());
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace egt::util
