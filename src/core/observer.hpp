// Observation hooks of the serial engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "pop/population.hpp"

namespace egt::core {

/// What happened in one generation (events already applied).
struct GenerationRecord {
  std::uint64_t generation = 0;
  struct PcOutcome {
    pop::SSetId teacher = 0;  ///< Moran: the reproducer
    pop::SSetId learner = 0;  ///< Moran: the replaced SSet
    bool adopted = false;
  };
  std::optional<PcOutcome> pc;
  /// True when `pc` describes a Moran birth-death event.
  bool was_moran = false;
  std::optional<pop::SSetId> mutation;  ///< target SSet
};

class Observer {
 public:
  virtual ~Observer() = default;
  /// Called after every generation. `pop` carries this generation's
  /// fitness values and the *post-event* strategy table.
  virtual void on_generation(const pop::Population& pop,
                             const GenerationRecord& record) = 0;
};

/// Adapts a lambda.
class CallbackObserver final : public Observer {
 public:
  using Fn = std::function<void(const pop::Population&,
                                const GenerationRecord&)>;
  explicit CallbackObserver(Fn fn) : fn_(std::move(fn)) {}
  void on_generation(const pop::Population& pop,
                     const GenerationRecord& record) override {
    fn_(pop, record);
  }

 private:
  Fn fn_;
};

/// Records population summary statistics every `interval` generations.
class TimeSeriesRecorder final : public Observer {
 public:
  struct Sample {
    std::uint64_t generation = 0;
    double mean_fitness = 0.0;
    double mean_coop_probability = 0.0;
    double dominant_fraction = 0.0;
    double entropy = 0.0;
    std::size_t distinct = 0;
    /// Share of SSets near the tracked strategy (0 when none is tracked).
    double tracked_fraction = 0.0;
  };

  explicit TimeSeriesRecorder(std::uint64_t interval) : interval_(interval) {}

  /// Additionally track the population share within L2 `tolerance` of
  /// `reference` (e.g. WSLS for the Fig. 2 study).
  TimeSeriesRecorder(std::uint64_t interval, game::Strategy reference,
                     double tolerance)
      : interval_(interval),
        reference_(std::move(reference)),
        tolerance_(tolerance) {}

  void on_generation(const pop::Population& pop,
                     const GenerationRecord& record) override;

  const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// Dump as CSV (one row per sample).
  void write_csv(const std::string& path) const;

 private:
  std::uint64_t interval_;
  std::optional<game::Strategy> reference_;
  double tolerance_ = 0.0;
  std::vector<Sample> samples_;
};

/// Stores full population snapshots at chosen generations (e.g. first and
/// last for the Fig. 2 heat maps).
class SnapshotRecorder final : public Observer {
 public:
  explicit SnapshotRecorder(std::vector<std::uint64_t> generations)
      : wanted_(std::move(generations)) {}

  void on_generation(const pop::Population& pop,
                     const GenerationRecord& record) override;

  const std::vector<std::pair<std::uint64_t, pop::Population>>& snapshots()
      const noexcept {
    return snapshots_;
  }

 private:
  std::vector<std::uint64_t> wanted_;
  std::vector<std::pair<std::uint64_t, pop::Population>> snapshots_;
};

/// Fans one engine callback out to several observers, in add() order.
class MultiObserver final : public Observer {
 public:
  /// Non-owning: the caller must keep `obs` alive while this MultiObserver
  /// is in use. Adding the same observer twice is rejected.
  void add(Observer& obs);

  /// Owning: the MultiObserver keeps `obs` alive itself. Rejects null and
  /// duplicates. Returns a reference to the adopted observer for callers
  /// that still need to talk to it (e.g. to read recorded samples).
  Observer& add(std::unique_ptr<Observer> obs);

  std::size_t size() const noexcept { return children_.size(); }

  void on_generation(const pop::Population& pop,
                     const GenerationRecord& record) override {
    for (auto* c : children_) c->on_generation(pop, record);
  }

 private:
  std::vector<Observer*> children_;               // dispatch order
  std::vector<std::unique_ptr<Observer>> owned_;  // lifetime for add(ptr)
};

}  // namespace egt::core
