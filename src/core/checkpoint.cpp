#include "core/checkpoint.hpp"

#include <cstring>

#include "core/checkpoint_store.hpp"
#include "core/engine.hpp"
#include "core/wire.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::core {

namespace {

constexpr std::uint64_t kMagic = 0x4547544353494d31ULL;  // "EGTCSIM1"

}  // namespace

std::uint64_t config_fingerprint(const SimConfig& config) {
  std::uint64_t h = util::mix64(config.seed + 1);
  auto mixin = [&h](std::uint64_t v) { h = util::mix64(h ^ v); };
  mixin(static_cast<std::uint64_t>(config.memory));
  mixin(config.ssets);
  mixin(config.game.rounds);
  std::uint64_t bits;
  auto mixd = [&](double d) {
    std::memcpy(&bits, &d, sizeof bits);
    mixin(bits);
  };
  mixd(config.game.noise);
  mixd(config.game.payoff.reward);
  mixd(config.game.payoff.sucker);
  mixd(config.game.payoff.temptation);
  mixd(config.game.payoff.punishment);
  // Wire v3: the full game spec (kind, action count, play mode, n-way /
  // bimatrix tables, public-goods parameters) via its canonical hash.
  mixin(config.game.matrix_hash());
  mixd(config.pc_rate);
  mixd(config.mutation_rate);
  mixd(config.beta);
  mixin(config.require_teacher_better ? 1 : 0);
  mixin(static_cast<std::uint64_t>(config.space));
  mixin(static_cast<std::uint64_t>(config.update_rule));
  mixin(static_cast<std::uint64_t>(config.mutation_kernel));
  mixin(config.mutation_bits);
  mixd(config.mutation_sigma);
  mixin(static_cast<std::uint64_t>(config.fitness_scale));
  mixin(static_cast<std::uint64_t>(config.interaction.kind));
  mixin(config.interaction.ring_k);
  mixin(config.interaction.lattice_width);
  mixin(config.interaction.moore ? 1 : 0);
  return h;
}

std::vector<std::byte> save_checkpoint(const Engine& engine) {
  wire::Writer w;
  w.u64(kMagic);
  w.u32(kCheckpointVersion);
  w.u64(config_fingerprint(engine.config()));
  w.u64(engine.generation());
  const auto nature = engine.nature_agent().save_state();
  for (auto word : nature.rng) w.u64(word);
  w.u64(nature.planned);
  const auto& pop = engine.population();
  w.u32(pop.size());
  for (pop::SSetId i = 0; i < pop.size(); ++i) {
    w.bytes(pop.strategy(i).serialize());
  }
  return w.take();
}

Engine::RestoredState decode_checkpoint(const SimConfig& config,
                                        const std::vector<std::byte>& blob) {
  wire::Reader r(blob, "checkpoint");
  if (r.u64("magic") != kMagic) r.fail("not an egtsim checkpoint");
  const std::uint32_t version = r.u32("version");
  if (version != kCheckpointVersion) {
    r.fail("unsupported checkpoint version " + std::to_string(version) +
           " (this build reads version " +
           std::to_string(kCheckpointVersion) + ")");
  }
  if (r.u64("config fingerprint") != config_fingerprint(config)) {
    throw CheckpointError(
        "checkpoint was written under a different configuration");
  }
  const std::uint64_t generation = r.u64("generation");
  pop::NatureAgent::State nature;
  for (auto& word : nature.rng) word = r.u64("nature rng state");
  nature.planned = r.u64("nature planned count");
  const std::uint32_t ssets = r.u32("population size");
  if (ssets != config.ssets) {
    throw CheckpointError("checkpoint population size mismatch (blob has " +
                          std::to_string(ssets) + " SSets, config wants " +
                          std::to_string(config.ssets) + ")");
  }
  std::vector<game::Strategy> strategies;
  strategies.reserve(ssets);
  for (std::uint32_t i = 0; i < ssets; ++i) {
    try {
      strategies.push_back(game::Strategy::deserialize(r.bytes("strategy")));
    } catch (const CheckpointError&) {
      throw;
    } catch (const std::exception& e) {
      // Strategy::deserialize validates its own layout; surface its
      // complaint as a checkpoint decode failure.
      r.fail(std::string("strategy ") + std::to_string(i) + ": " + e.what());
    }
  }
  r.expect_exhausted();
  return Engine::RestoredState{generation, nature,
                               pop::Population(std::move(strategies))};
}

Engine restore_checkpoint(const SimConfig& config,
                          const std::vector<std::byte>& blob,
                          obs::MetricsRegistry* metrics) {
  return Engine(config, decode_checkpoint(config, blob), metrics);
}

void write_checkpoint_file(const Engine& engine, const std::string& path) {
  auto blob = save_checkpoint(engine);
  append_crc_footer(blob);
  atomic_write_file(path, blob);
}

Engine read_checkpoint_file(const SimConfig& config, const std::string& path,
                            obs::MetricsRegistry* metrics) {
  return restore_checkpoint(config, checked_payload(read_file_bytes(path)),
                            metrics);
}

}  // namespace egt::core
