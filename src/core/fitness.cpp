#include "core/fitness.hpp"

#include "util/check.hpp"

namespace egt::core {

PairEvaluator::PairEvaluator(const SimConfig& config)
    : config_(config),
      engine_(config.memory, config.game, config.lookup) {}

double PairEvaluator::payoff(const pop::Population& pop, pop::SSetId i,
                             pop::SSetId j, std::uint64_t gen_key) const {
  const game::Strategy& si = pop.strategy(i);
  const game::Strategy& sj = pop.strategy(j);
  if (config_.fitness_mode == FitnessMode::Analytic) {
    if (si.is_pure() && sj.is_pure() && config_.game.noise == 0.0) {
      return game::markov::exact_pure_game(si.as_pure(), sj.as_pure(),
                                           config_.game.payoff,
                                           config_.game.rounds)
          .payoff_a;
    }
    if (config_.memory == 1) {
      return game::markov::expected_game_mem1(si, sj, config_.game.payoff,
                                              config_.game.rounds,
                                              config_.game.noise)
          .payoff_a;
    }
    // No closed form for stochastic memory>=2 pairs: fall through to a
    // (frozen) sampled game.
  }
  util::StreamRng rng(config_.seed, util::stream_key(gen_key, i, j));
  return engine_.play(si, sj, rng).payoff_a;
}

BlockFitness::BlockFitness(const SimConfig& config, pop::SSetId row_begin,
                           pop::SSetId row_end,
                           std::shared_ptr<const pop::InteractionGraph> graph)
    : config_(config),
      eval_(config),
      graph_(std::move(graph)),
      begin_(row_begin),
      end_(row_end) {
  EGT_REQUIRE(row_begin <= row_end && row_end <= config.ssets);
  fitness_.assign(end_ - begin_, 0.0);
  if (cached()) {
    matrix_.assign(static_cast<std::size_t>(end_ - begin_) * config_.ssets,
                   0.0);
  }
  if (config.agent_threads > 0) {
    row_scratch_.assign(config_.ssets, 0.0);
    agent_pool_ = std::make_unique<par::ThreadPool>(config.agent_threads);
  }
}

double BlockFitness::row_scale(pop::SSetId i) const noexcept {
  if (config_.fitness_scale == FitnessScale::Total) return 1.0;
  const double opponents =
      structured() ? graph_->degree(i)
                   : static_cast<double>(config_.ssets - 1);
  return 1.0 / (opponents * config_.game.rounds);
}

void BlockFitness::recompute_row(pop::SSetId i, const pop::Population& pop,
                                 std::uint64_t gen_key) {
  const std::size_t row = i - begin_;
  double sum = 0.0;
  if (structured()) {
    // Structured population: only neighbours play.
    for (pop::SSetId j : graph_->neighbors(i)) {
      const double v = eval_.payoff(pop, i, j, gen_key);
      ++pairs_;
      if (cached()) matrix_[row * config_.ssets + j] = v;
      sum += v;
    }
    fitness_[row] = sum * row_scale(i);
    return;
  }
  if (agent_pool_ != nullptr) {
    // Agent tier: the row's games run concurrently into a buffer; the sum
    // is then taken in fixed j order, so the result is bit-identical to
    // the serial path.
    agent_pool_->parallel_for(
        config_.ssets, [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t j = b; j < e; ++j) {
            if (j == i) continue;
            row_scratch_[j] = eval_.payoff(pop, i, static_cast<pop::SSetId>(j),
                                           gen_key);
          }
        });
    pairs_ += config_.ssets - 1;
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      if (cached()) matrix_[row * config_.ssets + j] = row_scratch_[j];
      sum += row_scratch_[j];
    }
  } else {
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      const double v = eval_.payoff(pop, i, j, gen_key);
      ++pairs_;
      if (cached()) matrix_[row * config_.ssets + j] = v;
      sum += v;
    }
  }
  fitness_[row] = sum * row_scale(i);
}

void BlockFitness::initialize(const pop::Population& pop) {
  for (pop::SSetId i = begin_; i < end_; ++i) {
    recompute_row(i, pop, 0);
  }
}

void BlockFitness::begin_generation(const pop::Population& pop,
                                    std::uint64_t generation) {
  if (cached()) return;  // values only move when a strategy changes
  for (pop::SSetId i = begin_; i < end_; ++i) {
    recompute_row(i, pop, generation);
  }
}

void BlockFitness::strategy_changed(pop::SSetId k, const pop::Population& pop,
                                    std::uint64_t generation) {
  if (!cached()) return;  // next begin_generation re-plays everything anyway
  if (k >= begin_ && k < end_) {
    recompute_row(k, pop, generation);
  }
  for (pop::SSetId i = begin_; i < end_; ++i) {
    if (i == k) continue;
    if (structured() && !graph_->are_neighbors(i, k)) continue;
    const std::size_t idx =
        static_cast<std::size_t>(i - begin_) * config_.ssets + k;
    const double fresh = eval_.payoff(pop, i, k, generation);
    ++pairs_;
    fitness_[i - begin_] += (fresh - matrix_[idx]) * row_scale(i);
    matrix_[idx] = fresh;
  }
}

void BlockFitness::restore_state(std::vector<double> fitness,
                                 std::vector<double> matrix) {
  EGT_REQUIRE_MSG(cached(),
                  "restore_state only applies to cached fitness modes "
                  "(Sampled mode recomputes from the population)");
  EGT_REQUIRE_MSG(fitness.size() == fitness_.size(),
                  "restored fitness size mismatch");
  EGT_REQUIRE_MSG(matrix.size() == matrix_.size(),
                  "restored payoff matrix size mismatch");
  fitness_ = std::move(fitness);
  matrix_ = std::move(matrix);
}

double BlockFitness::fitness(pop::SSetId i) const {
  EGT_REQUIRE_MSG(i >= begin_ && i < end_, "fitness query outside block");
  return fitness_[i - begin_];
}

}  // namespace egt::core
