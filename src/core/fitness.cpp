#include "core/fitness.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "util/check.hpp"

namespace egt::core {

PairEvaluator::PairEvaluator(const SimConfig& config)
    : config_(config),
      engine_(config.memory, config.game.ipd_params(), config.lookup) {}

PairEvaluator::Route PairEvaluator::route(
    const game::Strategy& si, const game::Strategy& sj) const noexcept {
  if (config_.fitness_mode != FitnessMode::Analytic) {
    return Route::SampledStream;
  }
  // N-way matrix games: the memory-0 outcome chain is always exact, and
  // must never flow into a kernel that assumes binary moves.
  if (game::spec::requires_spec_chain(config_.game)) return Route::NWaySpec;
  if (si.is_pure() && sj.is_pure() && config_.game.noise == 0.0) {
    return Route::PureExact;
  }
  if (config_.memory == 1) return Route::Mem1Markov;
  return Route::SampledStream;  // stochastic memory >= 2: stream play
}

bool PairEvaluator::strategy_pure(const game::Strategy& si,
                                  const game::Strategy& sj) const noexcept {
  return route(si, sj) != Route::SampledStream;
}

void PairEvaluator::mem1_batch_payoffs(const game::batch::Mem1Batch& batch,
                                       std::span<double> out) const {
  game::batch::expected_payoff_mem1(batch, config_.game.payoff,
                                    config_.game.rounds, out);
}

double PairEvaluator::pair_payoff(const game::Strategy& si,
                                  const game::Strategy& sj) const {
  switch (route(si, sj)) {
    case Route::NWaySpec:
      return game::spec::expected_game(
                 config_.game,
                 game::spec::Behavioral::from_strategy(config_.game, si),
                 game::spec::Behavioral::from_strategy(config_.game, sj))
          .payoff_a;
    case Route::PureExact:
      return game::batch::exact_pure_game_fast(si.as_pure(), sj.as_pure(),
                                               config_.game.payoff,
                                               config_.game.rounds)
          .payoff_a;
    case Route::Mem1Markov: {
      // Batch of one through the same kernel every batched evaluation
      // uses (one kernel per process; lane arithmetic is batch-size
      // independent, so this equals any batched evaluation bitwise).
      thread_local game::batch::Mem1Batch batch;
      batch.clear();
      batch.push_pair(si, sj, config_.game.noise);
      double out = 0.0;
      mem1_batch_payoffs(batch, {&out, 1});
      return out;
    }
    case Route::SampledStream:
      break;
  }
  EGT_REQUIRE_MSG(false, "pair_payoff requires a strategy-pure pair");
  return 0.0;
}

double PairEvaluator::payoff(const pop::Population& pop, pop::SSetId i,
                             pop::SSetId j, std::uint64_t gen_key) const {
  EGT_REQUIRE_MSG(config_.game.kind != game::GameKind::PublicGoods,
                  "public goods fitness is group-pooled, not pairwise");
  const game::Strategy& si = pop.strategy(i);
  const game::Strategy& sj = pop.strategy(j);
  if (strategy_pure(si, sj)) {
    // Exact methods: the value is a pure function of the strategy pair
    // (the dedup-eligibility rule) and gen_key is ignored.
    return pair_payoff(si, sj);
  }
  // No closed form: play a game on the (gen_key, i, j)-keyed stream.
  util::StreamRng rng(config_.seed, util::stream_key(gen_key, i, j));
  if (config_.game.uses_nway()) {
    // Sampled n-way play: spec.rounds independent one-shot stage games.
    return game::spec::play_oneshot(config_.game, si, sj, rng).payoff_a;
  }
  // Sampled streams, or stochastic memory>=2 under Analytic.
  return engine_.play(si, sj, rng).payoff_a;
}

BlockFitness::BlockFitness(const SimConfig& config, pop::SSetId row_begin,
                           pop::SSetId row_end,
                           std::shared_ptr<const pop::InteractionGraph> graph,
                           obs::MetricsRegistry* metrics)
    : config_(config),
      eval_(config),
      graph_(std::move(graph)),
      begin_(row_begin),
      end_(row_end),
      dedup_(config.dedup && config.fitness_mode == FitnessMode::Analytic &&
             config.game.kind != game::GameKind::PublicGoods),
      pgg_(config.game.kind == game::GameKind::PublicGoods),
      row_batchable_(config.fitness_mode == FitnessMode::Analytic && !pgg_ &&
                     !game::spec::requires_spec_chain(config.game) &&
                     config.memory == 1) {
  EGT_REQUIRE(row_begin <= row_end && row_end <= config.ssets);
  if (metrics != nullptr) {
    ct_cache_inserts_ = &metrics->counter("fitness.cache_inserts");
    ct_cache_prunes_ = &metrics->counter("fitness.cache_prunes");
    ct_restores_ = &metrics->counter("fitness.state_restores");
  }
  fitness_.assign(end_ - begin_, 0.0);
  if (pairwise_cached()) {
    matrix_.assign(static_cast<std::size_t>(end_ - begin_) * config_.ssets,
                   0.0);
  }
  if (config.agent_threads > 0) {
    row_scratch_.assign(config_.ssets, 0.0);
    agent_pool_ = std::make_unique<par::ThreadPool>(config.agent_threads);
  }
  if (config.sset_threads > 0 && end_ > begin_) {
    sset_pool_ = std::make_unique<par::ThreadPool>(config.sset_threads);
  }
}

double BlockFitness::row_scale(pop::SSetId i) const noexcept {
  if (config_.fitness_scale == FitnessScale::Total) return 1.0;
  if (pgg_) {
    // Mean per-round, per-group payoff.
    return 1.0 /
           (static_cast<double>(pgg_group_count(i)) * config_.game.rounds);
  }
  const double opponents =
      structured() ? graph_->degree(i)
                   : static_cast<double>(config_.ssets - 1);
  return 1.0 / (opponents * config_.game.rounds);
}

std::uint32_t BlockFitness::pgg_group_count(pop::SSetId i) const noexcept {
  if (structured()) return 1 + static_cast<std::uint32_t>(graph_->degree(i));
  return config_.game.pgg_k == 0 ? 1 : config_.game.pgg_k;
}

double BlockFitness::pgg_contrib(const pop::Population& pop, pop::SSetId j,
                                 std::uint64_t gen_key) const {
  const double p = pop.strategy(j).coop_prob(0);
  const double eps = config_.game.noise;
  const double pe = (1.0 - eps) * p + eps * (1.0 - p);
  if (config_.fitness_mode == FitnessMode::Analytic) {
    return pe * config_.game.rounds;
  }
  util::StreamRng rng(config_.seed, util::stream_key(gen_key, j, j));
  double c = 0.0;
  for (std::uint32_t t = 0; t < config_.game.rounds; ++t) {
    if (util::bernoulli(rng, pe)) c += 1.0;
  }
  return c;
}

void BlockFitness::recompute_row_pgg(pop::SSetId i, const pop::Population& pop,
                                     std::uint64_t gen_key, Counts& counts) {
  const double r = config_.game.pgg_r;
  const double cost = config_.game.pgg_cost;
  const double own = pgg_contrib(pop, i, gen_key);
  double sum = 0.0;
  if (structured()) {
    // One group per SSet t, {t} ∪ N(t): i plays in its own group and in
    // every neighbour's.
    const auto group_share = [&](pop::SSetId t) {
      const auto nbrs = graph_->neighbors(t);
      double pool = pgg_contrib(pop, t, gen_key);
      for (pop::SSetId j : nbrs) pool += pgg_contrib(pop, j, gen_key);
      counts.pairs += 1 + nbrs.size();
      ++counts.games;
      return r * cost * pool / static_cast<double>(1 + nbrs.size());
    };
    sum += group_share(i) - own * cost;
    for (pop::SSetId t : graph_->neighbors(i)) {
      sum += group_share(t) - own * cost;
    }
  } else if (config_.game.pgg_k == 0) {
    // Well-mixed auto group: everyone shares one pool.
    double pool = 0.0;
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      pool += pgg_contrib(pop, j, gen_key);
    }
    counts.pairs += config_.ssets;
    ++counts.games;
    sum = r * cost * pool / config_.ssets - own * cost;
  } else {
    // Well-mixed k-windows: i is a member of the k ring windows starting
    // at i-k+1 .. i (mod n). d(payoff_i)/d(own) = cost * (r - k): free
    // riding dominates for r < k, contribution for r > k.
    const std::uint32_t k = config_.game.pgg_k;
    const std::uint32_t n = config_.ssets;
    for (std::uint32_t o = 0; o < k; ++o) {
      const std::uint32_t t = (i + n - o) % n;
      double pool = 0.0;
      for (std::uint32_t d = 0; d < k; ++d) {
        pool += pgg_contrib(pop, (t + d) % n, gen_key);
      }
      counts.pairs += k;
      ++counts.games;
      sum += r * cost * pool / k - own * cost;
    }
  }
  fitness_[i - begin_] = sum * row_scale(i);
}

double BlockFitness::pair_value(const pop::Population& pop, pop::SSetId i,
                                pop::SSetId j, std::uint64_t gen_key,
                                std::uint64_t& games, bool allow_insert) {
  if (dedup_) {
    const auto& classes = pop.classes();
    const pop::StrategyClass& ci = classes[pop.strategy_class(i)];
    const pop::StrategyClass& cj = classes[pop.strategy_class(j)];
    if (eval_.strategy_pure(ci.strategy, cj.strategy)) {
      const std::uint64_t key = game::Strategy::pair_key(ci.hash, cj.hash);
      const auto it = class_pay_.find(key);
      if (it != class_pay_.end()) return it->second.payoff;
      const double v = eval_.pair_payoff(ci.strategy, cj.strategy);
      ++games;
      // Pool workers run behind a prefill and must not mutate the cache;
      // recomputing a rare miss is correct either way (pure function).
      if (allow_insert) {
        class_pay_.emplace(key, ClassPay{v, ci.hash, cj.hash});
        if (ct_cache_inserts_ != nullptr) ct_cache_inserts_->inc();
      }
      return v;
    }
  }
  ++games;
  return eval_.payoff(pop, i, j, gen_key);
}

void BlockFitness::prefill_pair(const pop::Population& pop, pop::ClassId cr,
                                pop::ClassId cc) {
  const auto& classes = pop.classes();
  const pop::StrategyClass& row = classes[cr];
  const pop::StrategyClass& col = classes[cc];
  if (!eval_.strategy_pure(row.strategy, col.strategy)) return;
  const std::uint64_t key = game::Strategy::pair_key(row.hash, col.hash);
  if (class_pay_.find(key) != class_pay_.end()) return;
  class_pay_.emplace(
      key, ClassPay{eval_.pair_payoff(row.strategy, col.strategy), row.hash,
                    col.hash});
  ++games_;
  if (ct_cache_inserts_ != nullptr) ct_cache_inserts_->inc();
}

void BlockFitness::prefill_class(const pop::Population& pop, pop::ClassId cr) {
  // Cover exactly the keys a well-mixed row of class `cr` can touch, so
  // games_played stays identical to the serial lazy path for any thread
  // count: every live column class — except the self pair of a singleton
  // class, which no (i, j != i) ever realizes.
  //
  // The Mem1Markov misses are gathered into one SoA batch (fed straight
  // from the population's interned class-table view) and run through a
  // single kernel call; other routes evaluate per pair. Lane arithmetic is
  // batch-size independent, so the cached values equal the per-pair path
  // bitwise, and each batched pair still counts as one game.
  const auto& classes = pop.classes();
  const pop::StrategyClass& row = classes[cr];
  game::batch::Mem1Batch batch;
  std::vector<const pop::StrategyClass*> cols;
  for (pop::ClassId cc = 0; cc < classes.size(); ++cc) {
    if (classes[cc].members == 0) continue;
    if (cc == cr && classes[cc].members < 2) continue;
    const pop::StrategyClass& col = classes[cc];
    if (eval_.route(row.strategy, col.strategy) !=
            PairEvaluator::Route::Mem1Markov ||
        !pop.mem1_batchable(cr) || !pop.mem1_batchable(cc)) {
      prefill_pair(pop, cr, cc);
      continue;
    }
    const std::uint64_t key = game::Strategy::pair_key(row.hash, col.hash);
    if (class_pay_.find(key) != class_pay_.end()) continue;
    batch.push_probs(pop.mem1_probs(cr), pop.mem1_probs(cc),
                     config_.game.noise);
    cols.push_back(&col);
  }
  if (batch.empty()) return;
  std::vector<double> vals(batch.size());
  eval_.mem1_batch_payoffs(batch, vals);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    class_pay_.emplace(game::Strategy::pair_key(row.hash, cols[k]->hash),
                       ClassPay{vals[k], row.hash, cols[k]->hash});
    ++games_;
    if (ct_cache_inserts_ != nullptr) ct_cache_inserts_->inc();
  }
}

void BlockFitness::recompute_row(pop::SSetId i, const pop::Population& pop,
                                 std::uint64_t gen_key, Counts& counts,
                                 bool nested) {
  if (pgg_) {
    recompute_row_pgg(i, pop, gen_key, counts);
    return;
  }
  const std::size_t row = i - begin_;
  const bool use_agent_pool = agent_pool_ != nullptr && !nested;
  if (dedup_ && !nested) {
    // Serial control path: make every strategy-pure pair of this row a
    // guaranteed hit first — prefill_class batches the Mem1Markov misses
    // through one SoA kernel call, and the agent tier (when active) then
    // reads the cache from several threads without ever inserting.
    // Structured rows only ever touch their neighbours' classes.
    const pop::ClassId ci = pop.strategy_class(i);
    if (structured()) {
      for (pop::SSetId j : graph_->neighbors(i)) {
        prefill_pair(pop, ci, pop.strategy_class(j));
      }
    } else {
      prefill_class(pop, ci);
    }
  }
  double sum = 0.0;
  if (structured()) {
    // Structured population: only neighbours play.
    const std::span<const pop::SSetId> nbrs = graph_->neighbors(i);
    if (use_agent_pool) {
      // Agent tier for structured rows: the neighbour games run
      // concurrently into the scratch buffer (indexed by neighbour
      // position); the reduction then walks the neighbour list in its
      // fixed order — bit-identical to the serial loop.
      std::atomic<std::uint64_t> games{0};
      agent_pool_->parallel_for(
          nbrs.size(), [&](std::uint64_t b, std::uint64_t e) {
            std::uint64_t g = 0;
            for (std::uint64_t t = b; t < e; ++t) {
              row_scratch_[t] =
                  pair_value(pop, i, nbrs[t], gen_key, g, false);
            }
            games.fetch_add(g, std::memory_order_relaxed);
          });
      counts.games += games.load(std::memory_order_relaxed);
      counts.pairs += nbrs.size();
      for (std::size_t t = 0; t < nbrs.size(); ++t) {
        const double v = row_scratch_[t];
        if (cached()) matrix_[row * config_.ssets + nbrs[t]] = v;
        sum += v;
      }
    } else {
      for (pop::SSetId j : nbrs) {
        const double v = pair_value(pop, i, j, gen_key, counts.games, !nested);
        ++counts.pairs;
        if (cached()) matrix_[row * config_.ssets + j] = v;
        sum += v;
      }
    }
    fitness_[row] = sum * row_scale(i);
    return;
  }
  if (row_batchable_ && !dedup_ && !use_agent_pool) {
    // SoA row batch (DESIGN.md §12): every Mem1Markov pair of this row
    // goes through one batch kernel call, fed from the interned class
    // table's SoA view; other routes (PureExact walker, rare mixed-in
    // pure pairs) fall back to per-pair evaluation. The final sum still
    // walks j in fixed order over the same per-pair values — one kernel
    // per process and batch-size-independent lanes make this
    // bit-identical to the per-pair loop.
    thread_local game::batch::Mem1Batch batch;
    thread_local std::vector<double> vals;
    thread_local std::vector<double> bvals;
    thread_local std::vector<pop::SSetId> bj;
    batch.clear();
    bj.clear();
    if (vals.size() < config_.ssets) vals.resize(config_.ssets);
    const game::Strategy& si = pop.strategy(i);
    const pop::ClassId ci = pop.strategy_class(i);
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      const pop::ClassId cj = pop.strategy_class(j);
      if (eval_.route(si, pop.strategy(j)) ==
              PairEvaluator::Route::Mem1Markov &&
          pop.mem1_batchable(ci) && pop.mem1_batchable(cj)) {
        batch.push_probs(pop.mem1_probs(ci), pop.mem1_probs(cj),
                         config_.game.noise);
        bj.push_back(j);
      } else {
        vals[j] = pair_value(pop, i, j, gen_key, counts.games, !nested);
      }
    }
    if (bvals.size() < batch.size()) bvals.resize(batch.size());
    eval_.mem1_batch_payoffs(batch, {bvals.data(), batch.size()});
    counts.games += bj.size();  // one expected-payoff evaluation per pair
    for (std::size_t k = 0; k < bj.size(); ++k) vals[bj[k]] = bvals[k];
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      ++counts.pairs;
      if (cached()) matrix_[row * config_.ssets + j] = vals[j];
      sum += vals[j];
    }
    fitness_[row] = sum * row_scale(i);
    return;
  }
  if (use_agent_pool) {
    // Agent tier: the row's games run concurrently into a buffer; the sum
    // is then taken in fixed j order, so the result is bit-identical to
    // the serial path.
    std::atomic<std::uint64_t> games{0};
    agent_pool_->parallel_for(
        config_.ssets, [&](std::uint64_t b, std::uint64_t e) {
          std::uint64_t g = 0;
          for (std::uint64_t j = b; j < e; ++j) {
            if (j == i) continue;
            row_scratch_[j] = pair_value(pop, i, static_cast<pop::SSetId>(j),
                                         gen_key, g, false);
          }
          games.fetch_add(g, std::memory_order_relaxed);
        });
    counts.games += games.load(std::memory_order_relaxed);
    counts.pairs += config_.ssets - 1;
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      if (cached()) matrix_[row * config_.ssets + j] = row_scratch_[j];
      sum += row_scratch_[j];
    }
  } else {
    for (pop::SSetId j = 0; j < config_.ssets; ++j) {
      if (j == i) continue;
      const double v = pair_value(pop, i, j, gen_key, counts.games, !nested);
      ++counts.pairs;
      if (cached()) matrix_[row * config_.ssets + j] = v;
      sum += v;
    }
  }
  fitness_[row] = sum * row_scale(i);
}

void BlockFitness::evaluate_rows(const pop::Population& pop,
                                 std::uint64_t gen_key) {
  const std::uint64_t rows = end_ - begin_;
  if (dedup_) {
    // Cover exactly the strategy-pure pairs the rows below will touch,
    // serially and up front. Pool workers then only ever read the cache
    // (the hit set is guaranteed and games_played stays
    // thread-count-invariant), and the serial path inserts the same key
    // set it would have inserted lazily — but through prefill_class's SoA
    // batches instead of one kernel call per miss.
    if (structured()) {
      for (pop::SSetId i = begin_; i < end_; ++i) {
        const pop::ClassId ci = pop.strategy_class(i);
        for (pop::SSetId j : graph_->neighbors(i)) {
          prefill_pair(pop, ci, pop.strategy_class(j));
        }
      }
    } else {
      std::vector<pop::ClassId> row_classes;
      row_classes.reserve(rows);
      for (pop::SSetId i = begin_; i < end_; ++i) {
        row_classes.push_back(pop.strategy_class(i));
      }
      std::sort(row_classes.begin(), row_classes.end());
      row_classes.erase(std::unique(row_classes.begin(), row_classes.end()),
                        row_classes.end());
      for (pop::ClassId cr : row_classes) prefill_class(pop, cr);
    }
  }
  if (sset_pool_ == nullptr) {
    Counts counts;
    for (pop::SSetId i = begin_; i < end_; ++i) {
      recompute_row(i, pop, gen_key, counts, false);
    }
    pairs_ += counts.pairs;
    games_ += counts.games;
    return;
  }
  // SSet-row tier: rows are independent (each writes only its fitness and
  // matrix entries and its own Counts slot); every row keeps its fixed
  // j-order sum, so any thread count is bit-identical to serial.
  std::vector<Counts> per_row(rows);
  sset_pool_->parallel_for(rows, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t r = b; r < e; ++r) {
      recompute_row(begin_ + static_cast<pop::SSetId>(r), pop, gen_key,
                    per_row[r], true);
    }
  });
  for (const Counts& c : per_row) {
    pairs_ += c.pairs;
    games_ += c.games;
  }
}

void BlockFitness::initialize(const pop::Population& pop) {
  evaluate_rows(pop, 0);
}

void BlockFitness::begin_generation(const pop::Population& pop,
                                    std::uint64_t generation) {
  if (cached()) return;  // values only move when a strategy changes
  evaluate_rows(pop, generation);
}

void BlockFitness::strategy_changed(pop::SSetId k, const pop::Population& pop,
                                    std::uint64_t generation) {
  if (!cached()) return;  // next begin_generation re-plays everything anyway
  Counts counts;
  if (pgg_) {
    // A single strategy change moves every group pool the SSet touches
    // (and, well-mixed, every row): recompute all owned rows. Row-local
    // and deterministic, so serial and parallel partitions agree on both
    // values and counters.
    for (pop::SSetId i = begin_; i < end_; ++i) {
      recompute_row(i, pop, generation, counts, false);
    }
    pairs_ += counts.pairs;
    games_ += counts.games;
    return;
  }
  if (k >= begin_ && k < end_) {
    recompute_row(k, pop, generation, counts, false);
  }
  for (pop::SSetId i = begin_; i < end_; ++i) {
    if (i == k) continue;
    if (structured() && !graph_->are_neighbors(i, k)) continue;
    const std::size_t idx =
        static_cast<std::size_t>(i - begin_) * config_.ssets + k;
    // Incremental class-delta update: the fresh value comes from the
    // class-pair cache when the pair is strategy-pure (one game per new
    // class pair), and matrix_ still holds the pre-change value, so the
    // fitness delta needs no old-class bookkeeping.
    const double fresh = pair_value(pop, i, k, generation, counts.games, true);
    ++counts.pairs;
    fitness_[i - begin_] += (fresh - matrix_[idx]) * row_scale(i);
    matrix_[idx] = fresh;
  }
  pairs_ += counts.pairs;
  games_ += counts.games;
  maybe_prune_cache(pop);
}

void BlockFitness::maybe_prune_cache(const pop::Population& pop) {
  if (!dedup_) return;
  const std::uint64_t live = pop.class_count();
  if (class_pay_.size() <= 256 + 8 * live * live) return;
  std::unordered_set<std::uint64_t> live_hashes;
  live_hashes.reserve(live);
  for (const pop::StrategyClass& c : pop.classes()) {
    if (c.members > 0) live_hashes.insert(c.hash);
  }
  for (auto it = class_pay_.begin(); it != class_pay_.end();) {
    if (live_hashes.count(it->second.a) == 0 ||
        live_hashes.count(it->second.b) == 0) {
      it = class_pay_.erase(it);
      if (ct_cache_prunes_ != nullptr) ct_cache_prunes_->inc();
    } else {
      ++it;
    }
  }
}

void BlockFitness::restore_state(std::vector<double> fitness,
                                 std::vector<double> matrix,
                                 std::vector<DedupEntry> cache) {
  EGT_REQUIRE_MSG(cached(),
                  "restore_state only applies to cached fitness modes "
                  "(Sampled mode recomputes from the population)");
  EGT_REQUIRE_MSG(fitness.size() == fitness_.size(),
                  "restored fitness size mismatch");
  EGT_REQUIRE_MSG(matrix.size() == matrix_.size(),
                  "restored payoff matrix size mismatch");
  fitness_ = std::move(fitness);
  matrix_ = std::move(matrix);
  if (ct_restores_ != nullptr) ct_restores_->inc();
  if (dedup_) {
    class_pay_.clear();
    class_pay_.reserve(cache.size());
    for (const DedupEntry& e : cache) {
      class_pay_.emplace(game::Strategy::pair_key(e.a, e.b),
                         ClassPay{e.payoff, e.a, e.b});
    }
  }
}

std::vector<BlockFitness::DedupEntry> BlockFitness::dedup_cache() const {
  std::vector<DedupEntry> out;
  out.reserve(class_pay_.size());
  for (const auto& [key, entry] : class_pay_) {
    out.push_back(DedupEntry{entry.a, entry.b, entry.payoff});
  }
  // Deterministic blob bytes regardless of hash-map iteration order.
  std::sort(out.begin(), out.end(), [](const DedupEntry& x, const DedupEntry& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return out;
}

double BlockFitness::fitness(pop::SSetId i) const {
  EGT_REQUIRE_MSG(i >= begin_ && i < end_, "fitness query outside block");
  return fitness_[i - begin_];
}

}  // namespace egt::core
