// Simulation configuration: one struct that fully determines a run
// (both the serial reference engine and the parallel engine consume it, and
// equal configs produce bit-identical trajectories).
#pragma once

#include <cstdint>
#include <string>

#include "game/ipd.hpp"
#include "game/spec/gamespec.hpp"
#include "pop/graph.hpp"
#include "pop/nature.hpp"

namespace egt::core {

/// How per-pair payoffs are obtained each generation.
enum class FitnessMode {
  /// Re-play every game every generation with generation-keyed RNG streams —
  /// the paper's behaviour. O(ssets^2 * rounds) per generation.
  Sampled,
  /// Play a pair's game once and reuse the value until either strategy
  /// changes (then re-play with the change generation's stream). Exact for
  /// deterministic games; a frozen sample for stochastic ones.
  SampledFrozen,
  /// Exact expected payoffs: cycle detection for deterministic pure pairs,
  /// Markov-chain propagation for memory-one pairs (see game/markov.hpp),
  /// frozen sampling as a last resort for stochastic memory>=2 pairs.
  /// Cached across generations (expectations don't change until a strategy
  /// does).
  Analytic,
};

/// Scale of the fitness value fed to the Fermi rule.
enum class FitnessScale {
  /// Mean per-round, per-opponent payoff in [S, T] — keeps beta on the
  /// familiar scale of the PC literature. Default.
  PerRoundAverage,
  /// Raw summed payoff over all rounds and opponents (the paper's
  /// relative_fitness).
  Total,
};

/// How the parallel engine coordinates Nature with the compute ranks.
enum class CommPattern {
  /// Rank 0 is the Nature Agent and broadcasts the per-generation event
  /// plan (and mutated strategy payloads) — the paper's §V-B pattern.
  PaperBcast,
  /// Every rank replays Nature's RNG locally; only fitness values of the
  /// PC pair are exchanged (allreduce). An ablation that removes the
  /// per-generation broadcast.
  ReplicatedNature,
};

/// Population structure (DESIGN.md: spatial extension). Complete is the
/// paper's well-mixed population; Ring/Lattice restrict both game play and
/// imitation to graph neighbours.
struct InteractionSpec {
  enum class Kind { Complete, Ring, Lattice2D };
  Kind kind = Kind::Complete;
  std::uint32_t ring_k = 1;       ///< Ring: neighbours per side
  pop::SSetId lattice_width = 0;  ///< Lattice2D: width (height = ssets/width)
  bool moore = false;             ///< Lattice2D: 8-neighbourhood

  bool structured() const noexcept { return kind != Kind::Complete; }
};

struct SimConfig {
  int memory = 1;
  pop::SSetId ssets = 64;
  std::uint64_t generations = 1000;
  InteractionSpec interaction;

  /// The game the SSets play (DESIGN.md §10). Defaults to the paper's IPD;
  /// `game.payoff`, `game.rounds` and `game.noise` keep their historical
  /// IpdParams names so 2-action configs read the same as before. N-way
  /// matrix games and the public goods kind require memory == 0 (see
  /// GameSpec::requires_memory0).
  game::GameSpec game{};

  double pc_rate = 0.1;  ///< event rate (PC or Moran, per update_rule)
  double mutation_rate = 0.05;
  double beta = 1.0;
  bool require_teacher_better = false;
  pop::UpdateRule update_rule = pop::UpdateRule::PairwiseComparison;
  pop::StrategySpace space = pop::StrategySpace::Pure;
  pop::MutationKernel mutation_kernel = pop::MutationKernel::UniformProbs;
  std::uint32_t mutation_bits = 1;   ///< PureBitFlip: bits flipped
  double mutation_sigma = 0.1;       ///< MixedGaussian: std deviation

  FitnessMode fitness_mode = FitnessMode::Sampled;
  FitnessScale fitness_scale = FitnessScale::PerRoundAverage;
  game::LookupMode lookup = game::LookupMode::Indexed;
  CommPattern comm_pattern = CommPattern::PaperBcast;

  std::uint64_t seed = 1234;

  /// Agent-tier shared-memory parallelism (the paper's second level:
  /// concurrent game play of the agents within a strategy group): extra
  /// worker threads evaluating one SSet's games. 0 = serial. Results are
  /// bit-identical for any value (games are keyed streams; row sums are
  /// accumulated in a fixed order). Works for both the well-mixed and the
  /// structured populations (neighbour lists reduce in fixed order too).
  unsigned agent_threads = 0;

  /// SSet-row tier: extra worker threads evaluating whole fitness rows of
  /// a block concurrently during BlockFitness::initialize /
  /// begin_generation (rows are independent; each row's sum keeps its
  /// fixed j order). 0 = serial. Bit-identical for any value, in every
  /// engine (serial, run_parallel, run_parallel_ft).
  unsigned sset_threads = 0;

  /// Strategy-interned fitness dedup: whenever the pairwise payoff is a
  /// pure function of the strategy pair (Analytic mode where an exact
  /// method applies — see core/fitness.hpp), play one game per unique
  /// (class_i, class_j) pair and reuse the value for every SSet pair in
  /// those classes: O(u^2) games for u unique strategies instead of
  /// O(ssets^2). Fitness values and trajectories are bit-identical either
  /// way; only engine.games_played changes. Sampled mode is unaffected.
  bool dedup = true;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;

  /// The Nature Agent's slice of this configuration. (The interaction
  /// graph itself is attached by the engine — see make_interaction_graph.)
  pop::NatureConfig nature_config() const;

  std::string summary() const;
};

/// Build the interaction graph this config describes. Deterministic, so
/// every rank reconstructs the identical structure locally.
pop::InteractionGraph make_interaction_graph(const SimConfig& config);

}  // namespace egt::core
