#include "core/config.hpp"

#include <sstream>

#include "util/check.hpp"

namespace egt::core {

void SimConfig::validate() const {
  EGT_REQUIRE_MSG(memory >= 0 && memory <= game::kMaxMemory,
                  "memory steps must be in [0, 6]");
  EGT_REQUIRE_MSG(ssets >= 2, "need at least two SSets");
  game.validate();
  if (game.requires_memory0()) {
    EGT_REQUIRE_MSG(memory == 0,
                    "n-way, one-shot and public-goods games are memory-0");
  }
  if (game.uses_nway()) {
    EGT_REQUIRE_MSG(mutation_kernel == pop::MutationKernel::UniformProbs ||
                        mutation_kernel == pop::MutationKernel::PureBitFlip,
                    "n-way games support the UniformProbs and PureBitFlip "
                    "mutation kernels only");
  }
  if (game.kind == game::GameKind::PublicGoods) {
    EGT_REQUIRE_MSG(game.pgg_k == 0 || game.pgg_k <= ssets,
                    "pgg_k cannot exceed the SSet count");
    if (interaction.structured()) {
      EGT_REQUIRE_MSG(game.pgg_k == 0,
                      "structured populations derive public-goods groups "
                      "from the graph; leave pgg_k at 0");
    }
  }
  EGT_REQUIRE_MSG(pc_rate >= 0.0 && pc_rate <= 1.0, "pc_rate out of [0,1]");
  EGT_REQUIRE_MSG(mutation_rate >= 0.0 && mutation_rate <= 1.0,
                  "mutation_rate out of [0,1]");
  EGT_REQUIRE_MSG(beta >= 0.0, "beta must be non-negative");
  if (fitness_mode != FitnessMode::Sampled) {
    // Cached modes keep a rows-by-ssets payoff matrix per rank.
    EGT_REQUIRE_MSG(ssets <= 16384,
                    "cached fitness modes support at most 16384 SSets");
  }
  switch (mutation_kernel) {
    case pop::MutationKernel::UniformProbs:
      break;
    case pop::MutationKernel::UShapedProbs:
    case pop::MutationKernel::MixedGaussian:
      EGT_REQUIRE_MSG(space == pop::StrategySpace::Mixed,
                      "this mutation kernel needs the mixed strategy space");
      break;
    case pop::MutationKernel::PureBitFlip:
      EGT_REQUIRE_MSG(space == pop::StrategySpace::Pure,
                      "PureBitFlip needs the pure strategy space");
      break;
  }
  EGT_REQUIRE_MSG(mutation_bits >= 1, "mutation_bits must be positive");
  EGT_REQUIRE_MSG(mutation_sigma > 0.0, "mutation_sigma must be positive");
  switch (interaction.kind) {
    case InteractionSpec::Kind::Complete:
      break;
    case InteractionSpec::Kind::Ring:
      EGT_REQUIRE_MSG(ssets >= 3 && interaction.ring_k >= 1 &&
                          2 * interaction.ring_k < ssets,
                      "ring interaction needs 1 <= k and 2k < ssets");
      break;
    case InteractionSpec::Kind::Lattice2D: {
      const auto w = interaction.lattice_width;
      EGT_REQUIRE_MSG(w >= 3 && ssets % w == 0 && ssets / w >= 3,
                      "lattice needs width >= 3 dividing ssets with "
                      "height >= 3");
      break;
    }
  }
  if (interaction.structured()) {
    EGT_REQUIRE_MSG(update_rule == pop::UpdateRule::PairwiseComparison,
                    "the Moran rule is defined for the well-mixed "
                    "population only");
  }
}

pop::NatureConfig SimConfig::nature_config() const {
  pop::NatureConfig nc;
  nc.ssets = ssets;
  nc.memory = memory;
  nc.actions = game.uses_nway() ? game.actions : 2;
  nc.pc_rate = pc_rate;
  nc.mutation_rate = mutation_rate;
  nc.beta = beta;
  nc.require_teacher_better = require_teacher_better;
  nc.update_rule = update_rule;
  nc.space = space;
  nc.kernel = mutation_kernel;
  nc.bitflip_bits = mutation_bits;
  nc.gaussian_sigma = mutation_sigma;
  nc.seed = seed;
  return nc;
}

pop::InteractionGraph make_interaction_graph(const SimConfig& config) {
  switch (config.interaction.kind) {
    case InteractionSpec::Kind::Ring:
      return pop::InteractionGraph::ring(config.ssets,
                                         config.interaction.ring_k);
    case InteractionSpec::Kind::Lattice2D:
      return pop::InteractionGraph::lattice(
          config.interaction.lattice_width,
          config.ssets / config.interaction.lattice_width,
          config.interaction.moore);
    case InteractionSpec::Kind::Complete:
      break;
  }
  return pop::InteractionGraph::complete(config.ssets);
}

std::string SimConfig::summary() const {
  std::ostringstream os;
  os << "game=" << game.display_name << ", memory-" << memory << ", " << ssets
     << " SSets, " << generations
     << " generations, rounds=" << game.rounds << ", noise=" << game.noise
     << ", pc_rate=" << pc_rate << ", mu=" << mutation_rate
     << ", beta=" << beta << ", space="
     << (space == pop::StrategySpace::Pure ? "pure" : "mixed") << ", fitness="
     << (fitness_mode == FitnessMode::Sampled
             ? "sampled"
             : (fitness_mode == FitnessMode::SampledFrozen ? "sampled-frozen"
                                                           : "analytic"))
     << ", seed=" << seed;
  return os.str();
}

}  // namespace egt::core
