// Crash-consistent checkpoint storage, shared by the serial engine's
// rolling checkpoints and the fault-tolerance layer's block checkpoints.
//
// PR 2 wrote checkpoints in place: a crash (or injected torn write) in the
// middle of the write corrupts the very file recovery depends on, and the
// reader cannot tell a truncated blob from a short one. This component
// fixes both failure modes:
//
//   commit      write-to-temp + atomic rename. A crash mid-write leaves a
//               `.tmp` orphan, never a half-written committed file; readers
//               only ever see complete commits. Orphans are swept on
//               startup (sweep_tmp_files).
//   integrity   every committed blob carries a CRC-32 footer
//               (append_crc_footer / checked_payload). Torn or bit-flipped
//               content fails the checksum and throws CheckpointError —
//               it can never be mistaken for valid state.
//   retention   CheckpointDir keeps generation-numbered files
//               (checkpoint_g<gen>.bin), prunes to the newest N, and on
//               load falls back to the newest *intact* older generation
//               when the newest is corrupt — a damaged checkpoint degrades
//               the restart point by one interval instead of killing it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/wire.hpp"

namespace egt::core {

// -- CRC footer ---------------------------------------------------------------

/// Trailer magic ("EGTCRC32") marking a footer-carrying blob.
inline constexpr std::uint64_t kCrcFooterMagic = 0x4547544352433332ull;

/// Footer layout appended to the payload: u64 magic, u64 payload length,
/// u32 CRC-32 of the payload. 20 bytes total.
inline constexpr std::size_t kCrcFooterBytes = 8 + 8 + 4;

/// Append the integrity footer to `payload` (in place).
void append_crc_footer(std::vector<std::byte>& payload);

/// Verify the footer and return the payload without it. Throws
/// CheckpointError on a missing footer, a length mismatch (truncation /
/// torn write) or a checksum mismatch (bit flip).
std::vector<std::byte> checked_payload(const std::vector<std::byte>& blob);

// -- atomic files -------------------------------------------------------------

/// Write `blob` to `path` crash-consistently: the bytes go to
/// `path + ".tmp"` first, are fsynced to stable storage, and only then
/// renamed over `path` (followed by a best-effort fsync of the parent
/// directory so the rename itself survives power loss). A crash can never
/// leave a half-written or unflushed `path`. Throws std::runtime_error
/// (not CheckpointError — this is an I/O failure, not a corrupt blob)
/// when the directory is unwritable.
void atomic_write_file(const std::string& path,
                       const std::vector<std::byte>& blob);

/// Best-effort fsync of a directory's entries (after a rename/create).
/// Silently a no-op where directory fds are unsupported.
void fsync_dir(const std::string& dir);

/// Read a whole file; throws std::runtime_error when unreadable.
std::vector<std::byte> read_file_bytes(const std::string& path);

/// Delete orphaned `*.tmp` files left by a crash mid-commit. Returns how
/// many were removed; a missing or unreadable directory sweeps nothing.
std::size_t sweep_tmp_files(const std::string& dir);

// -- retained checkpoint directory -------------------------------------------

/// A directory of generation-numbered, CRC-footed, atomically committed
/// checkpoints with bounded retention. Used by `run_simulation
/// --checkpoint-dir` (serial rolling checkpoints) and by the ft engine's
/// on-disk block-checkpoint mirror.
class CheckpointDir {
 public:
  /// `keep` newest generations are retained (>= 1). Construction sweeps
  /// `.tmp` orphans from a previous crash; the directory itself must
  /// already exist (an unwritable path surfaces on commit, not here).
  explicit CheckpointDir(std::string dir, int keep = 3);

  /// Commit `payload` (footer added here) as generation `gen`, then prune
  /// older generations beyond the retention count. Throws
  /// std::runtime_error on I/O failure — callers that must survive a bad
  /// --checkpoint-dir catch and count (ft.checkpoint_write_errors).
  void commit(std::uint64_t gen, std::vector<std::byte> payload);

  /// Newest intact checkpoint: scans generations newest-first, skipping
  /// files whose footer fails verification (each skip reported through
  /// `on_corrupt`, e.g. to bump a fallback counter). Returns nullopt when
  /// no intact checkpoint exists.
  struct Loaded {
    std::uint64_t generation = 0;
    std::vector<std::byte> payload;
  };
  std::optional<Loaded> newest_intact(
      const std::function<void(std::uint64_t gen, const std::string& why)>&
          on_corrupt = nullptr) const;

  /// Generations currently on disk, ascending (committed files only).
  std::vector<std::uint64_t> generations() const;

  const std::string& dir() const noexcept { return dir_; }
  int keep() const noexcept { return keep_; }

  /// The committed filename of one generation ("checkpoint_g<gen>.bin").
  static std::string file_name(std::uint64_t gen);

 private:
  std::string path_of(std::uint64_t gen) const;

  std::string dir_;
  int keep_;
};

}  // namespace egt::core
