// Checkpoint / restart for long evolutionary runs.
//
// The paper's production runs span 10^7 generations; on shared machines
// such runs need to survive job-time limits. A checkpoint captures the
// engine's complete mutable state — generation counter, Nature Agent RNG,
// and the strategy table — so a restored engine continues the *exact*
// trajectory of an uninterrupted run.
//
// Exactness caveat: FitnessMode::SampledFrozen keys its frozen samples by
// the generation each pair was last (re)played, which a restart cannot
// recover; restored frozen-mode runs are statistically equivalent but not
// bit-identical. Sampled and Analytic modes restart bit-exactly (asserted
// in tests/core/checkpoint_test.cpp).
//
// Format: magic + explicit version field (kCheckpointVersion), then the
// payload. Truncated, corrupt or version-mismatched blobs throw
// CheckpointError (a std::runtime_error, see core/wire.hpp) — never UB.
// The fault-tolerance layer's per-rank block checkpoints
// (ft/block_checkpoint.hpp) share the same wire helpers and versioning
// convention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/wire.hpp"

namespace egt::obs {
class MetricsRegistry;
}

namespace egt::core {

/// Bumped whenever the checkpoint payload layout changes; readers reject
/// any other value with a clear CheckpointError. v3: the config
/// fingerprint covers the full GameSpec (matrix_hash — n-way tables,
/// play mode, public-goods parameters) and strategy payloads may carry
/// the n-way kind byte (game/strategy.hpp wire format).
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Serialize the engine's state. The blob embeds a fingerprint of the
/// configuration; restoring under a different config is rejected.
std::vector<std::byte> save_checkpoint(const Engine& engine);

/// Decode a checkpoint blob into the engine's restored state without
/// constructing the engine — callers that carry extra state alongside the
/// core checkpoint (serve/job_checkpoint.hpp pairs it with the fitness
/// block) decode here and pick the Engine constructor themselves.
/// Validation is identical to restore_checkpoint.
Engine::RestoredState decode_checkpoint(const SimConfig& config,
                                        const std::vector<std::byte>& blob);

/// Reconstruct an engine mid-run. `config` must match the saving run's
/// configuration (validated via the embedded fingerprint). `metrics`
/// optionally instruments the restored engine (see Engine's constructor).
Engine restore_checkpoint(const SimConfig& config,
                          const std::vector<std::byte>& blob,
                          obs::MetricsRegistry* metrics = nullptr);

/// File convenience wrappers.
void write_checkpoint_file(const Engine& engine, const std::string& path);
Engine read_checkpoint_file(const SimConfig& config, const std::string& path,
                            obs::MetricsRegistry* metrics = nullptr);

/// Stable fingerprint of the dynamics-relevant configuration fields.
std::uint64_t config_fingerprint(const SimConfig& config);

}  // namespace egt::core
