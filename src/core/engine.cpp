#include "core/engine.hpp"

#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace egt::core {

pop::Population make_initial_population(const SimConfig& config) {
  util::Xoshiro256 rng(util::mix64(config.seed ^ 0x5851f42d4c957f2dULL));
  if (config.game.uses_nway()) {
    return pop::Population::random_nway(
        config.ssets, config.game.actions,
        config.space == pop::StrategySpace::Pure, rng);
  }
  if (config.space == pop::StrategySpace::Pure) {
    return pop::Population::random_pure(config.ssets, config.memory, rng);
  }
  return pop::Population::random_mixed(config.ssets, config.memory, rng);
}

std::shared_ptr<const pop::InteractionGraph> make_shared_graph(
    const SimConfig& config) {
  if (!config.interaction.structured()) return nullptr;
  return std::make_shared<const pop::InteractionGraph>(
      make_interaction_graph(config));
}

namespace {
pop::NatureConfig nature_config_with_graph(
    const SimConfig& config,
    std::shared_ptr<const pop::InteractionGraph> graph) {
  auto nc = config.nature_config();
  nc.graph = std::move(graph);
  return nc;
}
}  // namespace

void Engine::bind_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  ph_game_play_ = &metrics->histogram(obs::phase::kGamePlay);
  ph_plan_ = &metrics->histogram(obs::phase::kPlanBcast);
  ph_fitness_return_ = &metrics->histogram(obs::phase::kFitnessReturn);
  ph_decision_ = &metrics->histogram(obs::phase::kDecisionBcast);
  ph_apply_ = &metrics->histogram(obs::phase::kApplyUpdate);
  ct_generations_ = &metrics->counter("engine.generations");
  ct_pc_events_ = &metrics->counter("engine.pc_events");
  ct_adoptions_ = &metrics->counter("engine.adoptions");
  ct_moran_events_ = &metrics->counter("engine.moran_events");
  ct_mutations_ = &metrics->counter("engine.mutations");
  ct_pairs_ = &metrics->counter("engine.pairs_evaluated");
  ct_games_ = &metrics->counter("engine.games_played");
}

void Engine::account_pairs() {
  if (ct_pairs_ == nullptr) return;
  const std::uint64_t total = fitness_.pairs_evaluated();
  ct_pairs_->inc(total - pairs_accounted_);
  pairs_accounted_ = total;
  const std::uint64_t games = fitness_.games_played();
  ct_games_->inc(games - games_accounted_);
  games_accounted_ = games;
}

Engine::Engine(const SimConfig& config, obs::MetricsRegistry* metrics)
    : config_((config.validate(), config)),
      pop_(make_initial_population(config)),
      graph_(make_shared_graph(config)),
      nature_(nature_config_with_graph(config, graph_)),
      fitness_(config, 0, config.ssets, graph_, metrics) {
  bind_metrics(metrics);
  {
    // The initial all-pairs evaluation is game-dynamics work.
    obs::ScopedTimer t(ph_game_play_);
    obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
    fitness_.initialize(pop_);
    span.set_arg("games", fitness_.games_played());
  }
  account_pairs();
}

Engine::Engine(const SimConfig& config, RestoredState state,
               obs::MetricsRegistry* metrics)
    : config_((config.validate(), config)),
      pop_(std::move(state.population)),
      graph_(make_shared_graph(config)),
      nature_(nature_config_with_graph(config, graph_)),
      fitness_(config, 0, config.ssets, graph_, metrics),
      generation_(state.generation) {
  EGT_REQUIRE_MSG(pop_.size() == config.ssets,
                  "checkpoint population size does not match the config");
  EGT_REQUIRE_MSG(pop_.memory() == config.memory,
                  "checkpoint memory depth does not match the config");
  nature_.restore_state(state.nature);
  bind_metrics(metrics);
  {
    obs::ScopedTimer t(ph_game_play_);
    fitness_.initialize(pop_);
  }
  account_pairs();
}

Engine::Engine(const SimConfig& config, RestoredState state, FitnessRestore fit,
               obs::MetricsRegistry* metrics)
    : config_((config.validate(), config)),
      pop_(std::move(state.population)),
      graph_(make_shared_graph(config)),
      nature_(nature_config_with_graph(config, graph_)),
      fitness_(config, 0, config.ssets, graph_, metrics),
      generation_(state.generation) {
  EGT_REQUIRE_MSG(pop_.size() == config.ssets,
                  "checkpoint population size does not match the config");
  EGT_REQUIRE_MSG(pop_.memory() == config.memory,
                  "checkpoint memory depth does not match the config");
  nature_.restore_state(state.nature);
  bind_metrics(metrics);
  // No initial evaluation: the cached modes adopt the captured block state
  // verbatim; Sampled recomputes everything at the next step()'s
  // begin_generation. Either way pairs_evaluated / games_played stay at
  // zero here — the saving run's totals travel with the job, not the
  // engine — so a resumed run's counter *growth* matches an undisturbed
  // run generation for generation.
  if (config_.fitness_mode != FitnessMode::Sampled) {
    fitness_.restore_state(std::move(fit.fitness), std::move(fit.matrix),
                           std::move(fit.dedup));
  }
  account_pairs();
}

void Engine::step() {
  obs::TraceSpan gen_span(obs::kGenerationSpan, obs::kCatEngine, "gen",
                          generation_);
  // 1. Game dynamics: this generation's fitness.
  {
    obs::ScopedTimer t(ph_game_play_);
    obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
    const std::uint64_t games_before = fitness_.games_played();
    fitness_.begin_generation(pop_, generation_);
    for (pop::SSetId i = 0; i < config_.ssets; ++i) {
      pop_.set_fitness(i, fitness_.fitness(i));
    }
    span.set_arg("games", fitness_.games_played() - games_before);
  }

  // 2. Population dynamics.
  record_ = GenerationRecord{};
  record_.generation = generation_;
  pop::GenerationPlan plan;
  {
    // Serial twin of the parallel engine's plan broadcast: Nature decides
    // what happens this generation.
    obs::ScopedTimer t(ph_plan_);
    obs::TraceSpan span(obs::phase::kPlanBcast, obs::kCatPhase);
    plan = nature_.plan_generation(&pop_);
  }

  if (plan.pc) {
    if (ct_pc_events_ != nullptr) ct_pc_events_->inc();
    GenerationRecord::PcOutcome out;
    out.teacher = plan.pc->teacher;
    out.learner = plan.pc->learner;
    double teacher_fitness, learner_fitness;
    {
      // Serial twin of the owners' fitness return.
      obs::ScopedTimer t(ph_fitness_return_);
      obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
      teacher_fitness = fitness_.fitness(out.teacher);
      learner_fitness = fitness_.fitness(out.learner);
    }
    {
      obs::ScopedTimer t(ph_decision_);
      obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
      out.adopted = nature_.decide_adoption(teacher_fitness, learner_fitness);
    }
    if (out.adopted) {
      if (ct_adoptions_ != nullptr) ct_adoptions_->inc();
      obs::ScopedTimer t(ph_apply_);
      obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
      pop_.set_strategy(out.learner, pop_.strategy(out.teacher));
      fitness_.strategy_changed(out.learner, pop_, generation_);
    }
    record_.pc = out;
  }

  if (plan.moran) {
    if (ct_moran_events_ != nullptr) ct_moran_events_->inc();
    pop::MoranPick pick;
    {
      // The Moran rule's whole-vector selection is the decision step.
      obs::ScopedTimer t(ph_decision_);
      obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
      pick = nature_.select_moran(fitness_.block());
    }
    GenerationRecord::PcOutcome out;
    out.teacher = pick.reproducer;
    out.learner = pick.dying;
    out.adopted = pick.is_change();
    if (pick.is_change()) {
      obs::ScopedTimer t(ph_apply_);
      obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
      pop_.set_strategy(pick.dying, pop_.strategy(pick.reproducer));
      fitness_.strategy_changed(pick.dying, pop_, generation_);
    }
    record_.pc = out;
    record_.was_moran = true;
  }

  if (plan.mutation) {
    if (ct_mutations_ != nullptr) ct_mutations_->inc();
    obs::ScopedTimer t(ph_apply_);
    obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
    pop_.set_strategy(plan.mutation->target, plan.mutation->strategy);
    fitness_.strategy_changed(plan.mutation->target, pop_, generation_);
    record_.mutation = plan.mutation->target;
  }

  ++generation_;
  if (ct_generations_ != nullptr) ct_generations_->inc();
  account_pairs();

  if (trace_ != nullptr) {
    TracePoint point;
    point.generation = record_.generation;
    point.nature = nature_.save_state();
    if (record_.pc) {
      (record_.was_moran ? point.moran : point.pc) = true;
      (record_.was_moran ? point.reproducer : point.teacher) =
          record_.pc->teacher;
      (record_.was_moran ? point.dying : point.learner) = record_.pc->learner;
      point.adopted = record_.pc->adopted;
    }
    if (record_.mutation) {
      point.mutated = true;
      point.mutation_target = *record_.mutation;
    }
    point.table_hash = pop_.table_hash();
    point.fitness_hash = hash_fitness(pop_.fitness());
    trace_->on_point(point);
  }
}

void Engine::run(std::uint64_t generations, Observer* observer) {
  for (std::uint64_t g = 0; g < generations; ++g) {
    step();
    if (observer != nullptr) observer->on_generation(pop_, record_);
  }
}

}  // namespace egt::core
