#include "core/engine.hpp"

#include "util/check.hpp"

namespace egt::core {

pop::Population make_initial_population(const SimConfig& config) {
  util::Xoshiro256 rng(util::mix64(config.seed ^ 0x5851f42d4c957f2dULL));
  if (config.space == pop::StrategySpace::Pure) {
    return pop::Population::random_pure(config.ssets, config.memory, rng);
  }
  return pop::Population::random_mixed(config.ssets, config.memory, rng);
}

std::shared_ptr<const pop::InteractionGraph> make_shared_graph(
    const SimConfig& config) {
  if (!config.interaction.structured()) return nullptr;
  return std::make_shared<const pop::InteractionGraph>(
      make_interaction_graph(config));
}

namespace {
pop::NatureConfig nature_config_with_graph(
    const SimConfig& config,
    std::shared_ptr<const pop::InteractionGraph> graph) {
  auto nc = config.nature_config();
  nc.graph = std::move(graph);
  return nc;
}
}  // namespace

Engine::Engine(const SimConfig& config)
    : config_((config.validate(), config)),
      pop_(make_initial_population(config)),
      graph_(make_shared_graph(config)),
      nature_(nature_config_with_graph(config, graph_)),
      fitness_(config, 0, config.ssets, graph_) {
  fitness_.initialize(pop_);
}

Engine::Engine(const SimConfig& config, RestoredState state)
    : config_((config.validate(), config)),
      pop_(std::move(state.population)),
      graph_(make_shared_graph(config)),
      nature_(nature_config_with_graph(config, graph_)),
      fitness_(config, 0, config.ssets, graph_),
      generation_(state.generation) {
  EGT_REQUIRE_MSG(pop_.size() == config.ssets,
                  "checkpoint population size does not match the config");
  EGT_REQUIRE_MSG(pop_.memory() == config.memory,
                  "checkpoint memory depth does not match the config");
  nature_.restore_state(state.nature);
  fitness_.initialize(pop_);
}

void Engine::step() {
  // 1. Game dynamics: this generation's fitness.
  fitness_.begin_generation(pop_, generation_);
  for (pop::SSetId i = 0; i < config_.ssets; ++i) {
    pop_.set_fitness(i, fitness_.fitness(i));
  }

  // 2. Population dynamics.
  record_ = GenerationRecord{};
  record_.generation = generation_;
  const pop::GenerationPlan plan = nature_.plan_generation(&pop_);

  if (plan.pc) {
    GenerationRecord::PcOutcome out;
    out.teacher = plan.pc->teacher;
    out.learner = plan.pc->learner;
    out.adopted = nature_.decide_adoption(fitness_.fitness(out.teacher),
                                          fitness_.fitness(out.learner));
    if (out.adopted) {
      pop_.set_strategy(out.learner, pop_.strategy(out.teacher));
      fitness_.strategy_changed(out.learner, pop_, generation_);
    }
    record_.pc = out;
  }

  if (plan.moran) {
    const pop::MoranPick pick = nature_.select_moran(fitness_.block());
    GenerationRecord::PcOutcome out;
    out.teacher = pick.reproducer;
    out.learner = pick.dying;
    out.adopted = pick.is_change();
    if (pick.is_change()) {
      pop_.set_strategy(pick.dying, pop_.strategy(pick.reproducer));
      fitness_.strategy_changed(pick.dying, pop_, generation_);
    }
    record_.pc = out;
    record_.was_moran = true;
  }

  if (plan.mutation) {
    pop_.set_strategy(plan.mutation->target, plan.mutation->strategy);
    fitness_.strategy_changed(plan.mutation->target, pop_, generation_);
    record_.mutation = plan.mutation->target;
  }

  ++generation_;
}

void Engine::run(std::uint64_t generations, Observer* observer) {
  for (std::uint64_t g = 0; g < generations; ++g) {
    step();
    if (observer != nullptr) observer->on_generation(pop_, record_);
  }
}

}  // namespace egt::core
