#include "core/observer.hpp"

#include <algorithm>

#include "pop/stats.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace egt::core {

void MultiObserver::add(Observer& obs) {
  EGT_REQUIRE_MSG(std::find(children_.begin(), children_.end(), &obs) ==
                      children_.end(),
                  "observer already added to this MultiObserver");
  children_.push_back(&obs);
}

Observer& MultiObserver::add(std::unique_ptr<Observer> obs) {
  EGT_REQUIRE_MSG(obs != nullptr, "cannot add a null observer");
  add(*obs);  // duplicate guard + dispatch registration
  owned_.push_back(std::move(obs));
  return *owned_.back();
}

void TimeSeriesRecorder::on_generation(const pop::Population& pop,
                                       const GenerationRecord& record) {
  if (interval_ != 0 && record.generation % interval_ != 0) return;
  Sample s;
  s.generation = record.generation;
  s.mean_fitness = util::mean(pop.fitness());
  s.mean_coop_probability = pop::mean_coop_probability(pop);
  const auto c = pop::census(pop);
  s.dominant_fraction = static_cast<double>(c.front().count) / pop.size();
  s.distinct = c.size();
  s.entropy = pop::strategy_entropy(pop);
  if (reference_) {
    s.tracked_fraction = pop::fraction_near(pop, *reference_, tolerance_);
  }
  samples_.push_back(s);
}

void TimeSeriesRecorder::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"generation", "mean_fitness", "mean_coop_prob",
                             "dominant_fraction", "entropy", "distinct",
                             "tracked_fraction"});
  for (const auto& s : samples_) {
    csv.row({static_cast<double>(s.generation), s.mean_fitness,
             s.mean_coop_probability, s.dominant_fraction, s.entropy,
             static_cast<double>(s.distinct), s.tracked_fraction});
  }
}

void SnapshotRecorder::on_generation(const pop::Population& pop,
                                     const GenerationRecord& record) {
  if (std::find(wanted_.begin(), wanted_.end(), record.generation) ==
      wanted_.end()) {
    return;
  }
  snapshots_.emplace_back(record.generation, pop);
}

}  // namespace egt::core
