// The parallel engine: the paper's algorithm on the mini message-passing
// runtime.
//
// Mapping (paper §V): rank 0 doubles as the Nature Agent; every rank owns a
// contiguous block of SSets and computes their game play locally against
// the replicated strategy table (no communication in the game-dynamics
// tier). Population dynamics per generation:
//
//   PaperBcast (default, the paper's §V-B pattern):
//     rank 0 plans the generation and broadcasts the event plan (including
//     any mutated strategy payload) over the binomial tree; owners of the
//     PC pair return fitness point-to-point; rank 0 broadcasts the adoption
//     decision; all ranks apply updates to their replica.
//
//   ReplicatedNature (ablation): every rank replays Nature's RNG, so the
//   schedule and mutation payloads need no broadcast; only the PC pair's
//   fitness is combined with an allreduce.
//
// For any rank count the trajectory is bit-identical to the serial Engine —
// the central integration-test invariant.
//
// Observability: every rank times the same five per-generation phases the
// serial engine reports (obs::phase) into its own registry; the registries
// are merged after the run into ParallelResult::metrics. Traffic is
// reported per rank, split broadcast-tree vs point-to-point.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "obs/metrics.hpp"
#include "par/runtime.hpp"
#include "pop/nature.hpp"
#include "pop/population.hpp"

namespace egt::obs {
class MetricsStreamWriter;
}

namespace egt::core {

/// Wire codec of the per-generation event plan (the PaperBcast broadcast
/// payload). Exposed so the fault-tolerant engine (src/ft/) ships the
/// identical plan over its master-driven point-to-point protocol.
std::vector<std::byte> encode_generation_plan(const pop::GenerationPlan& plan);
pop::GenerationPlan decode_generation_plan(const std::vector<std::byte>& in);

struct ParallelResult {
  pop::Population population;  ///< final strategy table + final fitness
  par::TrafficReport traffic;  ///< whole-run traffic, split by class + rank
  std::uint64_t generations = 0;
  /// Merged per-rank metrics: phase timers (obs::phase) and "engine.*"
  /// counters. Event counters are counted once (at rank 0);
  /// "engine.pairs_evaluated" sums every rank's block and therefore
  /// matches the serial engine's count for the same config.
  obs::MetricsSnapshot metrics;
};

struct ParallelRunOptions {
  /// Also merge the per-rank registries into this registry (e.g. the
  /// caller's process-wide one). May be null.
  obs::MetricsRegistry* metrics = nullptr;
  /// Rank 0 logs a heartbeat (gen/s, ETA) through util::log_info.
  bool progress = false;
  /// Seconds between heartbeats.
  double progress_interval_seconds = 2.0;
  /// Rank 0 emits one core::TracePoint per generation (see core/trace.hpp;
  /// fitness_hash stays 0 — ranks only own a block). May be null.
  TraceSink* trace = nullptr;
  /// Live NDJSON telemetry (obs/metrics_stream.hpp). When set, every rank
  /// joins a per-emitted-generation fitness reduction and rank 0 streams
  /// the line. May be null.
  obs::MetricsStreamWriter* metrics_stream = nullptr;
};

/// Run the full simulation on `nranks` ranks. Blocks until done.
ParallelResult run_parallel(const SimConfig& config, int nranks);
ParallelResult run_parallel(const SimConfig& config, int nranks,
                            const ParallelRunOptions& options);

}  // namespace egt::core
