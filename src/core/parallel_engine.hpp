// The parallel engine: the paper's algorithm on the mini message-passing
// runtime.
//
// Mapping (paper §V): rank 0 doubles as the Nature Agent; every rank owns a
// contiguous block of SSets and computes their game play locally against
// the replicated strategy table (no communication in the game-dynamics
// tier). Population dynamics per generation:
//
//   PaperBcast (default, the paper's §V-B pattern):
//     rank 0 plans the generation and broadcasts the event plan (including
//     any mutated strategy payload) over the binomial tree; owners of the
//     PC pair return fitness point-to-point; rank 0 broadcasts the adoption
//     decision; all ranks apply updates to their replica.
//
//   ReplicatedNature (ablation): every rank replays Nature's RNG, so the
//   schedule and mutation payloads need no broadcast; only the PC pair's
//   fitness is combined with an allreduce.
//
// For any rank count the trajectory is bit-identical to the serial Engine —
// the central integration-test invariant.
#pragma once

#include "core/config.hpp"
#include "par/runtime.hpp"
#include "pop/population.hpp"

namespace egt::core {

struct ParallelResult {
  pop::Population population;  ///< final strategy table + final fitness
  par::TrafficReport traffic;  ///< total p2p traffic of the whole run
  std::uint64_t generations = 0;
};

/// Run the full simulation on `nranks` ranks. Blocks until done.
ParallelResult run_parallel(const SimConfig& config, int nranks);

}  // namespace egt::core
