// The serial reference engine: one process plays the whole population.
//
// Semantics of one generation (paper §IV):
//   1. Game dynamics: every SSet's agents play every other SSet's strategy;
//      fitness is the (scaled) sum of payoffs.
//   2. Population dynamics: Nature may schedule a pairwise-comparison event
//      (Fermi imitation on this generation's fitness) and a mutation event;
//      both apply before the next generation starts.
//
// The parallel engine (parallel_engine.hpp) produces the exact same
// trajectory; tests assert bit-identical strategy tables and fitness.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "pop/graph.hpp"
#include "core/fitness.hpp"
#include "core/observer.hpp"
#include "core/trace.hpp"
#include "obs/metrics.hpp"
#include "pop/nature.hpp"
#include "pop/population.hpp"

namespace egt::core {

/// Construct the deterministic initial population for a config (shared by
/// the serial and parallel engines).
pop::Population make_initial_population(const SimConfig& config);

class Engine {
 public:
  /// `metrics`, when given, receives per-phase timers (obs::phase) and
  /// event counters ("engine.*"); it must outlive the engine. Null runs
  /// without instrumentation (no timing overhead on the hot path).
  explicit Engine(const SimConfig& config,
                  obs::MetricsRegistry* metrics = nullptr);

  /// Mid-run state as captured by a checkpoint (core/checkpoint.hpp).
  struct RestoredState {
    std::uint64_t generation = 0;
    pop::NatureAgent::State nature;
    pop::Population population;
  };

  /// Resume from a checkpointed state.
  Engine(const SimConfig& config, RestoredState state,
         obs::MetricsRegistry* metrics = nullptr);

  /// The fitness block's evaluation state as captured alongside a
  /// checkpoint (serve/job_checkpoint.hpp): the per-row fitness, the
  /// cached payoff matrix (empty for Sampled / public goods) and the
  /// dedup class-pair cache.
  struct FitnessRestore {
    std::vector<double> fitness;
    std::vector<double> matrix;
    std::vector<BlockFitness::DedupEntry> dedup;
  };

  /// Resume from a checkpointed state *and* a captured fitness block —
  /// unlike the plain restore constructor this performs no initial
  /// all-pairs evaluation, so engine.pairs_evaluated / games_played (and
  /// the dedup cache contents) continue exactly where the saving run
  /// stopped: a preempted run resumed this way is bit-identical to an
  /// undisturbed one, counters included. Sampled mode ignores `fit`
  /// (begin_generation replays everything next step anyway).
  Engine(const SimConfig& config, RestoredState state, FitnessRestore fit,
         obs::MetricsRegistry* metrics = nullptr);

  /// The Nature Agent (checkpointing, inspection).
  const pop::NatureAgent& nature_agent() const noexcept { return nature_; }

  const SimConfig& config() const noexcept { return config_; }
  const pop::Population& population() const noexcept { return pop_; }
  std::uint64_t generation() const noexcept { return generation_; }
  const GenerationRecord& last_record() const noexcept { return record_; }

  /// Advance one generation.
  void step();

  /// Run `generations` more generations, reporting each to `observer`.
  void run(std::uint64_t generations, Observer* observer = nullptr);

  /// Run config().generations generations.
  void run_all(Observer* observer = nullptr) {
    run(config_.generations, observer);
  }

  /// Emit one TracePoint per generation to `sink` (null disables; no
  /// overhead on the hot path when unset). `sink` must outlive the engine.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

  /// Total ordered pairs evaluated so far (work accounting).
  std::uint64_t pairs_evaluated() const noexcept {
    return fitness_.pairs_evaluated();
  }

  /// Games actually played so far — <= pairs_evaluated(); the gap is the
  /// strategy-interned dedup saving (config.dedup, Analytic mode).
  std::uint64_t games_played() const noexcept {
    return fitness_.games_played();
  }

  /// The interaction graph (null for the well-mixed population).
  const pop::InteractionGraph* interaction_graph() const noexcept {
    return graph_.get();
  }

  /// The fitness block (checkpointing its evaluation state).
  const BlockFitness& fitness_block() const noexcept { return fitness_; }

 private:
  /// Resolve phase histograms / event counters once (lock-free afterwards).
  void bind_metrics(obs::MetricsRegistry* metrics);
  /// Add fitness_.pairs_evaluated() / games_played() growth to the
  /// engine.pairs_evaluated and engine.games_played counters.
  void account_pairs();

  SimConfig config_;
  pop::Population pop_;
  std::shared_ptr<const pop::InteractionGraph> graph_;  // before nature_
  pop::NatureAgent nature_;
  BlockFitness fitness_;
  std::uint64_t generation_ = 0;
  GenerationRecord record_;
  TraceSink* trace_ = nullptr;

  // Instrumentation (all null when the engine runs unobserved).
  obs::Histogram* ph_game_play_ = nullptr;
  obs::Histogram* ph_plan_ = nullptr;
  obs::Histogram* ph_fitness_return_ = nullptr;
  obs::Histogram* ph_decision_ = nullptr;
  obs::Histogram* ph_apply_ = nullptr;
  obs::Counter* ct_generations_ = nullptr;
  obs::Counter* ct_pc_events_ = nullptr;
  obs::Counter* ct_adoptions_ = nullptr;
  obs::Counter* ct_moran_events_ = nullptr;
  obs::Counter* ct_mutations_ = nullptr;
  obs::Counter* ct_pairs_ = nullptr;
  obs::Counter* ct_games_ = nullptr;
  std::uint64_t pairs_accounted_ = 0;
  std::uint64_t games_accounted_ = 0;
};

/// Null for well-mixed configs; the shared graph otherwise.
std::shared_ptr<const pop::InteractionGraph> make_shared_graph(
    const SimConfig& config);

}  // namespace egt::core
