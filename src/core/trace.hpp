// Decision-point tracing: the hook the simcheck harness (src/simcheck/)
// uses to compare *whole trajectories* across engines instead of only
// final states.
//
// Every engine (serial Engine, run_parallel's rank 0, run_parallel_ft's
// master) emits one TracePoint per completed generation: Nature's
// post-decision RNG state, the generation's decision, and a content hash
// of the strategy table. Two engines given the same config must produce
// byte-identical point streams; the first differing point names the
// generation where a divergence was introduced — which turns "final table
// hash differs after 60 generations" into "adoption decision flipped at
// generation 12".
//
// The point layout deliberately mirrors the ft decision log
// (ft/decision_log.hpp): both snapshot the global tier after one
// generation, and the simcheck trace wire format reuses the same
// core::wire conventions.
#pragma once

#include <cstdint>
#include <span>

#include "pop/nature.hpp"
#include "util/rng.hpp"

namespace egt::core {

/// One generation's decision-point snapshot.
struct TracePoint {
  std::uint64_t generation = 0;
  /// Nature's state AFTER planning (and deciding) this generation — the
  /// same capture point as the ft decision log's record.
  pop::NatureAgent::State nature{};
  bool pc = false;
  std::uint32_t teacher = 0;
  std::uint32_t learner = 0;
  bool adopted = false;
  bool moran = false;
  std::uint32_t reproducer = 0;
  std::uint32_t dying = 0;
  bool mutated = false;
  std::uint32_t mutation_target = 0;
  /// pop::Population::table_hash after the generation's events applied.
  std::uint64_t table_hash = 0;
  /// Bit-sensitive hash of the population's top-of-generation fitness
  /// vector, or 0 when the recorder only owns a block of it (parallel
  /// ranks): compared only when both sides recorded it.
  std::uint64_t fitness_hash = 0;
};

/// Receiver of per-generation trace points. Implementations must tolerate
/// being called from whichever thread drives the recording engine (the ft
/// master role can migrate across rank threads on failover).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_point(const TracePoint& point) = 0;
};

/// Order- and bit-sensitive hash of a fitness vector (chained mix64 over
/// the IEEE-754 bit patterns; NaN-free by construction of the engines).
inline std::uint64_t hash_fitness(std::span<const double> fitness) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const double v : fitness) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    h = util::mix64(h ^ bits);
  }
  return h;
}

}  // namespace egt::core
