#include "core/parallel_engine.hpp"

#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>

#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "obs/metrics_stream.hpp"
#include "obs/tracer.hpp"
#include "par/partition.hpp"
#include "pop/nature.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace egt::core {

namespace {

constexpr int kTagFitTeacher = 1;
constexpr int kTagFitLearner = 2;

// -- generation-plan wire format ---------------------------------------------

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

std::uint32_t get_u32(const std::vector<std::byte>& in, std::size_t& off) {
  std::uint32_t v;
  std::memcpy(&v, in.data() + off, sizeof v);
  off += sizeof v;
  return v;
}

}  // namespace

std::vector<std::byte> encode_generation_plan(const pop::GenerationPlan& plan) {
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(plan.pc ? 1 : 0));
  if (plan.pc) {
    put_u32(out, plan.pc->teacher);
    put_u32(out, plan.pc->learner);
  }
  out.push_back(static_cast<std::byte>(plan.moran ? 1 : 0));
  out.push_back(static_cast<std::byte>(plan.mutation ? 1 : 0));
  if (plan.mutation) {
    put_u32(out, plan.mutation->target);
    const auto payload = plan.mutation->strategy.serialize();
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

pop::GenerationPlan decode_generation_plan(const std::vector<std::byte>& in) {
  pop::GenerationPlan plan;
  std::size_t off = 0;
  EGT_REQUIRE_MSG(in.size() >= 3, "plan payload too short");
  if (std::to_integer<int>(in[off++]) != 0) {
    pop::GenerationPlan::Pc pc;
    pc.teacher = get_u32(in, off);
    pc.learner = get_u32(in, off);
    plan.pc = pc;
  }
  plan.moran = std::to_integer<int>(in[off++]) != 0;
  if (std::to_integer<int>(in[off++]) != 0) {
    pop::GenerationPlan::Mutation mut;
    mut.target = get_u32(in, off);
    const std::uint32_t len = get_u32(in, off);
    EGT_REQUIRE_MSG(off + len == in.size(), "plan payload size mismatch");
    std::vector<std::byte> payload(in.begin() + static_cast<std::ptrdiff_t>(off),
                                   in.end());
    mut.strategy = game::Strategy::deserialize(payload);
    plan.mutation = std::move(mut);
  }
  return plan;
}

namespace {

// -- per-rank instrumentation -------------------------------------------------

// Phase histograms are resolved once per rank and then updated lock-free.
// Event counters live on rank 0 only so the merged totals match the serial
// engine's; "engine.pairs_evaluated" is per-rank (block sums add up to the
// serial all-pairs count).
struct RankInstruments {
  obs::Histogram* game_play = nullptr;
  obs::Histogram* plan = nullptr;
  obs::Histogram* fitness_return = nullptr;
  obs::Histogram* decision = nullptr;
  obs::Histogram* apply = nullptr;
  obs::Counter* pairs = nullptr;
  obs::Counter* games = nullptr;
  obs::Counter* generations = nullptr;
  obs::Counter* pc_events = nullptr;
  obs::Counter* adoptions = nullptr;
  obs::Counter* moran_events = nullptr;
  obs::Counter* mutations = nullptr;

  RankInstruments(obs::MetricsRegistry& reg, int rank) {
    game_play = &reg.histogram(obs::phase::kGamePlay);
    plan = &reg.histogram(obs::phase::kPlanBcast);
    fitness_return = &reg.histogram(obs::phase::kFitnessReturn);
    decision = &reg.histogram(obs::phase::kDecisionBcast);
    apply = &reg.histogram(obs::phase::kApplyUpdate);
    pairs = &reg.counter("engine.pairs_evaluated");
    games = &reg.counter("engine.games_played");
    if (rank == 0) {
      generations = &reg.counter("engine.generations");
      pc_events = &reg.counter("engine.pc_events");
      adoptions = &reg.counter("engine.adoptions");
      moran_events = &reg.counter("engine.moran_events");
      mutations = &reg.counter("engine.mutations");
    }
  }

  static void inc(obs::Counter* c) {
    if (c != nullptr) c->inc();
  }
};

// -- per-rank program ---------------------------------------------------------

void rank_main(par::Comm& comm, const SimConfig& config,
               std::optional<pop::Population>& result_slot,
               obs::MetricsRegistry& registry,
               const ParallelRunOptions& options) {
  const int rank = comm.rank();
  const auto nranks = static_cast<std::uint64_t>(comm.size());
  RankInstruments ins(registry, rank);
  // Flight-recorder attribution: this thread's events land on pid = rank.
  const obs::TraceRankScope trace_rank(rank);
  obs::Tracer::set_thread_name("rank.main");

  // Every rank derives the identical initial state from the seed alone —
  // the paper's "each node can calculate its position ... individually".
  pop::Population pop = make_initial_population(config);
  // Every rank reconstructs the identical interaction graph locally.
  const auto graph = make_shared_graph(config);
  const par::BlockPartition part(config.ssets, nranks);
  const auto row_begin = static_cast<pop::SSetId>(
      part.begin(static_cast<std::uint64_t>(rank)));
  const auto row_end =
      static_cast<pop::SSetId>(part.end(static_cast<std::uint64_t>(rank)));
  BlockFitness fit(config, row_begin, row_end, graph, &registry);
  {
    obs::ScopedTimer t(ins.game_play);
    obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
    fit.initialize(pop);
    span.set_arg("games", fit.games_played());
  }
  std::uint64_t pairs_accounted = fit.pairs_evaluated();
  ins.pairs->inc(pairs_accounted);
  std::uint64_t games_accounted = fit.games_played();
  ins.games->inc(games_accounted);

  const bool replay_nature =
      config.comm_pattern == CommPattern::ReplicatedNature;
  std::optional<pop::NatureAgent> nature;
  if (replay_nature || rank == 0) {
    auto nc = config.nature_config();
    nc.graph = graph;
    nature.emplace(nc);
  }

  auto owner_of = [&](pop::SSetId i) {
    return static_cast<int>(part.owner(i));
  };

  // Matches the serial engine: zero until the first generation runs.
  std::vector<double> fitness_snapshot(fit.block().size(), 0.0);

  util::Timer progress_timer;
  double last_heartbeat_s = 0.0;
  std::uint64_t last_heartbeat_gen = 0;

  for (std::uint64_t gen = 0; gen < config.generations; ++gen) {
    obs::TraceSpan gen_span(obs::kGenerationSpan, obs::kCatEngine, "gen", gen);
    // 1. Game dynamics: local, communication-free.
    {
      obs::ScopedTimer t(ins.game_play);
      obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
      const std::uint64_t games_before = fit.games_played();
      fit.begin_generation(pop, gen);
      fitness_snapshot.assign(fit.block().begin(), fit.block().end());
      span.set_arg("games", fit.games_played() - games_before);
    }

    // 2. Population dynamics.
    pop::GenerationPlan plan;
    {
      obs::ScopedTimer t(ins.plan);
      obs::TraceSpan span(obs::phase::kPlanBcast, obs::kCatPhase);
      if (replay_nature) {
        plan = nature->plan_generation(&pop);
      } else {
        std::vector<std::byte> wire;
        if (rank == 0) {
          plan = nature->plan_generation(&pop);
          wire = encode_generation_plan(plan);
        }
        comm.bcast(wire, 0);
        if (rank != 0) plan = decode_generation_plan(wire);
      }
    }

    // Decision outcomes, hoisted so the rank-0 trace hook below sees them.
    bool adopted = false;
    pop::MoranPick pick;

    if (plan.pc) {
      RankInstruments::inc(ins.pc_events);
      const pop::SSetId teacher = plan.pc->teacher;
      const pop::SSetId learner = plan.pc->learner;

      if (replay_nature) {
        std::vector<double> pair_fitness(2, 0.0);
        {
          obs::ScopedTimer t(ins.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          if (owner_of(teacher) == rank) pair_fitness[0] = fit.fitness(teacher);
          if (owner_of(learner) == rank) pair_fitness[1] = fit.fitness(learner);
          pair_fitness = comm.allreduce(std::move(pair_fitness),
                                        par::Comm::ReduceOp::Sum);
        }
        {
          obs::ScopedTimer t(ins.decision);
          obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
          adopted = nature->decide_adoption(pair_fitness[0], pair_fitness[1]);
        }
      } else {
        // Owners return fitness to the Nature Agent point-to-point
        // (the paper's torus sends), rank 0 decides, decision broadcast.
        double tf = 0.0, lf = 0.0;
        {
          obs::ScopedTimer t(ins.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          if (rank != 0 && owner_of(teacher) == rank) {
            comm.send_value(0, kTagFitTeacher, fit.fitness(teacher));
          }
          if (rank != 0 && owner_of(learner) == rank) {
            comm.send_value(0, kTagFitLearner, fit.fitness(learner));
          }
          if (rank == 0) {
            tf = owner_of(teacher) == 0
                     ? fit.fitness(teacher)
                     : comm.recv_value<double>(owner_of(teacher),
                                               kTagFitTeacher);
            lf = owner_of(learner) == 0
                     ? fit.fitness(learner)
                     : comm.recv_value<double>(owner_of(learner),
                                               kTagFitLearner);
          }
        }
        {
          obs::ScopedTimer t(ins.decision);
          obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
          std::uint8_t adopted_wire = 0;
          if (rank == 0) adopted_wire = nature->decide_adoption(tf, lf) ? 1 : 0;
          comm.bcast_value(adopted_wire, 0);
          adopted = adopted_wire != 0;
        }
      }

      if (adopted) {
        RankInstruments::inc(ins.adoptions);
        obs::ScopedTimer t(ins.apply);
        obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
        pop.set_strategy(learner, pop.strategy(teacher));
        fit.strategy_changed(learner, pop, gen);
      }
    }

    if (plan.moran) {
      RankInstruments::inc(ins.moran_events);
      // The Moran rule needs the whole fitness vector at the selector —
      // the communication pattern the paper's pairwise rule avoids.
      auto pack_block = [&] {
        std::vector<std::byte> bytes(fit.block().size() * sizeof(double));
        std::memcpy(bytes.data(), fit.block().data(), bytes.size());
        return bytes;
      };
      auto assemble = [&](const std::vector<std::vector<std::byte>>& blocks) {
        std::vector<double> full(config.ssets, 0.0);
        for (std::uint64_t r = 0; r < nranks; ++r) {
          const auto& b = blocks[r];
          std::memcpy(full.data() + part.begin(r), b.data(), b.size());
        }
        return full;
      };
      if (replay_nature) {
        std::vector<double> full;
        {
          obs::ScopedTimer t(ins.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          full = assemble(comm.allgather(pack_block()));
        }
        obs::ScopedTimer t(ins.decision);
        obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
        pick = nature->select_moran(full);
      } else {
        std::vector<std::vector<std::byte>> blocks;
        {
          obs::ScopedTimer t(ins.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          blocks = comm.gather(pack_block(), 0);
        }
        obs::ScopedTimer t(ins.decision);
        obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
        std::uint64_t wire = 0;
        if (rank == 0) {
          const auto full = assemble(blocks);
          pick = nature->select_moran(full);
          wire = (static_cast<std::uint64_t>(pick.reproducer) << 32) |
                 pick.dying;
        }
        comm.bcast_value(wire, 0);
        pick.reproducer = static_cast<pop::SSetId>(wire >> 32);
        pick.dying = static_cast<pop::SSetId>(wire & 0xffffffffu);
      }
      if (pick.is_change()) {
        obs::ScopedTimer t(ins.apply);
        obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
        pop.set_strategy(pick.dying, pop.strategy(pick.reproducer));
        fit.strategy_changed(pick.dying, pop, gen);
      }
    }

    if (plan.mutation) {
      RankInstruments::inc(ins.mutations);
      obs::ScopedTimer t(ins.apply);
      obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
      pop.set_strategy(plan.mutation->target, plan.mutation->strategy);
      fit.strategy_changed(plan.mutation->target, pop, gen);
    }

    RankInstruments::inc(ins.generations);
    const std::uint64_t pairs_now = fit.pairs_evaluated();
    ins.pairs->inc(pairs_now - pairs_accounted);
    pairs_accounted = pairs_now;
    const std::uint64_t games_now = fit.games_played();
    ins.games->inc(games_now - games_accounted);
    games_accounted = games_now;

    if (options.trace != nullptr && rank == 0) {
      // Same capture point as the serial engine's hook: after this
      // generation's events applied, before the next one plans.
      TracePoint point;
      point.generation = gen;
      point.nature = nature->save_state();
      if (plan.pc) {
        point.pc = true;
        point.teacher = plan.pc->teacher;
        point.learner = plan.pc->learner;
        point.adopted = adopted;
      }
      if (plan.moran) {
        point.moran = true;
        point.reproducer = pick.reproducer;
        point.dying = pick.dying;
        point.adopted = pick.is_change();
      }
      if (plan.mutation) {
        point.mutated = true;
        point.mutation_target = plan.mutation->target;
      }
      point.table_hash = pop.table_hash();
      options.trace->on_point(point);
    }

    if (options.metrics_stream != nullptr &&
        options.metrics_stream->wants(gen)) {
      // Every rank owns a block of the fitness vector; reduce the block
      // sums so the streamed mean is the global one.
      double local = 0.0;
      for (const double f : fit.block()) local += f;
      const double total =
          comm.reduce_scalar(local, par::Comm::ReduceOp::Sum, 0);
      if (rank == 0) {
        options.metrics_stream->on_generation(
            gen, pop, registry, total / static_cast<double>(config.ssets));
      }
    }

    if (options.progress && rank == 0) {
      const double now = progress_timer.seconds();
      if (now - last_heartbeat_s >= options.progress_interval_seconds) {
        const double rate =
            static_cast<double>(gen + 1 - last_heartbeat_gen) /
            (now - last_heartbeat_s);
        const double eta =
            rate > 0.0
                ? static_cast<double>(config.generations - gen - 1) / rate
                : 0.0;
        // Same line format as the serial MetricsObserver heartbeat.
        char line[160];
        std::snprintf(line, sizeof line,
                      "gen %llu/%llu (%.1f%%) | %.0f gen/s | ETA %.0f s",
                      static_cast<unsigned long long>(gen + 1),
                      static_cast<unsigned long long>(config.generations),
                      100.0 * static_cast<double>(gen + 1) /
                          static_cast<double>(config.generations),
                      rate, eta);
        util::log_info() << line;
        last_heartbeat_s = now;
        last_heartbeat_gen = gen + 1;
      }
    }
  }

  // Collect the final fitness (as of the top of the last generation, the
  // same values the serial engine leaves in its population).
  std::vector<std::byte> mine(fitness_snapshot.size() * sizeof(double));
  std::memcpy(mine.data(), fitness_snapshot.data(), mine.size());
  auto blocks = comm.gather(std::move(mine), 0);

  if (rank == 0) {
    for (std::uint64_t r = 0; r < nranks; ++r) {
      const auto& b = blocks[r];
      std::vector<double> values(b.size() / sizeof(double));
      std::memcpy(values.data(), b.data(), b.size());
      const auto base = static_cast<pop::SSetId>(part.begin(r));
      for (std::size_t k = 0; k < values.size(); ++k) {
        pop.set_fitness(base + static_cast<pop::SSetId>(k), values[k]);
      }
    }
    result_slot = std::move(pop);
  }
}

}  // namespace

ParallelResult run_parallel(const SimConfig& config, int nranks) {
  return run_parallel(config, nranks, ParallelRunOptions{});
}

ParallelResult run_parallel(const SimConfig& config, int nranks,
                            const ParallelRunOptions& options) {
  config.validate();
  EGT_REQUIRE_MSG(nranks >= 1, "need at least one rank");
  EGT_REQUIRE_MSG(static_cast<pop::SSetId>(nranks) <= config.ssets,
                  "more ranks than SSets is not supported by the block "
                  "partition (use the performance simulator for that regime)");

  std::optional<pop::Population> final_pop;
  // One registry per rank: no cross-rank contention inside the timed run.
  std::deque<obs::MetricsRegistry> rank_registries(
      static_cast<std::size_t>(nranks));
  const par::TrafficReport traffic = par::run_ranks_traced(
      nranks, [&](par::Comm& comm) {
        rank_main(comm, config, final_pop,
                  rank_registries[static_cast<std::size_t>(comm.rank())],
                  options);
      });
  EGT_ASSERT(final_pop.has_value());

  obs::MetricsRegistry merged;
  for (const auto& reg : rank_registries) merged.merge(reg);
  merged.gauge("engine.ranks").set(static_cast<double>(nranks));
  if (options.metrics != nullptr) options.metrics->merge(merged);

  ParallelResult result{std::move(*final_pop), traffic, config.generations,
                        merged.snapshot()};
  return result;
}

}  // namespace egt::core
