// Binary wire helpers shared by the checkpoint family (serial engine
// checkpoints, per-rank block checkpoints of the fault-tolerance layer).
//
// Reader validates every access against the blob's bounds and throws
// CheckpointError — a std::runtime_error — with a message naming what was
// being read. Truncated, corrupt or version-mismatched blobs therefore
// fail loudly and never touch memory out of bounds (asserted by negative
// tests under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace egt::core {

/// Any failure to decode a checkpoint-family blob: truncation, bad magic,
/// unsupported version, fingerprint mismatch, trailing bytes.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace wire {

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(const std::vector<std::byte>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    if (!b.empty()) raw(b.data(), b.size());
  }
  void doubles(const double* p, std::size_t n) {
    // n == 0 must not touch p: an empty vector's data() may be null, and
    // memcpy's pointer arguments are declared non-null even for size 0.
    if (n != 0) raw(p, n * sizeof(double));
  }
  std::vector<std::byte> take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto off = out_.size();
    out_.resize(off + n);
    std::memcpy(out_.data() + off, p, n);
  }
  std::vector<std::byte> out_;
};

class Reader {
 public:
  /// `what` names the blob kind in error messages ("checkpoint",
  /// "block checkpoint", ...). The referenced buffer must outlive the
  /// reader.
  explicit Reader(const std::vector<std::byte>& in,
                  std::string what = "checkpoint")
      : in_(in), what_(std::move(what)) {}

  std::uint8_t u8(const char* field) {
    std::uint8_t v;
    raw(&v, sizeof v, field);
    return v;
  }
  std::uint32_t u32(const char* field) {
    std::uint32_t v;
    raw(&v, sizeof v, field);
    return v;
  }
  std::uint64_t u64(const char* field) {
    std::uint64_t v;
    raw(&v, sizeof v, field);
    return v;
  }
  double f64(const char* field) {
    double v;
    raw(&v, sizeof v, field);
    return v;
  }
  std::vector<std::byte> bytes(const char* field) {
    const std::uint32_t n = u32(field);
    // Bounds are checked before any allocation, so a corrupt length field
    // cannot trigger a multi-gigabyte resize.
    require(n <= in_.size() - off_, field);
    std::vector<std::byte> b(in_.begin() + static_cast<std::ptrdiff_t>(off_),
                             in_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
    off_ += n;
    return b;
  }
  std::vector<double> doubles(std::size_t n, const char* field) {
    require(n <= (in_.size() - off_) / sizeof(double), field);
    std::vector<double> v(n);
    if (n != 0) std::memcpy(v.data(), in_.data() + off_, n * sizeof(double));
    off_ += n * sizeof(double);
    return v;
  }

  /// Every byte must be consumed; anything left over means the blob does
  /// not match the expected layout.
  void expect_exhausted() const {
    if (off_ != in_.size()) {
      throw CheckpointError("corrupt " + what_ + ": " +
                            std::to_string(in_.size() - off_) +
                            " trailing byte(s)");
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw CheckpointError("corrupt " + what_ + ": " + why);
  }

 private:
  void require(bool ok, const char* field) const {
    if (!ok) {
      throw CheckpointError("truncated " + what_ + " while reading " + field);
    }
  }
  void raw(void* p, std::size_t n, const char* field) {
    require(n <= in_.size() - off_, field);
    std::memcpy(p, in_.data() + off_, n);
    off_ += n;
  }
  const std::vector<std::byte>& in_;
  std::string what_;
  std::size_t off_ = 0;
};

}  // namespace wire
}  // namespace egt::core
