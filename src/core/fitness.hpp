// Fitness evaluation (the game-dynamics tier).
//
// An SSet's relative fitness for a generation is the sum of its agents'
// payoffs against every other SSet's strategy (paper §IV-A/§IV-D). Each
// ordered pair (i, j) is one agent-vs-strategy game whose RNG stream is
// keyed by (seed, generation-key, i, j), so the value is a pure function of
// the configuration — independent of evaluation order, rank count, or which
// rank computes it.
//
// BlockFitness maintains the fitness of a contiguous row block [begin, end)
// of SSets. The serial engine uses one block covering everything; each
// parallel rank owns one block (memory then scales as rows/rank * ssets,
// mirroring the paper's per-node strategy-space storage).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "game/markov.hpp"
#include "par/threadpool.hpp"
#include "pop/population.hpp"

namespace egt::core {

/// Stateless per-pair payoff evaluation under a SimConfig.
class PairEvaluator {
 public:
  explicit PairEvaluator(const SimConfig& config);

  /// Payoff of SSet `i` playing SSet `j` (i's side), using the stream keyed
  /// by (seed, gen_key, i, j). For FitnessMode::Analytic the value is an
  /// expectation and gen_key is ignored where exact methods apply.
  double payoff(const pop::Population& pop, pop::SSetId i, pop::SSetId j,
                std::uint64_t gen_key) const;

  const game::IpdEngine& engine() const noexcept { return engine_; }

 private:
  SimConfig config_;
  game::IpdEngine engine_;
};

class BlockFitness {
 public:
  /// `graph` restricts game play to neighbours (null = well-mixed, the
  /// paper's population; the engines pass make_interaction_graph output).
  BlockFitness(const SimConfig& config, pop::SSetId row_begin,
               pop::SSetId row_end,
               std::shared_ptr<const pop::InteractionGraph> graph = nullptr);

  pop::SSetId row_begin() const noexcept { return begin_; }
  pop::SSetId row_end() const noexcept { return end_; }

  /// Full evaluation of the block (generation key = current generation for
  /// Sampled, 0 for the cached modes).
  void initialize(const pop::Population& pop);

  /// Called at the top of every generation *before* Nature acts.
  /// Sampled mode re-plays all games with this generation's streams; the
  /// cached modes are no-ops here.
  void begin_generation(const pop::Population& pop, std::uint64_t generation);

  /// Called after SSet `k` changed strategy in `generation`. Cached modes
  /// refresh row k (if owned) and every owned entry against k.
  void strategy_changed(pop::SSetId k, const pop::Population& pop,
                        std::uint64_t generation);

  /// Fitness of an owned SSet.
  double fitness(pop::SSetId i) const;

  /// Fitness of the whole block, indexed by (i - row_begin).
  std::span<const double> block() const noexcept { return fitness_; }

  /// Cached payoff matrix (rows x ssets, cached modes only; empty for
  /// Sampled). Exposed so the ft layer can checkpoint a block's full
  /// evaluation state.
  std::span<const double> payoff_matrix() const noexcept { return matrix_; }

  /// Recovery fast path (cached modes only): adopt a previously computed
  /// block state instead of re-evaluating. `fitness` must have one entry
  /// per owned row and `matrix` rows x ssets entries. The values must come
  /// from a block computed over the same population — the ft layer
  /// guarantees this with a population hash check.
  void restore_state(std::vector<double> fitness, std::vector<double> matrix);

  /// Games played (sampled) or pairs evaluated (analytic) so far — work
  /// accounting used by tests and the ablation bench.
  std::uint64_t pairs_evaluated() const noexcept { return pairs_; }

 private:
  bool cached() const noexcept {
    return config_.fitness_mode != FitnessMode::Sampled;
  }
  bool structured() const noexcept {
    return graph_ != nullptr && !graph_->is_complete();
  }
  double row_scale(pop::SSetId i) const noexcept;
  void recompute_row(pop::SSetId i, const pop::Population& pop,
                     std::uint64_t gen_key);

  SimConfig config_;
  PairEvaluator eval_;
  std::shared_ptr<const pop::InteractionGraph> graph_;
  pop::SSetId begin_;
  pop::SSetId end_;
  std::vector<double> fitness_;         // per owned row (scaled sums)
  std::vector<double> matrix_;          // cached modes: rows x ssets payoffs
  std::vector<double> row_scratch_;     // agent-tier evaluation buffer
  std::unique_ptr<par::ThreadPool> agent_pool_;  // paper's second tier
  mutable std::uint64_t pairs_ = 0;
};

}  // namespace egt::core
