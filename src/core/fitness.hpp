// Fitness evaluation (the game-dynamics tier).
//
// An SSet's relative fitness for a generation is the sum of its agents'
// payoffs against every other SSet's strategy (paper §IV-A/§IV-D). Each
// ordered pair (i, j) is one agent-vs-strategy game whose RNG stream is
// keyed by (seed, generation-key, i, j), so the value is a pure function of
// the configuration — independent of evaluation order, rank count, or which
// rank computes it.
//
// BlockFitness maintains the fitness of a contiguous row block [begin, end)
// of SSets. The serial engine uses one block covering everything; each
// parallel rank owns one block (memory then scales as rows/rank * ssets,
// mirroring the paper's per-node strategy-space storage).
//
// Two orthogonal accelerations sit on top of the brute-force block:
//
//  * Strategy-interned dedup (config.dedup, Analytic mode): whenever the
//    pairwise payoff is a *pure function of the strategy pair* — the
//    dedup-eligibility rule, satisfied exactly where an exact method
//    applies (deterministic pure pair via exact_pure_game, or memory-one
//    via expected_game_mem1) — the engine plays one game per unique
//    (class_i, class_j) from the population's interned class table and
//    reuses the value for every SSet pair in those classes: O(u^2) games
//    for u unique strategies instead of O(ssets^2). Row sums still walk
//    every j in fixed order over the cached values, so fitness, matrix and
//    trajectories are bit-identical to brute force; only games_played
//    drops. Pairs whose payoff is (i, j)-keyed (Sampled/SampledFrozen
//    streams, the Analytic fall-through for stochastic memory>=2) are
//    never deduplicated.
//
//  * SSet-row tier (config.sset_threads): initialize / begin_generation
//    evaluate independent rows concurrently on a par::ThreadPool; each
//    row's sum keeps its fixed j order, so results stay bit-identical for
//    any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "game/batch.hpp"
#include "game/markov.hpp"
#include "game/spec/chain.hpp"
#include "obs/metrics.hpp"
#include "par/threadpool.hpp"
#include "pop/population.hpp"

namespace egt::core {

/// Stateless per-pair payoff evaluation under a SimConfig.
class PairEvaluator {
 public:
  explicit PairEvaluator(const SimConfig& config);

  /// Which kernel evaluates a strategy pair (the DESIGN.md §12 dispatch
  /// rules). Everything except SampledStream is a pure function of the
  /// strategy pair — the dedup-eligibility rule.
  enum class Route {
    NWaySpec,       ///< m-action spec chain (spec::requires_spec_chain) —
                    ///< never the 2x2 batch kernels
    PureExact,      ///< deterministic pure pair, zero noise: bit-packed
                    ///< cycle walker (batch::exact_pure_game_fast)
    Mem1Markov,     ///< memory-one analytic: SoA batch kernel
                    ///< (batch::expected_totals_mem1, AVX2 or scalar)
    SampledStream,  ///< (gen_key, i, j)-keyed stream play — never
                    ///< deduplicated, never batched
  };
  Route route(const game::Strategy& si,
              const game::Strategy& sj) const noexcept;

  /// Batch twin of pair_payoff for Route::Mem1Markov pairs: out[k] gets
  /// the row-side payoff of the batch's pair k, each bit-identical to
  /// pair_payoff on that pair (lane arithmetic is batch-size independent).
  void mem1_batch_payoffs(const game::batch::Mem1Batch& batch,
                          std::span<double> out) const;

  /// Payoff of SSet `i` playing SSet `j` (i's side), using the stream keyed
  /// by (seed, gen_key, i, j). For FitnessMode::Analytic the value is an
  /// expectation and gen_key is ignored where exact methods apply.
  double payoff(const pop::Population& pop, pop::SSetId i, pop::SSetId j,
                std::uint64_t gen_key) const;

  /// Dedup-eligibility rule: true when payoff(·) for this strategy pair is
  /// a pure function of (si, sj) — an exact method applies in Analytic
  /// mode. Sampled streams (and the Analytic fall-through for stochastic
  /// memory>=2 pairs) are keyed by (gen_key, i, j) and are never eligible.
  bool strategy_pure(const game::Strategy& si,
                     const game::Strategy& sj) const noexcept;

  /// Payoff of a strategy-pure pair (si's side). Must only be called when
  /// strategy_pure(si, sj); returns exactly the value payoff() computes
  /// for any (i, j, gen_key) mapping to these strategies.
  double pair_payoff(const game::Strategy& si, const game::Strategy& sj) const;

  const game::IpdEngine& engine() const noexcept { return engine_; }

 private:
  SimConfig config_;
  game::IpdEngine engine_;
};

class BlockFitness {
 public:
  /// One entry of the exported dedup cache: payoff of content-hash pair
  /// (a, b), ready to be carried by a block checkpoint and re-interned on
  /// restore. Keys are strategy *content* hashes, never class ids — ids
  /// are recycled, content is forever.
  struct DedupEntry {
    std::uint64_t a = 0;  ///< Strategy::hash() of the row strategy
    std::uint64_t b = 0;  ///< Strategy::hash() of the column strategy
    double payoff = 0.0;
  };

  /// `graph` restricts game play to neighbours (null = well-mixed, the
  /// paper's population; the engines pass make_interaction_graph output).
  /// `metrics`, when given, receives the cold-path "fitness.*" counters
  /// (dedup cache inserts/prunes, state restores); the engines pass their
  /// own — per-rank, per-job — registry so concurrent simulations never
  /// share counters. Must outlive the block.
  BlockFitness(const SimConfig& config, pop::SSetId row_begin,
               pop::SSetId row_end,
               std::shared_ptr<const pop::InteractionGraph> graph = nullptr,
               obs::MetricsRegistry* metrics = nullptr);

  pop::SSetId row_begin() const noexcept { return begin_; }
  pop::SSetId row_end() const noexcept { return end_; }

  /// Full evaluation of the block (generation key = current generation for
  /// Sampled, 0 for the cached modes).
  void initialize(const pop::Population& pop);

  /// Called at the top of every generation *before* Nature acts.
  /// Sampled mode re-plays all games with this generation's streams; the
  /// cached modes are no-ops here.
  void begin_generation(const pop::Population& pop, std::uint64_t generation);

  /// Called after SSet `k` changed strategy in `generation`. Cached modes
  /// refresh row k (if owned) and every owned entry against k.
  void strategy_changed(pop::SSetId k, const pop::Population& pop,
                        std::uint64_t generation);

  /// Fitness of an owned SSet.
  double fitness(pop::SSetId i) const;

  /// Fitness of the whole block, indexed by (i - row_begin).
  std::span<const double> block() const noexcept { return fitness_; }

  /// Cached payoff matrix (rows x ssets, cached modes only; empty for
  /// Sampled). Exposed so the ft layer can checkpoint a block's full
  /// evaluation state.
  std::span<const double> payoff_matrix() const noexcept { return matrix_; }

  /// Recovery fast path (cached modes only): adopt a previously computed
  /// block state instead of re-evaluating. `fitness` must have one entry
  /// per owned row and `matrix` rows x ssets entries. The values must come
  /// from a block computed over the same population — the ft layer
  /// guarantees this with a population hash check. `cache` re-seeds the
  /// dedup class-pair table (ignored when dedup is off) so the restored
  /// block keeps answering strategy changes without replaying class games.
  void restore_state(std::vector<double> fitness, std::vector<double> matrix,
                     std::vector<DedupEntry> cache = {});

  /// The dedup class-pair cache in a deterministic (sorted) order — the
  /// part of a block checkpoint that travels alongside the matrix. Empty
  /// when dedup is off.
  std::vector<DedupEntry> dedup_cache() const;

  /// True when this block deduplicates strategy-pure pairs.
  bool dedup_active() const noexcept { return dedup_; }

  /// Logical ordered pairs evaluated so far — each (i, j) an owned row
  /// sums over counts once, whether its value came from a fresh game or
  /// the dedup cache. This is the counter the serial/parallel equality
  /// tests rely on.
  std::uint64_t pairs_evaluated() const noexcept { return pairs_; }

  /// Games actually played (expected-payoff computations included) —
  /// <= pairs_evaluated(); the gap is the dedup saving.
  std::uint64_t games_played() const noexcept { return games_; }

 private:
  /// Work done by one row evaluation, accumulated thread-locally so the
  /// SSet-row tier never races on the block counters.
  struct Counts {
    std::uint64_t pairs = 0;
    std::uint64_t games = 0;
  };

  bool cached() const noexcept {
    return config_.fitness_mode != FitnessMode::Sampled;
  }
  /// Cached modes keep the rows x ssets payoff matrix — except public
  /// goods, whose fitness is group-pooled, not pairwise (no matrix; a
  /// strategy change recomputes every owned row instead of a column).
  bool pairwise_cached() const noexcept { return cached() && !pgg_; }
  bool structured() const noexcept {
    return graph_ != nullptr && !graph_->is_complete();
  }
  double row_scale(pop::SSetId i) const noexcept;

  /// Public goods group play (GameKind::PublicGoods, DESIGN.md §10).
  /// Groups: structured populations play one group {t} ∪ N(t) per SSet t;
  /// the well-mixed population plays one global group (pgg_k == 0) or the
  /// ssets ring windows {t .. t+k-1 mod n}. Each group's pool earns
  /// r * cost * (sum of member contributions) / |group|, and each member
  /// pays cost per own contribution.
  std::uint32_t pgg_group_count(pop::SSetId i) const noexcept;

  /// Effective contribution rounds of SSet j this generation: the analytic
  /// expectation rounds * p' under Analytic, a Bernoulli(p') sample per
  /// round on the (gen_key, j, j)-keyed stream otherwise (the self-pair
  /// key never collides with the i != j pair-game streams).
  double pgg_contrib(const pop::Population& pop, pop::SSetId j,
                     std::uint64_t gen_key) const;

  /// Row evaluation for the public goods kind: row-local and deterministic
  /// (safe from SSet-pool workers; never touches the pair cache or matrix).
  void recompute_row_pgg(pop::SSetId i, const pop::Population& pop,
                         std::uint64_t gen_key, Counts& counts);

  /// Value of ordered pair (i, j), bit-identical to eval_.payoff. In
  /// dedup mode, strategy-pure pairs are answered from the class-pair
  /// cache (a miss plays the one game and, when `allow_insert`, caches
  /// it — insertion is forbidden from pool workers, which run behind a
  /// prefill instead). `games` counts actual evaluations.
  double pair_value(const pop::Population& pop, pop::SSetId i, pop::SSetId j,
                    std::uint64_t gen_key, std::uint64_t& games,
                    bool allow_insert);

  /// Cache the (cr, cc) payoff if the pair is strategy-pure and missing
  /// (serial; run before handing rows to a pool).
  void prefill_pair(const pop::Population& pop, pop::ClassId cr,
                    pop::ClassId cc);

  /// Prefill every (cr, live class) pair a well-mixed row of class `cr`
  /// can touch (skips a singleton class's unreachable self pair).
  void prefill_class(const pop::Population& pop, pop::ClassId cr);

  /// recompute_row with `nested` set runs inside the SSet-row pool: it
  /// must not touch shared scratch (agent tier) or mutate the cache.
  void recompute_row(pop::SSetId i, const pop::Population& pop,
                     std::uint64_t gen_key, Counts& counts, bool nested);

  /// initialize / begin_generation body: all owned rows, through the
  /// SSet-row pool when configured.
  void evaluate_rows(const pop::Population& pop, std::uint64_t gen_key);

  /// Drop cache entries whose strategies died once the cache outgrows the
  /// live class-pair count (values are pure content functions, so pruning
  /// only ever trades a replay, never correctness).
  void maybe_prune_cache(const pop::Population& pop);

  struct ClassPay {
    double payoff = 0.0;
    std::uint64_t a = 0;  // content hashes kept for pruning / export
    std::uint64_t b = 0;
  };

  SimConfig config_;
  PairEvaluator eval_;
  std::shared_ptr<const pop::InteractionGraph> graph_;
  pop::SSetId begin_;
  pop::SSetId end_;
  bool dedup_ = false;
  bool pgg_ = false;  ///< GameKind::PublicGoods: group-pooled fitness
  /// Analytic binary-game memory-one config: well-mixed non-dedup rows run
  /// through the SoA row batch (one kernel call per row) instead of
  /// per-pair evaluation.
  bool row_batchable_ = false;
  std::vector<double> fitness_;         // per owned row (scaled sums)
  std::vector<double> matrix_;          // cached modes: rows x ssets payoffs
  std::vector<double> row_scratch_;     // agent-tier evaluation buffer
  std::unique_ptr<par::ThreadPool> agent_pool_;  // paper's second tier
  std::unique_ptr<par::ThreadPool> sset_pool_;   // SSet-row tier
  // Dedup class-pair cache: Strategy::pair_key(a, b) → payoff.
  std::unordered_map<std::uint64_t, ClassPay> class_pay_;
  std::uint64_t pairs_ = 0;
  std::uint64_t games_ = 0;
  // Cold-path instrumentation (null when the block runs unobserved). All
  // increments happen on the serial control path (inserts are forbidden
  // from pool workers), so a per-block registry needs no extra locking.
  obs::Counter* ct_cache_inserts_ = nullptr;
  obs::Counter* ct_cache_prunes_ = nullptr;
  obs::Counter* ct_restores_ = nullptr;
};

}  // namespace egt::core
