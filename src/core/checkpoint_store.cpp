#include "core/checkpoint_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace egt::core {

namespace fs = std::filesystem;

void append_crc_footer(std::vector<std::byte>& payload) {
  const std::uint64_t length = payload.size();
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  wire::Writer w;
  w.u64(kCrcFooterMagic);
  w.u64(length);
  w.u32(crc);
  const auto footer = w.take();
  payload.insert(payload.end(), footer.begin(), footer.end());
}

std::vector<std::byte> checked_payload(const std::vector<std::byte>& blob) {
  if (blob.size() < kCrcFooterBytes) {
    throw CheckpointError("corrupt checkpoint blob: shorter than the "
                          "integrity footer (torn write?)");
  }
  const std::size_t payload_size = blob.size() - kCrcFooterBytes;
  const std::vector<std::byte> footer(blob.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              payload_size),
                                      blob.end());
  wire::Reader r(footer, "checkpoint integrity footer");
  if (r.u64("footer magic") != kCrcFooterMagic) {
    r.fail("missing CRC footer (torn or foreign blob)");
  }
  const std::uint64_t length = r.u64("payload length");
  const std::uint32_t crc = r.u32("payload crc");
  r.expect_exhausted();
  if (length != payload_size) {
    throw CheckpointError(
        "corrupt checkpoint blob: footer says " + std::to_string(length) +
        " payload byte(s), file has " + std::to_string(payload_size) +
        " (torn write)");
  }
  if (util::crc32(blob.data(), payload_size) != crc) {
    throw CheckpointError(
        "corrupt checkpoint blob: CRC mismatch (bit flip or torn write)");
  }
  return std::vector<std::byte>(blob.begin(),
                                blob.begin() +
                                    static_cast<std::ptrdiff_t>(payload_size));
}

namespace {

void write_all_or_throw(int fd, const std::byte* data, std::size_t size,
                        const std::string& what) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("failed writing " + what + ": " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::byte>& blob) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot open checkpoint temp file " + tmp + ": " +
                             std::strerror(errno));
  }
  try {
    write_all_or_throw(fd, blob.data(), blob.size(),
                       "checkpoint temp file " + tmp);
    // Durability before visibility: the rename must never publish bytes the
    // disk has not accepted, or a power loss commits a named-but-empty file
    // past the CRC footer's reach.
    if (::fsync(fd) != 0) {
      throw std::runtime_error("failed syncing checkpoint temp file " + tmp +
                               ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("failed committing checkpoint file " + path +
                             ": " + ec.message());
  }
  // Persist the rename itself (the directory entry), not just the data.
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? std::string(".")
                                       : path.substr(0, slash));
}

std::vector<std::byte> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    throw std::runtime_error("cannot open checkpoint file " + path);
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in.good()) {
    throw std::runtime_error("failed reading checkpoint file " + path);
  }
  return blob;
}

std::size_t sweep_tmp_files(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t swept = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() == ".tmp") {
      std::error_code ignored;
      if (fs::remove(entry.path(), ignored)) ++swept;
    }
  }
  return swept;
}

CheckpointDir::CheckpointDir(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep) {
  EGT_REQUIRE_MSG(keep_ >= 1, "checkpoint retention must keep >= 1");
  // Create the directory if it does not exist yet: a graceful-shutdown
  // checkpoint must not be silently lost because the operator pointed
  // --checkpoint-dir at a fresh path. Creation failures surface on the
  // first commit (warn-and-continue there, by contract).
  std::error_code ec;
  fs::create_directories(dir_, ec);
  sweep_tmp_files(dir_);
}

std::string CheckpointDir::file_name(std::uint64_t gen) {
  return "checkpoint_g" + std::to_string(gen) + ".bin";
}

std::string CheckpointDir::path_of(std::uint64_t gen) const {
  return dir_ + "/" + file_name(gen);
}

void CheckpointDir::commit(std::uint64_t gen, std::vector<std::byte> payload) {
  append_crc_footer(payload);
  atomic_write_file(path_of(gen), payload);
  const auto gens = generations();
  if (gens.size() > static_cast<std::size_t>(keep_)) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(keep_) < gens.size();
         ++i) {
      std::error_code ignored;
      fs::remove(path_of(gens[i]), ignored);
    }
  }
}

std::vector<std::uint64_t> CheckpointDir::generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return gens;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    std::uint64_t gen = 0;
    if (std::sscanf(name.c_str(), "checkpoint_g%llu.bin",
                    reinterpret_cast<unsigned long long*>(&gen)) == 1 &&
        name == file_name(gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::optional<CheckpointDir::Loaded> CheckpointDir::newest_intact(
    const std::function<void(std::uint64_t, const std::string&)>& on_corrupt)
    const {
  const auto gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    try {
      return Loaded{*it, checked_payload(read_file_bytes(path_of(*it)))};
    } catch (const std::exception& e) {
      if (on_corrupt) on_corrupt(*it, e.what());
    }
  }
  return std::nullopt;
}

}  // namespace egt::core
