#include "machine/perfsim.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::machine {

double PerfSimulator::bcast_seconds(double bytes, std::uint64_t procs) const {
  if (procs <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(procs)));
  return stages * (spec_.tree_stage_latency_us * 1e-6 +
                   bytes / (spec_.tree_bandwidth_GBs * 1e9));
}

double PerfSimulator::p2p_seconds(double bytes, const Torus3D& torus) const {
  return spec_.p2p_latency_us * 1e-6 +
         torus.average_hops() * spec_.hop_latency_us * 1e-6 +
         bytes / (spec_.link_bandwidth_GBs * 1e9);
}

PerfReport PerfSimulator::simulate(const Workload& work, std::uint64_t procs,
                                   game::LookupMode mode) const {
  EGT_REQUIRE_MSG(procs >= 1, "need at least one processor");
  EGT_REQUIRE_MSG(work.generations >= 1, "need at least one generation");

  const Torus3D torus(procs);
  PerfReport rep;
  rep.procs = procs;
  rep.mapping_penalty = torus.mapping_penalty();

  // -- game-dynamics tier: perfectly local, bounded by the busiest node ----
  const double games_total = work.games_per_generation();
  const double games_per_proc =
      std::ceil(games_total / static_cast<double>(procs));
  const double round_s = cost_.round_seconds(work.memory, mode);
  const double compute_per_gen =
      games_per_proc * static_cast<double>(work.rounds) * round_s;

  // -- population-dynamics tier: event-driven communication ----------------
  const double strategy_bytes =
      work.pure_strategies
          ? static_cast<double>(game::num_states(work.memory)) / 8.0
          : static_cast<double>(game::num_states(work.memory)) * 8.0;

  double comm_total = 0.0;
  double bcast_bytes = 0.0;
  double p2p_bytes = 0.0;
  util::StreamRng rng(work.seed, util::stream_key(0xbeefULL, procs));
  for (std::uint64_t gen = 0; gen < work.generations; ++gen) {
    const bool pc = util::bernoulli(rng, work.pc_rate);
    const bool mut = util::bernoulli(rng, work.mutation_rate);

    // Nature's per-generation plan broadcast (PaperBcast pattern).
    double plan_bytes = 2.0;
    if (pc) plan_bytes += 8.0;
    if (mut) plan_bytes += 8.0 + strategy_bytes;
    comm_total += bcast_seconds(plan_bytes, procs);
    bcast_bytes += plan_bytes * std::max<double>(1.0, std::log2(
                                    static_cast<double>(procs)));

    if (pc) {
      rep.pc_events++;
      if (work.moran_rule) {
        // Moran: the Nature Agent collects the whole fitness vector —
        // (procs-1) messages serialised at the root plus the payload —
        // then broadcasts the (reproducer, dying) pick.
        const double payload = static_cast<double>(work.ssets) * 8.0;
        comm_total += static_cast<double>(procs - 1) *
                          spec_.p2p_latency_us * 1e-6 +
                      payload / (spec_.link_bandwidth_GBs * 1e9);
        p2p_bytes += payload;
        comm_total += bcast_seconds(8.0, procs);
        bcast_bytes += 8.0;
      } else {
        // Two fitness returns to the Nature Agent over the torus, then
        // the one-byte adoption decision broadcast.
        comm_total += 2.0 * p2p_seconds(8.0, torus);
        p2p_bytes += 16.0;
        comm_total += bcast_seconds(1.0, procs);
        bcast_bytes += 1.0;
      }
    }
    if (mut) rep.mutations++;
  }

  const double overhead_total =
      static_cast<double>(work.generations) *
      (spec_.per_generation_overhead_us + work.nature_overhead_us) * 1e-6;

  rep.compute_seconds =
      compute_per_gen * static_cast<double>(work.generations);
  rep.comm_seconds = comm_total;
  rep.overhead_seconds = overhead_total;
  rep.bytes_broadcast = bcast_bytes;
  rep.bytes_p2p = p2p_bytes;
  rep.total_seconds = (rep.compute_seconds + rep.comm_seconds +
                       rep.overhead_seconds) *
                      rep.mapping_penalty;

  // -- feasibility: replicated strategies a node must hold -----------------
  const double owned =
      std::ceil(static_cast<double>(work.ssets) / static_cast<double>(procs));
  const double opponents = std::min<double>(
      static_cast<double>(work.ssets),
      owned * static_cast<double>(work.resolved_games_per_sset()));
  rep.memory_per_node_bytes = (owned + opponents) * strategy_bytes;
  rep.fits_in_memory = rep.memory_per_node_bytes < spec_.memory_per_node_bytes;

  return rep;
}

double strong_scaling_efficiency(const PerfReport& base,
                                 const PerfReport& report) {
  EGT_REQUIRE(base.procs >= 1 && report.procs >= 1);
  const double speedup = base.total_seconds / report.total_seconds;
  const double ideal = static_cast<double>(report.procs) /
                       static_cast<double>(base.procs);
  return speedup / ideal;
}

}  // namespace egt::machine
