// Machine descriptions for the performance simulator.
//
// The paper's experiments ran on IBM Blue Gene/L (validation and small
// scaling, 512 MB/node, 700 MHz PPC440) and Blue Gene/P (large scaling,
// 2 GB/node, 850 MHz PPC450, 3-D torus + collective tree networks). We
// cannot run on those machines, so `egt::machine` models them: compute
// speed is expressed relative to the host this library was calibrated on,
// and the two Blue Gene networks are modelled with latency/bandwidth
// parameters taken from the published system overviews ([33], [35] in the
// paper's bibliography).
#pragma once

#include <string>

namespace egt::machine {

struct MachineSpec {
  std::string name;

  /// Single-core game-kernel slowdown relative to the calibration host
  /// (host = 1.0). A 700 MHz in-order PPC440 is roughly an order of
  /// magnitude slower per core than a modern x86 core on this integer-heavy
  /// kernel.
  double compute_scale = 1.0;

  // -- 3-D torus (point-to-point) -------------------------------------------
  double p2p_latency_us = 3.0;    ///< software + injection overhead
  double hop_latency_us = 0.05;   ///< per-hop through-routing cost
  double link_bandwidth_GBs = 0.175;  ///< per-link payload bandwidth

  // -- collective tree (broadcasts / reductions) -----------------------------
  double tree_stage_latency_us = 1.3;  ///< per tree level
  double tree_bandwidth_GBs = 0.35;

  /// Per-generation software overhead on every node (loop bookkeeping,
  /// progress of the messaging layer), in microseconds.
  double per_generation_overhead_us = 1.0;

  /// Memory per node in bytes (feasibility checks, paper §VI-B.1).
  double memory_per_node_bytes = 512.0 * 1024 * 1024;
};

/// Blue Gene/L: 700 MHz PPC440, 512 MB/node, 175 MB/s torus links.
MachineSpec bluegene_l();

/// Blue Gene/P: 850 MHz PPC450 (quad-core nodes), 2 GB/node, faster
/// networks. The paper runs one MPI process per core.
MachineSpec bluegene_p();

/// The calibration host itself (compute_scale 1, cheap shared-memory
/// "network") — used for sanity checks of the model against real runs.
MachineSpec calibration_host();

MachineSpec spec_by_name(const std::string& name);

}  // namespace egt::machine
