#include "machine/machine.hpp"

#include "util/check.hpp"

namespace egt::machine {

MachineSpec bluegene_l() {
  MachineSpec s;
  s.name = "BlueGene/L";
  // 700 MHz dual-issue in-order PPC440 vs a ~3 GHz out-of-order x86 host:
  // clock ratio ~4.3x, IPC ratio ~3x on branchy integer code.
  s.compute_scale = 13.0;
  s.p2p_latency_us = 3.3;            // measured MPI ping-pong class figure
  s.hop_latency_us = 0.07;
  s.link_bandwidth_GBs = 0.154;      // 175 MB/s raw, ~88% payload
  s.tree_stage_latency_us = 1.6;
  s.tree_bandwidth_GBs = 0.35;
  s.per_generation_overhead_us = 2.0;
  s.memory_per_node_bytes = 512.0 * 1024 * 1024;
  return s;
}

MachineSpec bluegene_p() {
  MachineSpec s;
  s.name = "BlueGene/P";
  s.compute_scale = 10.5;            // 850 MHz PPC450
  s.p2p_latency_us = 2.7;
  s.hop_latency_us = 0.045;
  s.link_bandwidth_GBs = 0.374;      // 425 MB/s raw
  s.tree_stage_latency_us = 1.3;
  s.tree_bandwidth_GBs = 0.7;
  s.per_generation_overhead_us = 1.5;
  s.memory_per_node_bytes = 2.0 * 1024 * 1024 * 1024;
  return s;
}

MachineSpec calibration_host() {
  MachineSpec s;
  s.name = "host";
  s.compute_scale = 1.0;
  s.p2p_latency_us = 0.5;   // shared-memory mailbox handoff
  s.hop_latency_us = 0.0;
  s.link_bandwidth_GBs = 8.0;
  s.tree_stage_latency_us = 0.5;
  s.tree_bandwidth_GBs = 8.0;
  s.per_generation_overhead_us = 0.2;
  s.memory_per_node_bytes = 4.0 * 1024 * 1024 * 1024;
  return s;
}

MachineSpec spec_by_name(const std::string& name) {
  if (name == "bgl" || name == "BlueGene/L") return bluegene_l();
  // "jugene": the 72-rack Juelich BG/P the paper's large runs used.
  if (name == "bgp" || name == "jugene" || name == "BlueGene/P") {
    return bluegene_p();
  }
  if (name == "host") return calibration_host();
  EGT_REQUIRE_MSG(false, "unknown machine spec: " + name);
  return {};
}

}  // namespace egt::machine
