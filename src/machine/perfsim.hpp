// Discrete-event performance simulator of the parallel algorithm.
//
// Replays the per-generation schedule of the parallel engine — local game
// play, Nature's event broadcasts, point-to-point fitness returns — against
// a machine model (machine.hpp) and the measured kernel costs
// (costmodel.hpp), and returns the predicted wall-clock decomposition.
// This is the substitute for the paper's Blue Gene runs (DESIGN.md §2): it
// regenerates Tables VI–VII and Figures 3–7 at full scale, including
// 262,144-processor partitions no laptop can execute.
#pragma once

#include <cstdint>

#include "game/ipd.hpp"
#include "machine/costmodel.hpp"
#include "machine/machine.hpp"
#include "machine/topology.hpp"

namespace egt::machine {

/// What the simulated application runs per generation.
struct Workload {
  int memory = 6;
  std::uint64_t ssets = 1024;
  /// Opponent games each SSet plays per generation. 0 means all-pairs
  /// (ssets - 1), the small-scale-study setting; the large weak-scaling
  /// runs cap it (see EXPERIMENTS.md on the 10^18-agent configuration).
  std::uint64_t games_per_sset = 0;
  std::uint32_t rounds = 200;
  std::uint64_t generations = 1000;
  double pc_rate = 0.01;  ///< the paper's scaling-study setting (§VI-B.1)
  double mutation_rate = 0.05;
  bool pure_strategies = true;
  std::uint64_t seed = 99;
  /// Serialized per-generation Nature-Agent bookkeeping/IO time (µs) on the
  /// critical path. Default 0 (pure message-passing model). The paper's
  /// Table VII numbers imply ~5,000 µs of such overhead (its Table VI
  /// implies none — see EXPERIMENTS.md on this inconsistency); the Fig. 5 /
  /// Table VII benches set it explicitly.
  double nature_overhead_us = 0.0;
  /// Model the Moran update rule instead of pairwise comparison: every
  /// learning event gathers the *whole* fitness vector at the Nature
  /// Agent — the communication blow-up the paper's PC rule avoids
  /// (bench/ablation_update_rules).
  bool moran_rule = false;

  std::uint64_t resolved_games_per_sset() const noexcept {
    return games_per_sset != 0 ? games_per_sset : ssets - 1;
  }
  /// Total games per generation across the population.
  double games_per_generation() const noexcept {
    return static_cast<double>(ssets) *
           static_cast<double>(resolved_games_per_sset());
  }
};

struct PerfReport {
  std::uint64_t procs = 0;
  double total_seconds = 0.0;
  double compute_seconds = 0.0;   // critical-path game play
  double comm_seconds = 0.0;      // broadcasts + p2p on the critical path
  double overhead_seconds = 0.0;  // per-generation software overhead
  std::uint64_t pc_events = 0;
  std::uint64_t mutations = 0;
  double bytes_broadcast = 0.0;
  double bytes_p2p = 0.0;
  double mapping_penalty = 1.0;
  double memory_per_node_bytes = 0.0;
  bool fits_in_memory = true;

  double comm_fraction() const noexcept {
    return total_seconds == 0.0 ? 0.0 : comm_seconds / total_seconds;
  }
};

class PerfSimulator {
 public:
  explicit PerfSimulator(MachineSpec spec,
                         RoundCostTable table = default_round_costs())
      : spec_(std::move(spec)), cost_(table, spec_) {}

  const MachineSpec& spec() const noexcept { return spec_; }

  PerfReport simulate(const Workload& work, std::uint64_t procs,
                      game::LookupMode mode = game::LookupMode::Indexed) const;

  /// Time for a binomial/tree broadcast of `bytes` to `procs` nodes.
  double bcast_seconds(double bytes, std::uint64_t procs) const;

  /// Time for one point-to-point message of `bytes` across an average
  /// distance in the given torus.
  double p2p_seconds(double bytes, const Torus3D& torus) const;

 private:
  MachineSpec spec_;
  CostModel cost_;
};

/// Strong-scaling efficiency of `report` versus a baseline run of the same
/// workload on `base` processors: (T_base * p_base) / (T * p).
double strong_scaling_efficiency(const PerfReport& base,
                                 const PerfReport& report);

}  // namespace egt::machine
