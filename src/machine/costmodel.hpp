// Game-kernel cost model.
//
// The performance simulator needs the cost of one IPD round as a function
// of memory depth and state-lookup mode. Those constants are *measured* by
// running the real game kernel of this library (calibrate_host), then
// scaled to a target machine by its compute_scale. A baked-in default table
// (one calibration run of this repository on its reference host) keeps the
// benches reproducible without a warm-up phase; pass --calibrate to any
// bench to re-measure.
#pragma once

#include <array>
#include <cstdint>

#include "game/ipd.hpp"
#include "machine/machine.hpp"

namespace egt::machine {

/// ns per game round on the calibration host, indexed by memory steps 0..6.
struct RoundCostTable {
  std::array<double, 7> indexed_ns{};
  std::array<double, 7> linear_ns{};

  double ns(int memory, game::LookupMode mode) const noexcept {
    const auto m = static_cast<std::size_t>(memory);
    return mode == game::LookupMode::Indexed ? indexed_ns[m] : linear_ns[m];
  }
};

/// The baked-in reference calibration (see costmodel.cpp for provenance).
RoundCostTable default_round_costs();

/// Measure the real kernel on this host: random pure strategy pairs,
/// `sample_rounds` rounds per memory depth per mode. Takes a few seconds.
RoundCostTable calibrate_host(std::uint64_t sample_rounds = 2'000'000,
                              std::uint64_t seed = 7);

/// Cost model bound to one machine.
class CostModel {
 public:
  CostModel(RoundCostTable table, const MachineSpec& spec)
      : table_(table), scale_(spec.compute_scale) {}

  /// Seconds per game round on the target machine.
  double round_seconds(int memory, game::LookupMode mode) const noexcept {
    return table_.ns(memory, mode) * scale_ * 1e-9;
  }

  const RoundCostTable& table() const noexcept { return table_; }

 private:
  RoundCostTable table_;
  double scale_;
};

/// Bytes a node needs for its replicated strategy table (feasibility
/// checks; the paper had to stop at memory-six on 512 MB BG/L nodes).
double strategy_table_bytes(std::uint64_t ssets, int memory, bool pure);

/// Deepest memory whose replicated strategy table still fits in one node
/// of `spec` (§VI-B.1: "because the Blue Gene/L has only 512 MB of
/// per-node memory, we had to limit our tests to memory-six"). Returns -1
/// if even memory-zero does not fit.
int max_memory_steps(const MachineSpec& spec, std::uint64_t ssets, bool pure);

}  // namespace egt::machine
