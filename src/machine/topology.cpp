#include "machine/topology.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace egt::machine {

namespace {

/// Average distance between two uniformly random points on a ring of n
/// nodes (shortest way around).
double avg_ring_distance(std::uint64_t n) {
  if (n <= 1) return 0.0;
  // Sum of min(d, n-d) over d=0..n-1, divided by n.
  double sum = 0.0;
  for (std::uint64_t d = 0; d < n; ++d) {
    sum += static_cast<double>(std::min(d, n - d));
  }
  return sum / static_cast<double>(n);
}

std::array<std::uint64_t, 3> near_cubic_dims(std::uint64_t procs) {
  EGT_REQUIRE_MSG(procs >= 1, "torus needs at least one node");
  // Prefer the smallest power-of-two box covering `procs` with near-equal
  // power-of-two dims, as the machine's midplane stacking does; fall back
  // to an exact (possibly non-power-of-two) factorisation when procs is
  // itself not a power of two but factors nicely.
  if (std::has_single_bit(procs)) {
    const int bits = std::countr_zero(procs);
    const int bx = (bits + 2) / 3;
    const int by = (bits - bx + 1) / 2;
    const int bz = bits - bx - by;
    return {std::uint64_t{1} << bx, std::uint64_t{1} << by,
            std::uint64_t{1} << bz};
  }
  // Greedy factorisation into three near-equal factors.
  std::uint64_t best[3] = {procs, 1, 1};
  double best_score = static_cast<double>(procs);  // max dim, smaller better
  for (std::uint64_t x = 1; x * x * x <= procs; ++x) {
    if (procs % x != 0) continue;
    const std::uint64_t rest = procs / x;
    for (std::uint64_t y = x; y * y <= rest; ++y) {
      if (rest % y != 0) continue;
      const std::uint64_t z = rest / y;
      const double score = static_cast<double>(z);
      if (score < best_score) {
        best_score = score;
        best[0] = x;
        best[1] = y;
        best[2] = z;
      }
    }
  }
  return {best[0], best[1], best[2]};
}

}  // namespace

Torus3D::Torus3D(std::uint64_t procs) : dims_(near_cubic_dims(procs)) {}

Torus3D::Torus3D(std::uint64_t x, std::uint64_t y, std::uint64_t z)
    : dims_{x, y, z} {
  EGT_REQUIRE(x >= 1 && y >= 1 && z >= 1);
}

double Torus3D::average_hops() const noexcept {
  return avg_ring_distance(dims_[0]) + avg_ring_distance(dims_[1]) +
         avg_ring_distance(dims_[2]);
}

std::uint64_t Torus3D::diameter() const noexcept {
  return dims_[0] / 2 + dims_[1] / 2 + dims_[2] / 2;
}

double Torus3D::bisection_links() const noexcept {
  // Cut across the largest dimension: 2 * (product of the other two) links
  // in each direction (torus wrap doubles the cut).
  const auto mx = std::max({dims_[0], dims_[1], dims_[2]});
  const double others = static_cast<double>(nodes()) / static_cast<double>(mx);
  return 4.0 * others;
}

bool Torus3D::power_of_two_shape() const noexcept {
  return std::has_single_bit(dims_[0]) && std::has_single_bit(dims_[1]) &&
         std::has_single_bit(dims_[2]);
}

double Torus3D::mapping_penalty() const noexcept {
  // Empirically the paper reports ~15 % total degradation for the 72-rack
  // non-power-of-two partition; shapes that are merely slightly oblong get
  // a smaller penalty.
  if (power_of_two_shape()) return 1.0;
  return 1.15;
}

std::string Torus3D::to_string() const {
  std::ostringstream os;
  os << dims_[0] << "x" << dims_[1] << "x" << dims_[2];
  return os.str();
}

}  // namespace egt::machine
