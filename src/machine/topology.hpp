// 3-D torus topology model.
//
// Blue Gene arranges nodes in a 3-D torus; partition shapes are (roughly)
// box-shaped sub-tori. We factor a processor count into three near-equal
// dimensions (preferring powers of two, as the real machine's midplane
// geometry does) and derive average hop distances and the mapping-quality
// penalty the paper observes for non-power-of-two partitions (§VI-D: 15 %
// efficiency degradation at 72 racks / 294,912 processors).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace egt::machine {

class Torus3D {
 public:
  /// Choose dims whose product is >= procs (smallest such box), near-cubic.
  explicit Torus3D(std::uint64_t procs);

  Torus3D(std::uint64_t x, std::uint64_t y, std::uint64_t z);

  std::array<std::uint64_t, 3> dims() const noexcept { return dims_; }
  std::uint64_t nodes() const noexcept { return dims_[0] * dims_[1] * dims_[2]; }

  /// Average shortest-path hop count between two uniformly random nodes
  /// (closed form per dimension: avg ring distance).
  double average_hops() const noexcept;

  /// Network diameter in hops.
  std::uint64_t diameter() const noexcept;

  /// Bisection width in links (both directions), for bandwidth bounds.
  double bisection_links() const noexcept;

  /// True when every dimension is a power of two (the shapes the machine's
  /// partitioning scheme maps perfectly).
  bool power_of_two_shape() const noexcept;

  /// Multiplicative runtime penalty for poor task-to-torus mappings.
  /// 1.0 for power-of-two shapes; matches the paper's observed ~15 %
  /// degradation for the 72-rack (non-power-of-two) partition.
  double mapping_penalty() const noexcept;

  std::string to_string() const;

 private:
  std::array<std::uint64_t, 3> dims_;
};

}  // namespace egt::machine
