#include "machine/costmodel.hpp"

#include "game/strategy.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace egt::machine {

RoundCostTable default_round_costs() {
  // Reference calibration of this repository's kernel (calibrate_host with
  // default arguments) on the development host (x86-64, ~3 GHz). Indexed
  // lookup is nearly flat in memory depth; the paper's linear find_state
  // grows with the state count, which is exactly the growth §VI-B.1 blames
  // for the Table VI runtimes.
  RoundCostTable t;
  t.indexed_ns = {2.77, 2.87, 2.85, 2.80, 3.06, 2.92, 3.09};
  t.linear_ns = {6.11, 6.81, 10.94, 43.03, 72.80, 265.28, 619.31};
  return t;
}

RoundCostTable calibrate_host(std::uint64_t sample_rounds, std::uint64_t seed) {
  RoundCostTable t;
  util::Xoshiro256 rng(seed);
  for (int memory = 0; memory <= game::kMaxMemory; ++memory) {
    // Linear search over 4^n states is slow for large n; shrink the sample
    // so calibration stays interactive while keeping timing noise low.
    const std::uint64_t linear_rounds =
        std::max<std::uint64_t>(20'000, sample_rounds >> (2 * memory));
    for (const auto mode :
         {game::LookupMode::Indexed, game::LookupMode::LinearSearch}) {
      const std::uint64_t want =
          mode == game::LookupMode::Indexed ? sample_rounds : linear_rounds;
      game::IpdParams params;
      params.rounds = 4096;
      const game::IpdEngine engine(memory, params, mode);
      const std::uint64_t games = std::max<std::uint64_t>(1, want / params.rounds);

      // Random pure pairs: the dominant workload of the scaling studies.
      double sink = 0.0;
      util::Timer timer;
      for (std::uint64_t g = 0; g < games; ++g) {
        const auto a = game::PureStrategy::random(memory, rng);
        const auto b = game::PureStrategy::random(memory, rng);
        util::StreamRng stream(seed, util::stream_key(g, memory));
        sink += engine.play(a, b, stream).payoff_a;
      }
      const double ns =
          timer.nanos() / static_cast<double>(games * params.rounds);
      if (sink < 0) std::abort();  // keep `sink` alive
      const auto m = static_cast<std::size_t>(memory);
      if (mode == game::LookupMode::Indexed) {
        t.indexed_ns[m] = ns;
      } else {
        t.linear_ns[m] = ns;
      }
    }
  }
  return t;
}

double strategy_table_bytes(std::uint64_t ssets, int memory, bool pure) {
  const double per_state = pure ? 1.0 / 8.0 : sizeof(double);
  return static_cast<double>(ssets) * game::num_states(memory) * per_state;
}

int max_memory_steps(const MachineSpec& spec, std::uint64_t ssets,
                     bool pure) {
  int best = -1;
  for (int memory = 0; memory <= game::kMaxMemory; ++memory) {
    if (strategy_table_bytes(ssets, memory, pure) <
        spec.memory_per_node_bytes) {
      best = memory;
    }
  }
  return best;
}

}  // namespace egt::machine
