// Population-level statistics: censuses, diversity, cooperation measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pop/population.hpp"

namespace egt::pop {

/// One strategy cluster in a census (exact-identity grouping by hash).
struct CensusEntry {
  std::uint64_t hash = 0;
  std::size_t count = 0;
  SSetId example = 0;  ///< an SSet holding this strategy
};

/// Exact-identity census, sorted by descending count.
std::vector<CensusEntry> census(const Population& pop);

/// Fraction of SSets holding the single most common strategy.
double dominant_fraction(const Population& pop);

/// Shannon entropy (nats) of the strategy distribution.
double strategy_entropy(const Population& pop);

/// Number of distinct strategies present.
std::size_t distinct_strategies(const Population& pop);

/// Mean per-state cooperation probability across the whole table — a cheap
/// proxy for how cooperative the population's rules are.
double mean_coop_probability(const Population& pop);

/// Fraction of SSets whose strategy lies within L2 distance `tol` of the
/// given reference strategy (e.g. WSLS for the Fig. 2 validation).
double fraction_near(const Population& pop, const game::Strategy& reference,
                     double tol);

/// Mean L2 distance between all unordered strategy pairs — a continuous
/// diversity measure (0 = monomorphic) complementing the census entropy.
double mean_pairwise_distance(const Population& pop);

/// Human-readable top-k census block.
std::string format_census(const Population& pop, std::size_t top_k);

}  // namespace egt::pop
