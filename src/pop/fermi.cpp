#include "pop/fermi.hpp"

#include <cmath>

#include "util/check.hpp"

namespace egt::pop {

double fermi_probability(double teacher_payoff, double learner_payoff,
                         double beta) {
  EGT_REQUIRE_MSG(beta >= 0.0, "selection intensity must be non-negative");
  const double x = beta * (teacher_payoff - learner_payoff);
  // Numerically stable logistic: avoid exp overflow for large |x|.
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace egt::pop
