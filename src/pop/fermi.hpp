// The pairwise-comparison (Fermi) imitation rule (paper Eq. 1):
//
//   p = 1 / (1 + exp(-beta * (pi_T - pi_L)))
//
// beta is the intensity of selection: beta -> 0 gives random imitation
// (p -> 1/2), beta -> infinity always adopts the better strategy.
#pragma once

namespace egt::pop {

/// Probability that the learner adopts the teacher's strategy.
double fermi_probability(double teacher_payoff, double learner_payoff,
                         double beta);

}  // namespace egt::pop
