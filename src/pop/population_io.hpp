// Population snapshots on disk: the strategy table in the same wire format
// the runtime broadcasts, so saved populations can seed new runs, feed the
// analysis tools offline, or archive the end state of a long study.
#pragma once

#include <string>

#include "pop/population.hpp"

namespace egt::pop {

/// Binary format: magic, count, then length-prefixed serialized strategies.
/// Fitness values are not persisted (they are derived state).
void save_population(const Population& pop, const std::string& path);

Population load_population(const std::string& path);

}  // namespace egt::pop
