#include "pop/population.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace egt::pop {

Population::Population(std::vector<game::Strategy> strategies)
    : strategies_(std::move(strategies)),
      fitness_(strategies_.size(), 0.0) {
  EGT_REQUIRE_MSG(!strategies_.empty(), "population cannot be empty");
  const int memory = strategies_.front().memory();
  for (const auto& s : strategies_) {
    EGT_REQUIRE_MSG(s.memory() == memory,
                    "all SSets must share one memory depth");
  }
  class_of_.reserve(strategies_.size());
  for (const auto& s : strategies_) class_of_.push_back(intern(s));
}

Population Population::random_pure(SSetId size, int memory,
                                   util::Xoshiro256& rng) {
  std::vector<game::Strategy> strategies;
  strategies.reserve(size);
  for (SSetId i = 0; i < size; ++i) {
    strategies.emplace_back(game::PureStrategy::random(memory, rng));
  }
  return Population(std::move(strategies));
}

Population Population::random_mixed(SSetId size, int memory,
                                    util::Xoshiro256& rng) {
  std::vector<game::Strategy> strategies;
  strategies.reserve(size);
  for (SSetId i = 0; i < size; ++i) {
    strategies.emplace_back(game::MixedStrategy::random(memory, rng));
  }
  return Population(std::move(strategies));
}

Population Population::random_nway(SSetId size, std::uint32_t actions,
                                   bool pure, util::Xoshiro256& rng) {
  std::vector<game::Strategy> strategies;
  strategies.reserve(size);
  for (SSetId i = 0; i < size; ++i) {
    if (pure) {
      strategies.emplace_back(game::NWayStrategy::pure_action(
          actions,
          static_cast<std::uint32_t>(util::uniform_below(rng, actions))));
    } else {
      strategies.emplace_back(game::NWayStrategy::random(actions, rng));
    }
  }
  return Population(std::move(strategies));
}

void Population::set_strategy(SSetId i, game::Strategy s) {
  EGT_REQUIRE(i < size());
  EGT_REQUIRE_MSG(s.memory() == memory(),
                  "strategy memory depth must match the population");
  // Intern before releasing: re-assigning an SSet its current strategy
  // must not free and immediately re-allocate the class slot.
  const ClassId fresh = intern(s);
  release(class_of_[i]);
  class_of_[i] = fresh;
  strategies_[i] = std::move(s);
}

ClassId Population::intern(game::Strategy s) {
  const std::uint64_t h = s.hash();
  auto& chain = by_hash_[h];
  for (ClassId c : chain) {
    if (classes_[c].strategy == s) {
      ++classes_[c].members;
      return c;
    }
  }
  ClassId c;
  if (!free_slots_.empty()) {
    c = free_slots_.back();
    free_slots_.pop_back();
    classes_[c] = StrategyClass{std::move(s), h, 1};
  } else {
    c = static_cast<ClassId>(classes_.size());
    classes_.push_back(StrategyClass{std::move(s), h, 1});
  }
  chain.push_back(c);
  ++live_classes_;
  refresh_mem1(c);
  return c;
}

void Population::refresh_mem1(ClassId c) {
  const auto need = static_cast<std::size_t>(c) + 1;
  if (mem1_valid_.size() < need) {
    mem1_valid_.resize(need, 0);
    mem1_probs_.resize(4 * need, 0.0);
  }
  const game::Strategy& s = classes_[c].strategy;
  if (s.is_nway() || s.memory() != 1) {
    mem1_valid_[c] = 0;
    return;
  }
  for (int o = 0; o < 4; ++o) {
    mem1_probs_[4 * static_cast<std::size_t>(c) + o] =
        s.coop_prob(static_cast<game::State>(o));
  }
  mem1_valid_[c] = 1;
}

void Population::release(ClassId c) {
  StrategyClass& slot = classes_[c];
  EGT_REQUIRE(slot.members > 0);
  if (--slot.members > 0) return;
  auto it = by_hash_.find(slot.hash);
  auto& chain = it->second;
  chain.erase(std::find(chain.begin(), chain.end(), c));
  if (chain.empty()) by_hash_.erase(it);
  slot.strategy = game::Strategy();  // drop the payload of a free slot
  slot.hash = 0;
  free_slots_.push_back(c);
  --live_classes_;
  if (c < mem1_valid_.size()) mem1_valid_[c] = 0;
}

std::uint64_t Population::table_hash() const noexcept {
  std::uint64_t h = util::mix64(size());
  for (const auto& s : strategies_) h = util::mix64(h ^ s.hash());
  return h;
}

}  // namespace egt::pop
