#include "pop/population.hpp"

#include "util/check.hpp"

namespace egt::pop {

Population::Population(std::vector<game::Strategy> strategies)
    : strategies_(std::move(strategies)),
      fitness_(strategies_.size(), 0.0) {
  EGT_REQUIRE_MSG(!strategies_.empty(), "population cannot be empty");
  const int memory = strategies_.front().memory();
  for (const auto& s : strategies_) {
    EGT_REQUIRE_MSG(s.memory() == memory,
                    "all SSets must share one memory depth");
  }
}

Population Population::random_pure(SSetId size, int memory,
                                   util::Xoshiro256& rng) {
  std::vector<game::Strategy> strategies;
  strategies.reserve(size);
  for (SSetId i = 0; i < size; ++i) {
    strategies.emplace_back(game::PureStrategy::random(memory, rng));
  }
  return Population(std::move(strategies));
}

Population Population::random_mixed(SSetId size, int memory,
                                    util::Xoshiro256& rng) {
  std::vector<game::Strategy> strategies;
  strategies.reserve(size);
  for (SSetId i = 0; i < size; ++i) {
    strategies.emplace_back(game::MixedStrategy::random(memory, rng));
  }
  return Population(std::move(strategies));
}

void Population::set_strategy(SSetId i, game::Strategy s) {
  EGT_REQUIRE(i < size());
  EGT_REQUIRE_MSG(s.memory() == memory(),
                  "strategy memory depth must match the population");
  strategies_[i] = std::move(s);
}

std::uint64_t Population::table_hash() const noexcept {
  std::uint64_t h = util::mix64(size());
  for (const auto& s : strategies_) h = util::mix64(h ^ s.hash());
  return h;
}

}  // namespace egt::pop
