#include "pop/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "game/named.hpp"

namespace egt::pop {

std::vector<CensusEntry> census(const Population& pop) {
  std::unordered_map<std::uint64_t, CensusEntry> groups;
  for (SSetId i = 0; i < pop.size(); ++i) {
    const std::uint64_t h = pop.strategy(i).hash();
    auto [it, inserted] = groups.try_emplace(h, CensusEntry{h, 0, i});
    ++it->second.count;
  }
  std::vector<CensusEntry> out;
  out.reserve(groups.size());
  for (const auto& [h, entry] : groups) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count : a.hash < b.hash;
  });
  return out;
}

double dominant_fraction(const Population& pop) {
  const auto c = census(pop);
  return static_cast<double>(c.front().count) / pop.size();
}

double strategy_entropy(const Population& pop) {
  const auto c = census(pop);
  double h = 0.0;
  for (const auto& e : c) {
    const double p = static_cast<double>(e.count) / pop.size();
    h -= p * std::log(p);
  }
  return h;
}

std::size_t distinct_strategies(const Population& pop) {
  return census(pop).size();
}

double mean_coop_probability(const Population& pop) {
  double sum = 0.0;
  std::size_t cells = 0;
  for (SSetId i = 0; i < pop.size(); ++i) {
    const auto& s = pop.strategy(i);
    for (game::State st = 0; st < s.states(); ++st) {
      sum += s.coop_prob(st);
    }
    cells += s.states();
  }
  return cells == 0 ? 0.0 : sum / static_cast<double>(cells);
}

double fraction_near(const Population& pop, const game::Strategy& reference,
                     double tol) {
  const game::MixedStrategy ref = reference.to_mixed();
  std::size_t near = 0;
  for (SSetId i = 0; i < pop.size(); ++i) {
    if (pop.strategy(i).to_mixed().distance(ref) <= tol) ++near;
  }
  return static_cast<double>(near) / pop.size();
}

double mean_pairwise_distance(const Population& pop) {
  if (pop.size() < 2) return 0.0;
  // Convert once; pairwise distances on the cached mixed views.
  std::vector<game::MixedStrategy> mixed;
  mixed.reserve(pop.size());
  for (SSetId i = 0; i < pop.size(); ++i) {
    mixed.push_back(pop.strategy(i).to_mixed());
  }
  double sum = 0.0;
  std::size_t pairs = 0;
  for (SSetId i = 0; i < pop.size(); ++i) {
    for (SSetId j = i + 1; j < pop.size(); ++j) {
      sum += mixed[i].distance(mixed[j]);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

std::string format_census(const Population& pop, std::size_t top_k) {
  const auto c = census(pop);
  std::ostringstream os;
  os << "distinct strategies: " << c.size() << "\n";
  for (std::size_t k = 0; k < std::min(top_k, c.size()); ++k) {
    const auto& e = c[k];
    const auto& strat = pop.strategy(e.example);
    os << "  " << e.count << " SSets (" << 100.0 * e.count / pop.size()
       << "%)";
    if (strat.is_nway() && strat.as_nway().actions() != 2) {
      // Binary named strategies don't apply; show the action mix itself.
      os << "  mix=" << strat.as_nway().to_string();
    } else {
      const auto [name, dist] = game::named::nearest_named(strat);
      os << "  nearest-named=" << name << " (d=" << dist << ")";
    }
    if (strat.is_pure() && strat.states() <= 16) {
      os << "  bits=" << strat.as_pure().to_string();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace egt::pop
