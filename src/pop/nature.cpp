#include "pop/nature.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace egt::pop {

NatureAgent::NatureAgent(const NatureConfig& config)
    : config_(config), rng_(util::mix64(config.seed ^ 0xa076bd6a4f0e5e2bULL)) {
  EGT_REQUIRE_MSG(config.ssets >= 2, "need at least two SSets");
  EGT_REQUIRE(config.memory >= 0 && config.memory <= game::kMaxMemory);
  EGT_REQUIRE(config.pc_rate >= 0.0 && config.pc_rate <= 1.0);
  EGT_REQUIRE(config.mutation_rate >= 0.0 && config.mutation_rate <= 1.0);
  EGT_REQUIRE(config.beta >= 0.0);
}

game::Strategy NatureAgent::random_strategy(SSetId target,
                                            const Population* population) {
  if (config_.actions > 2) {
    // N-way games: memory-0 action distributions (DESIGN.md §10).
    switch (config_.kernel) {
      case MutationKernel::UniformProbs:
        if (config_.space == StrategySpace::Pure) {
          return game::NWayStrategy::pure_action(
              config_.actions,
              static_cast<std::uint32_t>(
                  util::uniform_below(rng_, config_.actions)));
        }
        return game::NWayStrategy::random(config_.actions, rng_);
      case MutationKernel::PureBitFlip: {
        EGT_REQUIRE_MSG(population != nullptr,
                        "PureBitFlip needs the population (local kernel)");
        const game::Strategy& current = population->strategy(target);
        EGT_REQUIRE_MSG(current.is_nway() && current.as_nway().is_degenerate(),
                        "n-way PureBitFlip requires one-hot strategies");
        // Current action -> a uniformly random *different* action.
        std::uint32_t a = 0;
        while (current.as_nway().action_prob(a) != 1.0) ++a;
        const auto shift = 1 + static_cast<std::uint32_t>(util::uniform_below(
                                   rng_, config_.actions - 1));
        return game::NWayStrategy::pure_action(config_.actions,
                                               (a + shift) % config_.actions);
      }
      default:
        EGT_REQUIRE_MSG(false, "mutation kernel unsupported for n-way games");
    }
  }
  switch (config_.kernel) {
    case MutationKernel::UniformProbs:
      if (config_.space == StrategySpace::Pure) {
        return game::PureStrategy::random(config_.memory, rng_);
      }
      return game::MixedStrategy::random(config_.memory, rng_);

    case MutationKernel::UShapedProbs: {
      EGT_REQUIRE_MSG(config_.space == StrategySpace::Mixed,
                      "UShapedProbs is a mixed-space kernel");
      // Arcsine inverse CDF: p = sin^2(pi * u / 2).
      game::MixedStrategy m(config_.memory, 0.0);
      for (game::State s = 0; s < m.states(); ++s) {
        const double u = util::uniform01(rng_);
        const double x = std::sin(0.5 * 3.14159265358979323846 * u);
        m.set_coop_prob(s, x * x);
      }
      return m;
    }

    case MutationKernel::PureBitFlip: {
      EGT_REQUIRE_MSG(population != nullptr,
                      "PureBitFlip needs the population (local kernel)");
      const game::Strategy& current = population->strategy(target);
      EGT_REQUIRE_MSG(current.is_pure(),
                      "PureBitFlip requires a pure-strategy population");
      game::PureStrategy mutant = current.as_pure();
      for (std::uint32_t k = 0; k < config_.bitflip_bits; ++k) {
        mutant.table().flip(static_cast<std::size_t>(
            util::uniform_below(rng_, mutant.states())));
      }
      return mutant;
    }

    case MutationKernel::MixedGaussian: {
      EGT_REQUIRE_MSG(population != nullptr,
                      "MixedGaussian needs the population (local kernel)");
      game::MixedStrategy mutant = population->strategy(target).to_mixed();
      for (game::State s = 0; s < mutant.states(); ++s) {
        const double p = mutant.coop_prob(s) +
                         config_.gaussian_sigma * util::normal(rng_);
        mutant.set_coop_prob(s, std::clamp(p, 0.0, 1.0));
      }
      return mutant;
    }
  }
  EGT_REQUIRE_MSG(false, "unknown mutation kernel");
  return game::Strategy{};
}

GenerationPlan NatureAgent::plan_generation(const Population* population) {
  GenerationPlan plan;
  ++planned_;

  if (config_.update_rule == UpdateRule::Moran) {
    plan.moran = util::bernoulli(rng_, config_.pc_rate);
  } else if (util::bernoulli(rng_, config_.pc_rate)) {
    GenerationPlan::Pc pc;
    if (config_.graph != nullptr && !config_.graph->is_complete()) {
      // Structured population: imitate a neighbour.
      pc.learner =
          static_cast<SSetId>(util::uniform_below(rng_, config_.ssets));
      const auto ns = config_.graph->neighbors(pc.learner);
      pc.teacher = ns[util::uniform_below(rng_, ns.size())];
    } else {
      pc.teacher =
          static_cast<SSetId>(util::uniform_below(rng_, config_.ssets));
      do {
        pc.learner =
            static_cast<SSetId>(util::uniform_below(rng_, config_.ssets));
      } while (pc.learner == pc.teacher);
    }
    plan.pc = pc;
  }

  if (util::bernoulli(rng_, config_.mutation_rate)) {
    GenerationPlan::Mutation mut;
    mut.target = static_cast<SSetId>(util::uniform_below(rng_, config_.ssets));
    mut.strategy = random_strategy(mut.target, population);
    plan.mutation = std::move(mut);
  }
  return plan;
}

MoranPick NatureAgent::select_moran(std::span<const double> fitness) {
  EGT_REQUIRE_MSG(fitness.size() == config_.ssets,
                  "Moran selection needs the full fitness vector");
  // Softmax weights, stabilised by the maximum.
  double max_f = fitness[0];
  for (double f : fitness) max_f = std::max(max_f, f);
  double total = 0.0;
  for (double f : fitness) total += std::exp(config_.beta * (f - max_f));

  MoranPick pick;
  const double target = util::uniform01(rng_) * total;
  double acc = 0.0;
  pick.reproducer = config_.ssets - 1;  // numeric safety net
  for (SSetId i = 0; i < config_.ssets; ++i) {
    acc += std::exp(config_.beta * (fitness[i] - max_f));
    if (acc >= target) {
      pick.reproducer = i;
      break;
    }
  }
  pick.dying = static_cast<SSetId>(util::uniform_below(rng_, config_.ssets));
  return pick;
}

bool NatureAgent::decide_adoption(double teacher_fitness,
                                  double learner_fitness) {
  const double p =
      fermi_probability(teacher_fitness, learner_fitness, config_.beta);
  const bool roll = util::bernoulli(rng_, p);
  if (config_.require_teacher_better && !(teacher_fitness > learner_fitness)) {
    return false;  // the RNG draw above is still consumed, keeping streams aligned
  }
  return roll;
}

}  // namespace egt::pop
