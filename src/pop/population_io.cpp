#include "pop/population_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/check.hpp"

namespace egt::pop {

namespace {
constexpr std::uint64_t kMagic = 0x454754504f503031ULL;  // "EGTPOP01"
}

void save_population(const Population& pop, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  EGT_REQUIRE_MSG(out.good(), "cannot open population file " + path);
  auto put = [&](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put(&kMagic, sizeof kMagic);
  const std::uint32_t count = pop.size();
  put(&count, sizeof count);
  for (SSetId i = 0; i < pop.size(); ++i) {
    const auto bytes = pop.strategy(i).serialize();
    const std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
    put(&len, sizeof len);
    put(bytes.data(), bytes.size());
  }
  EGT_REQUIRE_MSG(out.good(), "failed writing population file " + path);
}

Population load_population(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EGT_REQUIRE_MSG(in.good(), "cannot open population file " + path);
  auto get = [&](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    EGT_REQUIRE_MSG(in.good(), "truncated population file " + path);
  };
  std::uint64_t magic = 0;
  get(&magic, sizeof magic);
  EGT_REQUIRE_MSG(magic == kMagic, "not an egtsim population file");
  std::uint32_t count = 0;
  get(&count, sizeof count);
  EGT_REQUIRE_MSG(count >= 1, "empty population file");
  std::vector<game::Strategy> strategies;
  strategies.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    get(&len, sizeof len);
    EGT_REQUIRE_MSG(len >= 2 && len <= (1u << 20),
                    "implausible strategy record length");
    std::vector<std::byte> bytes(len);
    get(bytes.data(), len);
    strategies.push_back(game::Strategy::deserialize(bytes));
  }
  return Population(std::move(strategies));
}

}  // namespace egt::pop
