// The Nature Agent (paper §IV-E): the master that schedules pairwise
// comparison (PC) learning and random mutation, decides adoptions via the
// Fermi rule, and bookkeeps strategy assignments.
//
// The agent is deliberately engine-agnostic: both the serial reference
// engine and rank 0 of the parallel engine drive the *same* NatureAgent
// with the same seed, which is what makes their trajectories bit-identical.
//
// Event draw order per generation (fixed contract, relied on by tests):
//   1. u ~ U[0,1): PC event iff u < pc_rate; if so, draw teacher, then
//      learner (resampled until distinct).
//   2. u ~ U[0,1): mutation event iff u < mutation_rate; if so, draw the
//      target SSet, then generate the replacement strategy.
//   3. If a PC event fired: one more u for the Fermi adoption decision
//      (drawn in decide_adoption, after fitness values are known).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "game/strategy.hpp"
#include "pop/fermi.hpp"
#include "pop/graph.hpp"
#include "pop/population.hpp"
#include "util/rng.hpp"

namespace egt::pop {

/// What kind of strategies mutation introduces.
enum class StrategySpace { Pure, Mixed };

/// How mutation generates the replacement strategy.
enum class MutationKernel {
  /// Fresh strategy, each cooperation probability uniform on [0, 1]
  /// (pure space: uniform random bits) — the paper's gen_new_strat().
  UniformProbs,
  /// Fresh strategy with U-shaped (arcsine / Beta(1/2,1/2)) probabilities:
  /// mass near 0 and 1, so near-deterministic rules like WSLS are actually
  /// reachable — the distribution Nowak & Sigmund (1993) used for the
  /// study the paper's Fig. 2 validates against. Mixed space only.
  UShapedProbs,
  /// Local search in pure space: flip `bitflip_bits` random positions of
  /// the target SSet's *current* strategy.
  PureBitFlip,
  /// Local search in mixed space: add N(0, gaussian_sigma) to each
  /// cooperation probability of the current strategy, clamped to [0, 1].
  MixedGaussian,
};

/// True when the kernel derives the mutant from the current strategy (the
/// planner then needs to see the population).
constexpr bool kernel_is_local(MutationKernel k) noexcept {
  return k == MutationKernel::PureBitFlip ||
         k == MutationKernel::MixedGaussian;
}

/// How the population learns.
enum class UpdateRule {
  /// The paper's rule: compare two SSets, Fermi adoption (needs exactly
  /// two fitness values per event — the communication-friendly choice).
  PairwiseComparison,
  /// Exponential Moran birth-death: one SSet reproduces with probability
  /// proportional to exp(beta * fitness) and its strategy replaces a
  /// uniformly chosen SSet. Needs the *whole* fitness vector per event —
  /// the ablation showing why the paper's Nature Agent exchanges pairs.
  Moran,
};

struct NatureConfig {
  SSetId ssets = 0;
  int memory = 1;
  /// Action count of the game. 2 = the classic binary machinery (pure /
  /// mixed memory-n strategies); >= 3 = n-way games, where mutation
  /// generates NWayStrategy values (memory must be 0, and only the
  /// UniformProbs / PureBitFlip kernels apply: one-hot actions in the pure
  /// space, Dirichlet(1) simplex points in the mixed space).
  std::uint32_t actions = 2;
  double pc_rate = 0.1;         ///< paper §V-C (0.01 in the scaling studies)
  double mutation_rate = 0.05;  ///< paper's mu
  double beta = 1.0;            ///< Fermi selection intensity
  /// Paper's pseudocode only lets learners adopt strictly better teachers;
  /// the cited PC literature applies the Fermi probability unconditionally.
  /// Default follows the literature; set true for the paper's gate.
  bool require_teacher_better = false;
  StrategySpace space = StrategySpace::Pure;
  UpdateRule update_rule = UpdateRule::PairwiseComparison;
  MutationKernel kernel = MutationKernel::UniformProbs;
  /// PureBitFlip: positions flipped per mutation.
  std::uint32_t bitflip_bits = 1;
  /// MixedGaussian: perturbation standard deviation.
  double gaussian_sigma = 0.1;
  /// Population structure. Null or complete = well-mixed (the paper):
  /// teacher and learner drawn uniformly. Structured: the learner is drawn
  /// uniformly and the teacher uniformly among its neighbours.
  std::shared_ptr<const InteractionGraph> graph;
  std::uint64_t seed = 1234;
};

/// The events Nature scheduled for one generation.
struct GenerationPlan {
  struct Pc {
    SSetId teacher = 0;
    SSetId learner = 0;
  };
  std::optional<Pc> pc;

  /// A Moran birth-death event is due this generation (UpdateRule::Moran):
  /// the actors are only resolved once the fitness vector is available
  /// (select_moran).
  bool moran = false;

  struct Mutation {
    SSetId target = 0;
    game::Strategy strategy;
  };
  std::optional<Mutation> mutation;

  bool quiet() const noexcept { return !pc && !moran && !mutation; }
};

/// Resolution of a Moran event.
struct MoranPick {
  SSetId reproducer = 0;
  SSetId dying = 0;
  bool is_change() const noexcept { return reproducer != dying; }
};

class NatureAgent {
 public:
  explicit NatureAgent(const NatureConfig& config);

  const NatureConfig& config() const noexcept { return config_; }

  /// Draw the event schedule of the next generation (see draw order above).
  /// Local mutation kernels (kernel_is_local) derive the mutant from the
  /// target's current strategy and therefore need the population; global
  /// kernels ignore it.
  GenerationPlan plan_generation(const Population* population = nullptr);

  /// Fermi adoption decision for a planned PC event. Must be called exactly
  /// once per planned PC (it consumes one RNG draw).
  bool decide_adoption(double teacher_fitness, double learner_fitness);

  /// Resolve a planned Moran event: reproducer sampled with weight
  /// exp(beta * fitness) (numerically stabilised softmax), dying SSet
  /// uniform. Consumes exactly two RNG draws. `fitness` must cover the
  /// whole population in SSet order.
  MoranPick select_moran(std::span<const double> fitness);

  /// Generations planned so far.
  std::uint64_t generations_planned() const noexcept { return planned_; }

  /// Checkpoint support: the agent's full mutable state.
  struct State {
    util::Xoshiro256::StateArray rng;
    std::uint64_t planned = 0;
  };
  State save_state() const noexcept { return {rng_.state(), planned_}; }
  void restore_state(const State& s) noexcept {
    rng_.set_state(s.rng);
    planned_ = s.planned;
  }

 private:
  game::Strategy random_strategy(SSetId target, const Population* population);

  NatureConfig config_;
  util::Xoshiro256 rng_;
  std::uint64_t planned_ = 0;
};

}  // namespace egt::pop
