// Interaction structure of the population.
//
// The paper's population is well-mixed: every SSet plays every other and
// Nature compares uniformly random pairs. Structured populations — where
// agents only interact with graph neighbours — are the classic extension
// (Nowak & May's spatial games; the paper cites a spatialised-PD code [30]
// and motivates broader scopes). InteractionGraph abstracts that choice:
// game play sums over neighbours, and pairwise-comparison learning picks
// the teacher among the learner's neighbours.
//
// Graphs are built deterministically from (kind, parameters), so every
// rank of the parallel engine reconstructs the identical structure from
// the SimConfig alone — no topology needs to be communicated.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pop/population.hpp"

namespace egt::pop {

class InteractionGraph {
 public:
  /// Well-mixed population: everyone neighbours everyone (the paper).
  static InteractionGraph complete(SSetId n);

  /// Ring of n nodes, each linked to the k nearest neighbours per side
  /// (degree 2k). k >= 1, 2k < n.
  static InteractionGraph ring(SSetId n, std::uint32_t k);

  /// Width x height torus lattice. `moore` selects the 8-neighbourhood;
  /// otherwise von Neumann (4-neighbourhood). Both dimensions >= 3 so
  /// neighbours are distinct.
  static InteractionGraph lattice(SSetId width, SSetId height, bool moore);

  SSetId nodes() const noexcept { return nodes_; }

  /// Complete graphs are represented implicitly (no adjacency storage):
  /// callers take the everyone-but-self fast path, which is also what
  /// keeps well-mixed trajectories identical to the unstructured engine.
  bool is_complete() const noexcept { return complete_; }

  std::uint32_t degree(SSetId i) const;

  /// Neighbours of node i, ascending ids. Only for structured graphs;
  /// complete graphs answer via is_complete()/degree().
  std::span<const SSetId> neighbors(SSetId i) const;

  bool are_neighbors(SSetId a, SSetId b) const;

  /// Total undirected edges.
  std::uint64_t edges() const noexcept;

  std::string to_string() const;

 private:
  InteractionGraph() = default;
  void build_from_lists(const std::vector<std::vector<SSetId>>& adj);

  bool complete_ = false;
  SSetId nodes_ = 0;
  std::string label_;
  std::vector<std::uint64_t> offsets_;  // CSR offsets (structured graphs)
  std::vector<SSetId> adjacency_;       // CSR neighbour lists (sorted)
};

}  // namespace egt::pop
