#include "pop/assignment.hpp"

#include "util/check.hpp"

namespace egt::pop {

OpponentAssignment::OpponentAssignment(SSetId ssets,
                                       std::uint32_t agents_per_sset)
    : ssets_(ssets), agents_(agents_per_sset) {
  EGT_REQUIRE_MSG(ssets >= 2, "need at least two SSets");
  EGT_REQUIRE_MSG(agents_per_sset >= 1, "need at least one agent per SSet");
}

std::uint32_t OpponentAssignment::games_for_agent(std::uint32_t agent) const {
  EGT_REQUIRE(agent < agents_);
  const std::uint32_t n = opponents_per_sset();
  const std::uint32_t q = n / agents_;
  const std::uint32_t r = n % agents_;
  return q + (agent < r ? 1 : 0);
}

std::vector<SSetId> OpponentAssignment::opponents_of(
    SSetId sset, std::uint32_t agent) const {
  EGT_REQUIRE(sset < ssets_);
  EGT_REQUIRE(agent < agents_);
  const std::uint32_t n = opponents_per_sset();
  const std::uint32_t q = n / agents_;
  const std::uint32_t r = n % agents_;
  // Contiguous block of the opponent list, same arithmetic as
  // par::BlockPartition (early agents absorb the remainder).
  const std::uint32_t begin = agent * q + (agent < r ? agent : r);
  const std::uint32_t count = q + (agent < r ? 1 : 0);
  std::vector<SSetId> out;
  out.reserve(count);
  for (std::uint32_t k = begin; k < begin + count; ++k) {
    out.push_back(kth_opponent(sset, k));
  }
  return out;
}

std::uint32_t OpponentAssignment::agent_for_opponent(SSetId sset,
                                                     SSetId opponent) const {
  EGT_REQUIRE(sset < ssets_ && opponent < ssets_);
  EGT_REQUIRE_MSG(sset != opponent, "SSets do not play themselves");
  const std::uint32_t k = opponent < sset ? opponent : opponent - 1;
  const std::uint32_t n = opponents_per_sset();
  const std::uint32_t q = n / agents_;
  const std::uint32_t r = n % agents_;
  if (q == 0) return k;  // more agents than opponents: one game each
  const std::uint32_t big = r * (q + 1);
  if (k < big) return k / (q + 1);
  return r + (k - big) / q;
}

}  // namespace egt::pop
