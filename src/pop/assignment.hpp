// Opponent assignment inside an SSet (paper §IV-A, §V-A).
//
// Within each SSet the fitness of the assigned strategy must be measured
// against every other SSet's strategy. The SSet's `a` agents split that
// opponent list among themselves — "each agent is assigned s/a opposing
// SSets to play against" — purely from arithmetic on (rank, agent index),
// with no communicated tables ("each node can calculate its position
// within an SSet and its subsequent opponent strategies individually",
// §V). The paper's production setting is a = s, one game per agent.
#pragma once

#include <cstdint>
#include <vector>

#include "pop/population.hpp"

namespace egt::pop {

class OpponentAssignment {
 public:
  /// `ssets` SSets, `agents_per_sset` agents in each.
  OpponentAssignment(SSetId ssets, std::uint32_t agents_per_sset);

  SSetId ssets() const noexcept { return ssets_; }
  std::uint32_t agents_per_sset() const noexcept { return agents_; }

  /// Opponents the whole SSet must cover: every other SSet, ordered by id.
  std::uint32_t opponents_per_sset() const noexcept { return ssets_ - 1; }

  /// Number of games agent `agent` of any SSet plays per generation
  /// (either floor or ceil of (s-1)/a; early agents take the remainder).
  std::uint32_t games_for_agent(std::uint32_t agent) const;

  /// The opponent SSets agent `agent` of SSet `sset` plays, in play order.
  std::vector<SSetId> opponents_of(SSetId sset, std::uint32_t agent) const;

  /// Which of `sset`'s agents plays opponent `opponent`.
  std::uint32_t agent_for_opponent(SSetId sset, SSetId opponent) const;

  /// Total two-player games per generation across the population:
  /// ssets * (ssets - 1) ordered games.
  std::uint64_t games_per_generation() const noexcept {
    return static_cast<std::uint64_t>(ssets_) * opponents_per_sset();
  }

  /// Agents in the whole population (Table VIII's numerator when a = s).
  std::uint64_t total_agents() const noexcept {
    return static_cast<std::uint64_t>(ssets_) * agents_;
  }

 private:
  // The k-th opponent (0-based) of SSet `sset`: all other ids in order.
  SSetId kth_opponent(SSetId sset, std::uint32_t k) const noexcept {
    return k < sset ? k : k + 1;
  }

  SSetId ssets_;
  std::uint32_t agents_;
};

}  // namespace egt::pop
