#include "pop/graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace egt::pop {

InteractionGraph InteractionGraph::complete(SSetId n) {
  EGT_REQUIRE_MSG(n >= 2, "need at least two SSets");
  InteractionGraph g;
  g.complete_ = true;
  g.nodes_ = n;
  g.label_ = "complete(" + std::to_string(n) + ")";
  return g;
}

InteractionGraph InteractionGraph::ring(SSetId n, std::uint32_t k) {
  EGT_REQUIRE_MSG(n >= 3, "ring needs at least three nodes");
  EGT_REQUIRE_MSG(k >= 1 && 2 * k < n,
                  "ring neighbourhood must satisfy 1 <= k and 2k < n");
  std::vector<std::vector<SSetId>> adj(n);
  for (SSetId i = 0; i < n; ++i) {
    for (std::uint32_t d = 1; d <= k; ++d) {
      adj[i].push_back((i + d) % n);
      adj[i].push_back((i + n - d) % n);
    }
  }
  InteractionGraph g;
  g.nodes_ = n;
  g.label_ = "ring(" + std::to_string(n) + ", k=" + std::to_string(k) + ")";
  g.build_from_lists(adj);
  return g;
}

InteractionGraph InteractionGraph::lattice(SSetId width, SSetId height,
                                           bool moore) {
  EGT_REQUIRE_MSG(width >= 3 && height >= 3,
                  "lattice dimensions must be at least 3");
  const SSetId n = width * height;
  std::vector<std::vector<SSetId>> adj(n);
  auto id = [&](SSetId x, SSetId y) { return y * width + x; };
  for (SSetId y = 0; y < height; ++y) {
    for (SSetId x = 0; x < width; ++x) {
      const SSetId xm = (x + width - 1) % width;
      const SSetId xp = (x + 1) % width;
      const SSetId ym = (y + height - 1) % height;
      const SSetId yp = (y + 1) % height;
      auto& list = adj[id(x, y)];
      list = {id(xm, y), id(xp, y), id(x, ym), id(x, yp)};
      if (moore) {
        list.push_back(id(xm, ym));
        list.push_back(id(xp, ym));
        list.push_back(id(xm, yp));
        list.push_back(id(xp, yp));
      }
    }
  }
  InteractionGraph g;
  g.nodes_ = n;
  std::ostringstream os;
  os << "lattice(" << width << "x" << height << ", "
     << (moore ? "moore" : "von-neumann") << ")";
  g.label_ = os.str();
  g.build_from_lists(adj);
  return g;
}

void InteractionGraph::build_from_lists(
    const std::vector<std::vector<SSetId>>& adj) {
  offsets_.assign(adj.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    total += adj[i].size();
    offsets_[i + 1] = total;
  }
  adjacency_.reserve(total);
  for (const auto& list : adj) {
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    EGT_ASSERT(std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end());
    adjacency_.insert(adjacency_.end(), sorted.begin(), sorted.end());
  }
}

std::uint32_t InteractionGraph::degree(SSetId i) const {
  EGT_REQUIRE(i < nodes_);
  if (complete_) return nodes_ - 1;
  return static_cast<std::uint32_t>(offsets_[i + 1] - offsets_[i]);
}

std::span<const SSetId> InteractionGraph::neighbors(SSetId i) const {
  EGT_REQUIRE(i < nodes_);
  EGT_REQUIRE_MSG(!complete_,
                  "complete graphs have implicit neighbours; use "
                  "is_complete()/degree()");
  return {adjacency_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

bool InteractionGraph::are_neighbors(SSetId a, SSetId b) const {
  EGT_REQUIRE(a < nodes_ && b < nodes_);
  if (a == b) return false;
  if (complete_) return true;
  const auto ns = neighbors(a);
  return std::binary_search(ns.begin(), ns.end(), b);
}

std::uint64_t InteractionGraph::edges() const noexcept {
  if (complete_) {
    return static_cast<std::uint64_t>(nodes_) * (nodes_ - 1) / 2;
  }
  return adjacency_.size() / 2;
}

std::string InteractionGraph::to_string() const { return label_; }

}  // namespace egt::pop
