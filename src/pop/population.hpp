// The population: the replicated global table of SSet strategies plus the
// per-SSet fitness of the current generation.
//
// An SSet (Strategy Set, paper §IV-D) is a group of agents all playing one
// strategy; with the paper's configuration (one agent per opponent SSet)
// an SSet's identity is fully captured by its strategy and fitness, so the
// population stores exactly what every compute node replicates: the
// strategy table and the fitness vector.
//
// Interning layer: PC imitation drives the population toward a handful of
// dominant strategies, so the table usually holds few *unique* strategies.
// The population therefore interns every strategy into a canonical class
// table — content-hashed, refcounted slots — and maintains the SSet → class
// mapping incrementally under set_strategy. The class table is what lets
// the fitness tier play one game per unique strategy pair instead of one
// per SSet pair (core::BlockFitness dedup mode). Class ids are transient
// labels (freed slots are recycled); everything bit-exact is keyed by the
// class *content hash*, never by the id.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::pop {

using SSetId = std::uint32_t;
using ClassId = std::uint32_t;

/// One slot of the interned class table. Slots with members == 0 are free
/// (their strategy payload is released) and are recycled by later interns.
struct StrategyClass {
  game::Strategy strategy;
  std::uint64_t hash = 0;     ///< Strategy::hash() of `strategy`
  std::uint32_t members = 0;  ///< SSets currently interned to this class
};

class Population {
 public:
  explicit Population(std::vector<game::Strategy> strategies);

  /// `size` SSets with uniformly random pure memory-n strategies.
  static Population random_pure(SSetId size, int memory, util::Xoshiro256& rng);

  /// `size` SSets with uniformly random mixed strategies (each per-state
  /// cooperation probability uniform in [0,1]), the paper's Fig. 2 setup.
  static Population random_mixed(SSetId size, int memory,
                                 util::Xoshiro256& rng);

  /// `size` SSets with n-way strategies over `actions` actions (DESIGN.md
  /// §10): one-hot uniform actions when `pure`, Dirichlet(1) simplex points
  /// otherwise.
  static Population random_nway(SSetId size, std::uint32_t actions, bool pure,
                                util::Xoshiro256& rng);

  SSetId size() const noexcept {
    return static_cast<SSetId>(strategies_.size());
  }
  int memory() const noexcept { return strategies_.front().memory(); }

  const game::Strategy& strategy(SSetId i) const { return strategies_[i]; }
  void set_strategy(SSetId i, game::Strategy s);

  double fitness(SSetId i) const { return fitness_[i]; }
  void set_fitness(SSetId i, double f) { fitness_[i] = f; }
  std::span<const double> fitness() const noexcept { return fitness_; }
  std::span<double> mutable_fitness() noexcept { return fitness_; }

  const std::vector<game::Strategy>& strategies() const noexcept {
    return strategies_;
  }

  /// Class of SSet `i` in the interned table. Two SSets share a class id
  /// exactly when their strategies compare equal.
  ClassId strategy_class(SSetId i) const { return class_of_[i]; }

  /// The class slot table (indexed by ClassId). Slots with members == 0
  /// are free and must be skipped.
  const std::vector<StrategyClass>& classes() const noexcept {
    return classes_;
  }

  /// Number of live (members > 0) classes — the population's strategy
  /// diversity u; the dedup fitness engine plays O(u^2) games.
  std::uint32_t class_count() const noexcept { return live_classes_; }

  /// Content hash of the whole strategy table (integration-test equality).
  std::uint64_t table_hash() const noexcept;

  /// True when class `c` can feed the memory-one batch kernel: a live
  /// binary-game strategy of memory depth one (pure or mixed, not n-way).
  bool mem1_batchable(ClassId c) const noexcept {
    return c < mem1_valid_.size() && mem1_valid_[c] != 0;
  }

  /// SoA view of the class table for the batch fitness kernel
  /// (game/batch.hpp): the four outcome-conditioned cooperation
  /// probabilities of class `c`, indexed by the previous outcome from the
  /// class's own perspective. Only valid when mem1_batchable(c); kept
  /// current incrementally by intern/release.
  const double* mem1_probs(ClassId c) const noexcept {
    return mem1_probs_.data() + 4 * static_cast<std::size_t>(c);
  }

 private:
  ClassId intern(game::Strategy s);
  void release(ClassId c);
  void refresh_mem1(ClassId c);

  std::vector<game::Strategy> strategies_;
  std::vector<double> fitness_;
  std::vector<ClassId> class_of_;       // per SSet
  std::vector<StrategyClass> classes_;  // slot table
  std::vector<ClassId> free_slots_;     // recycled LIFO
  // hash → slots with that content hash (a chain only on a 64-bit hash
  // collision; equality is always verified before sharing a class).
  std::unordered_map<std::uint64_t, std::vector<ClassId>> by_hash_;
  std::uint32_t live_classes_ = 0;
  // Structure-of-arrays mirror of the class table for the batch kernel:
  // mem1_probs_[4c + o] = P(class c cooperates | previous outcome o), valid
  // only where mem1_valid_[c] != 0.
  std::vector<double> mem1_probs_;
  std::vector<std::uint8_t> mem1_valid_;
};

}  // namespace egt::pop
