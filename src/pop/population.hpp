// The population: the replicated global table of SSet strategies plus the
// per-SSet fitness of the current generation.
//
// An SSet (Strategy Set, paper §IV-D) is a group of agents all playing one
// strategy; with the paper's configuration (one agent per opponent SSet)
// an SSet's identity is fully captured by its strategy and fitness, so the
// population stores exactly what every compute node replicates: the
// strategy table and the fitness vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::pop {

using SSetId = std::uint32_t;

class Population {
 public:
  explicit Population(std::vector<game::Strategy> strategies);

  /// `size` SSets with uniformly random pure memory-n strategies.
  static Population random_pure(SSetId size, int memory, util::Xoshiro256& rng);

  /// `size` SSets with uniformly random mixed strategies (each per-state
  /// cooperation probability uniform in [0,1]), the paper's Fig. 2 setup.
  static Population random_mixed(SSetId size, int memory,
                                 util::Xoshiro256& rng);

  SSetId size() const noexcept {
    return static_cast<SSetId>(strategies_.size());
  }
  int memory() const noexcept { return strategies_.front().memory(); }

  const game::Strategy& strategy(SSetId i) const { return strategies_[i]; }
  void set_strategy(SSetId i, game::Strategy s);

  double fitness(SSetId i) const { return fitness_[i]; }
  void set_fitness(SSetId i, double f) { fitness_[i] = f; }
  std::span<const double> fitness() const noexcept { return fitness_; }
  std::span<double> mutable_fitness() noexcept { return fitness_; }

  const std::vector<game::Strategy>& strategies() const noexcept {
    return strategies_;
  }

  /// Content hash of the whole strategy table (integration-test equality).
  std::uint64_t table_hash() const noexcept;

 private:
  std::vector<game::Strategy> strategies_;
  std::vector<double> fitness_;
};

}  // namespace egt::pop
