// Repro files ("egt.simcheck_repro/v1"): a failing (usually shrunk)
// CaseSpec serialized as runnable JSON, optionally carrying the reference
// engine's recorded trace so the failure replays — and pinpoints its first
// divergent generation — from the file alone.
#pragma once

#include <optional>
#include <string>

#include "simcheck/case.hpp"
#include "simcheck/trace.hpp"

namespace egt::simcheck {

inline constexpr const char* kReproSchema = "egt.simcheck_repro/v1";

/// Serialize a case result as a repro document. The failure list is
/// informational; the spec (+config) is the runnable part. When
/// `include_trace`, the reference trace is embedded hex-encoded.
std::string repro_to_json(const CaseResult& result, bool include_trace = true);

struct ParsedRepro {
  CaseSpec spec;
  /// The recorded reference trace, when the file embeds one.
  std::optional<std::vector<core::TracePoint>> trace;
};

/// Parse a repro document. Throws std::runtime_error on malformed input.
ParsedRepro parse_repro(const std::string& json_text);

struct ReplayResult {
  CaseResult result;  ///< fresh differential run of the parsed spec
  /// Recorded-vs-fresh reference divergence, when the repro embedded a
  /// trace: non-null means this machine does not reproduce the recorded
  /// trajectory (an environment-dependence bug of its own).
  std::optional<TraceDivergence> recorded_divergence;
};

/// Re-run a repro file end to end.
ReplayResult replay_repro(const std::string& json_text);

}  // namespace egt::simcheck
