#include "simcheck/case.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "ft/ft_engine.hpp"
#include "game/spec/registry.hpp"
#include "obs/metrics.hpp"
#include "simcheck/selftest.hpp"
#include "simcheck/trace.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {

namespace {

using core::FitnessMode;
using core::InteractionSpec;

EngineCounters counters_from(const obs::MetricsSnapshot& s) {
  EngineCounters c;
  c.generations = s.counter_value("engine.generations");
  c.pc_events = s.counter_value("engine.pc_events");
  c.adoptions = s.counter_value("engine.adoptions");
  c.moran_events = s.counter_value("engine.moran_events");
  c.mutations = s.counter_value("engine.mutations");
  c.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  c.games_played = s.counter_value("engine.games_played");
  return c;
}

void finish_from_population(EngineOutcome& out, const pop::Population& pop) {
  out.table_hash = pop.table_hash();
  const auto fit = pop.fitness();
  out.fitness.assign(fit.begin(), fit.end());
}

EngineOutcome run_serial_variant(const core::SimConfig& config) {
  EngineOutcome out;
  obs::MetricsRegistry reg;
  TraceRecorder rec;
  core::Engine engine(config, &reg);
  engine.set_trace(&rec);
  engine.run_all();
  finish_from_population(out, engine.population());
  out.counters = counters_from(reg.snapshot());
  out.trace = rec.contiguous_points();
  out.ok = true;
  return out;
}

EngineOutcome run_restore_variant(const core::SimConfig& config,
                                  std::uint64_t restore_at) {
  EngineOutcome out;
  obs::MetricsRegistry reg;
  TraceRecorder rec;
  std::vector<std::byte> blob;
  {
    core::Engine first(config, &reg);
    first.set_trace(&rec);
    first.run(restore_at);
    blob = core::save_checkpoint(first);
  }
  core::Engine second = core::restore_checkpoint(config, blob, &reg);
  second.set_trace(&rec);
  second.run(config.generations - restore_at);
  finish_from_population(out, second.population());
  // The restore re-runs the initial all-pairs evaluation, so work counters
  // legitimately exceed an uninterrupted run's.
  out.counters_comparable = false;
  out.trace = rec.contiguous_points();
  if (config.fitness_mode == core::FitnessMode::Analytic) {
    // Full-row recompute vs incremental class-delta updates: fitness
    // matches to rounding only (see EngineOutcome::fitness_exact), so the
    // per-generation fitness hashes are meaningless too.
    out.fitness_exact = false;
    for (auto& p : out.trace) p.fitness_hash = 0;
  }
  out.ok = true;
  return out;
}

EngineOutcome run_parallel_variant(const core::SimConfig& config, int nranks) {
  EngineOutcome out;
  TraceRecorder rec;
  core::ParallelRunOptions opts;
  opts.trace = &rec;
  const auto result = core::run_parallel(config, nranks, opts);
  finish_from_population(out, result.population);
  out.counters = counters_from(result.metrics);
  out.trace = rec.contiguous_points();
  out.ok = true;
  return out;
}

EngineOutcome run_ft_variant(const CaseSpec& spec, bool faulty) {
  EngineOutcome out;
  TraceRecorder rec;
  ft::FtRunOptions opts;
  opts.checkpoint_every = spec.ft_checkpoint_every;
  // Generous failure-detection deadlines: the fuzz configs finish a
  // generation in microseconds, so these can absorb a heavily loaded CI
  // host without risking a false-positive eviction (which would be
  // trajectory-preserving but perturb the work counters we diff).
  opts.detect_timeout_ms = 2000.0;
  opts.ping_timeout_ms = 500.0;
  opts.max_pings = 2;
  opts.trace = &rec;
  if (faulty) {
    for (const auto& k : spec.kills) opts.plan.kill(k.rank, k.generation);
    for (const auto& t : spec.torn) {
      opts.plan.torn_checkpoint(t.rank, t.generation);
    }
  }
  const auto result = ft::run_parallel_ft(spec.config, spec.nranks, opts);
  finish_from_population(out, result.population);
  out.counters = counters_from(result.metrics);
  out.trace = rec.contiguous_points();
  if (faulty) {
    // Recovery off the block-checkpoint fast path recomputes fitness the
    // fault-free run never evaluated; the counters then legitimately
    // over-count. Sampled re-plays every generation anyway, so recovery
    // work is indistinguishable from normal work there.
    bool comparable = spec.torn.empty();
    if (spec.config.fitness_mode == FitnessMode::SampledFrozen) {
      // Frozen samples are (re)played lazily, so which pairs the dead rank
      // had already played — work its successor never repeats — depends on
      // the kill timing; the counters drift by a few pairs either way.
      comparable = false;
    } else if (spec.config.fitness_mode != FitnessMode::Sampled) {
      if (spec.ft_checkpoint_every == 0) comparable = false;
      for (const auto& k : spec.kills) {
        if (spec.ft_checkpoint_every == 0 ||
            k.generation % spec.ft_checkpoint_every != 0) {
          comparable = false;
        }
      }
    }
    out.counters_comparable = comparable;
  }
  out.ok = true;
  return out;
}

EngineOutcome run_variant(EngineKind kind, const CaseSpec& spec) {
  try {
    switch (kind) {
      case EngineKind::Serial:
        return run_serial_variant(spec.config);
      case EngineKind::SerialThreads: {
        auto cfg = spec.config;
        cfg.sset_threads = spec.sset_threads;
        cfg.agent_threads = spec.agent_threads;
        return run_serial_variant(cfg);
      }
      case EngineKind::SerialRestore:
        return run_restore_variant(spec.config, spec.restore_at);
      case EngineKind::Parallel: {
        auto cfg = spec.config;
        cfg.comm_pattern = core::CommPattern::PaperBcast;
        return run_parallel_variant(cfg, spec.nranks);
      }
      case EngineKind::ParallelReplicated: {
        auto cfg = spec.config;
        cfg.comm_pattern = core::CommPattern::ReplicatedNature;
        return run_parallel_variant(cfg, spec.nranks);
      }
      case EngineKind::ParallelFt:
        return run_ft_variant(spec, /*faulty=*/false);
      case EngineKind::ParallelFtFaulty:
        return run_ft_variant(spec, /*faulty=*/true);
      case EngineKind::SerialBrokenDedup:
        return run_broken_dedup(spec.config);
    }
    EngineOutcome out;
    out.error = "unknown engine kind";
    return out;
  } catch (const std::exception& e) {
    EngineOutcome out;
    out.error = e.what();
    return out;
  }
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void compare_outcome(CaseResult& result, EngineKind kind,
                     const EngineOutcome& ref, const EngineOutcome& out) {
  auto fail = [&](std::string what) {
    result.failures.push_back({kind, std::move(what)});
  };
  if (!out.ok) {
    fail("threw: " + out.error);
    return;
  }
  if (out.table_hash != ref.table_hash) {
    fail("final strategy table differs (hash " +
         std::to_string(out.table_hash) + " vs reference " +
         std::to_string(ref.table_hash) + ")");
  }
  if (out.fitness.size() != ref.fitness.size()) {
    fail("fitness vector size differs");
  } else {
    for (std::size_t i = 0; i < ref.fitness.size(); ++i) {
      const double a = ref.fitness[i];
      const double b = out.fitness[i];
      bool same = a == b;
      if (!same && !out.fitness_exact) {
        // Rounding-tolerant variants (see EngineOutcome::fitness_exact):
        // accept a relative error a handful of ulps wide.
        same = std::abs(a - b) <=
               1e-12 * std::max({1.0, std::abs(a), std::abs(b)});
      }
      if (!same) {
        fail("fitness of SSet " + std::to_string(i) + " differs: " +
             format_double(b) + " vs reference " + format_double(a));
        break;
      }
    }
  }
  if (out.trace_comparable && ref.trace_comparable) {
    if (const auto div = compare_traces(ref.trace, out.trace)) {
      fail("trace diverges at generation " +
           std::to_string(div->generation) + ": " + div->detail);
    }
  }
  if (out.counters_comparable) {
    auto diff = [&](const char* name, std::uint64_t a, std::uint64_t b) {
      if (a != b) {
        fail(std::string("counter ") + name + " differs: " +
             std::to_string(b) + " vs reference " + std::to_string(a));
      }
    };
    diff("engine.generations", ref.counters.generations,
         out.counters.generations);
    diff("engine.pc_events", ref.counters.pc_events, out.counters.pc_events);
    diff("engine.adoptions", ref.counters.adoptions, out.counters.adoptions);
    diff("engine.moran_events", ref.counters.moran_events,
         out.counters.moran_events);
    diff("engine.mutations", ref.counters.mutations, out.counters.mutations);
    diff("engine.pairs_evaluated", ref.counters.pairs_evaluated,
         out.counters.pairs_evaluated);
    // games_played is partition-dependent under dedup: the class-pair
    // cache is global in the serial engine but per-rank in the parallel
    // ones, so a pair class spanning blocks is played once per rank.
    // (Public-goods fitness is group-pooled: BlockFitness never
    // deduplicates it, so its games counter stays partition-independent
    // and comparable even with config.dedup set.)
    const bool dedup_active =
        result.spec.config.dedup &&
        result.spec.config.fitness_mode == core::FitnessMode::Analytic &&
        result.spec.config.game.kind != game::GameKind::PublicGoods;
    const bool multi_rank = kind == EngineKind::Parallel ||
                            kind == EngineKind::ParallelReplicated ||
                            kind == EngineKind::ParallelFt ||
                            kind == EngineKind::ParallelFtFaulty;
    if (!(dedup_active && multi_rank)) {
      diff("engine.games_played", ref.counters.games_played,
           out.counters.games_played);
    }
  }
}

}  // namespace

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::Serial: return "serial";
    case EngineKind::SerialThreads: return "serial_threads";
    case EngineKind::SerialRestore: return "serial_restore";
    case EngineKind::Parallel: return "parallel";
    case EngineKind::ParallelReplicated: return "parallel_replicated";
    case EngineKind::ParallelFt: return "parallel_ft";
    case EngineKind::ParallelFtFaulty: return "parallel_ft_faulty";
    case EngineKind::SerialBrokenDedup: return "serial_broken_dedup";
  }
  return "serial";
}

std::optional<EngineKind> engine_kind_from_name(const std::string& name) {
  for (const auto kind :
       {EngineKind::Serial, EngineKind::SerialThreads,
        EngineKind::SerialRestore, EngineKind::Parallel,
        EngineKind::ParallelReplicated, EngineKind::ParallelFt,
        EngineKind::ParallelFtFaulty, EngineKind::SerialBrokenDedup}) {
    if (name == engine_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

bool checkpoint_exact(const core::SimConfig& config) {
  if (config.fitness_mode == FitnessMode::Sampled) return true;
  if (config.fitness_mode == FitnessMode::Analytic) {
    return config.memory <= 1 ||
           (config.space == pop::StrategySpace::Pure &&
            config.game.noise == 0.0);
  }
  return false;
}

CaseSpec sample_case(std::uint64_t fuzz_seed) {
  util::SplitMix64 rng(util::mix64(fuzz_seed ^ 0x51c3c8ecca5e5eedULL));
  auto pick = [&](std::uint64_t lo, std::uint64_t hi) {  // inclusive
    return lo + rng() % (hi - lo + 1);
  };
  auto unit = [&] {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };
  auto chance = [&](double p) { return unit() < p; };

  CaseSpec spec;
  spec.case_seed = fuzz_seed;
  auto& c = spec.config;

  c.memory = static_cast<int>(pick(1, 3));
  c.space = chance(0.5) ? pop::StrategySpace::Pure : pop::StrategySpace::Mixed;
  if (c.space == pop::StrategySpace::Pure) {
    c.mutation_kernel = chance(0.3) ? pop::MutationKernel::PureBitFlip
                                    : pop::MutationKernel::UniformProbs;
  } else {
    const auto roll = pick(0, 2);
    c.mutation_kernel = roll == 0   ? pop::MutationKernel::UniformProbs
                        : roll == 1 ? pop::MutationKernel::UShapedProbs
                                    : pop::MutationKernel::MixedGaussian;
  }
  c.mutation_bits = static_cast<std::uint32_t>(pick(1, 2));
  c.mutation_sigma = 0.05 + 0.15 * unit();

  const auto structure_roll = pick(0, 5);
  if (structure_roll == 4) {
    c.interaction.kind = InteractionSpec::Kind::Ring;
    c.ssets = static_cast<pop::SSetId>(pick(8, 18));
    c.interaction.ring_k = static_cast<std::uint32_t>(pick(1, 2));
  } else if (structure_roll == 5) {
    c.interaction.kind = InteractionSpec::Kind::Lattice2D;
    const auto w = pick(3, 4);
    const auto h = pick(3, 4);
    c.ssets = static_cast<pop::SSetId>(w * h);
    c.interaction.lattice_width = static_cast<pop::SSetId>(w);
    c.interaction.moore = chance(0.5);
  } else {
    c.ssets = static_cast<pop::SSetId>(pick(6, 20));
  }
  // Structured populations require the pairwise-comparison rule.
  c.update_rule = (!c.interaction.structured() && chance(0.25))
                      ? pop::UpdateRule::Moran
                      : pop::UpdateRule::PairwiseComparison;

  c.generations = pick(16, 64);
  c.game.rounds = static_cast<std::uint32_t>(pick(8, 32));
  c.game.noise = chance(0.3) ? 0.02 + 0.05 * unit() : 0.0;
  // ~45% of cases play a non-IPD preset from the registry (DESIGN.md §10):
  // other 2-action matrix games keep the sampled memory/kernels, while the
  // n-way and public-goods kinds drop to memory 0 (normalize_spec repairs
  // the kernel pairing below).
  if (chance(0.45)) {
    static const char* kPresets[] = {"hawk_dove",    "snowdrift", "stag_hunt",
                                     "coordination", "donation",  "rps",
                                     "pgg"};
    const game::GameSpec* preset = game::find_game(kPresets[pick(0, 6)]);
    const std::uint32_t rounds = static_cast<std::uint32_t>(pick(4, 16));
    const double noise = c.game.noise;
    c.game = *preset;
    c.game.rounds = rounds;
    c.game.noise = noise;
    if (c.game.requires_memory0()) c.memory = 0;
    if (c.game.kind == game::GameKind::PublicGoods &&
        !c.interaction.structured() && chance(0.5)) {
      // Half the PGG cases play k-sized ring windows instead of the one
      // global group.
      c.game.pgg_k = static_cast<std::uint32_t>(
          pick(2, std::min<std::uint64_t>(c.ssets, 6)));
    }
  }
  c.pc_rate = 0.2 + 0.6 * unit();
  c.mutation_rate = chance(0.15) ? 0.0 : 0.05 + 0.35 * unit();
  c.beta = 0.2 + 1.5 * unit();
  c.require_teacher_better = chance(0.25);
  const auto mode_roll = pick(0, 2);
  c.fitness_mode = mode_roll == 0   ? FitnessMode::Sampled
                   : mode_roll == 1 ? FitnessMode::SampledFrozen
                                    : FitnessMode::Analytic;
  c.fitness_scale = chance(0.5) ? core::FitnessScale::PerRoundAverage
                                : core::FitnessScale::Total;
  c.lookup =
      chance(0.2) ? game::LookupMode::LinearSearch : game::LookupMode::Indexed;
  c.dedup = chance(0.7);
  c.seed = rng() & 0xffffffffULL;
  c.sset_threads = 0;
  c.agent_threads = 0;

  spec.sset_threads = static_cast<unsigned>(pick(0, 2));
  spec.agent_threads = chance(0.3) ? static_cast<unsigned>(pick(1, 2)) : 0;
  spec.nranks = static_cast<int>(
      std::min<std::uint64_t>(pick(2, 4), c.ssets));

  spec.engines.push_back(EngineKind::Parallel);
  if (chance(0.6)) spec.engines.push_back(EngineKind::ParallelReplicated);
  if (spec.sset_threads > 0 || spec.agent_threads > 0) {
    spec.engines.push_back(EngineKind::SerialThreads);
  }
  if (checkpoint_exact(c) && chance(0.6)) {
    spec.restore_at = pick(1, c.generations - 1);
    spec.engines.push_back(EngineKind::SerialRestore);
  }
  const bool want_ft = chance(0.5);
  const bool want_faulty = spec.nranks >= 2 && chance(0.35);
  if (want_ft || want_faulty) {
    spec.ft_checkpoint_every = (want_faulty || chance(0.5)) ? 4 : 0;
  }
  if (want_ft) spec.engines.push_back(EngineKind::ParallelFt);
  if (want_faulty) {
    // Kills land on checkpoint boundaries so recovery takes the
    // block-restore fast path and the work counters stay diffable; torn
    // checkpoints (Sampled only — see run_ft_variant) then exercise the
    // CRC fallback at the cost of that comparability.
    const std::uint64_t last_boundary =
        (c.generations - 1) / spec.ft_checkpoint_every;
    const std::uint64_t kill_gen =
        spec.ft_checkpoint_every * pick(1, std::max<std::uint64_t>(
                                               1, last_boundary));
    const int kill_rank = static_cast<int>(pick(1, spec.nranks - 1));
    spec.kills.push_back({kill_rank, kill_gen});
    if (c.fitness_mode == FitnessMode::Sampled && chance(0.3)) {
      spec.torn.push_back({kill_rank, kill_gen});
    }
    spec.engines.push_back(EngineKind::ParallelFtFaulty);
  }
  const bool valid = normalize_spec(spec);
  (void)valid;  // by construction the sampled spec is valid
  return spec;
}

bool normalize_spec(CaseSpec& spec) {
  auto& c = spec.config;
  if (c.ssets < 2) c.ssets = 2;
  if (c.generations < 1) c.generations = 1;
  c.sset_threads = 0;
  c.agent_threads = 0;

  // Interaction constraints (see SimConfig::validate); fall back to the
  // well-mixed population when a shrink broke them.
  if (c.interaction.kind == InteractionSpec::Kind::Ring) {
    if (c.ssets < 3 || 2 * c.interaction.ring_k >= c.ssets) {
      c.interaction = InteractionSpec{};
    }
  } else if (c.interaction.kind == InteractionSpec::Kind::Lattice2D) {
    const auto w = c.interaction.lattice_width;
    if (w < 3 || c.ssets % w != 0 || c.ssets / w < 3) {
      c.interaction = InteractionSpec{};
    }
  }
  if (c.interaction.structured() &&
      c.update_rule != pop::UpdateRule::PairwiseComparison) {
    c.update_rule = pop::UpdateRule::PairwiseComparison;
  }
  // Kernel/space pairing.
  if (c.space == pop::StrategySpace::Pure) {
    if (c.mutation_kernel == pop::MutationKernel::UShapedProbs ||
        c.mutation_kernel == pop::MutationKernel::MixedGaussian) {
      c.mutation_kernel = pop::MutationKernel::UniformProbs;
    }
  } else if (c.mutation_kernel == pop::MutationKernel::PureBitFlip) {
    c.mutation_kernel = pop::MutationKernel::UniformProbs;
  }
  if (c.mutation_bits == 0) c.mutation_bits = 1;

  // Game-spec constraints (DESIGN.md §10; see SimConfig::validate).
  if (c.game.requires_memory0()) c.memory = 0;
  if (c.game.uses_nway() &&
      c.mutation_kernel != pop::MutationKernel::UniformProbs &&
      c.mutation_kernel != pop::MutationKernel::PureBitFlip) {
    c.mutation_kernel = pop::MutationKernel::UniformProbs;
  }
  if (c.game.kind == game::GameKind::PublicGoods) {
    if (c.interaction.structured()) c.game.pgg_k = 0;  // groups = graph
    if (c.game.pgg_k == 1 || c.game.pgg_k > c.ssets) c.game.pgg_k = 0;
  }

  spec.nranks = std::max(
      1, std::min(spec.nranks, static_cast<int>(c.ssets)));
  if (spec.restore_at >= c.generations) {
    spec.restore_at = c.generations > 1 ? c.generations / 2 : 0;
  }

  // Fault plan consistency.
  std::vector<ft::KillFault> kills;
  for (auto k : spec.kills) {
    if (k.rank < 1 || k.rank >= spec.nranks) continue;  // workers only
    if (k.generation >= c.generations) k.generation = c.generations - 1;
    if (spec.ft_checkpoint_every > 0 && k.generation > 0) {
      k.generation -= k.generation % spec.ft_checkpoint_every;
    }
    if (k.generation == 0) continue;  // gen-0 kills add no coverage here
    kills.push_back(k);
  }
  spec.kills = std::move(kills);
  std::vector<ft::TornCheckpointFault> torn;
  if (c.fitness_mode == FitnessMode::Sampled &&
      spec.ft_checkpoint_every > 0) {
    for (auto t : spec.torn) {
      if (t.rank < 0 || t.rank >= spec.nranks) continue;
      if (t.generation >= c.generations) continue;
      torn.push_back(t);
    }
  }
  spec.torn = std::move(torn);

  // Engine-list consistency.
  std::vector<EngineKind> engines;
  for (const auto kind : spec.engines) {
    switch (kind) {
      case EngineKind::Serial:
        continue;  // always run as the reference
      case EngineKind::SerialThreads:
        if (spec.sset_threads == 0 && spec.agent_threads == 0) continue;
        break;
      case EngineKind::SerialRestore:
        if (!checkpoint_exact(c) || spec.restore_at == 0) continue;
        break;
      case EngineKind::ParallelFtFaulty:
        if (spec.kills.empty() && spec.torn.empty()) continue;
        if (spec.nranks < 2) continue;
        // Frozen-mode fitness is not a pure function of (population,
        // generation) — it remembers when each pair was last replayed — so
        // any recovery that misses the checkpoint fast path (and a kill
        // racing the very checkpoint that would cover it can always force
        // that) resamples pairs differently. Not differentially testable;
        // skip rather than chase phantom divergences.
        if (c.fitness_mode == FitnessMode::SampledFrozen) continue;
        break;
      default:
        break;
    }
    if (std::find(engines.begin(), engines.end(), kind) == engines.end()) {
      engines.push_back(kind);
    }
  }
  spec.engines = std::move(engines);
  if (spec.engines.empty()) return false;
  try {
    c.validate();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

CaseResult run_case(const CaseSpec& spec) {
  CaseResult result;
  result.spec = spec;
  result.reference = run_variant(EngineKind::Serial, spec);
  if (!result.reference.ok) {
    result.failures.push_back(
        {EngineKind::Serial, "reference threw: " + result.reference.error});
    return result;
  }
  for (const auto kind : spec.engines) {
    if (kind == EngineKind::Serial) continue;
    auto out = run_variant(kind, spec);
    compare_outcome(result, kind, result.reference, out);
    result.outcomes.emplace_back(kind, std::move(out));
  }
  return result;
}

}  // namespace egt::simcheck
