// Differential test cases: one CaseSpec describes a config plus the set of
// engine variants to run it through; run_case executes every variant and
// compares each against the serial reference engine — strategy table,
// final fitness vector, per-generation trace, and merged "engine.*"
// counters must all agree bit-for-bit (where the variant makes them
// comparable). sample_case draws a valid spec from a fuzz seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "ft/fault_plan.hpp"

namespace egt::simcheck {

/// The execution paths the harness can differentially compare.
enum class EngineKind {
  Serial,              ///< core::Engine — the reference
  SerialThreads,       ///< serial engine with sset/agent thread tiers
  SerialRestore,       ///< serial run split by a checkpoint/restore
  Parallel,            ///< core::run_parallel, PaperBcast
  ParallelReplicated,  ///< core::run_parallel, ReplicatedNature
  ParallelFt,          ///< ft::run_parallel_ft, fault-free
  ParallelFtFaulty,    ///< ft::run_parallel_ft with the spec's fault plan
  SerialBrokenDedup,   ///< self-test fixture: deliberately broken dedup copy
};

const char* engine_kind_name(EngineKind kind);
std::optional<EngineKind> engine_kind_from_name(const std::string& name);

struct CaseSpec {
  std::uint64_t case_seed = 0;  ///< the fuzz seed that produced this spec
  core::SimConfig config;       ///< threads forced to 0 for the reference
  int nranks = 2;               ///< rank count of the parallel variants
  unsigned sset_threads = 0;    ///< SerialThreads overrides
  unsigned agent_threads = 0;
  std::uint64_t restore_at = 0;          ///< SerialRestore: split generation
  std::uint64_t ft_checkpoint_every = 0;  ///< ft variants
  std::vector<ft::KillFault> kills;       ///< ParallelFtFaulty
  std::vector<ft::TornCheckpointFault> torn;
  std::vector<EngineKind> engines;  ///< variants to compare (no Serial)
};

/// The merged per-run event/work counters every engine reports.
struct EngineCounters {
  std::uint64_t generations = 0;
  std::uint64_t pc_events = 0;
  std::uint64_t adoptions = 0;
  std::uint64_t moran_events = 0;
  std::uint64_t mutations = 0;
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t games_played = 0;
};

struct EngineOutcome {
  bool ok = false;    ///< ran to completion without throwing
  std::string error;  ///< exception text when !ok
  std::uint64_t table_hash = 0;
  std::vector<double> fitness;  ///< final (top-of-last-generation) fitness
  /// False relaxes the fitness diff to a few-ulp relative tolerance: an
  /// Analytic restore recomputes full row sums where the uninterrupted run
  /// applied incremental class-delta updates (core/fitness.cpp), so values
  /// agree only to rounding (the trajectory stays table-exact; the serial
  /// checkpoint test asserts the same DOUBLE_EQ tolerance).
  bool fitness_exact = true;
  EngineCounters counters;
  /// Counters are only diffed when the variant makes them meaningful: a
  /// checkpoint/restore re-initializes (extra pairs), and ft recovery off
  /// the checkpoint fast path recomputes (extra games).
  bool counters_comparable = true;
  std::vector<core::TracePoint> trace;
  bool trace_comparable = true;
};

struct CaseFailure {
  EngineKind engine = EngineKind::Serial;
  std::string what;  ///< human-readable mismatch description
};

struct CaseResult {
  CaseSpec spec;
  EngineOutcome reference;
  std::vector<std::pair<EngineKind, EngineOutcome>> outcomes;
  std::vector<CaseFailure> failures;
  bool passed() const noexcept { return failures.empty(); }
};

/// True when a serial checkpoint restore of `config` is bit-exact (the
/// precondition of the SerialRestore variant): Sampled always; Analytic
/// when no pair can hit the frozen-sampling fall-through (memory one, or a
/// noise-free pure space). SampledFrozen never (generation-keyed frozen
/// samples are unrecoverable — see core/checkpoint.hpp).
bool checkpoint_exact(const core::SimConfig& config);

/// Draw a valid spec from a fuzz seed (deterministic).
CaseSpec sample_case(std::uint64_t fuzz_seed);

/// Clamp a (possibly shrunk) spec back onto the valid-config manifold:
/// rank counts, restore points, fault generations and engine list are made
/// consistent with the config. Returns false when no valid form exists.
bool normalize_spec(CaseSpec& spec);

/// Run the reference and every listed variant; compare.
CaseResult run_case(const CaseSpec& spec);

}  // namespace egt::simcheck
