#include "simcheck/trace.hpp"

#include <sstream>

#include "core/wire.hpp"

namespace egt::simcheck {

namespace {

constexpr std::uint32_t kTraceMagic = 0x45475454u;  // "TTGE": egt trace
constexpr std::uint32_t kTraceVersion = 1;

// Bit layout of the per-point event flags byte.
constexpr std::uint8_t kFlagPc = 1u << 0;
constexpr std::uint8_t kFlagAdopted = 1u << 1;
constexpr std::uint8_t kFlagMoran = 1u << 2;
constexpr std::uint8_t kFlagMutated = 1u << 3;

std::string describe_point(const core::TracePoint& p) {
  std::ostringstream os;
  os << "gen " << p.generation;
  if (p.pc) {
    os << " pc(" << p.teacher << "->" << p.learner
       << (p.adopted ? ", adopted" : ", rejected") << ")";
  }
  if (p.moran) {
    os << " moran(" << p.reproducer << "->" << p.dying << ")";
  }
  if (p.mutated) os << " mutation(" << p.mutation_target << ")";
  os << " table=" << p.table_hash;
  if (p.fitness_hash != 0) os << " fitness=" << p.fitness_hash;
  return os.str();
}

}  // namespace

void TraceRecorder::on_point(const core::TracePoint& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto g = static_cast<std::size_t>(point.generation);
  if (slots_.size() <= g) slots_.resize(g + 1);
  slots_[g] = Slot{true, point};
}

std::vector<core::TracePoint> TraceRecorder::contiguous_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::TracePoint> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (!s.recorded) break;
    out.push_back(s.point);
  }
  return out;
}

std::optional<TraceDivergence> compare_traces(
    std::span<const core::TracePoint> a, std::span<const core::TracePoint> b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t g = 0; g < n; ++g) {
    const auto& pa = a[g];
    const auto& pb = b[g];
    std::string why;
    if (pa.generation != pb.generation) {
      why = "generation number mismatch";
    } else if (pa.nature.rng != pb.nature.rng ||
               pa.nature.planned != pb.nature.planned) {
      why = "nature RNG state differs";
    } else if (pa.pc != pb.pc || pa.teacher != pb.teacher ||
               pa.learner != pb.learner) {
      why = "PC event differs";
    } else if (pa.moran != pb.moran || pa.reproducer != pb.reproducer ||
               pa.dying != pb.dying) {
      why = "Moran event differs";
    } else if (pa.adopted != pb.adopted) {
      why = "adoption decision differs";
    } else if (pa.mutated != pb.mutated ||
               pa.mutation_target != pb.mutation_target) {
      why = "mutation event differs";
    } else if (pa.table_hash != pb.table_hash) {
      why = "strategy table hash differs";
    } else if (pa.fitness_hash != 0 && pb.fitness_hash != 0 &&
               pa.fitness_hash != pb.fitness_hash) {
      why = "fitness hash differs";
    }
    if (!why.empty()) {
      return TraceDivergence{
          pa.generation, why + ": [" + describe_point(pa) + "] vs [" +
                             describe_point(pb) + "]"};
    }
  }
  if (a.size() != b.size()) {
    return TraceDivergence{
        n, "stream lengths differ (" + std::to_string(a.size()) + " vs " +
               std::to_string(b.size()) + " points)"};
  }
  return std::nullopt;
}

std::vector<std::byte> encode_trace(std::span<const core::TracePoint> points) {
  core::wire::Writer w;
  w.u32(kTraceMagic);
  w.u32(kTraceVersion);
  w.u64(points.size());
  for (const auto& p : points) {
    w.u64(p.generation);
    for (const auto word : p.nature.rng) w.u64(word);
    w.u64(p.nature.planned);
    std::uint8_t flags = 0;
    if (p.pc) flags |= kFlagPc;
    if (p.adopted) flags |= kFlagAdopted;
    if (p.moran) flags |= kFlagMoran;
    if (p.mutated) flags |= kFlagMutated;
    w.u8(flags);
    w.u32(p.teacher);
    w.u32(p.learner);
    w.u32(p.reproducer);
    w.u32(p.dying);
    w.u32(p.mutation_target);
    w.u64(p.table_hash);
    w.u64(p.fitness_hash);
  }
  return w.take();
}

std::vector<core::TracePoint> decode_trace(const std::vector<std::byte>& bytes) {
  core::wire::Reader r(bytes, "simcheck trace");
  if (r.u32("magic") != kTraceMagic) r.fail("bad magic");
  const auto version = r.u32("version");
  if (version != kTraceVersion) {
    r.fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t n = r.u64("point count");
  // One point occupies 85 bytes; reject counts the blob cannot hold.
  if (n > bytes.size() / 85) r.fail("point count exceeds blob size");
  std::vector<core::TracePoint> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    p.generation = r.u64("generation");
    for (auto& word : p.nature.rng) word = r.u64("nature rng");
    p.nature.planned = r.u64("nature planned");
    const std::uint8_t flags = r.u8("flags");
    p.pc = (flags & kFlagPc) != 0;
    p.adopted = (flags & kFlagAdopted) != 0;
    p.moran = (flags & kFlagMoran) != 0;
    p.mutated = (flags & kFlagMutated) != 0;
    p.teacher = r.u32("teacher");
    p.learner = r.u32("learner");
    p.reproducer = r.u32("reproducer");
    p.dying = r.u32("dying");
    p.mutation_target = r.u32("mutation target");
    p.table_hash = r.u64("table hash");
    p.fitness_hash = r.u64("fitness hash");
  }
  r.expect_exhausted();
  return points;
}

std::string to_hex(std::span<const std::byte> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    const auto v = std::to_integer<unsigned>(b);
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

std::vector<std::byte> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("simcheck: odd-length hex string");
  }
  auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw std::runtime_error("simcheck: invalid hex digit");
  };
  std::vector<std::byte> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((nibble(hex[2 * i]) << 4) |
                                    nibble(hex[2 * i + 1]));
  }
  return out;
}

}  // namespace egt::simcheck
