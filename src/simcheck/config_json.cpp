#include "simcheck/config_json.hpp"

#include <sstream>
#include <stdexcept>

namespace egt::simcheck {

namespace {

using core::CommPattern;
using core::FitnessMode;
using core::FitnessScale;
using core::InteractionSpec;
using game::LookupMode;
using pop::MutationKernel;
using pop::StrategySpace;
using pop::UpdateRule;

// Enum <-> name tables. Names are part of the repro schema; add, never
// rename.
const char* name_of(FitnessMode m) {
  switch (m) {
    case FitnessMode::Sampled: return "sampled";
    case FitnessMode::SampledFrozen: return "sampled_frozen";
    case FitnessMode::Analytic: return "analytic";
  }
  return "sampled";
}
const char* name_of(FitnessScale s) {
  return s == FitnessScale::Total ? "total" : "per_round_average";
}
const char* name_of(CommPattern p) {
  return p == CommPattern::ReplicatedNature ? "replicated_nature"
                                            : "paper_bcast";
}
const char* name_of(LookupMode m) {
  return m == LookupMode::LinearSearch ? "linear_search" : "indexed";
}
const char* name_of(UpdateRule r) {
  return r == UpdateRule::Moran ? "moran" : "pairwise_comparison";
}
const char* name_of(StrategySpace s) {
  return s == StrategySpace::Mixed ? "mixed" : "pure";
}
const char* name_of(MutationKernel k) {
  switch (k) {
    case MutationKernel::UniformProbs: return "uniform_probs";
    case MutationKernel::UShapedProbs: return "u_shaped_probs";
    case MutationKernel::PureBitFlip: return "pure_bit_flip";
    case MutationKernel::MixedGaussian: return "mixed_gaussian";
  }
  return "uniform_probs";
}
const char* name_of(InteractionSpec::Kind k) {
  switch (k) {
    case InteractionSpec::Kind::Complete: return "complete";
    case InteractionSpec::Kind::Ring: return "ring";
    case InteractionSpec::Kind::Lattice2D: return "lattice2d";
  }
  return "complete";
}

[[noreturn]] void bad_enum(const std::string& what, const std::string& got) {
  throw std::runtime_error("simcheck config: unknown " + what + " \"" + got +
                           "\"");
}

FitnessMode fitness_mode_of(const std::string& s) {
  if (s == "sampled") return FitnessMode::Sampled;
  if (s == "sampled_frozen") return FitnessMode::SampledFrozen;
  if (s == "analytic") return FitnessMode::Analytic;
  bad_enum("fitness_mode", s);
}
FitnessScale fitness_scale_of(const std::string& s) {
  if (s == "per_round_average") return FitnessScale::PerRoundAverage;
  if (s == "total") return FitnessScale::Total;
  bad_enum("fitness_scale", s);
}
CommPattern comm_pattern_of(const std::string& s) {
  if (s == "paper_bcast") return CommPattern::PaperBcast;
  if (s == "replicated_nature") return CommPattern::ReplicatedNature;
  bad_enum("comm_pattern", s);
}
LookupMode lookup_of(const std::string& s) {
  if (s == "indexed") return LookupMode::Indexed;
  if (s == "linear_search") return LookupMode::LinearSearch;
  bad_enum("lookup", s);
}
UpdateRule update_rule_of(const std::string& s) {
  if (s == "pairwise_comparison") return UpdateRule::PairwiseComparison;
  if (s == "moran") return UpdateRule::Moran;
  bad_enum("update_rule", s);
}
StrategySpace space_of(const std::string& s) {
  if (s == "pure") return StrategySpace::Pure;
  if (s == "mixed") return StrategySpace::Mixed;
  bad_enum("space", s);
}
MutationKernel kernel_of(const std::string& s) {
  if (s == "uniform_probs") return MutationKernel::UniformProbs;
  if (s == "u_shaped_probs") return MutationKernel::UShapedProbs;
  if (s == "pure_bit_flip") return MutationKernel::PureBitFlip;
  if (s == "mixed_gaussian") return MutationKernel::MixedGaussian;
  bad_enum("mutation_kernel", s);
}
InteractionSpec::Kind interaction_kind_of(const std::string& s) {
  if (s == "complete") return InteractionSpec::Kind::Complete;
  if (s == "ring") return InteractionSpec::Kind::Ring;
  if (s == "lattice2d") return InteractionSpec::Kind::Lattice2D;
  bad_enum("interaction kind", s);
}

// Typed readers with "missing keeps the default" semantics.
template <class T>
void read_u(const util::JsonValue& v, const char* key, T& out) {
  if (const auto* f = v.find(key)) out = static_cast<T>(f->as_u64());
}
void read_d(const util::JsonValue& v, const char* key, double& out) {
  if (const auto* f = v.find(key)) out = f->as_number();
}
void read_b(const util::JsonValue& v, const char* key, bool& out) {
  if (const auto* f = v.find(key)) out = f->as_bool();
}
template <class Enum, class Fn>
void read_e(const util::JsonValue& v, const char* key, Enum& out, Fn parse) {
  if (const auto* f = v.find(key)) out = parse(f->as_string());
}

}  // namespace

void write_config(util::JsonWriter& w, const core::SimConfig& c) {
  w.begin_object();
  w.field("schema", kConfigSchema);
  w.field("memory", c.memory);
  w.field("ssets", c.ssets);
  w.field("generations", c.generations);
  w.key("interaction").begin_object();
  w.field("kind", name_of(c.interaction.kind));
  w.field("ring_k", c.interaction.ring_k);
  w.field("lattice_width", c.interaction.lattice_width);
  w.field("moore", c.interaction.moore);
  w.end_object();
  w.key("game").begin_object();
  w.field("reward", c.game.payoff.reward);
  w.field("sucker", c.game.payoff.sucker);
  w.field("temptation", c.game.payoff.temptation);
  w.field("punishment", c.game.payoff.punishment);
  w.field("rounds", c.game.rounds);
  w.field("noise", c.game.noise);
  // Wire v3 GameSpec fields, emitted only when they differ from the
  // default IPD: v2 repros parse unchanged and IPD repros stay
  // byte-stable.
  if (c.game.kind == game::GameKind::PublicGoods) {
    w.field("kind", "public_goods");
    w.field("pgg_r", c.game.pgg_r);
    w.field("pgg_cost", c.game.pgg_cost);
    w.field("pgg_k", c.game.pgg_k);
  }
  if (c.game.display_name != "ipd") w.field("name", c.game.display_name);
  if (c.game.actions != 2) w.field("actions", c.game.actions);
  if (c.game.play == game::PlayMode::OneShot) w.field("play", "one_shot");
  if (!c.game.row_payoff.empty()) {
    w.key("row_payoff").begin_array();
    for (double p : c.game.row_payoff) w.value(p);
    w.end_array();
  }
  if (!c.game.col_payoff.empty()) {
    w.key("col_payoff").begin_array();
    for (double p : c.game.col_payoff) w.value(p);
    w.end_array();
  }
  w.end_object();
  w.field("pc_rate", c.pc_rate);
  w.field("mutation_rate", c.mutation_rate);
  w.field("beta", c.beta);
  w.field("require_teacher_better", c.require_teacher_better);
  w.field("update_rule", name_of(c.update_rule));
  w.field("space", name_of(c.space));
  w.field("mutation_kernel", name_of(c.mutation_kernel));
  w.field("mutation_bits", c.mutation_bits);
  w.field("mutation_sigma", c.mutation_sigma);
  w.field("fitness_mode", name_of(c.fitness_mode));
  w.field("fitness_scale", name_of(c.fitness_scale));
  w.field("lookup", name_of(c.lookup));
  w.field("comm_pattern", name_of(c.comm_pattern));
  w.field("seed", c.seed);
  w.field("agent_threads", c.agent_threads);
  w.field("sset_threads", c.sset_threads);
  w.field("dedup", c.dedup);
  w.end_object();
}

std::string config_to_json(const core::SimConfig& config) {
  std::ostringstream os;
  util::JsonWriter w(os, 0);
  write_config(w, config);
  return os.str();
}

core::SimConfig config_from_json(const util::JsonValue& v) {
  if (!v.is_object()) {
    throw std::runtime_error("simcheck config: expected a JSON object");
  }
  if (const auto* s = v.find("schema")) {
    if (s->as_string() != kConfigSchema) {
      throw std::runtime_error("simcheck config: unexpected schema \"" +
                               s->as_string() + "\"");
    }
  }
  core::SimConfig c;
  read_u(v, "memory", c.memory);
  read_u(v, "ssets", c.ssets);
  read_u(v, "generations", c.generations);
  if (const auto* i = v.find("interaction")) {
    read_e(*i, "kind", c.interaction.kind, interaction_kind_of);
    read_u(*i, "ring_k", c.interaction.ring_k);
    read_u(*i, "lattice_width", c.interaction.lattice_width);
    read_b(*i, "moore", c.interaction.moore);
  }
  if (const auto* g = v.find("game")) {
    read_d(*g, "reward", c.game.payoff.reward);
    read_d(*g, "sucker", c.game.payoff.sucker);
    read_d(*g, "temptation", c.game.payoff.temptation);
    read_d(*g, "punishment", c.game.payoff.punishment);
    read_u(*g, "rounds", c.game.rounds);
    read_d(*g, "noise", c.game.noise);
    if (const auto* k = g->find("kind")) {
      const std::string s = k->as_string();
      if (s == "matrix") {
        c.game.kind = game::GameKind::Matrix;
      } else if (s == "public_goods") {
        c.game.kind = game::GameKind::PublicGoods;
      } else {
        bad_enum("game kind", s);
      }
    }
    if (const auto* n = g->find("name")) c.game.display_name = n->as_string();
    read_u(*g, "actions", c.game.actions);
    if (const auto* p = g->find("play")) {
      const std::string s = p->as_string();
      if (s == "iterated") {
        c.game.play = game::PlayMode::Iterated;
      } else if (s == "one_shot") {
        c.game.play = game::PlayMode::OneShot;
      } else {
        bad_enum("game play", s);
      }
    }
    const auto read_matrix = [&](const char* key, std::vector<double>& out) {
      if (const auto* m = g->find(key)) {
        out.clear();
        for (const auto& e : m->items()) out.push_back(e.as_number());
      }
    };
    read_matrix("row_payoff", c.game.row_payoff);
    read_matrix("col_payoff", c.game.col_payoff);
    read_d(*g, "pgg_r", c.game.pgg_r);
    read_d(*g, "pgg_cost", c.game.pgg_cost);
    read_u(*g, "pgg_k", c.game.pgg_k);
  }
  read_d(v, "pc_rate", c.pc_rate);
  read_d(v, "mutation_rate", c.mutation_rate);
  read_d(v, "beta", c.beta);
  read_b(v, "require_teacher_better", c.require_teacher_better);
  read_e(v, "update_rule", c.update_rule, update_rule_of);
  read_e(v, "space", c.space, space_of);
  read_e(v, "mutation_kernel", c.mutation_kernel, kernel_of);
  read_u(v, "mutation_bits", c.mutation_bits);
  read_d(v, "mutation_sigma", c.mutation_sigma);
  read_e(v, "fitness_mode", c.fitness_mode, fitness_mode_of);
  read_e(v, "fitness_scale", c.fitness_scale, fitness_scale_of);
  read_e(v, "lookup", c.lookup, lookup_of);
  read_e(v, "comm_pattern", c.comm_pattern, comm_pattern_of);
  read_u(v, "seed", c.seed);
  read_u(v, "agent_threads", c.agent_threads);
  read_u(v, "sset_threads", c.sset_threads);
  read_b(v, "dedup", c.dedup);
  return c;
}

core::SimConfig config_from_json_text(const std::string& text) {
  return config_from_json(util::JsonValue::parse(text));
}

}  // namespace egt::simcheck
