// Delta-debugging shrink: greedily simplify a failing CaseSpec while the
// failure persists, to a local minimum under a fixed transformation set
// (halve generations/population, drop structure, drop faults, drop engine
// variants, simplify the strategy space). Deterministic: same input spec,
// same minimal repro.
#pragma once

#include "simcheck/case.hpp"

namespace egt::simcheck {

struct ShrinkResult {
  CaseSpec spec;      ///< the minimal still-failing spec
  CaseResult result;  ///< run_case of that spec (failing)
  int accepted = 0;   ///< transformations that kept the failure
  int attempts = 0;   ///< candidate runs tried
};

/// `spec` must fail (run_case(spec).passed() == false); returns it
/// unchanged (attempts == 0) when it does not. `max_attempts` bounds the
/// total candidate executions.
ShrinkResult shrink_case(const CaseSpec& spec, int max_attempts = 400);

}  // namespace egt::simcheck
