#include "simcheck/selftest.hpp"

#include <unordered_map>

#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "simcheck/shrink.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {

namespace {

// A copy of BlockFitness's dedup cached-row path with an injected
// off-by-one: the row sum loops `j + 1 < ssets`, silently dropping the
// last opponent column. Everything else mirrors the real path (class-pair
// cache keyed by strategy content, fixed j order), so the only divergence
// the harness can find is the bug itself.
class BrokenDedupFitness {
 public:
  explicit BrokenDedupFitness(const core::SimConfig& config)
      : config_(config), eval_(config), fitness_(config.ssets, 0.0) {}

  void recompute_all(const pop::Population& pop, std::uint64_t gen_key) {
    for (pop::SSetId i = 0; i < config_.ssets; ++i) {
      double sum = 0.0;
      // BUG (deliberate): one opponent column short of the real loop.
      for (pop::SSetId j = 0; j + 1 < config_.ssets; ++j) {
        if (j == i) continue;
        sum += pair_value(pop, i, j, gen_key);
      }
      fitness_[i] = sum * row_scale();
    }
  }

  double fitness(pop::SSetId i) const { return fitness_[i]; }
  std::span<const double> all() const noexcept { return fitness_; }

 private:
  double row_scale() const noexcept {
    if (config_.fitness_scale == core::FitnessScale::Total) return 1.0;
    return 1.0 / (static_cast<double>(config_.ssets - 1) *
                  config_.game.rounds);
  }

  double pair_value(const pop::Population& pop, pop::SSetId i, pop::SSetId j,
                    std::uint64_t gen_key) {
    const auto& si = pop.strategy(i);
    const auto& sj = pop.strategy(j);
    if (config_.dedup && eval_.strategy_pure(si, sj)) {
      const auto key = game::Strategy::pair_key(si.hash(), sj.hash());
      auto it = cache_.find(key);
      if (it == cache_.end()) {
        it = cache_.emplace(key, eval_.pair_payoff(si, sj)).first;
      }
      return it->second;
    }
    return eval_.payoff(pop, i, j, gen_key);
  }

  core::SimConfig config_;
  core::PairEvaluator eval_;
  std::vector<double> fitness_;
  std::unordered_map<std::uint64_t, double> cache_;
};

}  // namespace

EngineOutcome run_broken_dedup(const core::SimConfig& config) {
  EngineOutcome out;
  config.validate();
  pop::Population pop = core::make_initial_population(config);
  pop::NatureAgent nature(config.nature_config());
  BrokenDedupFitness fit(config);
  fit.recompute_all(pop, 0);

  for (std::uint64_t gen = 0; gen < config.generations; ++gen) {
    // Mirror of core::Engine::step, minus the instrumentation.
    for (pop::SSetId i = 0; i < config.ssets; ++i) {
      pop.set_fitness(i, fit.fitness(i));
    }
    core::TracePoint point;
    point.generation = gen;
    bool changed = false;

    auto plan = nature.plan_generation(&pop);
    if (plan.pc) {
      point.pc = true;
      point.teacher = plan.pc->teacher;
      point.learner = plan.pc->learner;
      point.adopted = nature.decide_adoption(fit.fitness(plan.pc->teacher),
                                             fit.fitness(plan.pc->learner));
      if (point.adopted) {
        pop.set_strategy(plan.pc->learner, pop.strategy(plan.pc->teacher));
        changed = true;
      }
    }
    if (plan.moran) {
      const auto pick = nature.select_moran(fit.all());
      point.moran = true;
      point.reproducer = pick.reproducer;
      point.dying = pick.dying;
      point.adopted = pick.is_change();
      if (pick.is_change()) {
        pop.set_strategy(pick.dying, pop.strategy(pick.reproducer));
        changed = true;
      }
    }
    if (plan.mutation) {
      point.mutated = true;
      point.mutation_target = plan.mutation->target;
      pop.set_strategy(plan.mutation->target, plan.mutation->strategy);
      changed = true;
    }
    // Analytic values are generation-independent, so a full recompute
    // equals the real engine's incremental refresh — except for the bug.
    if (changed) fit.recompute_all(pop, gen);

    point.nature = nature.save_state();
    point.table_hash = pop.table_hash();
    point.fitness_hash = core::hash_fitness(pop.fitness());
    out.trace.push_back(point);
  }

  out.table_hash = pop.table_hash();
  const auto final_fit = pop.fitness();
  out.fitness.assign(final_fit.begin(), final_fit.end());
  out.counters_comparable = false;  // the fixture keeps no event counters
  out.ok = true;
  return out;
}

SelfTestResult run_self_test(std::uint64_t seed) {
  CaseSpec spec;
  spec.case_seed = seed;
  auto& c = spec.config;
  c.memory = 1;
  c.ssets = 12;
  c.generations = 24;
  c.space = pop::StrategySpace::Pure;
  c.mutation_kernel = pop::MutationKernel::UniformProbs;
  c.fitness_mode = core::FitnessMode::Analytic;
  c.dedup = true;
  c.game.rounds = 16;
  c.game.noise = 0.0;
  c.pc_rate = 0.7;
  c.mutation_rate = 0.3;
  c.beta = 1.0;
  // Keep the config seed in 32 bits so the repro JSON round-trips it
  // exactly (JSON numbers are doubles: integers are exact only to 2^53).
  c.seed = util::mix64(seed ^ 0xb40ced5e1f7e57ULL) >> 32;
  spec.engines = {EngineKind::SerialBrokenDedup};
  normalize_spec(spec);

  SelfTestResult result;
  const auto initial = run_case(spec);
  result.caught = !initial.passed();
  if (!result.caught) {
    result.detail = "injected off-by-one was NOT detected";
    return result;
  }
  auto shrunk = shrink_case(spec);
  result.shrunk = !shrunk.result.passed();
  result.final_ssets = shrunk.spec.config.ssets;
  result.final_generations = shrunk.spec.config.generations;
  result.repro = shrunk.spec;
  if (!shrunk.result.failures.empty()) {
    result.detail = shrunk.result.failures.front().what;
  }
  return result;
}

}  // namespace egt::simcheck
