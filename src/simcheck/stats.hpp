// Paper-validation statistical suite: long Monte-Carlo runs of the real
// engines checked against closed-form and mean-field predictions at 99%
// confidence with pinned seeds. Observables:
//   1. Fermi adoption rate — NatureAgent::decide_adoption frequency vs
//      pop::fermi_probability (detailed balance of the imitation kernel).
//   2. Fixation probability — a lone ALLD invading ALLC under pairwise
//      comparison vs the constant-gamma birth-death closed form
//      rho = (1 - gamma) / (1 - gamma^N), gamma = exp(-beta * delta)
//      (Traulsen et al. 2007; delta = (N+2)/(N-1) for the paper payoff
//      under per-round-average scaling, independent of the mutant count).
//   3. Stationary strategy distribution — pure mutation dynamics
//      (pc_rate 0) must leave the memory-one pure-strategy marginal
//      uniform over all 16 tables (chi-square, df 15).
//   4. Cooperation rate under noise — ALLC self-play with flip noise eps
//      must cooperate at rate 1 - eps (binomial, Wilson interval).
//   5. Replicator trajectories (one observable per preset: ipd,
//      hawk_dove, stag_hunt, rps) — replicated agent runs, cooperation
//      censused along the trajectory, vs the mean-field ODE prediction
//      from analysis::meanfield (DESIGN.md §13). Accepted when the
//      replicate mean sits within z99 standard errors of the ODE plus an
//      O(1/N) finite-population allowance.
//   6. Exact Moran solver identity — the transition-matrix fixation
//      solve must reproduce the constant-gap closed form to 1e-12
//      relative (deterministic linear algebra, no Monte Carlo).
//   7. Moran MC vs exact — Monte-Carlo fixation of a hawk invading doves
//      (no closed form: the payoff gap varies with the mutant count) vs
//      the exact chain solve, Wilson interval.
// Deterministic: same seed, same verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace egt::simcheck {

/// Two-sided 99% standard-normal quantile (for Wilson intervals).
inline constexpr double kZ99TwoSided = 2.5758293035489004;
/// One-sided 99% standard-normal quantile (for chi-square tail tests).
inline constexpr double kZ99OneSided = 2.3263478740408408;

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Wilson score interval for a binomial proportion at normal quantile `z`.
Interval wilson(std::uint64_t successes, std::uint64_t trials, double z);

/// Upper 99% chi-square quantile via the Wilson–Hilferty cube
/// approximation (accurate to ~1e-3 relative for df >= 3).
double chi_square_quantile99(int df);

/// Closed-form fixation probability of one mutant in a birth-death chain
/// whose backward/forward transition ratio is the constant
/// gamma = exp(-beta * delta). delta ~ 0 degenerates to neutral 1/n.
double fermi_fixation_probability(double delta, double beta, unsigned n);

struct ObservableCheck {
  std::string name;
  double observed = 0.0;     ///< measured statistic
  double expected_lo = 0.0;  ///< acceptance interval at 99% confidence
  double expected_hi = 0.0;
  bool passed = false;
  std::string detail;  ///< human-readable summary (counts, prediction)
};

struct StatsReport {
  std::vector<ObservableCheck> checks;
  bool passed() const noexcept {
    for (const auto& c : checks) {
      if (!c.passed) return false;
    }
    return !checks.empty();
  }
};

/// Presets covered by the replicator-trajectory observables inside
/// run_statistical_suite (the nightly sweep runs a superset).
const std::vector<std::string>& replicator_stat_presets();

/// Mean-field cross-validation for one registry preset: replicated agent
/// runs censused along the trajectory vs the replicator-ODE prediction
/// compiled from the identical SimConfig. Any preset the preview engine
/// supports is accepted (throws std::invalid_argument otherwise), so the
/// nightly sweep can range beyond replicator_stat_presets().
ObservableCheck check_replicator_trajectory(const std::string& preset,
                                            std::uint64_t seed, bool quick);

/// Run all observables. `quick` shrinks the Monte-Carlo budgets about
/// 5x for CI smoke use (the confidence machinery keeps the false-positive
/// rate at the same 1%-per-observable either way).
StatsReport run_statistical_suite(std::uint64_t seed, bool quick = false);

}  // namespace egt::simcheck
