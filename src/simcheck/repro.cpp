#include "simcheck/repro.hpp"

#include <sstream>
#include <stdexcept>

#include "simcheck/config_json.hpp"
#include "util/json.hpp"

namespace egt::simcheck {

std::string repro_to_json(const CaseResult& result, bool include_trace) {
  const auto& spec = result.spec;
  std::ostringstream os;
  util::JsonWriter w(os, 2);
  w.begin_object();
  w.field("schema", kReproSchema);
  w.field("case_seed", spec.case_seed);
  w.field("nranks", spec.nranks);
  w.field("sset_threads", spec.sset_threads);
  w.field("agent_threads", spec.agent_threads);
  w.field("restore_at", spec.restore_at);
  w.field("ft_checkpoint_every", spec.ft_checkpoint_every);
  w.key("kills").begin_array();
  for (const auto& k : spec.kills) {
    w.begin_object();
    w.field("rank", k.rank);
    w.field("generation", k.generation);
    w.end_object();
  }
  w.end_array();
  w.key("torn_checkpoints").begin_array();
  for (const auto& t : spec.torn) {
    w.begin_object();
    w.field("rank", t.rank);
    w.field("generation", t.generation);
    w.end_object();
  }
  w.end_array();
  w.key("engines").begin_array();
  for (const auto kind : spec.engines) w.value(engine_kind_name(kind));
  w.end_array();
  w.key("config");
  write_config(w, spec.config);
  w.key("failures").begin_array();
  for (const auto& f : result.failures) {
    w.begin_object();
    w.field("engine", engine_kind_name(f.engine));
    w.field("what", f.what);
    w.end_object();
  }
  w.end_array();
  if (include_trace && !result.reference.trace.empty()) {
    w.field("trace_hex", to_hex(encode_trace(result.reference.trace)));
  }
  w.end_object();
  return os.str();
}

ParsedRepro parse_repro(const std::string& json_text) {
  const auto doc = util::JsonValue::parse(json_text);
  if (!doc.is_object()) {
    throw std::runtime_error("simcheck repro: expected a JSON object");
  }
  if (const auto* s = doc.find("schema")) {
    if (s->as_string() != kReproSchema) {
      throw std::runtime_error("simcheck repro: unexpected schema \"" +
                               s->as_string() + "\"");
    }
  }
  ParsedRepro parsed;
  auto& spec = parsed.spec;
  if (const auto* v = doc.find("case_seed")) spec.case_seed = v->as_u64();
  if (const auto* v = doc.find("nranks")) {
    spec.nranks = static_cast<int>(v->as_u64());
  }
  if (const auto* v = doc.find("sset_threads")) {
    spec.sset_threads = static_cast<unsigned>(v->as_u64());
  }
  if (const auto* v = doc.find("agent_threads")) {
    spec.agent_threads = static_cast<unsigned>(v->as_u64());
  }
  if (const auto* v = doc.find("restore_at")) spec.restore_at = v->as_u64();
  if (const auto* v = doc.find("ft_checkpoint_every")) {
    spec.ft_checkpoint_every = v->as_u64();
  }
  if (const auto* v = doc.find("kills")) {
    for (const auto& item : v->items()) {
      spec.kills.push_back({static_cast<int>(item.at("rank").as_u64()),
                            item.at("generation").as_u64()});
    }
  }
  if (const auto* v = doc.find("torn_checkpoints")) {
    for (const auto& item : v->items()) {
      spec.torn.push_back({static_cast<int>(item.at("rank").as_u64()),
                           item.at("generation").as_u64()});
    }
  }
  if (const auto* v = doc.find("engines")) {
    for (const auto& item : v->items()) {
      const auto kind = engine_kind_from_name(item.as_string());
      if (!kind) {
        throw std::runtime_error("simcheck repro: unknown engine \"" +
                                 item.as_string() + "\"");
      }
      spec.engines.push_back(*kind);
    }
  }
  spec.config = config_from_json(doc.at("config"));
  if (const auto* v = doc.find("trace_hex")) {
    parsed.trace = decode_trace(from_hex(v->as_string()));
  }
  return parsed;
}

ReplayResult replay_repro(const std::string& json_text) {
  auto parsed = parse_repro(json_text);
  if (!normalize_spec(parsed.spec)) {
    throw std::runtime_error(
        "simcheck repro: spec has no valid form (no engines left after "
        "normalization)");
  }
  ReplayResult replay;
  replay.result = run_case(parsed.spec);
  if (parsed.trace && replay.result.reference.ok) {
    replay.recorded_divergence =
        compare_traces(*parsed.trace, replay.result.reference.trace);
  }
  return replay;
}

}  // namespace egt::simcheck
