// Kernel cross-validation (DESIGN.md §12 tolerance policy): fuzz the batch
// fitness kernels against their references.
//
//  * Mem1 batch: random memory-one pair batches (mixed + pure, with and
//    without noise, remainder-lane sizes included) — the AVX2 lane kernel
//    must agree with the scalar reference to 1e-12 relative, and the
//    scalar reference must be bit-identical to markov::expected_game_mem1.
//  * Pure walker: random deterministic pure pairs across memory depths —
//    batch::exact_pure_game_fast must be bit-identical to
//    markov::exact_pure_game, and batch::run_pure_game to the legacy
//    round loop.
//
// Exposed as `simcheck --kernels`; runs whatever kernels this build/CPU
// provides (the AVX2 half is skipped, not failed, on scalar-only builds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace egt::simcheck {

struct KernelCheck {
  std::string name;
  bool passed = false;
  std::uint64_t cases = 0;      ///< pairs compared
  double worst_rel = 0.0;       ///< worst relative error observed
  std::string detail;           ///< first failure, or summary
};

struct KernelReport {
  std::vector<KernelCheck> checks;
  bool avx2_available = false;  ///< compiled in and CPU-supported
  bool passed() const noexcept {
    for (const auto& c : checks) {
      if (!c.passed) return false;
    }
    return true;
  }
};

/// Run the full kernel cross-validation suite (deterministic for a seed).
KernelReport run_kernel_checks(std::uint64_t seed);

}  // namespace egt::simcheck
