// SimConfig <-> JSON ("egt.sim_config/v1"): the config payload embedded in
// simcheck repro files, so a failing fuzz case replays from the JSON alone.
//
// Round-trip contract: config_from_json(config_to_json(c)) compares equal
// field-by-field for every valid config whose integer fields fit in 2^53
// (the JsonValue number limit — the fuzzer keeps seeds in 32 bits).
#pragma once

#include <string>

#include "core/config.hpp"
#include "util/json.hpp"

namespace egt::simcheck {

inline constexpr const char* kConfigSchema = "egt.sim_config/v1";

/// Write `config` as one JSON object (including the "schema" field).
void write_config(util::JsonWriter& w, const core::SimConfig& config);

/// The object write_config produces, as a compact string.
std::string config_to_json(const core::SimConfig& config);

/// Parse a config object (as produced by write_config). Unknown keys are
/// ignored; missing keys keep the SimConfig default. Throws
/// std::runtime_error on type errors or unknown enum names.
core::SimConfig config_from_json(const util::JsonValue& v);
core::SimConfig config_from_json_text(const std::string& text);

}  // namespace egt::simcheck
