#include "simcheck/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "game/batch.hpp"
#include "game/ipd.hpp"
#include "game/markov.hpp"
#include "game/payoff.hpp"
#include "game/simd.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {

namespace {

constexpr double kCrossKernelTol = 1e-12;  // AVX2 vs scalar, relative

double rel_err(double got, double want) {
  const double scale = std::max(1.0, std::fabs(want));
  return std::fabs(got - want) / scale;
}

void note_failure(KernelCheck& c, const std::string& what) {
  if (c.detail.empty()) c.detail = what;
  c.passed = false;
}

game::PayoffMatrix sample_payoff(util::Xoshiro256& rng, bool integral) {
  if (integral) return game::paper_payoff();
  return game::PayoffMatrix{3.0 + util::uniform01(rng),
                            -util::uniform01(rng),
                            4.0 + util::uniform01(rng),
                            util::uniform01(rng)};
}

/// AVX2 vs scalar on random mixed/pure batches (skipped when the AVX2
/// kernel is unavailable), plus scalar vs markov bit-identity.
void check_mem1(KernelReport& report, util::Xoshiro256& rng) {
  KernelCheck cross{"mem1.avx2_vs_scalar", true, 0, 0.0, {}};
  KernelCheck exact{"mem1.scalar_vs_markov_bitwise", true, 0, 0.0, {}};
  const bool avx2 = report.avx2_available;

  for (int iter = 0; iter < 64; ++iter) {
    const std::size_t n = 1 + util::uniform_below(rng, 9);  // remainder lanes
    const double eps = (iter % 3 == 0) ? 0.0 : 0.25 * util::uniform01(rng);
    const game::PayoffMatrix payoff = sample_payoff(rng, iter % 2 == 0);
    const auto rounds =
        static_cast<std::uint32_t>(1 + util::uniform_below(rng, 400));

    game::batch::Mem1Batch batch;
    std::vector<game::Strategy> as, bs;
    for (std::size_t k = 0; k < n; ++k) {
      // Mix pure and mixed memory-one strategies in one batch.
      if (util::uniform_below(rng, 4) == 0) {
        as.emplace_back(game::PureStrategy::random(1, rng));
      } else {
        as.emplace_back(game::MixedStrategy::random(1, rng));
      }
      bs.emplace_back(game::MixedStrategy::random(1, rng));
      batch.push_pair(as.back(), bs.back(), eps);
    }

    std::vector<game::batch::BatchTotals> sca(n);
    game::batch::expected_totals_mem1_scalar(batch, payoff, rounds,
                                             sca.data());
    for (std::size_t k = 0; k < n; ++k) {
      const game::GameResult want = game::markov::expected_game_mem1(
          as[k], bs[k], payoff, rounds, eps);
      exact.cases++;
      if (sca[k].payoff_a != want.payoff_a ||
          sca[k].payoff_b != want.payoff_b) {
        std::ostringstream os;
        os << "scalar kernel diverges from markov at iter " << iter
           << " pair " << k << ": " << sca[k].payoff_a
           << " != " << want.payoff_a;
        note_failure(exact, os.str());
      }
    }
    if (!avx2) continue;
    std::vector<game::batch::BatchTotals> avx(n);
    game::batch::expected_totals_mem1_avx2(batch, payoff, rounds, avx.data());
    for (std::size_t k = 0; k < n; ++k) {
      cross.cases++;
      const double worst = std::max(
          {rel_err(avx[k].payoff_a, sca[k].payoff_a),
           rel_err(avx[k].payoff_b, sca[k].payoff_b),
           rel_err(avx[k].coop_a, sca[k].coop_a),
           rel_err(avx[k].coop_b, sca[k].coop_b)});
      cross.worst_rel = std::max(cross.worst_rel, worst);
      if (worst > kCrossKernelTol) {
        std::ostringstream os;
        os << "avx2 vs scalar rel err " << worst << " > " << kCrossKernelTol
           << " at iter " << iter << " pair " << k;
        note_failure(cross, os.str());
      }
    }
  }
  if (cross.detail.empty()) {
    std::ostringstream os;
    if (avx2) {
      os << "worst rel err " << cross.worst_rel;
    } else {
      os << "skipped: AVX2 kernel unavailable";
    }
    cross.detail = os.str();
  }
  report.checks.push_back(std::move(cross));
  report.checks.push_back(std::move(exact));
}

/// Pure walkers vs markov::exact_pure_game / the legacy round loop —
/// bitwise, across memory depths and round counts.
void check_pure(KernelReport& report, util::Xoshiro256& rng) {
  KernelCheck walker{"pure.walker_vs_markov_bitwise", true, 0, 0.0, {}};
  KernelCheck sampled{"pure.run_vs_round_loop_bitwise", true, 0, 0.0, {}};

  for (int iter = 0; iter < 64; ++iter) {
    const int memory = static_cast<int>(util::uniform_below(rng, 4));
    const auto rounds =
        static_cast<std::uint32_t>(1 + util::uniform_below(rng, 1000));
    const game::PayoffMatrix payoff = sample_payoff(rng, iter % 2 == 0);
    const game::PureStrategy a = game::PureStrategy::random(memory, rng);
    const game::PureStrategy b = game::PureStrategy::random(memory, rng);

    const game::GameResult want =
        game::markov::exact_pure_game(a, b, payoff, rounds);
    const game::GameResult got =
        game::batch::exact_pure_game_fast(a, b, payoff, rounds);
    walker.cases++;
    if (got.payoff_a != want.payoff_a || got.payoff_b != want.payoff_b ||
        got.coop_a != want.coop_a || got.coop_b != want.coop_b) {
      std::ostringstream os;
      os << "walker diverges from exact_pure_game at iter " << iter
         << " (memory " << memory << ", rounds " << rounds << ")";
      note_failure(walker, os.str());
    }

    // The LinearSearch engine still runs the legacy loop (no fast path).
    const game::IpdParams params{payoff, rounds, 0.0};
    const game::IpdEngine linear(memory, params,
                                 game::LookupMode::LinearSearch);
    const game::GameResult loop = linear.play(a, b, util::StreamRng(0, 0));
    const game::GameResult fast =
        game::batch::run_pure_game(a, b, payoff, rounds);
    sampled.cases++;
    if (fast.payoff_a != loop.payoff_a || fast.payoff_b != loop.payoff_b ||
        fast.coop_a != loop.coop_a || fast.coop_b != loop.coop_b) {
      std::ostringstream os;
      os << "run_pure_game diverges from the round loop at iter " << iter
         << " (memory " << memory << ", rounds " << rounds << ")";
      note_failure(sampled, os.str());
    }
  }
  report.checks.push_back(std::move(walker));
  report.checks.push_back(std::move(sampled));
}

}  // namespace

KernelReport run_kernel_checks(std::uint64_t seed) {
  KernelReport report;
  report.avx2_available =
      game::simd::compiled_with_avx2() && game::simd::cpu_supports_avx2();
  util::Xoshiro256 rng(seed);
  check_mem1(report, rng);
  check_pure(report, rng);
  return report;
}

}  // namespace egt::simcheck
