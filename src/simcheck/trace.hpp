// Trace record/replay: capture the per-generation core::TracePoint stream
// of an engine run, compare two streams pointwise, and serialize a stream
// into a repro file ("egt.simcheck_trace/v1", core::wire conventions —
// the same magic+version+payload shape as the ft decision log).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace egt::simcheck {

/// TraceSink keyed by generation: point g lands in slot g, last write
/// wins. The overwrite semantics matter for the ft engine, where a
/// failed-over master replans (and re-emits) the generation its
/// predecessor died in — the replanned decision is identical by the
/// failover invariant, and if it is not, the table hash it carries
/// diverges and the comparison below reports it. Thread-safe: the ft
/// master role migrates across rank threads.
class TraceRecorder : public core::TraceSink {
 public:
  void on_point(const core::TracePoint& point) override;

  /// Recorded points, index == generation. Generations the run never
  /// reached (or a crashed master never re-emitted) keep `recorded` false.
  struct Slot {
    bool recorded = false;
    core::TracePoint point;
  };
  const std::vector<Slot>& slots() const noexcept { return slots_; }

  /// The recorded points of generations [0, n) where every slot is filled;
  /// stops at the first gap.
  std::vector<core::TracePoint> contiguous_points() const;

 private:
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

/// First pointwise divergence of two recorded streams.
struct TraceDivergence {
  std::uint64_t generation = 0;
  std::string detail;  ///< human-readable field-level description
};

/// Compare two streams; nullopt when equal. Streams of different lengths
/// diverge at the first missing generation. `fitness_hash` is compared
/// only when both sides recorded it (parallel recorders leave it 0).
std::optional<TraceDivergence> compare_traces(
    std::span<const core::TracePoint> a, std::span<const core::TracePoint> b);

/// Wire codec for a point stream (versioned; decode throws
/// core::CheckpointError on truncation/corruption).
std::vector<std::byte> encode_trace(std::span<const core::TracePoint> points);
std::vector<core::TracePoint> decode_trace(const std::vector<std::byte>& bytes);

/// Lower-case hex helpers for embedding the blob in a JSON repro.
std::string to_hex(std::span<const std::byte> bytes);
std::vector<std::byte> from_hex(const std::string& hex);

}  // namespace egt::simcheck
