// Harness self-test: prove the differential fuzzer + shrinker actually
// catch a realistic bug. run_broken_dedup drives a serial engine whose
// fitness tier is a copy of the strategy-interned dedup row path with a
// deliberately injected off-by-one (the row sum stops one opponent column
// short). run_self_test asserts the harness (a) flags the divergence and
// (b) delta-debugs the failing case down to a tiny (<= 4 SSet) repro.
#pragma once

#include <cstdint>
#include <string>

#include "simcheck/case.hpp"

namespace egt::simcheck {

/// EngineKind::SerialBrokenDedup implementation. `config` must be
/// well-mixed; the bug only manifests where the dedup path is active
/// (Analytic mode, dedup on, strategy-pure pairs).
EngineOutcome run_broken_dedup(const core::SimConfig& config);

struct SelfTestResult {
  bool caught = false;     ///< the initial case failed as it must
  bool shrunk = false;     ///< the shrinker kept it failing while reducing
  std::uint64_t final_ssets = 0;  ///< population size of the minimal repro
  std::uint64_t final_generations = 0;
  CaseSpec repro;          ///< the shrunk failing spec
  std::string detail;      ///< first failure line of the shrunk repro
  bool passed() const noexcept {
    return caught && shrunk && final_ssets <= 4;
  }
};

/// Run the injected-bug scenario end to end (deterministic for a seed).
SelfTestResult run_self_test(std::uint64_t seed);

}  // namespace egt::simcheck
