#include "simcheck/shrink.hpp"

#include <functional>
#include <vector>

namespace egt::simcheck {

namespace {

using Transform = std::function<bool(CaseSpec&)>;  // false = not applicable

// The candidate transformations, ordered so the big structural reductions
// run first (fewer, cheaper oracle calls on the small specs that follow).
std::vector<Transform> transforms() {
  std::vector<Transform> t;
  // Fewer generations.
  t.push_back([](CaseSpec& s) {
    if (s.config.generations <= 1) return false;
    s.config.generations /= 2;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.generations <= 1) return false;
    s.config.generations -= 1;
    return true;
  });
  // Smaller population.
  t.push_back([](CaseSpec& s) {
    if (s.config.ssets <= 2) return false;
    s.config.ssets = std::max<pop::SSetId>(2, s.config.ssets / 2);
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.ssets <= 2) return false;
    s.config.ssets -= 1;
    return true;
  });
  // Drop structure / stochasticity / dynamics complexity.
  t.push_back([](CaseSpec& s) {
    if (!s.config.interaction.structured()) return false;
    s.config.interaction = core::InteractionSpec{};
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.memory <= 1) return false;
    s.config.memory = 1;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.game.noise == 0.0) return false;
    s.config.game.noise = 0.0;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.game.rounds <= 1) return false;
    s.config.game.rounds = std::max<std::uint32_t>(1, s.config.game.rounds / 2);
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.update_rule == pop::UpdateRule::PairwiseComparison) {
      return false;
    }
    s.config.update_rule = pop::UpdateRule::PairwiseComparison;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.mutation_rate == 0.0) return false;
    s.config.mutation_rate = 0.0;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.config.lookup == game::LookupMode::Indexed) return false;
    s.config.lookup = game::LookupMode::Indexed;
    return true;
  });
  // Drop faults, restore point, thread tiers, ranks.
  t.push_back([](CaseSpec& s) {
    if (s.torn.empty()) return false;
    s.torn.clear();
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.kills.empty()) return false;
    s.kills.clear();
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.ft_checkpoint_every == 0 || !s.kills.empty() || !s.torn.empty()) {
      return false;
    }
    s.ft_checkpoint_every = 0;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.sset_threads == 0 && s.agent_threads == 0) return false;
    s.sset_threads = 0;
    s.agent_threads = 0;
    return true;
  });
  t.push_back([](CaseSpec& s) {
    if (s.nranks <= 2) return false;
    s.nranks = 2;
    return true;
  });
  // Drop engine variants one at a time (keep at least one).
  constexpr int kMaxEngineDrop = 8;
  for (int idx = 0; idx < kMaxEngineDrop; ++idx) {
    t.push_back([idx](CaseSpec& s) {
      if (s.engines.size() <= 1 ||
          static_cast<std::size_t>(idx) >= s.engines.size()) {
        return false;
      }
      s.engines.erase(s.engines.begin() + idx);
      return true;
    });
  }
  return t;
}

}  // namespace

ShrinkResult shrink_case(const CaseSpec& spec, int max_attempts) {
  ShrinkResult best;
  best.spec = spec;
  best.result = run_case(spec);
  ++best.attempts;
  if (best.result.passed()) return best;  // nothing to shrink

  const auto ts = transforms();
  bool progress = true;
  while (progress && best.attempts < max_attempts) {
    progress = false;
    for (const auto& apply : ts) {
      if (best.attempts >= max_attempts) break;
      CaseSpec candidate = best.spec;
      if (!apply(candidate)) continue;
      if (!normalize_spec(candidate)) continue;
      auto outcome = run_case(candidate);
      ++best.attempts;
      if (!outcome.passed()) {
        best.spec = std::move(candidate);
        best.result = std::move(outcome);
        ++best.accepted;
        // Fixed point: the outer loop re-runs every transformation (so
        // halving keeps halving) until a full pass accepts nothing.
        progress = true;
      }
    }
  }
  return best;
}

}  // namespace egt::simcheck
