#include "simcheck/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "analysis/fixation.hpp"
#include "core/engine.hpp"
#include "game/ipd.hpp"
#include "game/strategy.hpp"
#include "pop/fermi.hpp"
#include "pop/nature.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {

Interval wilson(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z / denom * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  // Clamp away the ulp of rounding that can push the bounds outside [0,1]
  // at degenerate counts.
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double chi_square_quantile99(int df) {
  const double d = static_cast<double>(df);
  const double a = 2.0 / (9.0 * d);
  const double c = 1.0 - a + kZ99OneSided * std::sqrt(a);
  return d * c * c * c;
}

double fermi_fixation_probability(double delta, double beta, unsigned n) {
  const double gamma = std::exp(-beta * delta);
  if (std::abs(1.0 - gamma) < 1e-12) {
    return 1.0 / static_cast<double>(n);
  }
  return (1.0 - gamma) / (1.0 - std::pow(gamma, static_cast<double>(n)));
}

namespace {

std::string format_ratio(std::uint64_t successes, std::uint64_t trials) {
  std::ostringstream os;
  os << successes << "/" << trials;
  return os.str();
}

// Observable 1: the empirical adoption frequency of the Nature Agent's
// Fermi decision must match pop::fermi_probability. Exercises the exact
// decide_adoption code path the engines run.
ObservableCheck check_fermi_adoption(std::uint64_t seed, bool quick) {
  const std::uint64_t trials = quick ? 20000 : 100000;
  const double teacher = 1.0;
  const double learner = 0.4;
  const double beta = 0.8;

  pop::NatureConfig nc;
  nc.ssets = 2;
  nc.memory = 1;
  nc.beta = beta;
  nc.seed = util::mix64(seed ^ 0x5157a7f0d8b2c3ULL);
  pop::NatureAgent agent(nc);

  std::uint64_t adopted = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    if (agent.decide_adoption(teacher, learner)) ++adopted;
  }
  const double expected = pop::fermi_probability(teacher, learner, beta);
  const auto ci = wilson(adopted, trials, kZ99TwoSided);

  ObservableCheck check;
  check.name = "fermi_adoption_rate";
  check.observed = static_cast<double>(adopted) / static_cast<double>(trials);
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "adoptions " << format_ratio(adopted, trials) << ", Fermi prediction "
     << expected << " (beta " << beta << ", delta " << (teacher - learner)
     << ")";
  check.detail = os.str();
  return check;
}

// Observable 2: Monte-Carlo fixation probability of one ALLD invading an
// ALLC population, against the constant-ratio birth-death closed form.
// Under PerRoundAverage scaling the paper payoff [R,S,T,P] = [3,0,4,1]
// gives a defector-minus-cooperator fitness gap of (N+2)/(N-1) regardless
// of how many defectors exist, so gamma = exp(-beta * (N+2)/(N-1)) exactly.
ObservableCheck check_fixation_probability(std::uint64_t seed, bool quick) {
  const std::uint32_t trials = quick ? 400 : 2000;
  const unsigned n = 8;
  const double beta = 1.0;

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = n;
  cfg.generations = 1;  // unused: fixation runs until absorption
  cfg.game.rounds = 8;
  cfg.game.noise = 0.0;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = beta;
  cfg.require_teacher_better = false;
  cfg.space = pop::StrategySpace::Pure;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.fitness_scale = core::FitnessScale::PerRoundAverage;
  cfg.seed = util::mix64(seed ^ 0xf1c3a7109b5d2eULL);

  const game::Strategy resident{game::PureStrategy(1)};  // ALLC
  const game::Strategy mutant{game::PureStrategy::from_bits("1111")};  // ALLD

  const double observed =
      analysis::fixation_probability(cfg, resident, mutant, trials, 100000);
  const double delta = (static_cast<double>(n) + 2.0) /
                       (static_cast<double>(n) - 1.0);
  const double expected = fermi_fixation_probability(delta, beta, n);
  const auto fixed =
      static_cast<std::uint64_t>(std::llround(observed * trials));
  const auto ci = wilson(fixed, trials, kZ99TwoSided);

  ObservableCheck check;
  check.name = "fixation_probability";
  check.observed = observed;
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "fixations " << format_ratio(fixed, trials) << ", closed form "
     << expected << " (gamma = exp(-" << beta << " * " << delta << "))";
  check.detail = os.str();
  return check;
}

// Observable 3: with imitation off (pc_rate 0) the dynamics reduce to
// repeated uniform mutation, whose stationary marginal over the 16
// memory-one pure tables is uniform. Chi-square over SSet 0's table
// sampled at widely spaced generations (spacing >> 1/mutation hit rate,
// so successive samples are effectively independent).
ObservableCheck check_stationary_uniform(std::uint64_t seed, bool quick) {
  const std::uint64_t samples = quick ? 800 : 3200;
  const std::uint64_t spacing = 50;   // P(SSet 0 untouched) = 0.8^50 ~ 1e-5
  const std::uint64_t burn_in = 100;

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 4;
  cfg.generations = 1;  // stepped manually below
  cfg.game.rounds = 4;
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 0.8;
  cfg.space = pop::StrategySpace::Pure;
  cfg.mutation_kernel = pop::MutationKernel::UniformProbs;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = util::mix64(seed ^ 0x2b99d1f0835a47ULL);

  core::Engine engine(cfg);
  for (std::uint64_t g = 0; g < burn_in; ++g) engine.step();

  std::array<std::uint64_t, 16> counts{};
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (std::uint64_t g = 0; g < spacing; ++g) engine.step();
    const auto& table = engine.population().strategy(0).as_pure().table();
    std::uint32_t index = 0;
    for (std::uint32_t bit = 0; bit < 4; ++bit) {
      if (table.get(bit)) index |= 1u << bit;
    }
    ++counts[index];
  }

  const double expected_count = static_cast<double>(samples) / 16.0;
  double statistic = 0.0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected_count;
    statistic += d * d / expected_count;
  }
  const double quantile = chi_square_quantile99(15);

  ObservableCheck check;
  check.name = "stationary_uniform";
  check.observed = statistic;
  check.expected_lo = 0.0;
  check.expected_hi = quantile;
  check.passed = statistic <= quantile;
  std::ostringstream os;
  os << "chi-square " << statistic << " over " << samples
     << " samples (df 15, 99% quantile " << quantile << ")";
  check.detail = os.str();
  return check;
}

// Observable 4: ALLC self-play under flip noise eps. The intended move is
// always Cooperate, each execution flips independently with probability
// eps, so every one of the 2 * rounds * games recorded moves is an
// independent Bernoulli(1 - eps) cooperation.
ObservableCheck check_cooperation_rate(std::uint64_t seed, bool quick) {
  const std::uint64_t games = quick ? 200 : 1000;
  const std::uint32_t rounds = 32;
  const double eps = 0.1;

  game::IpdParams params;
  params.rounds = rounds;
  params.noise = eps;
  const game::IpdEngine ipd(1, params);
  const game::PureStrategy allc(1);

  std::uint64_t coop = 0;
  const std::uint64_t moves = 2ULL * rounds * games;
  for (std::uint64_t g = 0; g < games; ++g) {
    const auto result = ipd.play(
        allc, allc,
        util::StreamRng(util::mix64(seed ^ 0x77c4be1f25a093ULL),
                        util::stream_key(g, 0)));
    coop += result.coop_a + result.coop_b;
  }
  const double expected = 1.0 - eps;
  const auto ci = wilson(coop, moves, kZ99TwoSided);

  ObservableCheck check;
  check.name = "cooperation_rate_noise";
  check.observed = static_cast<double>(coop) / static_cast<double>(moves);
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "cooperative moves " << format_ratio(coop, moves)
     << ", prediction 1 - eps = " << expected;
  check.detail = os.str();
  return check;
}

}  // namespace

StatsReport run_statistical_suite(std::uint64_t seed, bool quick) {
  StatsReport report;
  report.checks.push_back(check_fermi_adoption(seed, quick));
  report.checks.push_back(check_fixation_probability(seed, quick));
  report.checks.push_back(check_stationary_uniform(seed, quick));
  report.checks.push_back(check_cooperation_rate(seed, quick));
  return report;
}

}  // namespace egt::simcheck
