#include "simcheck/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "analysis/fixation.hpp"
#include "analysis/meanfield/moran.hpp"
#include "analysis/meanfield/preview.hpp"
#include "core/engine.hpp"
#include "game/ipd.hpp"
#include "game/named.hpp"
#include "game/spec/registry.hpp"
#include "game/strategy.hpp"
#include "pop/fermi.hpp"
#include "pop/nature.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {

Interval wilson(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z / denom * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  // Clamp away the ulp of rounding that can push the bounds outside [0,1]
  // at degenerate counts.
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double chi_square_quantile99(int df) {
  const double d = static_cast<double>(df);
  const double a = 2.0 / (9.0 * d);
  const double c = 1.0 - a + kZ99OneSided * std::sqrt(a);
  return d * c * c * c;
}

double fermi_fixation_probability(double delta, double beta, unsigned n) {
  const double gamma = std::exp(-beta * delta);
  if (std::abs(1.0 - gamma) < 1e-12) {
    return 1.0 / static_cast<double>(n);
  }
  return (1.0 - gamma) / (1.0 - std::pow(gamma, static_cast<double>(n)));
}

namespace {

std::string format_ratio(std::uint64_t successes, std::uint64_t trials) {
  std::ostringstream os;
  os << successes << "/" << trials;
  return os.str();
}

// Observable 1: the empirical adoption frequency of the Nature Agent's
// Fermi decision must match pop::fermi_probability. Exercises the exact
// decide_adoption code path the engines run.
ObservableCheck check_fermi_adoption(std::uint64_t seed, bool quick) {
  const std::uint64_t trials = quick ? 20000 : 100000;
  const double teacher = 1.0;
  const double learner = 0.4;
  const double beta = 0.8;

  pop::NatureConfig nc;
  nc.ssets = 2;
  nc.memory = 1;
  nc.beta = beta;
  nc.seed = util::mix64(seed ^ 0x5157a7f0d8b2c3ULL);
  pop::NatureAgent agent(nc);

  std::uint64_t adopted = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    if (agent.decide_adoption(teacher, learner)) ++adopted;
  }
  const double expected = pop::fermi_probability(teacher, learner, beta);
  const auto ci = wilson(adopted, trials, kZ99TwoSided);

  ObservableCheck check;
  check.name = "fermi_adoption_rate";
  check.observed = static_cast<double>(adopted) / static_cast<double>(trials);
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "adoptions " << format_ratio(adopted, trials) << ", Fermi prediction "
     << expected << " (beta " << beta << ", delta " << (teacher - learner)
     << ")";
  check.detail = os.str();
  return check;
}

// Observable 2: Monte-Carlo fixation probability of one ALLD invading an
// ALLC population, against the constant-ratio birth-death closed form.
// Under PerRoundAverage scaling the paper payoff [R,S,T,P] = [3,0,4,1]
// gives a defector-minus-cooperator fitness gap of (N+2)/(N-1) regardless
// of how many defectors exist, so gamma = exp(-beta * (N+2)/(N-1)) exactly.
ObservableCheck check_fixation_probability(std::uint64_t seed, bool quick) {
  const std::uint32_t trials = quick ? 400 : 2000;
  const unsigned n = 8;
  const double beta = 1.0;

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = n;
  cfg.generations = 1;  // unused: fixation runs until absorption
  cfg.game.rounds = 8;
  cfg.game.noise = 0.0;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = beta;
  cfg.require_teacher_better = false;
  cfg.space = pop::StrategySpace::Pure;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.fitness_scale = core::FitnessScale::PerRoundAverage;
  cfg.seed = util::mix64(seed ^ 0xf1c3a7109b5d2eULL);

  const game::Strategy resident{game::PureStrategy(1)};  // ALLC
  const game::Strategy mutant{game::PureStrategy::from_bits("1111")};  // ALLD

  const double observed =
      analysis::fixation_probability(cfg, resident, mutant, trials, 100000);
  const double delta = (static_cast<double>(n) + 2.0) /
                       (static_cast<double>(n) - 1.0);
  const double expected = fermi_fixation_probability(delta, beta, n);
  const auto fixed =
      static_cast<std::uint64_t>(std::llround(observed * trials));
  const auto ci = wilson(fixed, trials, kZ99TwoSided);

  ObservableCheck check;
  check.name = "fixation_probability";
  check.observed = observed;
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "fixations " << format_ratio(fixed, trials) << ", closed form "
     << expected << " (gamma = exp(-" << beta << " * " << delta << "))";
  check.detail = os.str();
  return check;
}

// Observable 3: with imitation off (pc_rate 0) the dynamics reduce to
// repeated uniform mutation, whose stationary marginal over the 16
// memory-one pure tables is uniform. Chi-square over SSet 0's table
// sampled at widely spaced generations (spacing >> 1/mutation hit rate,
// so successive samples are effectively independent).
ObservableCheck check_stationary_uniform(std::uint64_t seed, bool quick) {
  const std::uint64_t samples = quick ? 800 : 3200;
  const std::uint64_t spacing = 50;   // P(SSet 0 untouched) = 0.8^50 ~ 1e-5
  const std::uint64_t burn_in = 100;

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 4;
  cfg.generations = 1;  // stepped manually below
  cfg.game.rounds = 4;
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 0.8;
  cfg.space = pop::StrategySpace::Pure;
  cfg.mutation_kernel = pop::MutationKernel::UniformProbs;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = util::mix64(seed ^ 0x2b99d1f0835a47ULL);

  core::Engine engine(cfg);
  for (std::uint64_t g = 0; g < burn_in; ++g) engine.step();

  std::array<std::uint64_t, 16> counts{};
  for (std::uint64_t s = 0; s < samples; ++s) {
    for (std::uint64_t g = 0; g < spacing; ++g) engine.step();
    const auto& table = engine.population().strategy(0).as_pure().table();
    std::uint32_t index = 0;
    for (std::uint32_t bit = 0; bit < 4; ++bit) {
      if (table.get(bit)) index |= 1u << bit;
    }
    ++counts[index];
  }

  const double expected_count = static_cast<double>(samples) / 16.0;
  double statistic = 0.0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected_count;
    statistic += d * d / expected_count;
  }
  const double quantile = chi_square_quantile99(15);

  ObservableCheck check;
  check.name = "stationary_uniform";
  check.observed = statistic;
  check.expected_lo = 0.0;
  check.expected_hi = quantile;
  check.passed = statistic <= quantile;
  std::ostringstream os;
  os << "chi-square " << statistic << " over " << samples
     << " samples (df 15, 99% quantile " << quantile << ")";
  check.detail = os.str();
  return check;
}

// Observable 4: ALLC self-play under flip noise eps. The intended move is
// always Cooperate, each execution flips independently with probability
// eps, so every one of the 2 * rounds * games recorded moves is an
// independent Bernoulli(1 - eps) cooperation.
ObservableCheck check_cooperation_rate(std::uint64_t seed, bool quick) {
  const std::uint64_t games = quick ? 200 : 1000;
  const std::uint32_t rounds = 32;
  const double eps = 0.1;

  game::IpdParams params;
  params.rounds = rounds;
  params.noise = eps;
  const game::IpdEngine ipd(1, params);
  const game::PureStrategy allc(1);

  std::uint64_t coop = 0;
  const std::uint64_t moves = 2ULL * rounds * games;
  for (std::uint64_t g = 0; g < games; ++g) {
    const auto result = ipd.play(
        allc, allc,
        util::StreamRng(util::mix64(seed ^ 0x77c4be1f25a093ULL),
                        util::stream_key(g, 0)));
    coop += result.coop_a + result.coop_b;
  }
  const double expected = 1.0 - eps;
  const auto ci = wilson(coop, moves, kZ99TwoSided);

  ObservableCheck check;
  check.name = "cooperation_rate_noise";
  check.observed = static_cast<double>(coop) / static_cast<double>(moves);
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(expected);
  std::ostringstream os;
  os << "cooperative moves " << format_ratio(coop, moves)
     << ", prediction 1 - eps = " << expected;
  check.detail = os.str();
  return check;
}

// FNV-1a over the preset name: a build-independent per-preset seed fold
// (std::hash would pin different streams on different stdlibs).
std::uint64_t fold_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Observables 6 & 7 share the hawk-dove invasion setup: the fitness gap
// between a hawk mutant and dove residents varies with the mutant count,
// so no constant-gamma closed form exists — the exact chain solve is the
// only ground truth.
core::SimConfig hawk_dove_invasion_config(std::uint64_t seed) {
  core::SimConfig cfg;
  cfg.game = *game::find_game("hawk_dove");
  cfg.memory = 0;
  cfg.ssets = 8;
  cfg.generations = 1;  // unused: fixation runs until absorption
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 1.0;
  cfg.require_teacher_better = false;
  cfg.space = pop::StrategySpace::Pure;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.fitness_scale = core::FitnessScale::PerRoundAverage;
  cfg.seed = util::mix64(seed ^ 0x6d0c41e9a27f35ULL);
  return cfg;
}

// Observable 5 (one per preset): R independent agent runs of a registry
// preset, cooperation censused at four points along the trajectory, vs
// the replicator-ODE prediction compiled from the identical SimConfig by
// analysis::meanfield. Paired design: make_initial_population draws a
// seed-dependent initial mix, so each replicate's ODE is integrated from
// that replicate's own initial census — the paired difference cancels
// the O(1/sqrt(N)) initial-mix scatter that would otherwise dominate.
// The drift is exact in expectation, so the mean paired difference must
// sit within z99 standard errors of zero plus a kBiasScale/N allowance
// for the fluctuation-curvature coupling the mean field drops.
ObservableCheck replicator_trajectory_check(const std::string& preset,
                                            std::uint64_t seed, bool quick) {
  const std::uint32_t replicates = quick ? 10 : 32;
  const std::uint32_t n = quick ? 128 : 256;
  const std::uint64_t generations = quick ? 200 : 400;
  const double kBiasScale = 4.0;

  const auto* spec = game::find_game(preset);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown game preset: " + preset);
  }
  core::SimConfig cfg;
  cfg.game = *spec;
  cfg.memory = 0;
  cfg.ssets = n;
  cfg.generations = generations;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.01;
  cfg.beta = 2.0;
  cfg.space = pop::StrategySpace::Pure;
  cfg.mutation_kernel = pop::MutationKernel::UniformProbs;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = util::mix64(seed ^ fold_name(preset));

  const auto preview = analysis::meanfield::build_preview_model(cfg);

  std::vector<double> census(4);
  for (std::size_t i = 0; i < census.size(); ++i) {
    census[i] = static_cast<double>(generations) * (i + 1) / census.size();
  }

  std::unordered_map<std::uint64_t, std::size_t> class_of;
  for (std::size_t c = 0; c < preview.classes.size(); ++c) {
    class_of[preview.classes[c].hash()] = c;
  }
  const auto census_mix = [&](const core::Engine& engine) {
    std::vector<double> x(preview.classes.size(), 0.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      x[class_of.at(engine.population().strategy(i).hash())] += 1.0 / n;
    }
    return x;
  };

  std::vector<double> diffs;
  diffs.reserve(replicates);
  double mean_obs = 0.0, mean_pred = 0.0;
  for (std::uint32_t r = 0; r < replicates; ++r) {
    auto trial = cfg;
    trial.seed =
        util::mix64(cfg.seed + 0x9e3779b97f4a7c15ULL * (r + 1));
    core::Engine engine(trial);

    const auto ode_states = analysis::meanfield::sample_at(
        preview.model, census_mix(engine), census);
    double pred = 0.0;
    for (const auto& state : ode_states) pred += preview.cooperation(state);
    pred /= static_cast<double>(ode_states.size());

    double obs = 0.0;
    std::uint64_t at = 0;
    for (const double t : census) {
      const auto target = static_cast<std::uint64_t>(t);
      engine.run(target - at);
      at = target;
      obs += preview.cooperation(census_mix(engine));
    }
    obs /= static_cast<double>(census.size());

    diffs.push_back(obs - pred);
    mean_obs += obs / replicates;
    mean_pred += pred / replicates;
  }

  double mean_diff = 0.0;
  for (const double d : diffs) mean_diff += d;
  mean_diff /= static_cast<double>(replicates);
  double var = 0.0;
  for (const double d : diffs) var += (d - mean_diff) * (d - mean_diff);
  var /= static_cast<double>(replicates - 1);
  const double se = std::sqrt(var / replicates);
  const double allowance = kZ99TwoSided * se + kBiasScale / n;

  ObservableCheck check;
  check.name = "replicator_traj_" + preset;
  check.observed = mean_obs;
  check.expected_lo = mean_pred - allowance;
  check.expected_hi = mean_pred + allowance;
  check.passed = std::abs(mean_diff) <= allowance;
  std::ostringstream os;
  os << "paired ODE prediction " << mean_pred << ", replicate mean "
     << mean_obs << " (diff " << mean_diff << " +/- " << se << " SE) over "
     << replicates << " runs of " << generations << " generations (N " << n
     << ", bias allowance " << kBiasScale / n << ")";
  check.detail = os.str();
  return check;
}

// Observable 6: the exact Moran solver must reproduce the constant-gap
// closed form rho = (1 - gamma)/(1 - gamma^N) to 1e-12 relative on the
// ALLD-vs-ALLC chain whose gap delta = (N+2)/(N-1) is k-independent.
// Deterministic linear algebra: no Monte Carlo, no confidence interval.
ObservableCheck check_moran_exact_closed_form(std::uint64_t seed) {
  (void)seed;  // an algebraic identity: the seed plays no role
  const unsigned n = 16;
  const double beta = 1.0;

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = n;
  cfg.generations = 1;
  cfg.game.rounds = 8;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = beta;
  cfg.space = pop::StrategySpace::Pure;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.fitness_scale = core::FitnessScale::PerRoundAverage;

  const game::Strategy resident{game::PureStrategy(1)};  // ALLC
  const game::Strategy mutant{game::PureStrategy::from_bits("1111")};
  const double exact =
      analysis::meanfield::exact_fixation_probability(cfg, resident, mutant);
  const double delta = (static_cast<double>(n) + 2.0) /
                       (static_cast<double>(n) - 1.0);
  const double closed =
      analysis::meanfield::constant_gap_closed_form(n, beta, delta);
  const double relative = std::abs(exact - closed) / closed;

  ObservableCheck check;
  check.name = "moran_exact_closed_form";
  check.observed = relative;
  check.expected_lo = 0.0;
  check.expected_hi = 1e-12;
  check.passed = relative <= 1e-12;
  std::ostringstream os;
  os << "exact chain rho " << exact << " vs closed form " << closed
     << " (N " << n << ", delta " << delta << "), relative error "
     << relative;
  check.detail = os.str();
  return check;
}

// Observable 7: Monte-Carlo fixation of one hawk invading doves vs the
// exact chain solve — the k-dependent-gap case the closed form cannot
// cover, bounding analysis::fixation_probability by the solver's rho_1
// at the Wilson 99% interval.
ObservableCheck check_moran_mc_vs_exact(std::uint64_t seed, bool quick) {
  const std::uint32_t trials = quick ? 300 : 1200;
  auto cfg = hawk_dove_invasion_config(seed);

  const game::Strategy resident{game::PureStrategy(0)};  // all-dove
  const game::Strategy mutant = game::named::all_d(0);   // all-hawk
  const double exact =
      analysis::meanfield::exact_fixation_probability(cfg, resident, mutant);
  const double observed =
      analysis::fixation_probability(cfg, resident, mutant, trials, 100000);
  const auto fixed =
      static_cast<std::uint64_t>(std::llround(observed * trials));
  const auto ci = wilson(fixed, trials, kZ99TwoSided);

  ObservableCheck check;
  check.name = "moran_mc_vs_exact";
  check.observed = observed;
  check.expected_lo = ci.lo;
  check.expected_hi = ci.hi;
  check.passed = ci.contains(exact);
  std::ostringstream os;
  os << "fixations " << format_ratio(fixed, trials)
     << ", exact chain solve rho_1 = " << exact << " (hawk into "
     << cfg.ssets << " doves, beta " << cfg.beta << ")";
  check.detail = os.str();
  return check;
}

}  // namespace

const std::vector<std::string>& replicator_stat_presets() {
  static const std::vector<std::string> presets = {"ipd", "hawk_dove",
                                                   "stag_hunt", "rps"};
  return presets;
}

ObservableCheck check_replicator_trajectory(const std::string& preset,
                                            std::uint64_t seed, bool quick) {
  return replicator_trajectory_check(preset, seed, quick);
}

StatsReport run_statistical_suite(std::uint64_t seed, bool quick) {
  StatsReport report;
  report.checks.push_back(check_fermi_adoption(seed, quick));
  report.checks.push_back(check_fixation_probability(seed, quick));
  report.checks.push_back(check_stationary_uniform(seed, quick));
  report.checks.push_back(check_cooperation_rate(seed, quick));
  for (const auto& preset : replicator_stat_presets()) {
    report.checks.push_back(replicator_trajectory_check(preset, seed, quick));
  }
  report.checks.push_back(check_moran_exact_closed_form(seed));
  report.checks.push_back(check_moran_mc_vs_exact(seed, quick));
  return report;
}

}  // namespace egt::simcheck
