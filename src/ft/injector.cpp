#include "ft/injector.hpp"

#include "ft/protocol.hpp"

namespace egt::ft {

PlanFaultInjector::PlanFaultInjector(const FaultPlan& plan,
                                     obs::MetricsRegistry* metrics) {
  for (const MessageFault& r : plan.drops()) {
    rules_.push_back({r, /*is_delay=*/false, 0, 0});
  }
  for (const MessageFault& r : plan.delays()) {
    rules_.push_back({r, /*is_delay=*/true, 0, 0});
  }
  if (metrics != nullptr) {
    dropped_ = &metrics->counter("ft.faults.messages_dropped");
    delayed_ = &metrics->counter("ft.faults.messages_delayed");
  }
}

par::FaultDecision PlanFaultInjector::on_send(int source, int dest, int tag,
                                              std::size_t /*bytes*/) {
  // The release message is exempt from drops: it is what lets worker
  // threads (including falsely-evicted "zombies") exit so the run can
  // join. Losing it would hang the harness, not model a network fault.
  if (tag == egt::ft::tag::kBye) return par::FaultDecision::deliver();
  std::lock_guard<std::mutex> lock(mu_);
  par::FaultDecision decision = par::FaultDecision::deliver();
  bool decided = false;
  // Every matching rule advances its counter even when another rule already
  // claimed the message — rule positions ("the 3rd fit reply") stay
  // well-defined regardless of rule order. The first rule with budget wins.
  for (Rule& rule : rules_) {
    if (!rule.spec.matches(source, dest, tag)) continue;
    const std::uint64_t position = rule.seen++;
    if (decided || position < rule.spec.skip ||
        rule.fired >= rule.spec.count) {
      continue;
    }
    ++rule.fired;
    decided = true;
    if (rule.is_delay) {
      if (delayed_ != nullptr) delayed_->inc();
      decision = par::FaultDecision::delayed(
          std::chrono::milliseconds(rule.spec.delay_ms));
    } else {
      if (dropped_ != nullptr) dropped_->inc();
      decision = par::FaultDecision::drop();
    }
  }
  return decision;
}

std::uint64_t PlanFaultInjector::drops_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const Rule& r : rules_) {
    if (!r.is_delay) n += r.fired;
  }
  return n;
}

std::uint64_t PlanFaultInjector::delays_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const Rule& r : rules_) {
    if (r.is_delay) n += r.fired;
  }
  return n;
}

}  // namespace egt::ft
