#include "ft/ft_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "core/parallel_engine.hpp"
#include "core/wire.hpp"
#include "ft/block_checkpoint.hpp"
#include "ft/decision_log.hpp"
#include "ft/injector.hpp"
#include "ft/ownership.hpp"
#include "ft/protocol.hpp"
#include "obs/metrics_stream.hpp"
#include "obs/tracer.hpp"
#include "par/comm.hpp"
#include "pop/nature.hpp"
#include "util/check.hpp"

namespace egt::ft {

namespace {

using core::wire::Reader;
using core::wire::Writer;

// -- instruments --------------------------------------------------------------

// Same phase timers and "engine.*" counters as the base engines (so serial,
// parallel and ft manifests are directly comparable), plus the "ft.*"
// family. The master-family counters (engine.generations, the event
// counters incremented by the apply stages, the failure detector's
// tallies) exist only on ranks that actually are the master: rank 0 from
// launch, and any standby from the moment it wins an election (promote()).
// Registering them on every rank would multiply the merged event counts,
// because the apply stages run on every rank.
struct FtInstruments {
  // Every rank.
  obs::Histogram* game_play = nullptr;
  obs::Histogram* plan = nullptr;
  obs::Histogram* fitness_return = nullptr;
  obs::Histogram* decision = nullptr;
  obs::Histogram* apply = nullptr;
  obs::Histogram* ckpt = nullptr;
  obs::Histogram* recovery = nullptr;
  obs::Histogram* election = nullptr;
  obs::Counter* pairs = nullptr;           // engine.pairs_evaluated
  obs::Counter* games = nullptr;           // engine.games_played
  obs::Counter* recovery_pairs = nullptr;  // ft.recovery.pairs_evaluated
  obs::Counter* recovery_games = nullptr;  // ft.recovery.games_played
  obs::Counter* ckpt_writes = nullptr;
  obs::Counter* ckpt_bytes = nullptr;
  obs::Counter* ckpt_fallback = nullptr;
  obs::Counter* ckpt_torn = nullptr;
  obs::Counter* blocks_restored = nullptr;
  obs::Counter* blocks_recomputed = nullptr;
  obs::Counter* heals = nullptr;
  obs::Counter* kills = nullptr;
  obs::Counter* log_appends = nullptr;  // standby side: records accepted
  obs::Counter* elections = nullptr;    // election rounds entered
  obs::Counter* failovers = nullptr;    // elections won (takeovers)
  // Masters only (null until promote()).
  obs::Counter* generations = nullptr;
  obs::Counter* pc_events = nullptr;
  obs::Counter* adoptions = nullptr;
  obs::Counter* moran_events = nullptr;
  obs::Counter* mutations = nullptr;
  obs::Counter* failures = nullptr;
  obs::Counter* recoveries = nullptr;
  obs::Counter* suspects = nullptr;
  obs::Counter* false_alarms = nullptr;
  obs::Counter* resends = nullptr;
  obs::Counter* stale = nullptr;
  obs::Counter* log_records = nullptr;  // master side: records replicated
  obs::Counter* log_bytes = nullptr;
  // The rank's registry itself, for components that register their own
  // counter family (BlockFitness's "fitness.*").
  obs::MetricsRegistry* registry = nullptr;

  FtInstruments(obs::MetricsRegistry& reg, bool is_master) {
    registry = &reg;
    game_play = &reg.histogram(obs::phase::kGamePlay);
    plan = &reg.histogram(obs::phase::kPlanBcast);
    fitness_return = &reg.histogram(obs::phase::kFitnessReturn);
    decision = &reg.histogram(obs::phase::kDecisionBcast);
    apply = &reg.histogram(obs::phase::kApplyUpdate);
    ckpt = &reg.histogram("phase.ft_checkpoint");
    recovery = &reg.histogram("phase.ft_recovery");
    election = &reg.histogram("phase.ft_election");
    pairs = &reg.counter("engine.pairs_evaluated");
    games = &reg.counter("engine.games_played");
    recovery_pairs = &reg.counter("ft.recovery.pairs_evaluated");
    recovery_games = &reg.counter("ft.recovery.games_played");
    ckpt_writes = &reg.counter("ft.checkpoint.writes");
    ckpt_bytes = &reg.counter("ft.checkpoint.bytes");
    ckpt_fallback = &reg.counter("ft.checkpoint.fallbacks");
    ckpt_torn = &reg.counter("ft.faults.checkpoints_torn");
    blocks_restored = &reg.counter("ft.recovery.blocks_restored");
    blocks_recomputed = &reg.counter("ft.recovery.blocks_recomputed");
    heals = &reg.counter("ft.heals");
    kills = &reg.counter("ft.faults.kills");
    log_appends = &reg.counter("ft.log.appends");
    elections = &reg.counter("ft.elections");
    failovers = &reg.counter("ft.failovers");
    if (is_master) promote(reg);
  }

  /// Register the master-family counters; called at construction on rank 0
  /// (so a fault-free run's manifest still reports ft.recoveries = 0
  /// explicitly) and at election victory on a promoted standby.
  void promote(obs::MetricsRegistry& reg) {
    if (generations != nullptr) return;
    generations = &reg.counter("engine.generations");
    pc_events = &reg.counter("engine.pc_events");
    adoptions = &reg.counter("engine.adoptions");
    moran_events = &reg.counter("engine.moran_events");
    mutations = &reg.counter("engine.mutations");
    failures = &reg.counter("ft.failures_detected");
    recoveries = &reg.counter("ft.recoveries");
    suspects = &reg.counter("ft.suspected_ranks");
    false_alarms = &reg.counter("ft.false_alarms");
    resends = &reg.counter("ft.resends");
    stale = &reg.counter("ft.stale_messages");
    log_records = &reg.counter("ft.log.records");
    log_bytes = &reg.counter("ft.log.bytes");
  }

  static void inc(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->inc(n);
  }
};

// -- owned fitness blocks -----------------------------------------------------

// A rank's set of owned fitness blocks. Starts as the single fault-free
// BlockPartition range; grows when ranges are adopted from dead ranks.
// Pairs accounting follows the fault-free ledger: startup initialization
// and per-generation work count to "engine.pairs_evaluated" (so the merged
// total matches a fault-free run under kill-only plans); work that only
// exists because of recovery counts to "ft.recovery.pairs_evaluated".
class BlockSet {
 public:
  BlockSet(const core::SimConfig& config,
           std::shared_ptr<const pop::InteractionGraph> graph,
           FtInstruments& ins)
      : config_(config), graph_(std::move(graph)), ins_(ins) {}

  bool cached_mode() const noexcept {
    return config_.fitness_mode != core::FitnessMode::Sampled;
  }

  /// Matrix width a valid checkpoint of this config carries: ssets for the
  /// pairwise cached modes, 0 for Sampled — and 0 for cached public-goods
  /// blocks, whose fitness is group-pooled (no pairwise matrix; see
  /// core::BlockFitness::pairwise_cached). The fast paths below must match
  /// on this, not on ssets, or cached PGG checkpoints would never restore.
  std::uint32_t expected_matrix_cols() const noexcept {
    if (!cached_mode()) return 0;
    if (config_.game.kind == game::GameKind::PublicGoods) return 0;
    return config_.ssets;
  }

  /// Fault-free startup block: initialization counts to engine.pairs, as
  /// in the base engines.
  void add_initial(pop::SSetId begin, pop::SSetId end,
                   const pop::Population& pop) {
    Block blk{core::BlockFitness(config_, begin, end, graph_, ins_.registry),
               {},
               0,
               0};
    {
      obs::ScopedTimer t(ins_.game_play);
      obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
      blk.fit.initialize(pop);
      span.set_arg("games", blk.fit.games_played());
    }
    blk.accounted = blk.fit.pairs_evaluated();
    ins_.pairs->inc(blk.accounted);
    blk.games_accounted = blk.fit.games_played();
    ins_.games->inc(blk.games_accounted);
    blk.snapshot.assign(blk.fit.block().size(), 0.0);
    blocks_.push_back(std::move(blk));
  }

  void begin_generation(const pop::Population& pop, std::uint64_t gen) {
    obs::ScopedTimer t(ins_.game_play);
    obs::TraceSpan span(obs::phase::kGamePlay, obs::kCatPhase);
    for (Block& b : blocks_) {
      b.fit.begin_generation(pop, gen);
      b.snapshot.assign(b.fit.block().begin(), b.fit.block().end());
    }
    changed_this_gen_.clear();
    account_engine_pairs();
  }

  void strategy_changed(pop::SSetId k, const pop::Population& pop,
                        std::uint64_t gen) {
    for (Block& b : blocks_) b.fit.strategy_changed(k, pop, gen);
    changed_this_gen_.push_back(k);
  }

  bool owns(pop::SSetId i) const noexcept {
    for (const Block& b : blocks_) {
      if (i >= b.fit.row_begin() && i < b.fit.row_end()) return true;
    }
    return false;
  }

  bool owns_range(pop::SSetId begin, pop::SSetId end) const noexcept {
    for (const Block& b : blocks_) {
      if (b.fit.row_begin() == begin && b.fit.row_end() == end) return true;
    }
    return false;
  }

  double fitness(pop::SSetId i) const {
    for (const Block& b : blocks_) {
      if (i >= b.fit.row_begin() && i < b.fit.row_end()) {
        return b.fit.fitness(i);
      }
    }
    EGT_REQUIRE_MSG(false, "fitness query on unowned SSet");
    return 0.0;
  }

  /// Current fitness of every owned block into `full` (indexed by SSet).
  void fill_current(std::vector<double>& full) const {
    for (const Block& b : blocks_) {
      std::copy(b.fit.block().begin(), b.fit.block().end(),
                full.begin() + b.fit.row_begin());
    }
  }

  /// Top-of-generation snapshot of every owned block into `full`.
  void fill_snapshot(std::vector<double>& full) const {
    for (const Block& b : blocks_) {
      std::copy(b.snapshot.begin(), b.snapshot.end(),
                full.begin() + b.fit.row_begin());
    }
  }

  /// Append every owned block as (begin, end, doubles) using `snapshot` or
  /// current values — the BLOCKS / FINAL reply payload.
  void encode_ranges(Writer& w, bool snapshot) const {
    w.u32(static_cast<std::uint32_t>(blocks_.size()));
    for (const Block& b : blocks_) {
      w.u32(b.fit.row_begin());
      w.u32(b.fit.row_end());
      if (snapshot) {
        w.doubles(b.snapshot.data(), b.snapshot.size());
      } else {
        w.doubles(b.fit.block().data(), b.fit.block().size());
      }
    }
  }

  /// Adopt range [begin, end) from a dead rank, mid-generation `gen`.
  /// `pop` is the current population replica; `pop_gen_start` its state at
  /// the top of `gen` (before this generation's updates).
  ///
  /// Fast path: an intact covering block checkpoint restores the exact
  /// doubles (bit-exact, zero games). Recompute path: Sampled re-plays the
  /// block with this generation's streams from the top-of-generation
  /// population (bit-exact by purity; counts to engine.pairs exactly as
  /// the dead rank's evaluation would have); cached modes re-initialize
  /// from scratch and replay this generation's strategy changes (recovery
  /// work, counts to ft.recovery.pairs_evaluated).
  void adopt(pop::SSetId begin, pop::SSetId end, const pop::Population& pop,
             const pop::Population& pop_gen_start, std::uint64_t gen,
             const CheckpointStore& store, std::uint64_t fingerprint) {
    obs::ScopedTimer t(ins_.recovery);
    obs::TraceSpan span("phase.ft_recovery", obs::kCatFt, "begin", begin);
    Block blk{core::BlockFitness(config_, begin, end, graph_, ins_.registry),
               {},
               0,
               0};
    const std::optional<BlockCheckpoint> hit =
        lookup(store, begin, end, gen, pop);
    if (hit && cached_mode() && hit->matrix_cols == expected_matrix_cols() &&
        hit->config_fingerprint == fingerprint) {
      blk.fit.restore_state(hit->fitness_slice(begin, end),
                            hit->matrix_slice(begin, end), hit->dedup);
      blk.snapshot.assign(blk.fit.block().begin(), blk.fit.block().end());
      FtInstruments::inc(ins_.blocks_restored);
    } else {
      if (cached_mode()) {
        blk.fit.initialize(pop_gen_start);
        FtInstruments::inc(ins_.recovery_pairs, blk.fit.pairs_evaluated());
        FtInstruments::inc(ins_.recovery_games, blk.fit.games_played());
        blk.accounted = blk.fit.pairs_evaluated();
        blk.games_accounted = blk.fit.games_played();
      }
      blk.fit.begin_generation(pop_gen_start, gen);
      ins_.pairs->inc(blk.fit.pairs_evaluated() - blk.accounted);
      blk.accounted = blk.fit.pairs_evaluated();
      ins_.games->inc(blk.fit.games_played() - blk.games_accounted);
      blk.games_accounted = blk.fit.games_played();
      // Snapshot = top-of-generation values, before this generation's
      // updates (which are replayed on top for the cached modes below).
      blk.snapshot.assign(blk.fit.block().begin(), blk.fit.block().end());
      for (pop::SSetId k : changed_this_gen_) {
        blk.fit.strategy_changed(k, pop, gen);
      }
      FtInstruments::inc(ins_.recovery_pairs,
                         blk.fit.pairs_evaluated() - blk.accounted);
      FtInstruments::inc(ins_.recovery_games,
                         blk.fit.games_played() - blk.games_accounted);
      FtInstruments::inc(ins_.blocks_recomputed);
    }
    blk.accounted = blk.fit.pairs_evaluated();
    blk.games_accounted = blk.fit.games_played();
    blocks_.push_back(std::move(blk));
  }

  /// Adopt range [begin, end) at a generation boundary: no generation is
  /// in flight, `gen` is the next one to run, and the caller's main loop
  /// will run begin_generation over every block — including this one — when
  /// it starts. So the block only needs the state begin_generation builds
  /// on: a checkpoint restore (cached modes; any intact entry whose table
  /// hash matches is bit-exact) or a from-scratch initialize; Sampled
  /// blocks need nothing at all, the next begin_generation replays them.
  void adopt_at_boundary(pop::SSetId begin, pop::SSetId end,
                         const pop::Population& pop, std::uint64_t gen,
                         const CheckpointStore& store,
                         std::uint64_t fingerprint) {
    obs::ScopedTimer t(ins_.recovery);
    obs::TraceSpan span("phase.ft_recovery", obs::kCatFt, "begin", begin);
    Block blk{core::BlockFitness(config_, begin, end, graph_, ins_.registry),
               {},
               0,
               0};
    const std::optional<BlockCheckpoint> hit =
        lookup(store, begin, end, gen, pop);
    if (hit && cached_mode() && hit->matrix_cols == expected_matrix_cols() &&
        hit->config_fingerprint == fingerprint) {
      blk.fit.restore_state(hit->fitness_slice(begin, end),
                            hit->matrix_slice(begin, end), hit->dedup);
      FtInstruments::inc(ins_.blocks_restored);
    } else {
      if (cached_mode()) {
        blk.fit.initialize(pop);
        FtInstruments::inc(ins_.recovery_pairs, blk.fit.pairs_evaluated());
        FtInstruments::inc(ins_.recovery_games, blk.fit.games_played());
      }
      FtInstruments::inc(ins_.blocks_recomputed);
    }
    blk.accounted = blk.fit.pairs_evaluated();
    blk.games_accounted = blk.fit.games_played();
    blk.snapshot.assign(blk.fit.block().size(), 0.0);
    blocks_.push_back(std::move(blk));
  }

  /// Publish one checkpoint blob per owned block, labelled with the
  /// generation the captured values are valid for (gen + 1 at the end of
  /// gen). `torn` injects a truncated write (FaultPlan torn_checkpoints).
  void checkpoint_to(CheckpointStore& store, int rank, std::uint64_t next_gen,
                     std::uint64_t table_hash, std::uint64_t fingerprint,
                     bool torn) const {
    obs::ScopedTimer t(ins_.ckpt);
    obs::TraceSpan span("phase.ft_checkpoint", obs::kCatFt);
    for (const Block& b : blocks_) {
      BlockCheckpoint c;
      c.config_fingerprint = fingerprint;
      c.generation = next_gen;
      c.table_hash = table_hash;
      c.begin = b.fit.row_begin();
      c.end = b.fit.row_end();
      const auto matrix = b.fit.payoff_matrix();
      c.matrix_cols = matrix.empty() ? 0 : config_.ssets;
      c.fitness.assign(b.fit.block().begin(), b.fit.block().end());
      c.matrix.assign(matrix.begin(), matrix.end());
      c.dedup = b.fit.dedup_cache();
      auto blob = c.encode();
      FtInstruments::inc(ins_.ckpt_writes);
      FtInstruments::inc(ins_.ckpt_bytes, blob.size());
      if (torn) FtInstruments::inc(ins_.ckpt_torn);
      store.put(rank, c.begin, c.end, next_gen, std::move(blob), torn);
    }
  }

  /// Move the growth of the pairs counters since the last accounting into
  /// engine.pairs_evaluated (per-generation work: begin_generation and
  /// strategy_changed deltas, both of which a fault-free run also pays).
  void account_engine_pairs() {
    for (Block& b : blocks_) {
      const std::uint64_t now = b.fit.pairs_evaluated();
      ins_.pairs->inc(now - b.accounted);
      b.accounted = now;
      const std::uint64_t games_now = b.fit.games_played();
      ins_.games->inc(games_now - b.games_accounted);
      b.games_accounted = games_now;
    }
  }

 private:
  struct Block {
    core::BlockFitness fit;
    std::vector<double> snapshot;  // top-of-generation values
    std::uint64_t accounted = 0;   // pairs already flushed to a counter
    std::uint64_t games_accounted = 0;  // games already flushed to a counter
  };

  /// CRC-verified checkpoint lookup; a corrupt entry skipped on the way to
  /// an older intact one counts to ft.checkpoint.fallbacks.
  std::optional<BlockCheckpoint> lookup(const CheckpointStore& store,
                                        pop::SSetId begin, pop::SSetId end,
                                        std::uint64_t gen,
                                        const pop::Population& pop) {
    if (!cached_mode()) return std::nullopt;
    return store.find_covering(begin, end, gen, pop.table_hash(),
                               [this](const std::string&) {
                                 FtInstruments::inc(ins_.ckpt_fallback);
                                 obs::trace_instant("ft.checkpoint_fallback",
                                                    obs::kCatFt);
                               });
  }

  core::SimConfig config_;
  std::shared_ptr<const pop::InteractionGraph> graph_;
  FtInstruments& ins_;
  std::vector<Block> blocks_;
  // Strategy changes applied in the current generation, in order —
  // replayed onto blocks adopted mid-generation.
  std::vector<pop::SSetId> changed_this_gen_;
};

// -- message codecs -----------------------------------------------------------

constexpr const char* kWhat = "ft protocol message";

// The decision(s) of one generation, as carried by DECIDE messages, by the
// next PLAN's heal fields and by a TAKEOVER's heal fields.
struct Decision {
  std::uint64_t gen = 0;
  bool adopted = false;
  bool has_moran = false;
  pop::MoranPick pick;
};

void put_decision_body(Writer& w, const Decision& d) {
  w.u8(d.adopted ? 1 : 0);
  w.u8(d.has_moran ? 1 : 0);
  w.u32(d.pick.reproducer);
  w.u32(d.pick.dying);
}

Decision get_decision_body(Reader& r, std::uint64_t gen) {
  Decision d;
  d.gen = gen;
  d.adopted = r.u8("adopted") != 0;
  d.has_moran = r.u8("has moran") != 0;
  d.pick.reproducer = r.u32("moran reproducer");
  d.pick.dying = r.u32("moran dying");
  return d;
}

std::vector<std::byte> encode_plan_msg(std::uint64_t gen,
                                       const std::optional<Decision>& prev,
                                       const std::vector<std::byte>& plan) {
  Writer w;
  w.u64(gen);
  w.u8(prev ? 1 : 0);
  if (prev) {
    w.u64(prev->gen);
    put_decision_body(w, *prev);
  }
  w.bytes(plan);
  return w.take();
}

std::vector<std::byte> encode_u64(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}

std::uint64_t decode_u64(const par::Message& m, const char* field) {
  Reader r(m.payload, kWhat);
  const std::uint64_t v = r.u64(field);
  r.expect_exhausted();
  return v;
}

// PC-stage decide (adoption only) vs final-stage decide (moran + done).
enum class DecideStage : std::uint8_t { Pc = 0, Final = 1 };

std::vector<std::byte> encode_decide(DecideStage stage, const Decision& d) {
  Writer w;
  w.u64(d.gen);
  w.u8(static_cast<std::uint8_t>(stage));
  put_decision_body(w, d);
  return w.take();
}

// -- shared run state ---------------------------------------------------------

using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds ms_to_ns(double ms) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ms * 1e6));
}

struct Shared {
  const core::SimConfig& config;
  const FtRunOptions& options;
  CheckpointStore store;
  std::uint64_t fingerprint;
  std::chrono::nanoseconds detect;
  std::chrono::nanoseconds ping;
  std::chrono::nanoseconds silence;  // base master-silence (log holders)
  std::chrono::nanoseconds window;   // election vote-collection window
  std::atomic<int> ranks_lost{0};
  std::atomic<int> failovers{0};
  // The finishing master's population, guarded against a deposed twin
  // (split brain): the highest view wins the slot.
  std::mutex result_mu;
  std::optional<pop::Population> result;
  std::uint64_t result_view = 0;

  Shared(const core::SimConfig& c, const FtRunOptions& o)
      : config(c),
        options(o),
        store(o.checkpoint_keep),
        fingerprint(core::config_fingerprint(c)),
        detect(ms_to_ns(o.detect_timeout_ms)),
        ping(ms_to_ns(o.ping_timeout_ms)) {
    const double per_death =
        o.detect_timeout_ms + o.max_pings * o.ping_timeout_ms;
    silence = ms_to_ns(o.master_silence_ms > 0 ? o.master_silence_ms
                                               : 4.0 * per_death);
    window = ms_to_ns(o.election_window_ms > 0 ? o.election_window_ms
                                               : o.detect_timeout_ms);
  }
};

// Applies one generation's scheduled updates in the fault-free order:
// PC adoption, Moran replacement, mutation. `apply_pc` / `apply_final`
// split the two decision stages (the Moran gather must see post-adoption
// fitness, exactly as in the base engines).
void apply_pc_stage(BlockSet& blocks, pop::Population& pop,
                    const pop::GenerationPlan& plan, const Decision& d,
                    std::uint64_t gen, FtInstruments& ins) {
  if (plan.pc && d.adopted) {
    FtInstruments::inc(ins.adoptions);
    obs::ScopedTimer t(ins.apply);
    obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
    pop.set_strategy(plan.pc->learner, pop.strategy(plan.pc->teacher));
    blocks.strategy_changed(plan.pc->learner, pop, gen);
  }
}

void apply_final_stage(BlockSet& blocks, pop::Population& pop,
                       const pop::GenerationPlan& plan, const Decision& d,
                       std::uint64_t gen, FtInstruments& ins) {
  if (plan.moran && d.pick.is_change()) {
    obs::ScopedTimer t(ins.apply);
    obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
    pop.set_strategy(d.pick.dying, pop.strategy(d.pick.reproducer));
    blocks.strategy_changed(d.pick.dying, pop, gen);
  }
  if (plan.mutation) {
    FtInstruments::inc(ins.mutations);
    obs::ScopedTimer t(ins.apply);
    obs::TraceSpan span(obs::phase::kApplyUpdate, obs::kCatPhase);
    pop.set_strategy(plan.mutation->target, plan.mutation->strategy);
    blocks.strategy_changed(plan.mutation->target, pop, gen);
  }
}

// ---------------------------------------------------------------------------
// One rank's whole life, worker and master alike. Every rank starts as a
// worker except rank 0, which starts as the master; a worker that wins an
// election *becomes* the master mid-run and runs the same master loop rank
// 0 would have. The class exists because failover needs worker state (the
// replicated log, the pending plan, the ownership view) to carry over into
// the master role bit-for-bit.
// ---------------------------------------------------------------------------

class RankProgram {
 public:
  RankProgram(par::Comm& comm, Shared& shared, obs::MetricsRegistry& registry)
      : comm_(comm),
        shared_(shared),
        registry_(registry),
        ins_(registry, /*is_master=*/comm.rank() == 0),
        config_(shared.config),
        rank_(comm.rank()),
        pop_(core::make_initial_population(config_)),
        pop_gen_start_(pop_),
        graph_(core::make_shared_graph(config_)),
        table_(OwnershipTable::initial(config_.ssets, comm.size())),
        blocks_(config_, graph_, ins_),
        kill_gen_(shared.options.plan.kill_generation(rank_)) {
    for (const auto& [b, e] : table_.ranges_of(rank_)) {
      blocks_.add_initial(b, e, pop_);
    }
  }

  void run() {
    if (rank_ == 0) {
      auto nc = config_.nature_config();
      nc.graph = graph_;
      nature_.emplace(nc);
      for (int w = 1; w < comm_.size(); ++w) alive_.push_back(w);
      run_master(0);
    } else {
      worker_loop();
    }
  }

 private:
  // What a handled message means for the caller's control flow.
  enum class Ev {
    Handled,     // routine message processed
    FromMaster,  // routine message, and it came from the live master
    TookOver,    // accepted a TAKEOVER — master_ changed
    Evicted,     // now passive
    Exit,        // released (BYE) or injected kill: the thread is done
  };

  struct Pending {
    std::uint64_t gen;
    pop::GenerationPlan plan;
    bool pc_applied = false;
  };

  struct Vote {
    std::uint64_t next_gen = 0;  // the voter's log head (+1) — 0 = no log
    std::uint64_t applied = 0;   // first generation not fully applied
  };

  // Alive-but-unresponsive cap: await_from() gives up after this many
  // probe-confirmed resends and declares the rank dead anyway (it is then
  // evicted and its work recovered — correctness is kept, the rank's
  // remaining usefulness is not). Guards every master wait against
  // spinning forever on a rank that answers pings but nothing else, e.g. a
  // zombie that went passive after a false eviction by a previous master.
  static constexpr int kMaxResends = 25;

  bool is_alive(int r) const {
    return std::find(alive_.begin(), alive_.end(), r) != alive_.end();
  }

  std::chrono::nanoseconds my_silence() const {
    // Standbys (ranks holding a log copy) time out first: they can resume
    // the run; ranks without a log can only win an election nobody better
    // contests.
    return log_.empty() ? 2 * shared_.silence : shared_.silence;
  }

  std::uint64_t my_applied_count() const {
    return pending_ ? pending_->gen
                    : static_cast<std::uint64_t>(last_gen_ + 1);
  }

  [[noreturn]] static void throw_abort() {
    throw std::runtime_error(
        "ft failover: aborted — a survivor's applied state is ahead of every "
        "remaining decision log, the run cannot continue deterministically "
        "(raise standby_replicas to cover cascading master failures)");
  }

  // -- generation bookkeeping shared by worker and master -------------------

  void finish_generation(std::uint64_t gen) {
    blocks_.account_engine_pairs();
    const std::uint64_t every = shared_.options.checkpoint_every;
    if (every > 0 && (gen + 1) % every == 0) {
      const bool torn =
          shared_.options.plan.torn_checkpoint_at(rank_, gen + 1);
      blocks_.checkpoint_to(shared_.store, rank_, gen + 1, pop_.table_hash(),
                            shared_.fingerprint, torn);
    }
  }

  /// If a decision for the pending generation is available, apply it and
  /// close the generation. Carried by the next PLAN, by a TAKEOVER, or by
  /// the newest log record at promotion.
  void heal_pending(const std::optional<Decision>& prev) {
    if (!pending_ || !prev || prev->gen != pending_->gen) return;
    FtInstruments::inc(ins_.heals);
    obs::trace_instant("ft.heal", obs::kCatFt, "gen", pending_->gen);
    if (!pending_->pc_applied) {
      apply_pc_stage(blocks_, pop_, pending_->plan, *prev, pending_->gen,
                     ins_);
    }
    apply_final_stage(blocks_, pop_, pending_->plan, *prev, pending_->gen,
                      ins_);
    const std::uint64_t gen = pending_->gen;
    pending_.reset();
    finish_generation(gen);
  }

  /// Fold in any range the current table assigns to this rank but no local
  /// block covers. `mid_gen` = generation `gen` is in flight (its plan was
  /// processed): the block must be rebuilt inside the generation. At a
  /// boundary the next begin_generation does that part.
  void adopt_missing_ranges(std::uint64_t gen, bool mid_gen) {
    for (const auto& [b, e] : table_.ranges_of(rank_)) {
      if (blocks_.owns_range(b, e)) continue;
      if (mid_gen) {
        blocks_.adopt(b, e, pop_, pop_gen_start_, gen, shared_.store,
                      shared_.fingerprint);
      } else {
        blocks_.adopt_at_boundary(b, e, pop_, gen, shared_.store,
                                  shared_.fingerprint);
      }
    }
  }

  // -- worker side ----------------------------------------------------------

  void worker_loop() {
    last_master_msg_ = Clock::now();
    for (;;) {
      if (passive_) {
        const par::Message m = comm_.recv(par::kAnySource, par::kAnyTag);
        if (m.tag == tag::kBye) return;
        if (m.tag == tag::kAbort) throw_abort();
        if (m.tag == tag::kPing) {
          comm_.send(m.source, tag::kPong,
                     encode_u64(decode_u64(m, "ping seq")));
        }
        continue;  // everything else: we are out of the run
      }
      const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
          (last_master_msg_ + my_silence()) - Clock::now());
      std::optional<par::Message> m;
      if (left > std::chrono::nanoseconds::zero()) {
        m = comm_.recv_for(par::kAnySource, par::kAnyTag, left);
      }
      if (!m) {
        // Master silence expired: elect a replacement.
        if (run_election()) return;
        continue;
      }
      if (handle_message(*m) == Ev::Exit) return;
    }
  }

  Ev handle_message(const par::Message& m) {
    const bool from_master = m.source == master_;
    switch (m.tag) {
      case tag::kPlan: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        std::optional<Decision> prev;
        if (r.u8("has prev decision") != 0) {
          const std::uint64_t pgen = r.u64("prev generation");
          prev = get_decision_body(r, pgen);
        }
        const auto plan_wire = r.bytes("plan payload");
        r.expect_exhausted();
        if (kill_gen_ && *kill_gen_ == gen) {
          // The injected crash: stop participating, silently. The plan for
          // this generation dies with us and must be recovered.
          FtInstruments::inc(ins_.kills);
          obs::trace_instant("ft.kill", obs::kCatFt, "gen", gen);
          return Ev::Exit;
        }
        if (static_cast<std::int64_t>(gen) <= last_gen_) {
          // A resend after a dropped ack (or the lagging twin of a split
          // brain): re-acknowledge, don't redo.
          comm_.send(m.source, tag::kPlanAck, encode_u64(gen));
          break;
        }
        // Heal: if the previous generation's decision never arrived, the
        // plan carries it (FIFO order from the master makes this safe).
        heal_pending(prev);
        EGT_ASSERT(!pending_);
        blocks_.begin_generation(pop_, gen);
        pop_gen_start_ = pop_;
        pop::GenerationPlan plan = core::decode_generation_plan(plan_wire);
        if (plan.pc || plan.moran) {
          pending_ = Pending{gen, std::move(plan), false};
        } else {
          apply_final_stage(blocks_, pop_, plan, Decision{}, gen, ins_);
          finish_generation(gen);
        }
        last_gen_ = static_cast<std::int64_t>(gen);
        comm_.send(m.source, tag::kPlanAck, encode_u64(gen));
        break;
      }
      case tag::kDecide: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        const auto stage = static_cast<DecideStage>(r.u8("stage"));
        const Decision d = get_decision_body(r, gen);
        r.expect_exhausted();
        if (!pending_ || pending_->gen != gen) break;  // stale duplicate
        if (stage == DecideStage::Pc) {
          if (!pending_->pc_applied) {
            apply_pc_stage(blocks_, pop_, pending_->plan, d, gen, ins_);
            pending_->pc_applied = true;
          }
          if (!pending_->plan.moran) {
            apply_final_stage(blocks_, pop_, pending_->plan, d, gen, ins_);
            pending_.reset();
            finish_generation(gen);
          }
        } else {
          if (!pending_->pc_applied) {
            apply_pc_stage(blocks_, pop_, pending_->plan, d, gen, ins_);
          }
          apply_final_stage(blocks_, pop_, pending_->plan, d, gen, ins_);
          pending_.reset();
          finish_generation(gen);
        }
        break;
      }
      case tag::kReqFit: {
        Reader r(m.payload, kWhat);
        const std::uint64_t req = r.u64("request id");
        const pop::SSetId k = r.u32("sset");
        r.expect_exhausted();
        EGT_REQUIRE_MSG(blocks_.owns(k),
                        "ft protocol: fitness request for unowned SSet");
        Writer w;
        w.u64(req);
        w.f64(blocks_.fitness(k));
        comm_.send(m.source, tag::kFit, w.take());
        break;
      }
      case tag::kReqBlocks: {
        Reader r(m.payload, kWhat);
        const std::uint64_t req = r.u64("request id");
        const std::uint64_t gen = r.u64("generation");
        const bool adopted = r.u8("adopted") != 0;
        r.expect_exhausted();
        // The gather must see post-adoption fitness (fault-free ordering
        // guarantees it via FIFO; a dropped PC decide would break it), so
        // the request carries the PC decision and heals a missed one.
        if (pending_ && pending_->gen == gen && !pending_->pc_applied &&
            pending_->plan.pc) {
          Decision d;
          d.gen = gen;
          d.adopted = adopted;
          FtInstruments::inc(ins_.heals);
          obs::trace_instant("ft.heal", obs::kCatFt, "gen", gen);
          apply_pc_stage(blocks_, pop_, pending_->plan, d, gen, ins_);
          pending_->pc_applied = true;
        }
        Writer w;
        w.u64(req);
        blocks_.encode_ranges(w, /*snapshot=*/false);
        comm_.send(m.source, tag::kBlocks, w.take());
        break;
      }
      case tag::kPing: {
        comm_.send(m.source, tag::kPong,
                   encode_u64(decode_u64(m, "ping seq")));
        break;
      }
      case tag::kReconfig: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        const std::uint32_t epoch = r.u32("epoch");
        OwnershipTable next = OwnershipTable::decode(r);
        r.expect_exhausted();
        if (epoch > epoch_) {
          table_ = std::move(next);
          epoch_ = epoch;
          adopt_missing_ranges(gen,
                               last_gen_ == static_cast<std::int64_t>(gen));
        }
        // Ack with the newest applied epoch (acks are cumulative).
        Writer w;
        w.u32(epoch_);
        comm_.send(m.source, tag::kReconfigAck, w.take());
        break;
      }
      case tag::kStop: {
        // Reply with the final snapshot but keep serving (the reply may be
        // dropped and re-requested); kBye releases the thread.
        const std::uint64_t req = decode_u64(m, "request id");
        Writer w;
        w.u64(req);
        blocks_.encode_ranges(w, /*snapshot=*/true);
        comm_.send(m.source, tag::kFinal, w.take());
        break;
      }
      case tag::kLogAppend: {
        // The write-ahead record of the generation in flight. Records from
        // the past (a deposed master still streaming) are acknowledged but
        // not kept — the log stays in generation order.
        DecisionLogRecord rec = DecisionLogRecord::decode_blob(m.payload);
        const std::uint64_t gen = rec.generation;
        if (log_.empty() || gen >= log_.newest()->generation) {
          log_.append(std::move(rec));
          FtInstruments::inc(ins_.log_appends);
        }
        comm_.send(m.source, tag::kLogAck, encode_u64(gen));
        break;
      }
      case tag::kElect: {
        // A peer lost the master. Record its vote and answer with ours —
        // fire-and-forget; only ranks whose own silence expired run the
        // full election state machine (run_election).
        note_vote(m);
        break;
      }
      case tag::kTakeover:
        return handle_takeover(m);
      case tag::kTakeoverAck:
        break;  // stale ack from a view this rank lost
      case tag::kEvicted:
        // A master (current or deposed) declared this rank dead. Go
        // passive: keep answering pings and wait for release, but never
        // contest an election with state the run has moved past.
        passive_ = true;
        return Ev::Evicted;
      case tag::kAbort:
        throw_abort();
      case tag::kBye:
        return Ev::Exit;
      default:
        EGT_REQUIRE_MSG(false, "ft protocol: unexpected message tag");
    }
    if (from_master) {
      last_master_msg_ = Clock::now();
      return Ev::FromMaster;
    }
    return Ev::Handled;
  }

  Ev handle_takeover(const par::Message& m) {
    Reader r(m.payload, kWhat);
    const std::uint64_t view = r.u64("view");
    const std::uint64_t resume = r.u64("resume generation");
    std::optional<Decision> prev;
    if (r.u8("has prev decision") != 0) {
      const std::uint64_t pgen = r.u64("prev generation");
      prev = get_decision_body(r, pgen);
    }
    const std::uint32_t epoch = r.u32("epoch");
    OwnershipTable next = OwnershipTable::decode(r);
    r.expect_exhausted();
    if (view < view_ || (view == view_ && m.source != master_)) {
      return Ev::Handled;  // an older view lost the race
    }
    if (view == view_ && m.source == master_) {
      send_takeover_ack(m.source, view);  // resend after a dropped ack
      last_master_msg_ = Clock::now();
      return Ev::FromMaster;
    }
    // A master from the past (stalled through a whole election while this
    // rank moved on): refuse — accepting would rewind applied state.
    if (resume < my_applied_count()) return Ev::Handled;
    view_ = view;
    voted_view_ = std::max(voted_view_, view);
    master_ = m.source;
    last_master_msg_ = Clock::now();
    obs::trace_instant("ft.takeover", obs::kCatFt, "view", view);
    // Heal the generation still pending from the old master, if the new
    // one resumes past it.
    if (pending_ && pending_->gen + 1 == resume) heal_pending(prev);
    EGT_ASSERT(!pending_ || pending_->gen == resume);
    if (epoch > epoch_) {
      table_ = std::move(next);
      epoch_ = epoch;
      adopt_missing_ranges(resume,
                           last_gen_ == static_cast<std::int64_t>(resume));
    }
    send_takeover_ack(m.source, view);
    return Ev::TookOver;
  }

  void send_takeover_ack(int dest, std::uint64_t view) {
    Writer w;
    w.u64(view);
    w.u32(epoch_);
    comm_.send(dest, tag::kTakeoverAck, w.take());
  }

  // -- election -------------------------------------------------------------

  void cast_vote(std::uint64_t view) {
    voted_view_ = view;
    const Vote mine{log_.next_generation(), my_applied_count()};
    votes_[view][rank_] = mine;
    Writer w;
    w.u64(view);
    w.u64(mine.next_gen);
    w.u64(mine.applied);
    const auto wire = w.take();
    for (int r = 0; r < comm_.size(); ++r) {
      if (r != rank_) comm_.send(r, tag::kElect, wire);
    }
  }

  std::uint64_t note_vote(const par::Message& m) {
    Reader r(m.payload, kWhat);
    const std::uint64_t view = r.u64("view");
    Vote v;
    v.next_gen = r.u64("log head");
    v.applied = r.u64("applied count");
    r.expect_exhausted();
    votes_[view][m.source] = v;
    if (view > voted_view_) cast_vote(view);
    return view;
  }

  /// The master fell silent. Broadcast-vote until a view resolves: the
  /// rank with the newest decision log (lowest rank on ties) wins and
  /// takes over; everyone else waits for its TAKEOVER. Returns true when
  /// this thread is done (finished the run as the new master, or was
  /// released / killed / aborted mid-election); false resumes the worker
  /// loop (the old master reappeared, a new one took over, or this rank
  /// was evicted).
  bool run_election() {
    obs::ScopedTimer timer(ins_.election);
    obs::TraceSpan span("phase.ft_election", obs::kCatFt);
    std::uint64_t min_view = view_ + 1;
    for (;;) {
      FtInstruments::inc(ins_.elections);
      obs::trace_instant("ft.election", obs::kCatFt, "view",
                         std::max(min_view, voted_view_));
      std::uint64_t view = std::max(min_view, voted_view_);
      if (voted_view_ < view) cast_vote(view);
      // Collect votes; the window extends while they keep arriving and
      // restarts when a higher view joins.
      auto deadline = Clock::now() + shared_.window;
      for (;;) {
        const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - Clock::now());
        if (left <= std::chrono::nanoseconds::zero()) break;
        auto m = comm_.recv_for(par::kAnySource, par::kAnyTag, left);
        if (!m) break;
        if (m->tag == tag::kElect) {
          const std::uint64_t v = note_vote(*m);
          if (v >= view) {
            view = v;
            deadline = Clock::now() + shared_.window;
          }
          continue;
        }
        switch (handle_message(*m)) {
          case Ev::Exit:
            return true;
          case Ev::TookOver:
          case Ev::Evicted:
          case Ev::FromMaster:
            return false;
          case Ev::Handled:
            continue;
        }
      }
      // Tally: newest log wins, lowest rank breaks ties (the map iterates
      // ranks in ascending order, so strict > keeps the lowest).
      const auto& round = votes_[view];
      int winner = -1;
      std::uint64_t best = 0;
      std::uint64_t max_applied = 0;
      for (const auto& [r, v] : round) {
        max_applied = std::max(max_applied, v.applied);
        if (winner < 0 || v.next_gen > best) {
          winner = r;
          best = v.next_gen;
        }
      }
      if (winner == rank_) {
        if (max_applied > log_.next_generation()) {
          // Even the best log ends before state some survivor already
          // holds: replanning those generations would fork the RNG
          // trajectory. Fail the run loudly instead of diverging silently.
          for (int r = 0; r < comm_.size(); ++r) {
            if (r != rank_) comm_.send(r, tag::kAbort, {});
          }
          throw_abort();
        }
        promote_and_run(view);
        return true;
      }
      // Lost: give the winner one silence to announce itself, then retry
      // one view higher without it.
      const auto tdeadline = Clock::now() + my_silence();
      for (;;) {
        const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
            tdeadline - Clock::now());
        if (left <= std::chrono::nanoseconds::zero()) break;
        auto m = comm_.recv_for(par::kAnySource, par::kAnyTag, left);
        if (!m) break;
        if (m->tag == tag::kElect) {
          note_vote(*m);
          continue;
        }
        switch (handle_message(*m)) {
          case Ev::Exit:
            return true;
          case Ev::TookOver:
          case Ev::Evicted:
          case Ev::FromMaster:
            return false;
          case Ev::Handled:
            continue;
        }
      }
      min_view = view + 1;
    }
  }

  // -- promotion ------------------------------------------------------------

  /// This rank won view `view`: restore the Nature Agent from the newest
  /// log record, fold the dead master's world in, announce, and run the
  /// rest of the simulation as the master.
  void promote_and_run(std::uint64_t view) {
    ins_.promote(registry_);
    FtInstruments::inc(ins_.failovers);
    obs::trace_instant("ft.failover", obs::kCatFt, "view", view);
    shared_.failovers.fetch_add(1, std::memory_order_relaxed);
    view_ = view;
    voted_view_ = std::max(voted_view_, view);
    master_ = rank_;

    auto nc = config_.nature_config();
    nc.graph = graph_;
    nature_.emplace(nc);
    std::uint64_t start_gen = 0;
    prev_decision_.reset();
    if (const DecisionLogRecord* rec = log_.newest()) {
      Decision last;
      last.gen = rec->generation;
      last.adopted = rec->adopted;
      last.has_moran = rec->has_moran;
      last.pick = rec->pick;
      if (pending_) {
        // The record *is* the decision this rank never received.
        EGT_ASSERT(pending_->gen == rec->generation);
        heal_pending(last);
      }
      // The record's table hash is the integrity check on our replica: a
      // mismatch means the log and the strategy table disagree and nothing
      // downstream can be trusted.
      EGT_ASSERT(pop_.table_hash() == rec->table_hash);
      nature_->restore_state(rec->nature);
      start_gen = rec->generation + 1;
      prev_decision_ = last;
      if (rec->epoch > epoch_) {
        table_ = rec->table;
        epoch_ = static_cast<std::uint32_t>(rec->epoch);
      }
    }
    // The electorate of the winning view is the new alive set; the dead
    // master and every non-voter are folded in by takeover().
    alive_.clear();
    for (const auto& [r, v] : votes_[view_]) {
      if (r != rank_) alive_.push_back(r);
    }
    std::sort(alive_.begin(), alive_.end());
    takeover(start_gen);
    run_master(start_gen);
  }

  void takeover(std::uint64_t start_gen) {
    current_gen_ = start_gen;
    in_generation_ = false;
    std::vector<int> survivors{rank_};
    survivors.insert(survivors.end(), alive_.begin(), alive_.end());
    std::sort(survivors.begin(), survivors.end());
    for (int r = 0; r < comm_.size(); ++r) {
      if (r == rank_ || is_alive(r)) continue;
      if (table_.ranges_of(r).empty()) continue;
      // Dead as far as this master is concerned: the old master, plus any
      // range owner that missed the election.
      FtInstruments::inc(ins_.failures);
      FtInstruments::inc(ins_.recoveries);
      shared_.ranks_lost.fetch_add(1, std::memory_order_relaxed);
      table_.reassign(r, survivors);
    }
    ++epoch_;
    adopt_missing_ranges(start_gen, /*mid_gen=*/false);

    Writer w;
    w.u64(view_);
    w.u64(start_gen);
    w.u8(prev_decision_ ? 1 : 0);
    if (prev_decision_) {
      w.u64(prev_decision_->gen);
      put_decision_body(w, *prev_decision_);
    }
    w.u32(epoch_);
    table_.encode(w);
    const auto wire = w.take();
    for (int r : alive_) comm_.send(r, tag::kTakeover, wire);
    // Collect every ack before running any death handling: a RECONFIG
    // broadcast mid-takeover would reach ranks that have not switched
    // masters yet and be ignored, reading as a cascade of false deaths.
    std::vector<int> silent;
    for (int r : alive_) {
      const bool ok = await_from(
          r, tag::kTakeoverAck,
          [&](const par::Message& m) {
            Reader rd(m.payload, kWhat);
            const std::uint64_t v = rd.u64("view");
            const std::uint32_t ep = rd.u32("applied epoch");
            rd.expect_exhausted();
            return v == view_ && ep >= epoch_;
          },
          [&] { comm_.send(r, tag::kTakeover, wire); });
      if (!ok) silent.push_back(r);
    }
    for (int r : silent) {
      if (is_alive(r)) handle_death(r);
    }
    // Anything still breathing outside the new view — zombies of a false
    // eviction, voters of a stale round — must not start elections against
    // this master.
    for (int r = 0; r < comm_.size(); ++r) {
      if (r != rank_ && !is_alive(r)) comm_.send(r, tag::kEvicted, {});
    }
  }

  // -- master side ----------------------------------------------------------

  // Probe a suspected rank: true = it answered (false alarm).
  bool probe(int w) {
    for (int attempt = 0; attempt < shared_.options.max_pings; ++attempt) {
      const std::uint64_t seq = ++ping_seq_;
      comm_.send(w, tag::kPing, encode_u64(seq));
      const auto deadline = Clock::now() + shared_.ping;
      for (;;) {
        const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - Clock::now());
        if (left <= std::chrono::nanoseconds::zero()) break;
        auto reply = comm_.recv_for(w, tag::kPong, left);
        if (!reply) break;
        if (decode_u64(*reply, "pong seq") == seq) return true;
        FtInstruments::inc(ins_.stale);  // a pong from an earlier probe
      }
    }
    return false;
  }

  // Deadline-wait for a reply from `w`. `accept` consumes a matching
  // message (false = stale, keep waiting); on timeout the rank is probed —
  // alive reruns `resend` and keeps waiting (up to kMaxResends), silence
  // returns false (dead).
  template <class Accept, class Resend>
  bool await_from(int w, int tagv, Accept&& accept, Resend&& resend) {
    int resends = 0;
    for (;;) {
      auto m = comm_.recv_for(w, tagv, shared_.detect);
      if (m) {
        if (accept(*m)) return true;
        FtInstruments::inc(ins_.stale);
        continue;
      }
      FtInstruments::inc(ins_.suspects);
      obs::trace_instant("ft.suspect", obs::kCatFt, "rank",
                         static_cast<std::uint64_t>(w));
      if (!probe(w)) return false;
      FtInstruments::inc(ins_.false_alarms);
      if (++resends > kMaxResends) return false;  // alive but unresponsive
      FtInstruments::inc(ins_.resends);
      resend();
    }
  }

  // Declares `w` dead and re-establishes the invariants: ownership table
  // re-partitioned, locally-owed ranges adopted, RECONFIG acknowledged by
  // every survivor. Recursion on a nested death (only reachable through
  // false-positive evictions) is bounded by the rank count.
  void handle_death(int dead) {
    FtInstruments::inc(ins_.failures);
    FtInstruments::inc(ins_.recoveries);
    obs::trace_instant("ft.death", obs::kCatFt, "rank",
                       static_cast<std::uint64_t>(dead));
    shared_.ranks_lost.fetch_add(1, std::memory_order_relaxed);
    alive_.erase(std::remove(alive_.begin(), alive_.end(), dead),
                 alive_.end());
    // If it is actually alive (false positive), it must go passive rather
    // than keep serving a run that has moved on without it.
    comm_.send(dead, tag::kEvicted, {});
    std::vector<int> survivors{rank_};
    survivors.insert(survivors.end(), alive_.begin(), alive_.end());
    std::sort(survivors.begin(), survivors.end());
    table_.reassign(dead, survivors);
    const std::uint32_t target_epoch = ++epoch_;
    adopt_missing_ranges(current_gen_, in_generation_);
    Writer w;
    w.u64(current_gen_);
    w.u32(target_epoch);
    table_.encode(w);
    const auto wire = w.take();
    for (int r : alive_) comm_.send(r, tag::kReconfig, wire);
    const std::vector<int> expected = alive_;
    for (int r : expected) {
      if (!is_alive(r)) continue;  // lost to a nested death
      const bool ok = await_from(
          r, tag::kReconfigAck,
          [&](const par::Message& m) {
            Reader rd(m.payload, kWhat);
            const std::uint32_t acked = rd.u32("acked epoch");
            rd.expect_exhausted();
            return acked >= target_epoch;
          },
          [&] { comm_.send(r, tag::kReconfig, wire); });
      if (!ok) handle_death(r);
    }
  }

  // Current fitness of one SSet, wherever it lives.
  double fitness_of(pop::SSetId k) {
    for (;;) {
      const int owner = table_.owner_of(k);
      if (owner == rank_) return blocks_.fitness(k);
      const std::uint64_t req = ++req_seq_;
      Writer w;
      w.u64(req);
      w.u32(k);
      const auto wire = w.take();
      comm_.send(owner, tag::kReqFit, wire);
      double value = 0.0;
      const bool ok = await_from(
          owner, tag::kFit,
          [&](const par::Message& m) {
            Reader r(m.payload, kWhat);
            const std::uint64_t id = r.u64("request id");
            const double v = r.f64("fitness");
            r.expect_exhausted();
            if (id != req) return false;
            value = v;
            return true;
          },
          [&] { comm_.send(owner, tag::kReqFit, wire); });
      if (ok) return value;
      handle_death(owner);  // retry against the new owner
    }
  }

  // The whole population's current fitness (the Moran gather). The request
  // restates this generation's PC decision so a worker whose DECIDE was
  // dropped can heal before replying — the gather must see post-adoption
  // fitness to match the fault-free trajectory.
  std::vector<double> collect_full(std::uint64_t gen, bool adopted) {
    for (;;) {
      std::vector<double> full(config_.ssets, 0.0);
      blocks_.fill_current(full);
      const std::uint64_t req = ++req_seq_;
      Writer rw;
      rw.u64(req);
      rw.u64(gen);
      rw.u8(adopted ? 1 : 0);
      const auto wire = rw.take();
      for (int w : alive_) comm_.send(w, tag::kReqBlocks, wire);
      bool lost = false;
      const std::vector<int> expected = alive_;
      for (int w : expected) {
        if (!is_alive(w)) continue;
        const bool ok = await_from(
            w, tag::kBlocks,
            [&](const par::Message& m) {
              Reader r(m.payload, kWhat);
              if (r.u64("request id") != req) return false;
              const std::uint32_t n = r.u32("range count");
              for (std::uint32_t i = 0; i < n; ++i) {
                const pop::SSetId b = r.u32("range begin");
                const pop::SSetId e = r.u32("range end");
                if (e < b || e > config_.ssets) r.fail("range out of bounds");
                const auto vals = r.doubles(e - b, "range fitness");
                std::copy(vals.begin(), vals.end(), full.begin() + b);
              }
              r.expect_exhausted();
              return true;
            },
            [&] { comm_.send(w, tag::kReqBlocks, wire); });
        if (!ok) {
          handle_death(w);
          lost = true;
          break;
        }
      }
      // A death mid-gather invalidates the round (the new owner's values
      // were not requested) — rerun it with a fresh request id; late
      // replies to the old id are discarded as stale.
      if (!lost) return full;
    }
  }

  /// Write-ahead replication: the record of `gen` (with the decision
  /// already applied locally) reaches every standby — the first
  /// standby_replicas live ranks — before the caller may broadcast the
  /// generation's final decision. A standby dying mid-stream is recovered
  /// and the refreshed record (new ownership view) is re-streamed; append
  /// is idempotent per generation on the survivors.
  void replicate(std::uint64_t gen, const Decision& d) {
    FtInstruments::inc(ins_.log_records);
    for (;;) {
      DecisionLogRecord rec;
      rec.view = view_;
      rec.generation = gen;
      rec.nature = nature_->save_state();
      rec.adopted = d.adopted;
      rec.has_moran = d.has_moran;
      rec.pick = d.pick;
      rec.epoch = epoch_;
      rec.table = table_;
      rec.alive.push_back(rank_);
      rec.alive.insert(rec.alive.end(), alive_.begin(), alive_.end());
      std::sort(rec.alive.begin(), rec.alive.end());
      rec.table_hash = pop_.table_hash();
      log_.append(rec);  // the master's own copy survives its own demotion
      const int nstandby = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(
              std::max(shared_.options.standby_replicas, 0)),
          alive_.size()));
      if (nstandby == 0) return;
      const auto blob = rec.encode_blob();
      bool lost = false;
      for (int i = 0; i < nstandby; ++i) {
        const int s = alive_[static_cast<std::size_t>(i)];
        comm_.send(s, tag::kLogAppend, blob);
        FtInstruments::inc(ins_.log_bytes, blob.size());
        const bool ok = await_from(
            s, tag::kLogAck,
            [&](const par::Message& m) {
              return decode_u64(m, "acked record generation") == gen;
            },
            [&] { comm_.send(s, tag::kLogAppend, blob); });
        if (!ok) {
          handle_death(s);
          lost = true;
          break;
        }
      }
      if (!lost) return;
    }
  }

  void run_master(std::uint64_t start_gen) {
    for (std::uint64_t gen = start_gen; gen < config_.generations; ++gen) {
      if (kill_gen_ && *kill_gen_ == gen) {
        // The injected crash, at the generation boundary: the previous
        // generation is fully replicated, this one was never planned — the
        // successor's restored RNG replans it identically.
        FtInstruments::inc(ins_.kills);
        obs::trace_instant("ft.kill", obs::kCatFt, "gen", gen);
        return;
      }
      obs::TraceSpan gen_span(obs::kGenerationSpan, obs::kCatEngine, "gen",
                              gen);
      current_gen_ = gen;
      blocks_.begin_generation(pop_, gen);
      pop_gen_start_ = pop_;
      in_generation_ = true;

      pop::GenerationPlan plan;
      {
        obs::ScopedTimer t(ins_.plan);
        obs::TraceSpan span(obs::phase::kPlanBcast, obs::kCatPhase);
        plan = nature_->plan_generation(&pop_);
        const auto wire = encode_plan_msg(gen, prev_decision_,
                                          core::encode_generation_plan(plan));
        for (int w : alive_) comm_.send(w, tag::kPlan, wire);
        // Collect acks — the per-generation heartbeat. A killed rank is
        // detected here, before any of this generation's decisions.
        const std::vector<int> expected = alive_;
        for (int w : expected) {
          if (!is_alive(w)) continue;
          const bool ok = await_from(
              w, tag::kPlanAck,
              [&](const par::Message& m) {
                return decode_u64(m, "acked generation") == gen;
              },
              [&] {
                comm_.send(w, tag::kPlan,
                           encode_plan_msg(gen, prev_decision_,
                                           core::encode_generation_plan(plan)));
              });
          if (!ok) handle_death(w);
        }
      }
      prev_decision_.reset();

      Decision decision;
      decision.gen = gen;
      if (plan.pc) {
        FtInstruments::inc(ins_.pc_events);
        double tf = 0.0, lf = 0.0;
        {
          obs::ScopedTimer t(ins_.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          tf = fitness_of(plan.pc->teacher);
          lf = fitness_of(plan.pc->learner);
        }
        obs::ScopedTimer t(ins_.decision);
        obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
        decision.adopted = nature_->decide_adoption(tf, lf);
        if (plan.moran) {
          // The Moran gather needs post-adoption fitness on every rank, so
          // this intermediate decision cannot wait for the generation's
          // write-ahead record; the final (committing) one below does.
          const auto wire = encode_decide(DecideStage::Pc, decision);
          for (int w : alive_) comm_.send(w, tag::kDecide, wire);
          apply_pc_stage(blocks_, pop_, plan, decision, gen, ins_);
        }
      }
      if (plan.moran) {
        FtInstruments::inc(ins_.moran_events);
        decision.has_moran = true;
        std::vector<double> full;
        {
          obs::ScopedTimer t(ins_.fitness_return);
          obs::TraceSpan span(obs::phase::kFitnessReturn, obs::kCatPhase);
          full = collect_full(gen, decision.adopted);
        }
        obs::ScopedTimer t(ins_.decision);
        obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
        decision.pick = nature_->select_moran(full);
      }
      if (plan.pc && !plan.moran) {
        apply_pc_stage(blocks_, pop_, plan, decision, gen, ins_);
      }
      apply_final_stage(blocks_, pop_, plan, decision, gen, ins_);

      // Write-ahead: the record of this generation reaches the standbys
      // before any worker can see its final decision.
      replicate(gen, decision);
      if (plan.pc || plan.moran) {
        obs::ScopedTimer t(ins_.decision);
        obs::TraceSpan span(obs::phase::kDecisionBcast, obs::kCatPhase);
        const auto wire = encode_decide(
            plan.moran ? DecideStage::Final : DecideStage::Pc, decision);
        for (int w : alive_) comm_.send(w, tag::kDecide, wire);
        prev_decision_ = decision;
      }
      finish_generation(gen);
      FtInstruments::inc(ins_.generations);

      if (shared_.options.metrics_stream != nullptr &&
          shared_.options.metrics_stream->wants(gen)) {
        // Reuse the Moran-gather protocol op to assemble the full fitness
        // vector for the streamed global mean (workers answer kReqBlocks at
        // any point of their loop). Deaths mid-gather are handled as usual.
        const std::vector<double> full = collect_full(gen, decision.adopted);
        double sum = 0.0;
        for (const double f : full) sum += f;
        shared_.options.metrics_stream->on_generation(
            gen, pop_, registry_, sum / static_cast<double>(config_.ssets));
      }

      if (shared_.options.trace != nullptr) {
        // Same capture point (and decision layout) as the base engines'
        // hooks; `nature` is the post-decision state replicate() logged.
        core::TracePoint point;
        point.generation = gen;
        point.nature = nature_->save_state();
        if (plan.pc) {
          point.pc = true;
          point.teacher = plan.pc->teacher;
          point.learner = plan.pc->learner;
          point.adopted = decision.adopted;
        }
        if (plan.moran) {
          point.moran = true;
          point.reproducer = decision.pick.reproducer;
          point.dying = decision.pick.dying;
          point.adopted = decision.pick.is_change();
        }
        if (plan.mutation) {
          point.mutated = true;
          point.mutation_target = plan.mutation->target;
        }
        point.table_hash = pop_.table_hash();
        shared_.options.trace->on_point(point);
      }
    }

    // Final snapshot gather (top-of-last-generation fitness, matching the
    // base engines). Workers keep serving until the explicit release, so a
    // dropped FINAL reply is simply re-requested.
    current_gen_ = config_.generations > 0 ? config_.generations - 1 : 0;
    for (;;) {
      std::vector<double> final_fit(config_.ssets, 0.0);
      blocks_.fill_snapshot(final_fit);
      const std::uint64_t req = ++req_seq_;
      const auto wire = encode_u64(req);
      for (int w : alive_) comm_.send(w, tag::kStop, wire);
      bool lost = false;
      const std::vector<int> expected = alive_;
      for (int w : expected) {
        if (!is_alive(w)) continue;
        const bool ok = await_from(
            w, tag::kFinal,
            [&](const par::Message& m) {
              Reader r(m.payload, kWhat);
              if (r.u64("request id") != req) return false;
              const std::uint32_t n = r.u32("range count");
              for (std::uint32_t i = 0; i < n; ++i) {
                const pop::SSetId b = r.u32("range begin");
                const pop::SSetId e = r.u32("range end");
                if (e < b || e > config_.ssets) r.fail("range out of bounds");
                const auto vals = r.doubles(e - b, "range fitness");
                std::copy(vals.begin(), vals.end(), final_fit.begin() + b);
              }
              r.expect_exhausted();
              return true;
            },
            [&] { comm_.send(w, tag::kStop, wire); });
        if (!ok) {
          handle_death(w);
          lost = true;
          break;
        }
      }
      if (lost) continue;  // re-gather with the post-recovery ownership
      for (pop::SSetId i = 0; i < config_.ssets; ++i) {
        pop_.set_fitness(i, final_fit[i]);
      }
      break;
    }

    // Release every rank — including declared-dead ones that are actually
    // alive (passive zombies wait for exactly this so run_ranks can join
    // them).
    for (int w = 0; w < comm_.size(); ++w) {
      if (w != rank_) comm_.send(w, tag::kBye, {});
    }
    std::lock_guard<std::mutex> lk(shared_.result_mu);
    if (!shared_.result.has_value() || view_ >= shared_.result_view) {
      shared_.result = std::move(pop_);
      shared_.result_view = view_;
    }
  }

  // -- members --------------------------------------------------------------

  par::Comm& comm_;
  Shared& shared_;
  obs::MetricsRegistry& registry_;
  FtInstruments ins_;
  const core::SimConfig& config_;
  const int rank_;
  pop::Population pop_;
  pop::Population pop_gen_start_;
  std::shared_ptr<const pop::InteractionGraph> graph_;
  OwnershipTable table_;
  BlockSet blocks_;
  const std::optional<std::uint64_t> kill_gen_;

  // Protocol position (every rank).
  std::uint32_t epoch_ = 0;
  std::int64_t last_gen_ = -1;
  std::optional<Pending> pending_;
  DecisionLog log_;
  std::uint64_t view_ = 0;
  std::uint64_t voted_view_ = 0;
  std::map<std::uint64_t, std::map<int, Vote>> votes_;
  int master_ = 0;
  bool passive_ = false;
  Clock::time_point last_master_msg_{};

  // Master-side state (live once this rank is, or becomes, the master).
  std::optional<pop::NatureAgent> nature_;
  std::vector<int> alive_;
  std::uint64_t ping_seq_ = 0;
  std::uint64_t req_seq_ = 0;
  std::uint64_t current_gen_ = 0;
  std::optional<Decision> prev_decision_;
  bool in_generation_ = false;
};

}  // namespace

FtResult run_parallel_ft(const core::SimConfig& config, int nranks) {
  return run_parallel_ft(config, nranks, FtRunOptions{});
}

FtResult run_parallel_ft(const core::SimConfig& config, int nranks,
                         const FtRunOptions& options) {
  config.validate();
  EGT_REQUIRE_MSG(nranks >= 1, "need at least one rank");
  EGT_REQUIRE_MSG(static_cast<pop::SSetId>(nranks) <= config.ssets,
                  "more ranks than SSets is not supported by the block "
                  "partition");
  options.plan.validate(nranks);
  EGT_REQUIRE_MSG(options.detect_timeout_ms > 0 && options.ping_timeout_ms > 0,
                  "detection timeouts must be positive");
  EGT_REQUIRE_MSG(options.max_pings >= 1, "need at least one ping probe");
  EGT_REQUIRE_MSG(options.standby_replicas >= 0,
                  "standby_replicas must be >= 0");
  EGT_REQUIRE_MSG(options.checkpoint_keep >= 1, "checkpoint_keep must be >= 1");
  EGT_REQUIRE_MSG(options.master_silence_ms >= 0 &&
                      options.election_window_ms >= 0,
                  "failover timeouts must be >= 0 (0 = auto)");
  EGT_REQUIRE_MSG(
      !options.plan.kill_generation(0).has_value() ||
          options.standby_replicas >= 1,
      "fault plan kills rank 0 (the Nature Agent) but standby_replicas is 0 "
      "— there is no decision-log replica to fail over to");

  Shared shared(config, options);
  std::deque<obs::MetricsRegistry> rank_registries(
      static_cast<std::size_t>(nranks));
  // The injector reports into rank 0's registry (merged below), so
  // ft.faults.* appear beside ft.recoveries in the manifest.
  par::RunOptions run_options;
  run_options.fault_injector =
      std::make_shared<PlanFaultInjector>(options.plan, &rank_registries[0]);

  const par::TrafficReport traffic = par::run_ranks_traced(
      nranks,
      [&](par::Comm& comm) {
        // Flight-recorder attribution: this thread's events land on
        // pid = rank, wherever the master role currently lives.
        const obs::TraceRankScope trace_rank(comm.rank());
        obs::Tracer::set_thread_name("rank.main");
        RankProgram program(
            comm, shared,
            rank_registries[static_cast<std::size_t>(comm.rank())]);
        program.run();
      },
      run_options);
  EGT_ASSERT(shared.result.has_value());

  obs::MetricsRegistry merged;
  for (const auto& reg : rank_registries) merged.merge(reg);
  merged.gauge("engine.ranks").set(static_cast<double>(nranks));
  merged.gauge("ft.ranks_lost").set(
      static_cast<double>(shared.ranks_lost.load()));
  if (options.metrics != nullptr) options.metrics->merge(merged);

  return FtResult{std::move(*shared.result),   traffic,
                  config.generations,          shared.ranks_lost.load(),
                  shared.failovers.load(),     merged.snapshot()};
}

}  // namespace egt::ft
