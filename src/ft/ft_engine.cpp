#include "ft/ft_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "core/parallel_engine.hpp"
#include "core/wire.hpp"
#include "ft/block_checkpoint.hpp"
#include "ft/injector.hpp"
#include "ft/ownership.hpp"
#include "ft/protocol.hpp"
#include "par/comm.hpp"
#include "pop/nature.hpp"
#include "util/check.hpp"

namespace egt::ft {

namespace {

using core::wire::Reader;
using core::wire::Writer;

// -- instruments --------------------------------------------------------------

// Same phase timers and "engine.*" counters as the base engines (so serial,
// parallel and ft manifests are directly comparable), plus the "ft.*"
// family. The master-side ft counters are pre-registered at rank 0 so a
// fault-free run's manifest still reports ft.recoveries = 0 explicitly.
struct FtInstruments {
  obs::Histogram* game_play = nullptr;
  obs::Histogram* plan = nullptr;
  obs::Histogram* fitness_return = nullptr;
  obs::Histogram* decision = nullptr;
  obs::Histogram* apply = nullptr;
  obs::Histogram* ckpt = nullptr;
  obs::Histogram* recovery = nullptr;
  obs::Counter* pairs = nullptr;           // engine.pairs_evaluated
  obs::Counter* recovery_pairs = nullptr;  // ft.recovery.pairs_evaluated
  obs::Counter* ckpt_writes = nullptr;
  obs::Counter* ckpt_bytes = nullptr;
  obs::Counter* blocks_restored = nullptr;
  obs::Counter* blocks_recomputed = nullptr;
  obs::Counter* heals = nullptr;
  obs::Counter* kills = nullptr;
  // Master only (null on workers).
  obs::Counter* generations = nullptr;
  obs::Counter* pc_events = nullptr;
  obs::Counter* adoptions = nullptr;
  obs::Counter* moran_events = nullptr;
  obs::Counter* mutations = nullptr;
  obs::Counter* failures = nullptr;
  obs::Counter* recoveries = nullptr;
  obs::Counter* suspects = nullptr;
  obs::Counter* false_alarms = nullptr;
  obs::Counter* resends = nullptr;
  obs::Counter* stale = nullptr;

  FtInstruments(obs::MetricsRegistry& reg, int rank) {
    game_play = &reg.histogram(obs::phase::kGamePlay);
    plan = &reg.histogram(obs::phase::kPlanBcast);
    fitness_return = &reg.histogram(obs::phase::kFitnessReturn);
    decision = &reg.histogram(obs::phase::kDecisionBcast);
    apply = &reg.histogram(obs::phase::kApplyUpdate);
    ckpt = &reg.histogram("phase.ft_checkpoint");
    recovery = &reg.histogram("phase.ft_recovery");
    pairs = &reg.counter("engine.pairs_evaluated");
    recovery_pairs = &reg.counter("ft.recovery.pairs_evaluated");
    ckpt_writes = &reg.counter("ft.checkpoint.writes");
    ckpt_bytes = &reg.counter("ft.checkpoint.bytes");
    blocks_restored = &reg.counter("ft.recovery.blocks_restored");
    blocks_recomputed = &reg.counter("ft.recovery.blocks_recomputed");
    heals = &reg.counter("ft.heals");
    kills = &reg.counter("ft.faults.kills");
    if (rank == 0) {
      generations = &reg.counter("engine.generations");
      pc_events = &reg.counter("engine.pc_events");
      adoptions = &reg.counter("engine.adoptions");
      moran_events = &reg.counter("engine.moran_events");
      mutations = &reg.counter("engine.mutations");
      failures = &reg.counter("ft.failures_detected");
      recoveries = &reg.counter("ft.recoveries");
      suspects = &reg.counter("ft.suspected_ranks");
      false_alarms = &reg.counter("ft.false_alarms");
      resends = &reg.counter("ft.resends");
      stale = &reg.counter("ft.stale_messages");
    }
  }

  static void inc(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->inc(n);
  }
};

// -- owned fitness blocks -----------------------------------------------------

// A rank's set of owned fitness blocks. Starts as the single fault-free
// BlockPartition range; grows when ranges are adopted from dead ranks.
// Pairs accounting follows the fault-free ledger: startup initialization
// and per-generation work count to "engine.pairs_evaluated" (so the merged
// total matches a fault-free run under kill-only plans); work that only
// exists because of recovery counts to "ft.recovery.pairs_evaluated".
class BlockSet {
 public:
  BlockSet(const core::SimConfig& config,
           std::shared_ptr<const pop::InteractionGraph> graph,
           FtInstruments& ins)
      : config_(config), graph_(std::move(graph)), ins_(ins) {}

  bool cached_mode() const noexcept {
    return config_.fitness_mode != core::FitnessMode::Sampled;
  }

  /// Fault-free startup block: initialization counts to engine.pairs, as
  /// in the base engines.
  void add_initial(pop::SSetId begin, pop::SSetId end,
                   const pop::Population& pop) {
    Block blk{core::BlockFitness(config_, begin, end, graph_), {}, 0};
    {
      obs::ScopedTimer t(ins_.game_play);
      blk.fit.initialize(pop);
    }
    blk.accounted = blk.fit.pairs_evaluated();
    ins_.pairs->inc(blk.accounted);
    blk.snapshot.assign(blk.fit.block().size(), 0.0);
    blocks_.push_back(std::move(blk));
  }

  void begin_generation(const pop::Population& pop, std::uint64_t gen) {
    obs::ScopedTimer t(ins_.game_play);
    for (Block& b : blocks_) {
      b.fit.begin_generation(pop, gen);
      b.snapshot.assign(b.fit.block().begin(), b.fit.block().end());
    }
    changed_this_gen_.clear();
    account_engine_pairs();
  }

  void strategy_changed(pop::SSetId k, const pop::Population& pop,
                        std::uint64_t gen) {
    for (Block& b : blocks_) b.fit.strategy_changed(k, pop, gen);
    changed_this_gen_.push_back(k);
  }

  bool owns(pop::SSetId i) const noexcept {
    for (const Block& b : blocks_) {
      if (i >= b.fit.row_begin() && i < b.fit.row_end()) return true;
    }
    return false;
  }

  bool owns_range(pop::SSetId begin, pop::SSetId end) const noexcept {
    for (const Block& b : blocks_) {
      if (b.fit.row_begin() == begin && b.fit.row_end() == end) return true;
    }
    return false;
  }

  double fitness(pop::SSetId i) const {
    for (const Block& b : blocks_) {
      if (i >= b.fit.row_begin() && i < b.fit.row_end()) return b.fit.fitness(i);
    }
    EGT_REQUIRE_MSG(false, "fitness query on unowned SSet");
    return 0.0;
  }

  /// Current fitness of every owned block into `full` (indexed by SSet).
  void fill_current(std::vector<double>& full) const {
    for (const Block& b : blocks_) {
      std::copy(b.fit.block().begin(), b.fit.block().end(),
                full.begin() + b.fit.row_begin());
    }
  }

  /// Top-of-generation snapshot of every owned block into `full`.
  void fill_snapshot(std::vector<double>& full) const {
    for (const Block& b : blocks_) {
      std::copy(b.snapshot.begin(), b.snapshot.end(),
                full.begin() + b.fit.row_begin());
    }
  }

  /// Append every owned block as (begin, end, doubles) using `snapshot` or
  /// current values — the BLOCKS / FINAL reply payload.
  void encode_ranges(Writer& w, bool snapshot) const {
    w.u32(static_cast<std::uint32_t>(blocks_.size()));
    for (const Block& b : blocks_) {
      w.u32(b.fit.row_begin());
      w.u32(b.fit.row_end());
      if (snapshot) {
        w.doubles(b.snapshot.data(), b.snapshot.size());
      } else {
        w.doubles(b.fit.block().data(), b.fit.block().size());
      }
    }
  }

  /// Adopt range [begin, end) from a dead rank, mid-generation `gen`.
  /// `pop` is the current population replica; `pop_gen_start` its state at
  /// the top of `gen` (before this generation's updates).
  ///
  /// Fast path: a fresh covering block checkpoint restores the exact
  /// doubles (bit-exact, zero games). Recompute path: Sampled re-plays the
  /// block with this generation's streams from the top-of-generation
  /// population (bit-exact by purity; counts to engine.pairs exactly as
  /// the dead rank's evaluation would have); cached modes re-initialize
  /// from scratch and replay this generation's strategy changes (recovery
  /// work, counts to ft.recovery.pairs_evaluated).
  void adopt(pop::SSetId begin, pop::SSetId end, const pop::Population& pop,
             const pop::Population& pop_gen_start, std::uint64_t gen,
             const CheckpointStore& store, std::uint64_t fingerprint) {
    obs::ScopedTimer t(ins_.recovery);
    Block blk{core::BlockFitness(config_, begin, end, graph_), {}, 0};
    std::optional<BlockCheckpoint> hit;
    if (cached_mode()) {
      hit = store.find_covering(begin, end, gen, pop.table_hash());
    }
    if (hit && hit->matrix_cols == config_.ssets &&
        hit->config_fingerprint == fingerprint) {
      blk.fit.restore_state(hit->fitness_slice(begin, end),
                            hit->matrix_slice(begin, end));
      blk.snapshot.assign(blk.fit.block().begin(), blk.fit.block().end());
      FtInstruments::inc(ins_.blocks_restored);
    } else {
      if (cached_mode()) {
        blk.fit.initialize(pop_gen_start);
        FtInstruments::inc(ins_.recovery_pairs, blk.fit.pairs_evaluated());
        blk.accounted = blk.fit.pairs_evaluated();
      }
      blk.fit.begin_generation(pop_gen_start, gen);
      ins_.pairs->inc(blk.fit.pairs_evaluated() - blk.accounted);
      blk.accounted = blk.fit.pairs_evaluated();
      // Snapshot = top-of-generation values, before this generation's
      // updates (which are replayed on top for the cached modes below).
      blk.snapshot.assign(blk.fit.block().begin(), blk.fit.block().end());
      for (pop::SSetId k : changed_this_gen_) {
        blk.fit.strategy_changed(k, pop, gen);
      }
      FtInstruments::inc(ins_.recovery_pairs,
                         blk.fit.pairs_evaluated() - blk.accounted);
      FtInstruments::inc(ins_.blocks_recomputed);
    }
    blk.accounted = blk.fit.pairs_evaluated();
    blocks_.push_back(std::move(blk));
  }

  /// Publish one checkpoint blob per owned block. `next_gen` labels the
  /// generation the captured values are valid for (gen + 1 at end-of-gen).
  void checkpoint_to(CheckpointStore& store, int rank, std::uint64_t next_gen,
                     std::uint64_t table_hash,
                     std::uint64_t fingerprint) const {
    obs::ScopedTimer t(ins_.ckpt);
    for (const Block& b : blocks_) {
      BlockCheckpoint c;
      c.config_fingerprint = fingerprint;
      c.generation = next_gen;
      c.table_hash = table_hash;
      c.begin = b.fit.row_begin();
      c.end = b.fit.row_end();
      const auto matrix = b.fit.payoff_matrix();
      c.matrix_cols = matrix.empty() ? 0 : config_.ssets;
      c.fitness.assign(b.fit.block().begin(), b.fit.block().end());
      c.matrix.assign(matrix.begin(), matrix.end());
      auto blob = c.encode();
      FtInstruments::inc(ins_.ckpt_writes);
      FtInstruments::inc(ins_.ckpt_bytes, blob.size());
      store.put(rank, c.begin, c.end, std::move(blob));
    }
  }

  /// Move the growth of the pairs counters since the last accounting into
  /// engine.pairs_evaluated (per-generation work: begin_generation and
  /// strategy_changed deltas, both of which a fault-free run also pays).
  void account_engine_pairs() {
    for (Block& b : blocks_) {
      const std::uint64_t now = b.fit.pairs_evaluated();
      ins_.pairs->inc(now - b.accounted);
      b.accounted = now;
    }
  }

 private:
  struct Block {
    core::BlockFitness fit;
    std::vector<double> snapshot;  // top-of-generation values
    std::uint64_t accounted = 0;   // pairs already flushed to a counter
  };

  core::SimConfig config_;
  std::shared_ptr<const pop::InteractionGraph> graph_;
  FtInstruments& ins_;
  std::vector<Block> blocks_;
  // Strategy changes applied in the current generation, in order —
  // replayed onto blocks adopted mid-generation.
  std::vector<pop::SSetId> changed_this_gen_;
};

// -- message codecs -----------------------------------------------------------

constexpr const char* kWhat = "ft protocol message";

// The decision(s) of one generation, as carried by DECIDE messages and by
// the next PLAN's heal fields.
struct Decision {
  std::uint64_t gen = 0;
  bool adopted = false;
  bool has_moran = false;
  pop::MoranPick pick;
};

void put_decision_body(Writer& w, const Decision& d) {
  w.u8(d.adopted ? 1 : 0);
  w.u8(d.has_moran ? 1 : 0);
  w.u32(d.pick.reproducer);
  w.u32(d.pick.dying);
}

Decision get_decision_body(Reader& r, std::uint64_t gen) {
  Decision d;
  d.gen = gen;
  d.adopted = r.u8("adopted") != 0;
  d.has_moran = r.u8("has moran") != 0;
  d.pick.reproducer = r.u32("moran reproducer");
  d.pick.dying = r.u32("moran dying");
  return d;
}

std::vector<std::byte> encode_plan_msg(std::uint64_t gen,
                                       const std::optional<Decision>& prev,
                                       const std::vector<std::byte>& plan) {
  Writer w;
  w.u64(gen);
  w.u8(prev ? 1 : 0);
  if (prev) {
    w.u64(prev->gen);
    put_decision_body(w, *prev);
  }
  w.bytes(plan);
  return w.take();
}

std::vector<std::byte> encode_u64(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}

std::uint64_t decode_u64(const par::Message& m, const char* field) {
  Reader r(m.payload, kWhat);
  const std::uint64_t v = r.u64(field);
  r.expect_exhausted();
  return v;
}

// PC-stage decide (adoption only) vs final-stage decide (moran + done).
enum class DecideStage : std::uint8_t { Pc = 0, Final = 1 };

std::vector<std::byte> encode_decide(DecideStage stage, const Decision& d) {
  Writer w;
  w.u64(d.gen);
  w.u8(static_cast<std::uint8_t>(stage));
  put_decision_body(w, d);
  return w.take();
}

// -- rank programs ------------------------------------------------------------

using Clock = std::chrono::steady_clock;

struct Shared {
  const core::SimConfig& config;
  const FtRunOptions& options;
  CheckpointStore store;
  std::uint64_t fingerprint = 0;
  std::chrono::nanoseconds detect{0};
  std::chrono::nanoseconds ping{0};
};

// Applies one generation's scheduled updates in the fault-free order:
// PC adoption, Moran replacement, mutation. `apply_pc` / `apply_rest`
// split the two decision stages (the Moran gather must see post-adoption
// fitness, exactly as in the base engines).
void apply_pc_stage(BlockSet& blocks, pop::Population& pop,
                    const pop::GenerationPlan& plan, const Decision& d,
                    std::uint64_t gen, FtInstruments& ins) {
  if (plan.pc && d.adopted) {
    FtInstruments::inc(ins.adoptions);
    obs::ScopedTimer t(ins.apply);
    pop.set_strategy(plan.pc->learner, pop.strategy(plan.pc->teacher));
    blocks.strategy_changed(plan.pc->learner, pop, gen);
  }
}

void apply_final_stage(BlockSet& blocks, pop::Population& pop,
                       const pop::GenerationPlan& plan, const Decision& d,
                       std::uint64_t gen, FtInstruments& ins) {
  if (plan.moran && d.pick.is_change()) {
    obs::ScopedTimer t(ins.apply);
    pop.set_strategy(d.pick.dying, pop.strategy(d.pick.reproducer));
    blocks.strategy_changed(d.pick.dying, pop, gen);
  }
  if (plan.mutation) {
    FtInstruments::inc(ins.mutations);
    obs::ScopedTimer t(ins.apply);
    pop.set_strategy(plan.mutation->target, plan.mutation->strategy);
    blocks.strategy_changed(plan.mutation->target, pop, gen);
  }
}

// ---------------------------------------------------------------------------
// Worker: an event loop over messages from the master (rank 0, immortal —
// a worker never blocks on a rank that can die). All the state a worker
// needs to act on a message is local; duplicated messages (resends after a
// dropped reply) are detected by generation / epoch / request id and
// re-acknowledged without redoing work.
// ---------------------------------------------------------------------------

void worker_main(par::Comm& comm, Shared& shared,
                 obs::MetricsRegistry& registry) {
  const core::SimConfig& config = shared.config;
  const int rank = comm.rank();
  FtInstruments ins(registry, rank);

  pop::Population pop = core::make_initial_population(config);
  pop::Population pop_gen_start = pop;
  const auto graph = core::make_shared_graph(config);
  OwnershipTable table = OwnershipTable::initial(config.ssets, comm.size());
  BlockSet blocks(config, graph, ins);
  for (const auto& [b, e] : table.ranges_of(rank)) {
    blocks.add_initial(b, e, pop);
  }

  const std::optional<std::uint64_t> kill_gen =
      shared.options.plan.kill_generation(rank);
  std::int64_t last_gen = -1;
  std::uint32_t applied_epoch = 0;
  // The generation plan currently awaiting its decision message(s).
  struct Pending {
    std::uint64_t gen;
    pop::GenerationPlan plan;
    bool pc_applied = false;
  };
  std::optional<Pending> pending;

  auto finish_generation = [&](std::uint64_t gen) {
    blocks.account_engine_pairs();
    const std::uint64_t every = shared.options.checkpoint_every;
    if (every > 0 && (gen + 1) % every == 0) {
      blocks.checkpoint_to(shared.store, rank, gen + 1, pop.table_hash(),
                           shared.fingerprint);
    }
  };

  for (;;) {
    const par::Message m = comm.recv(0, par::kAnyTag);
    switch (m.tag) {
      case tag::kPlan: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        std::optional<Decision> prev;
        if (r.u8("has prev decision") != 0) {
          const std::uint64_t pgen = r.u64("prev generation");
          prev = get_decision_body(r, pgen);
        }
        const auto plan_wire = r.bytes("plan payload");
        r.expect_exhausted();
        if (kill_gen && *kill_gen == gen) {
          // The injected crash: stop participating, silently. The plan for
          // this generation dies with us and must be recovered.
          FtInstruments::inc(ins.kills);
          return;
        }
        if (static_cast<std::int64_t>(gen) < last_gen) break;  // ancient dup
        if (static_cast<std::int64_t>(gen) == last_gen) {
          // Resend after a dropped ack: re-acknowledge, don't redo.
          comm.send(0, tag::kPlanAck, encode_u64(gen));
          break;
        }
        // Heal: if the previous generation's decision never arrived, the
        // plan carries it (FIFO order from rank 0 makes this safe).
        if (pending && prev && prev->gen == pending->gen) {
          FtInstruments::inc(ins.heals);
          if (!pending->pc_applied) {
            apply_pc_stage(blocks, pop, pending->plan, *prev, pending->gen,
                           ins);
          }
          apply_final_stage(blocks, pop, pending->plan, *prev, pending->gen,
                            ins);
          pending.reset();
          finish_generation(prev->gen);
        }
        EGT_ASSERT(!pending);
        blocks.begin_generation(pop, gen);
        pop_gen_start = pop;
        pop::GenerationPlan plan = core::decode_generation_plan(plan_wire);
        if (plan.pc || plan.moran) {
          pending = Pending{gen, std::move(plan), false};
        } else {
          apply_final_stage(blocks, pop, plan, Decision{}, gen, ins);
          finish_generation(gen);
        }
        last_gen = static_cast<std::int64_t>(gen);
        comm.send(0, tag::kPlanAck, encode_u64(gen));
        break;
      }
      case tag::kDecide: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        const auto stage = static_cast<DecideStage>(r.u8("stage"));
        const Decision d = get_decision_body(r, gen);
        r.expect_exhausted();
        if (!pending || pending->gen != gen) break;  // stale duplicate
        if (stage == DecideStage::Pc) {
          if (!pending->pc_applied) {
            apply_pc_stage(blocks, pop, pending->plan, d, gen, ins);
            pending->pc_applied = true;
          }
          if (!pending->plan.moran) {
            apply_final_stage(blocks, pop, pending->plan, d, gen, ins);
            pending.reset();
            finish_generation(gen);
          }
        } else {
          if (!pending->pc_applied) {
            apply_pc_stage(blocks, pop, pending->plan, d, gen, ins);
          }
          apply_final_stage(blocks, pop, pending->plan, d, gen, ins);
          pending.reset();
          finish_generation(gen);
        }
        break;
      }
      case tag::kReqFit: {
        Reader r(m.payload, kWhat);
        const std::uint64_t req = r.u64("request id");
        const pop::SSetId k = r.u32("sset");
        r.expect_exhausted();
        EGT_REQUIRE_MSG(blocks.owns(k),
                        "ft protocol: fitness request for unowned SSet");
        Writer w;
        w.u64(req);
        w.f64(blocks.fitness(k));
        comm.send(0, tag::kFit, w.take());
        break;
      }
      case tag::kReqBlocks: {
        Reader r(m.payload, kWhat);
        const std::uint64_t req = r.u64("request id");
        const std::uint64_t gen = r.u64("generation");
        const bool adopted = r.u8("adopted") != 0;
        r.expect_exhausted();
        // The gather must see post-adoption fitness (fault-free ordering
        // guarantees it via FIFO; a dropped PC decide would break it), so
        // the request carries the PC decision and heals a missed one.
        if (pending && pending->gen == gen && !pending->pc_applied &&
            pending->plan.pc) {
          Decision d;
          d.gen = gen;
          d.adopted = adopted;
          FtInstruments::inc(ins.heals);
          apply_pc_stage(blocks, pop, pending->plan, d, gen, ins);
          pending->pc_applied = true;
        }
        Writer w;
        w.u64(req);
        blocks.encode_ranges(w, /*snapshot=*/false);
        comm.send(0, tag::kBlocks, w.take());
        break;
      }
      case tag::kPing: {
        comm.send(0, tag::kPong, encode_u64(decode_u64(m, "ping seq")));
        break;
      }
      case tag::kReconfig: {
        Reader r(m.payload, kWhat);
        const std::uint64_t gen = r.u64("generation");
        const std::uint32_t epoch = r.u32("epoch");
        OwnershipTable next = OwnershipTable::decode(r);
        r.expect_exhausted();
        if (epoch > applied_epoch) {
          table = std::move(next);
          applied_epoch = epoch;
          for (const auto& [b, e] : table.ranges_of(rank)) {
            if (!blocks.owns_range(b, e)) {
              blocks.adopt(b, e, pop, pop_gen_start, gen, shared.store,
                           shared.fingerprint);
            }
          }
        }
        // Ack with the newest applied epoch (acks are cumulative).
        Writer w;
        w.u32(applied_epoch);
        comm.send(0, tag::kReconfigAck, w.take());
        break;
      }
      case tag::kStop: {
        // Reply with the final snapshot but keep serving (the reply may be
        // dropped and re-requested); kBye releases the thread.
        const std::uint64_t req = decode_u64(m, "request id");
        Writer w;
        w.u64(req);
        blocks.encode_ranges(w, /*snapshot=*/true);
        comm.send(0, tag::kFinal, w.take());
        break;
      }
      case tag::kBye:
        return;
      default:
        EGT_REQUIRE_MSG(false, "ft protocol: unexpected message tag");
    }
  }
}

// ---------------------------------------------------------------------------
// Master (rank 0): Nature Agent + failure detector + recovery coordinator.
// ---------------------------------------------------------------------------

void master_main(par::Comm& comm, Shared& shared,
                 std::optional<pop::Population>& result_slot,
                 int& ranks_lost, obs::MetricsRegistry& registry) {
  const core::SimConfig& config = shared.config;
  FtInstruments ins(registry, 0);

  pop::Population pop = core::make_initial_population(config);
  pop::Population pop_gen_start = pop;
  const auto graph = core::make_shared_graph(config);
  OwnershipTable table = OwnershipTable::initial(config.ssets, comm.size());
  BlockSet blocks(config, graph, ins);
  for (const auto& [b, e] : table.ranges_of(0)) {
    blocks.add_initial(b, e, pop);
  }

  auto nc = config.nature_config();
  nc.graph = graph;
  pop::NatureAgent nature(nc);

  std::vector<int> alive;  // live workers, ascending
  for (int w = 1; w < comm.size(); ++w) alive.push_back(w);
  std::uint32_t epoch = 0;
  std::uint64_t ping_seq = 0;
  std::uint64_t req_seq = 0;
  std::uint64_t current_gen = 0;

  auto is_alive = [&](int w) {
    return std::find(alive.begin(), alive.end(), w) != alive.end();
  };

  // Probe a suspected rank: true = it answered (false alarm).
  auto probe = [&](int w) {
    for (int attempt = 0; attempt < shared.options.max_pings; ++attempt) {
      const std::uint64_t seq = ++ping_seq;
      comm.send(w, tag::kPing, encode_u64(seq));
      const auto deadline = Clock::now() + shared.ping;
      for (;;) {
        const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - Clock::now());
        if (left <= std::chrono::nanoseconds::zero()) break;
        auto reply = comm.recv_for(w, tag::kPong, left);
        if (!reply) break;
        if (decode_u64(*reply, "pong seq") == seq) return true;
        FtInstruments::inc(ins.stale);  // a pong from an earlier probe
      }
    }
    return false;
  };

  // Deadline-wait for a reply from `w`. `accept` consumes a matching
  // message (false = stale, keep waiting); on timeout the rank is probed —
  // alive reruns `resend` and keeps waiting, silence returns false (dead).
  auto await_from = [&](int w, int tagv, auto&& accept, auto&& resend) {
    for (;;) {
      auto m = comm.recv_for(w, tagv, shared.detect);
      if (m) {
        if (accept(*m)) return true;
        FtInstruments::inc(ins.stale);
        continue;
      }
      FtInstruments::inc(ins.suspects);
      if (!probe(w)) return false;
      FtInstruments::inc(ins.false_alarms);
      FtInstruments::inc(ins.resends);
      resend();
    }
  };

  // Declares `w` dead and re-establishes the invariants: ownership table
  // re-partitioned, locally-owed ranges adopted, RECONFIG acknowledged by
  // every survivor. Recursion on a nested death (only reachable through
  // false-positive evictions) is bounded by the rank count.
  std::function<void(int)> handle_death = [&](int dead) {
    FtInstruments::inc(ins.failures);
    FtInstruments::inc(ins.recoveries);
    ++ranks_lost;
    alive.erase(std::remove(alive.begin(), alive.end(), dead), alive.end());
    std::vector<int> survivors{0};
    survivors.insert(survivors.end(), alive.begin(), alive.end());
    table.reassign(dead, survivors);
    const std::uint32_t target_epoch = ++epoch;
    for (const auto& [b, e] : table.ranges_of(0)) {
      if (!blocks.owns_range(b, e)) {
        blocks.adopt(b, e, pop, pop_gen_start, current_gen, shared.store,
                     shared.fingerprint);
      }
    }
    Writer w;
    w.u64(current_gen);
    w.u32(target_epoch);
    table.encode(w);
    const auto wire = w.take();
    for (int r : alive) comm.send(r, tag::kReconfig, wire);
    const std::vector<int> expected = alive;
    for (int r : expected) {
      if (!is_alive(r)) continue;  // lost to a nested death
      const bool ok = await_from(
          r, tag::kReconfigAck,
          [&](const par::Message& m) {
            Reader rd(m.payload, kWhat);
            const std::uint32_t acked = rd.u32("acked epoch");
            rd.expect_exhausted();
            return acked >= target_epoch;
          },
          [&] { comm.send(r, tag::kReconfig, wire); });
      if (!ok) handle_death(r);
    }
  };

  // Current fitness of one SSet, wherever it lives.
  auto fitness_of = [&](pop::SSetId k) {
    for (;;) {
      const int owner = table.owner_of(k);
      if (owner == 0) return blocks.fitness(k);
      const std::uint64_t req = ++req_seq;
      Writer w;
      w.u64(req);
      w.u32(k);
      const auto wire = w.take();
      comm.send(owner, tag::kReqFit, wire);
      double value = 0.0;
      const bool ok = await_from(
          owner, tag::kFit,
          [&](const par::Message& m) {
            Reader r(m.payload, kWhat);
            const std::uint64_t id = r.u64("request id");
            const double v = r.f64("fitness");
            r.expect_exhausted();
            if (id != req) return false;
            value = v;
            return true;
          },
          [&] { comm.send(owner, tag::kReqFit, wire); });
      if (ok) return value;
      handle_death(owner);  // retry against the new owner
    }
  };

  // The whole population's current fitness (the Moran gather). The request
  // restates this generation's PC decision so a worker whose DECIDE was
  // dropped can heal before replying — the gather must see post-adoption
  // fitness to match the fault-free trajectory.
  auto collect_full = [&](std::uint64_t gen, bool adopted) {
    for (;;) {
      std::vector<double> full(config.ssets, 0.0);
      blocks.fill_current(full);
      const std::uint64_t req = ++req_seq;
      Writer rw;
      rw.u64(req);
      rw.u64(gen);
      rw.u8(adopted ? 1 : 0);
      const auto wire = rw.take();
      for (int w : alive) comm.send(w, tag::kReqBlocks, wire);
      bool lost = false;
      const std::vector<int> expected = alive;
      for (int w : expected) {
        if (!is_alive(w)) continue;
        const bool ok = await_from(
            w, tag::kBlocks,
            [&](const par::Message& m) {
              Reader r(m.payload, kWhat);
              if (r.u64("request id") != req) return false;
              const std::uint32_t n = r.u32("range count");
              for (std::uint32_t i = 0; i < n; ++i) {
                const pop::SSetId b = r.u32("range begin");
                const pop::SSetId e = r.u32("range end");
                if (e < b || e > config.ssets) r.fail("range out of bounds");
                const auto vals = r.doubles(e - b, "range fitness");
                std::copy(vals.begin(), vals.end(), full.begin() + b);
              }
              r.expect_exhausted();
              return true;
            },
            [&] { comm.send(w, tag::kReqBlocks, wire); });
        if (!ok) {
          handle_death(w);
          lost = true;
          break;
        }
      }
      // A death mid-gather invalidates the round (the new owner's values
      // were not requested) — rerun it with a fresh request id; late
      // replies to the old id are discarded as stale.
      if (!lost) return full;
    }
  };

  std::optional<Decision> prev_decision;

  for (std::uint64_t gen = 0; gen < config.generations; ++gen) {
    current_gen = gen;
    blocks.begin_generation(pop, gen);
    pop_gen_start = pop;

    pop::GenerationPlan plan;
    {
      obs::ScopedTimer t(ins.plan);
      plan = nature.plan_generation(&pop);
      const auto wire = encode_plan_msg(
          gen, prev_decision, core::encode_generation_plan(plan));
      for (int w : alive) comm.send(w, tag::kPlan, wire);
      // Collect acks — the per-generation heartbeat. A killed rank is
      // detected here, before any of this generation's decisions.
      const std::vector<int> expected = alive;
      for (int w : expected) {
        if (!is_alive(w)) continue;
        const bool ok = await_from(
            w, tag::kPlanAck,
            [&](const par::Message& m) {
              return decode_u64(m, "acked generation") == gen;
            },
            [&] {
              comm.send(w, tag::kPlan,
                        encode_plan_msg(gen, prev_decision,
                                        core::encode_generation_plan(plan)));
            });
        if (!ok) handle_death(w);
      }
    }
    prev_decision.reset();

    Decision decision;
    decision.gen = gen;
    if (plan.pc) {
      FtInstruments::inc(ins.pc_events);
      double tf = 0.0, lf = 0.0;
      {
        obs::ScopedTimer t(ins.fitness_return);
        tf = fitness_of(plan.pc->teacher);
        lf = fitness_of(plan.pc->learner);
      }
      {
        obs::ScopedTimer t(ins.decision);
        decision.adopted = nature.decide_adoption(tf, lf);
        const auto wire = encode_decide(DecideStage::Pc, decision);
        for (int w : alive) comm.send(w, tag::kDecide, wire);
      }
      apply_pc_stage(blocks, pop, plan, decision, gen, ins);
    }
    if (plan.moran) {
      FtInstruments::inc(ins.moran_events);
      decision.has_moran = true;
      std::vector<double> full;
      {
        obs::ScopedTimer t(ins.fitness_return);
        full = collect_full(gen, decision.adopted);
      }
      {
        obs::ScopedTimer t(ins.decision);
        decision.pick = nature.select_moran(full);
        const auto wire = encode_decide(DecideStage::Final, decision);
        for (int w : alive) comm.send(w, tag::kDecide, wire);
      }
    }
    apply_final_stage(blocks, pop, plan, decision, gen, ins);
    blocks.account_engine_pairs();
    if (plan.pc || plan.moran) prev_decision = decision;
    FtInstruments::inc(ins.generations);

    const std::uint64_t every = shared.options.checkpoint_every;
    if (every > 0 && (gen + 1) % every == 0) {
      blocks.checkpoint_to(shared.store, 0, gen + 1, pop.table_hash(),
                           shared.fingerprint);
    }
  }

  // Final snapshot gather (top-of-last-generation fitness, matching the
  // base engines). Workers keep serving until the explicit release, so a
  // dropped FINAL reply is simply re-requested.
  current_gen = config.generations > 0 ? config.generations - 1 : 0;
  for (;;) {
    std::vector<double> final_fit(config.ssets, 0.0);
    blocks.fill_snapshot(final_fit);
    const std::uint64_t req = ++req_seq;
    const auto wire = encode_u64(req);
    for (int w : alive) comm.send(w, tag::kStop, wire);
    bool lost = false;
    const std::vector<int> expected = alive;
    for (int w : expected) {
      if (!is_alive(w)) continue;
      const bool ok = await_from(
          w, tag::kFinal,
          [&](const par::Message& m) {
            Reader r(m.payload, kWhat);
            if (r.u64("request id") != req) return false;
            const std::uint32_t n = r.u32("range count");
            for (std::uint32_t i = 0; i < n; ++i) {
              const pop::SSetId b = r.u32("range begin");
              const pop::SSetId e = r.u32("range end");
              if (e < b || e > config.ssets) r.fail("range out of bounds");
              const auto vals = r.doubles(e - b, "range fitness");
              std::copy(vals.begin(), vals.end(), final_fit.begin() + b);
            }
            r.expect_exhausted();
            return true;
          },
          [&] { comm.send(w, tag::kStop, wire); });
      if (!ok) {
        handle_death(w);
        lost = true;
        break;
      }
    }
    if (lost) continue;  // re-gather with the post-recovery ownership
    for (pop::SSetId i = 0; i < config.ssets; ++i) {
      pop.set_fitness(i, final_fit[i]);
    }
    break;
  }

  // Release every worker thread — including declared-dead ones that are
  // actually alive (false-positive evictions keep running as "zombies"
  // until here so run_ranks can join them).
  for (int w = 1; w < comm.size(); ++w) {
    comm.send(w, tag::kBye, {});
  }
  result_slot = std::move(pop);
}

}  // namespace

FtResult run_parallel_ft(const core::SimConfig& config, int nranks) {
  return run_parallel_ft(config, nranks, FtRunOptions{});
}

FtResult run_parallel_ft(const core::SimConfig& config, int nranks,
                         const FtRunOptions& options) {
  config.validate();
  EGT_REQUIRE_MSG(nranks >= 1, "need at least one rank");
  EGT_REQUIRE_MSG(static_cast<pop::SSetId>(nranks) <= config.ssets,
                  "more ranks than SSets is not supported by the block "
                  "partition");
  options.plan.validate(nranks);
  EGT_REQUIRE_MSG(options.detect_timeout_ms > 0 && options.ping_timeout_ms > 0,
                  "detection timeouts must be positive");
  EGT_REQUIRE_MSG(options.max_pings >= 1, "need at least one ping probe");

  Shared shared{config, options, {}, core::config_fingerprint(config),
                std::chrono::nanoseconds(
                    static_cast<std::int64_t>(options.detect_timeout_ms * 1e6)),
                std::chrono::nanoseconds(
                    static_cast<std::int64_t>(options.ping_timeout_ms * 1e6))};

  std::optional<pop::Population> final_pop;
  int ranks_lost = 0;
  std::deque<obs::MetricsRegistry> rank_registries(
      static_cast<std::size_t>(nranks));
  // The injector reports into rank 0's registry (merged below), so
  // ft.faults.* appear beside ft.recoveries in the manifest.
  par::RunOptions run_options;
  run_options.fault_injector =
      std::make_shared<PlanFaultInjector>(options.plan, &rank_registries[0]);

  const par::TrafficReport traffic = par::run_ranks_traced(
      nranks,
      [&](par::Comm& comm) {
        auto& registry =
            rank_registries[static_cast<std::size_t>(comm.rank())];
        if (comm.rank() == 0) {
          master_main(comm, shared, final_pop, ranks_lost, registry);
        } else {
          worker_main(comm, shared, registry);
        }
      },
      run_options);
  EGT_ASSERT(final_pop.has_value());

  obs::MetricsRegistry merged;
  for (const auto& reg : rank_registries) merged.merge(reg);
  merged.gauge("engine.ranks").set(static_cast<double>(nranks));
  merged.gauge("ft.ranks_lost").set(static_cast<double>(ranks_lost));
  if (options.metrics != nullptr) options.metrics->merge(merged);

  return FtResult{std::move(*final_pop), traffic, config.generations,
                  ranks_lost, merged.snapshot()};
}

}  // namespace egt::ft
