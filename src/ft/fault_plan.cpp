#include "ft/fault_plan.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ft/protocol.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace egt::ft {

namespace tag {

int from_name(std::string_view name) {
  if (name == "any") return kAny;
  if (name == "plan") return kPlan;
  if (name == "plan_ack") return kPlanAck;
  if (name == "req_fit") return kReqFit;
  if (name == "fit") return kFit;
  if (name == "decide") return kDecide;
  if (name == "ping") return kPing;
  if (name == "pong") return kPong;
  if (name == "reconfig") return kReconfig;
  if (name == "reconfig_ack") return kReconfigAck;
  if (name == "req_blocks") return kReqBlocks;
  if (name == "blocks") return kBlocks;
  if (name == "stop") return kStop;
  if (name == "final") return kFinal;
  if (name == "bye") return kBye;
  if (name == "log_append") return kLogAppend;
  if (name == "log_ack") return kLogAck;
  if (name == "elect") return kElect;
  if (name == "takeover") return kTakeover;
  if (name == "takeover_ack") return kTakeoverAck;
  if (name == "evicted") return kEvicted;
  if (name == "abort") return kAbort;
  throw std::runtime_error("fault plan: unknown message tag \"" +
                           std::string(name) + "\"");
}

}  // namespace tag

namespace {

int parse_rank(const util::JsonValue& obj, const std::string& key) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr) return kAny;
  if (v->is_string()) {
    if (v->as_string() == "any") return kAny;
    throw std::runtime_error("fault plan: \"" + key +
                             "\" must be a rank number or \"any\"");
  }
  return static_cast<int>(v->as_u64());
}

int parse_tag(const util::JsonValue& obj) {
  const util::JsonValue* v = obj.find("tag");
  if (v == nullptr) return kAny;
  if (v->is_string()) return tag::from_name(v->as_string());
  return static_cast<int>(v->as_u64());
}

std::uint64_t parse_u64(const util::JsonValue& obj, const std::string& key,
                        std::uint64_t fallback) {
  const util::JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->as_u64();
}

MessageFault parse_rule(const util::JsonValue& obj, bool is_delay) {
  if (!obj.is_object()) {
    throw std::runtime_error("fault plan: message-fault rules must be objects");
  }
  MessageFault rule;
  rule.source = parse_rank(obj, "source");
  rule.dest = parse_rank(obj, "dest");
  rule.tag = parse_tag(obj);
  rule.skip = parse_u64(obj, "skip", 0);
  rule.count = parse_u64(obj, "count", 1);
  if (is_delay) {
    rule.delay_ms = parse_u64(obj, "delay_ms", 10);
  } else if (obj.has("delay_ms")) {
    throw std::runtime_error(
        "fault plan: \"delay_ms\" only applies to \"delays\" rules");
  }
  return rule;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view json_text) {
  const util::JsonValue doc = util::JsonValue::parse(json_text);
  if (!doc.is_object()) {
    throw std::runtime_error("fault plan: document must be a JSON object");
  }
  if (const util::JsonValue* schema = doc.find("schema")) {
    if (schema->as_string() != "egt.fault_plan/v1") {
      throw std::runtime_error("fault plan: unsupported schema \"" +
                               schema->as_string() +
                               "\" (this build reads egt.fault_plan/v1)");
    }
  }
  FaultPlan plan;
  if (const util::JsonValue* kills = doc.find("kills")) {
    for (const util::JsonValue& k : kills->items()) {
      if (!k.is_object() || !k.has("rank") || !k.has("generation")) {
        throw std::runtime_error(
            "fault plan: each kill needs \"rank\" and \"generation\"");
      }
      plan.kill(static_cast<int>(k.at("rank").as_u64()),
                k.at("generation").as_u64());
    }
  }
  if (const util::JsonValue* drops = doc.find("drops")) {
    for (const util::JsonValue& d : drops->items()) {
      plan.drop(parse_rule(d, /*is_delay=*/false));
    }
  }
  if (const util::JsonValue* delays = doc.find("delays")) {
    for (const util::JsonValue& d : delays->items()) {
      plan.delay(parse_rule(d, /*is_delay=*/true));
    }
  }
  if (const util::JsonValue* torn = doc.find("torn_checkpoints")) {
    for (const util::JsonValue& t : torn->items()) {
      if (!t.is_object() || !t.has("rank") || !t.has("generation")) {
        throw std::runtime_error(
            "fault plan: each torn checkpoint needs \"rank\" and "
            "\"generation\"");
      }
      plan.torn_checkpoint(static_cast<int>(t.at("rank").as_u64()),
                           t.at("generation").as_u64());
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fault plan: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse(text.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (in " + path + ")");
  }
}

FaultPlan& FaultPlan::kill(int rank, std::uint64_t generation) {
  kills_.push_back({rank, generation});
  return *this;
}

FaultPlan& FaultPlan::drop(MessageFault rule) {
  rule.delay_ms = 0;
  drops_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::delay(MessageFault rule) {
  delays_.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::torn_checkpoint(int rank, std::uint64_t generation) {
  torn_checkpoints_.push_back({rank, generation});
  return *this;
}

bool FaultPlan::torn_checkpoint_at(int rank,
                                   std::uint64_t generation) const noexcept {
  for (const TornCheckpointFault& t : torn_checkpoints_) {
    if (t.rank == rank && t.generation == generation) return true;
  }
  return false;
}

std::optional<std::uint64_t> FaultPlan::kill_generation(
    int rank) const noexcept {
  for (const KillFault& k : kills_) {
    if (k.rank == rank) return k.generation;
  }
  return std::nullopt;
}

void FaultPlan::validate(int nranks) const {
  EGT_REQUIRE_MSG(kills_.size() < static_cast<std::size_t>(nranks),
                  "fault plan: at least one rank must survive the plan");
  for (const KillFault& k : kills_) {
    EGT_REQUIRE_MSG(k.rank >= 0 && k.rank < nranks,
                    "fault plan: kill rank out of range");
    for (const KillFault& other : kills_) {
      EGT_REQUIRE_MSG(&k == &other || k.rank != other.rank,
                      "fault plan: rank killed twice");
    }
  }
  for (const TornCheckpointFault& t : torn_checkpoints_) {
    EGT_REQUIRE_MSG(t.rank >= 0 && t.rank < nranks,
                    "fault plan: torn checkpoint rank out of range");
  }
  auto check_rule = [&](const MessageFault& r) {
    EGT_REQUIRE_MSG(r.source == kAny || (r.source >= 0 && r.source < nranks),
                    "fault plan: rule source rank out of range");
    EGT_REQUIRE_MSG(r.dest == kAny || (r.dest >= 0 && r.dest < nranks),
                    "fault plan: rule dest rank out of range");
  };
  for (const MessageFault& r : drops_) check_rule(r);
  for (const MessageFault& r : delays_) check_rule(r);
}

}  // namespace egt::ft
