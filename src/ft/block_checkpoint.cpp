#include "ft/block_checkpoint.hpp"

#include "util/check.hpp"

namespace egt::ft {

namespace {
// "EGTFTBLK" — distinct from the engine checkpoint's magic, so feeding one
// blob kind to the other reader fails immediately with a clear error.
constexpr std::uint64_t kMagic = 0x4547544654424c4bull;
}  // namespace

std::vector<std::byte> BlockCheckpoint::encode() const {
  EGT_REQUIRE(begin <= end);
  EGT_REQUIRE(fitness.size() == static_cast<std::size_t>(end - begin));
  EGT_REQUIRE(matrix.size() ==
              static_cast<std::size_t>(end - begin) * matrix_cols);
  core::wire::Writer w;
  w.u64(kMagic);
  w.u32(kBlockCheckpointVersion);
  w.u64(config_fingerprint);
  w.u64(generation);
  w.u64(table_hash);
  w.u32(begin);
  w.u32(end);
  w.u32(matrix_cols);
  w.doubles(fitness.data(), fitness.size());
  w.doubles(matrix.data(), matrix.size());
  return w.take();
}

BlockCheckpoint BlockCheckpoint::decode(const std::vector<std::byte>& blob) {
  core::wire::Reader r(blob, "block checkpoint");
  if (r.u64("magic") != kMagic) {
    r.fail("not a block checkpoint (bad magic)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kBlockCheckpointVersion) {
    r.fail("unsupported block checkpoint version " + std::to_string(version) +
           " (this build reads version " +
           std::to_string(kBlockCheckpointVersion) + ")");
  }
  BlockCheckpoint c;
  c.config_fingerprint = r.u64("config fingerprint");
  c.generation = r.u64("generation");
  c.table_hash = r.u64("table hash");
  c.begin = r.u32("row begin");
  c.end = r.u32("row end");
  c.matrix_cols = r.u32("matrix cols");
  if (c.end < c.begin) {
    r.fail("row range is inverted");
  }
  const std::size_t rows = c.end - c.begin;
  c.fitness = r.doubles(rows, "fitness vector");
  c.matrix = r.doubles(rows * c.matrix_cols, "payoff matrix");
  r.expect_exhausted();
  return c;
}

std::vector<double> BlockCheckpoint::fitness_slice(pop::SSetId b,
                                                   pop::SSetId e) const {
  EGT_REQUIRE_MSG(covers(b, e), "fitness slice outside checkpointed block");
  return std::vector<double>(fitness.begin() + (b - begin),
                             fitness.begin() + (e - begin));
}

std::vector<double> BlockCheckpoint::matrix_slice(pop::SSetId b,
                                                  pop::SSetId e) const {
  EGT_REQUIRE_MSG(covers(b, e), "matrix slice outside checkpointed block");
  const std::size_t cols = matrix_cols;
  return std::vector<double>(matrix.begin() + (b - begin) * cols,
                             matrix.begin() + (e - begin) * cols);
}

void CheckpointStore::put(int rank, pop::SSetId begin, pop::SSetId end,
                          std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.rank == rank && e.begin == begin && e.end == end) {
      e.blob = std::move(blob);
      return;
    }
  }
  entries_.push_back({rank, begin, end, std::move(blob)});
}

std::optional<BlockCheckpoint> CheckpointStore::find_covering(
    pop::SSetId begin, pop::SSetId end, std::uint64_t generation,
    std::uint64_t table_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (!(e.begin <= begin && end <= e.end)) continue;
    try {
      BlockCheckpoint c = BlockCheckpoint::decode(e.blob);
      if (c.generation == generation && c.table_hash == table_hash) {
        return c;
      }
    } catch (const core::CheckpointError&) {
      // A damaged entry must not fail recovery — the recompute path covers.
    }
  }
  return std::nullopt;
}

std::size_t CheckpointStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const Entry& e : entries_) n += e.blob.size();
  return n;
}

}  // namespace egt::ft
