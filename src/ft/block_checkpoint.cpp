#include "ft/block_checkpoint.hpp"

#include <algorithm>

#include "core/checkpoint_store.hpp"
#include "util/check.hpp"

namespace egt::ft {

namespace {
// "EGTFTBLK" — distinct from the engine checkpoint's magic, so feeding one
// blob kind to the other reader fails immediately with a clear error.
constexpr std::uint64_t kMagic = 0x4547544654424c4bull;
}  // namespace

std::vector<std::byte> BlockCheckpoint::encode() const {
  EGT_REQUIRE(begin <= end);
  EGT_REQUIRE(fitness.size() == static_cast<std::size_t>(end - begin));
  EGT_REQUIRE(matrix.size() ==
              static_cast<std::size_t>(end - begin) * matrix_cols);
  core::wire::Writer w;
  w.u64(kMagic);
  w.u32(kBlockCheckpointVersion);
  w.u64(config_fingerprint);
  w.u64(generation);
  w.u64(table_hash);
  w.u32(begin);
  w.u32(end);
  w.u32(matrix_cols);
  w.doubles(fitness.data(), fitness.size());
  w.doubles(matrix.data(), matrix.size());
  w.u64(dedup.size());
  for (const auto& e : dedup) {
    w.u64(e.a);
    w.u64(e.b);
    w.f64(e.payoff);
  }
  return w.take();
}

BlockCheckpoint BlockCheckpoint::decode(const std::vector<std::byte>& blob) {
  core::wire::Reader r(blob, "block checkpoint");
  if (r.u64("magic") != kMagic) {
    r.fail("not a block checkpoint (bad magic)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kBlockCheckpointVersion) {
    r.fail("unsupported block checkpoint version " + std::to_string(version) +
           " (this build reads version " +
           std::to_string(kBlockCheckpointVersion) + ")");
  }
  BlockCheckpoint c;
  c.config_fingerprint = r.u64("config fingerprint");
  c.generation = r.u64("generation");
  c.table_hash = r.u64("table hash");
  c.begin = r.u32("row begin");
  c.end = r.u32("row end");
  c.matrix_cols = r.u32("matrix cols");
  if (c.end < c.begin) {
    r.fail("row range is inverted");
  }
  const std::size_t rows = c.end - c.begin;
  c.fitness = r.doubles(rows, "fitness vector");
  c.matrix = r.doubles(rows * c.matrix_cols, "payoff matrix");
  const std::uint64_t dedup_count = r.u64("dedup entry count");
  // Each entry is 24 bytes; bound the count by the remaining payload so a
  // corrupt length can neither over-allocate nor loop past the blob.
  if (dedup_count > blob.size() / 24) {
    r.fail("dedup entry count exceeds the blob");
  }
  c.dedup.reserve(dedup_count);
  for (std::uint64_t i = 0; i < dedup_count; ++i) {
    core::BlockFitness::DedupEntry e;
    e.a = r.u64("dedup entry hash a");
    e.b = r.u64("dedup entry hash b");
    e.payoff = r.f64("dedup entry payoff");
    c.dedup.push_back(e);
  }
  r.expect_exhausted();
  return c;
}

std::vector<double> BlockCheckpoint::fitness_slice(pop::SSetId b,
                                                   pop::SSetId e) const {
  EGT_REQUIRE_MSG(covers(b, e), "fitness slice outside checkpointed block");
  return std::vector<double>(fitness.begin() + (b - begin),
                             fitness.begin() + (e - begin));
}

std::vector<double> BlockCheckpoint::matrix_slice(pop::SSetId b,
                                                  pop::SSetId e) const {
  EGT_REQUIRE_MSG(covers(b, e), "matrix slice outside checkpointed block");
  const std::size_t cols = matrix_cols;
  return std::vector<double>(matrix.begin() + (b - begin) * cols,
                             matrix.begin() + (e - begin) * cols);
}

CheckpointStore::CheckpointStore(int keep) : keep_(keep) {
  EGT_REQUIRE_MSG(keep_ >= 1, "checkpoint retention must keep >= 1");
}

void CheckpointStore::put(int rank, pop::SSetId begin, pop::SSetId end,
                          std::uint64_t generation,
                          std::vector<std::byte> blob, bool torn) {
  core::append_crc_footer(blob);
  if (torn) {
    // A crash mid-write on a non-atomic store leaves a prefix: cut the
    // footer-carrying blob in half so checked_payload() must reject it.
    blob.resize(blob.size() / 2);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.rank == rank && e.begin == begin && e.end == end &&
        e.generation == generation) {
      e.blob = std::move(blob);
      return;
    }
  }
  entries_.push_back({rank, begin, end, generation, std::move(blob)});
  // Prune this rank+range to the newest `keep_` generations.
  std::vector<std::uint64_t> gens;
  for (const Entry& e : entries_) {
    if (e.rank == rank && e.begin == begin && e.end == end) {
      gens.push_back(e.generation);
    }
  }
  if (gens.size() > static_cast<std::size_t>(keep_)) {
    std::sort(gens.begin(), gens.end());
    const std::uint64_t cutoff = gens[gens.size() - keep_];
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) {
                                    return e.rank == rank &&
                                           e.begin == begin && e.end == end &&
                                           e.generation < cutoff;
                                  }),
                   entries_.end());
  }
}

std::optional<BlockCheckpoint> CheckpointStore::find_covering(
    pop::SSetId begin, pop::SSetId end, std::uint64_t generation,
    std::uint64_t table_hash,
    const std::function<void(const std::string& why)>& on_corrupt) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest-first so a torn latest entry degrades to the next intact one.
  std::vector<const Entry*> covering;
  for (const Entry& e : entries_) {
    if (e.begin <= begin && end <= e.end) covering.push_back(&e);
  }
  std::sort(covering.begin(), covering.end(),
            [](const Entry* a, const Entry* b) {
              return a->generation > b->generation;
            });
  for (const Entry* e : covering) {
    try {
      BlockCheckpoint c =
          BlockCheckpoint::decode(core::checked_payload(e->blob));
      if (c.table_hash != table_hash) continue;
      // Sampled fitness depends on the generation; cached fitness and
      // matrix are pure functions of the strategy table, so any intact
      // older generation with the same table hash restores bit-exactly.
      if (c.generation == generation || c.matrix_cols > 0) return c;
    } catch (const core::CheckpointError& err) {
      // A damaged entry must not fail recovery — the next (older) entry or
      // the recompute path covers.
      if (on_corrupt) on_corrupt(err.what());
    }
  }
  return std::nullopt;
}

std::size_t CheckpointStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const Entry& e : entries_) n += e.blob.size();
  return n;
}

}  // namespace egt::ft
