// Message tags of the fault-tolerant engine's master-driven protocol.
//
// The ft engine deliberately avoids tree collectives: a binomial broadcast
// or dissemination barrier routed through a dead rank hangs forever. All
// coordination is point-to-point between the Nature Agent (the *master* —
// rank 0 at launch, but any rank after a failover) and each worker, so a
// silent rank stalls only the master's deadline receive, never a relay
// chain. The cost is O(P) messages per generation instead of O(log P);
// DESIGN.md §Fault tolerance discusses the tradeoff.
//
// Failover (PR 3) adds a second tag family: the master streams each
// generation's decision record to warm standbys (kLogAppend/kLogAck)
// before broadcasting the decisions, and when the master falls silent the
// survivors elect a replacement (kElect), which announces itself with
// kTakeover and collects kTakeoverAck. kEvicted turns a falsely-declared-
// dead rank passive; kAbort is the unrecoverable-state broadcast that
// makes every rank throw instead of deadlocking.
#pragma once

#include <string_view>

namespace egt::ft::tag {

// Master -> worker.
inline constexpr int kPlan = 0x1001;      ///< generation plan (+ prev decision)
inline constexpr int kReqFit = 0x1003;    ///< request one SSet's fitness
inline constexpr int kDecide = 0x1005;    ///< adoption / Moran outcome
inline constexpr int kPing = 0x1006;      ///< heartbeat probe
inline constexpr int kReconfig = 0x1008;  ///< new ownership table after a death
inline constexpr int kReqBlocks = 0x100a; ///< request all owned fitness blocks
inline constexpr int kStop = 0x100c;      ///< run over: send final snapshot
inline constexpr int kBye = 0x100e;       ///< release: worker thread may exit

// Worker -> master.
inline constexpr int kPlanAck = 0x1002;   ///< plan processed (doubles as heartbeat)
inline constexpr int kFit = 0x1004;       ///< fitness reply
inline constexpr int kPong = 0x1007;      ///< heartbeat reply
inline constexpr int kReconfigAck = 0x1009;
inline constexpr int kBlocks = 0x100b;    ///< owned fitness blocks reply
inline constexpr int kFinal = 0x100d;     ///< final snapshot reply

// Failover: decision-log replication and master election.
inline constexpr int kLogAppend = 0x100f;    ///< master -> standby: log record
inline constexpr int kLogAck = 0x1010;       ///< standby -> master: record ack
inline constexpr int kElect = 0x1011;        ///< any -> all: vote (view, log head)
inline constexpr int kTakeover = 0x1012;     ///< new master -> all: I am master
inline constexpr int kTakeoverAck = 0x1013;  ///< worker -> new master
inline constexpr int kEvicted = 0x1014;      ///< master -> zombie: go passive
inline constexpr int kAbort = 0x1015;        ///< any -> all: unrecoverable, throw

/// Fault-plan JSON names a tag symbolically ("fit", "plan_ack", ...).
/// Returns -1 ("any") for "any"; throws std::runtime_error on unknown
/// names (defined in fault_plan.cpp).
int from_name(std::string_view name);

}  // namespace egt::ft::tag
