#include "ft/decision_log.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace egt::ft {

namespace {
// "EGTDECLG" — the egt.ft_declog/v1 record magic, distinct from every
// other checkpoint-family blob.
constexpr std::uint64_t kMagic = 0x4547544445434c47ull;
}  // namespace

void DecisionLogRecord::encode(core::wire::Writer& w) const {
  w.u64(kMagic);
  w.u32(kDecisionLogVersion);
  w.u64(view);
  w.u64(generation);
  for (auto word : nature.rng) w.u64(word);
  w.u64(nature.planned);
  w.u8(adopted ? 1 : 0);
  w.u8(has_moran ? 1 : 0);
  w.u32(pick.reproducer);
  w.u32(pick.dying);
  w.u64(epoch);
  table.encode(w);
  w.u32(static_cast<std::uint32_t>(alive.size()));
  for (int r : alive) w.u32(static_cast<std::uint32_t>(r));
  w.u64(table_hash);
}

DecisionLogRecord DecisionLogRecord::decode(core::wire::Reader& r) {
  if (r.u64("magic") != kMagic) {
    r.fail("not a decision-log record (bad magic)");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kDecisionLogVersion) {
    r.fail("unsupported decision-log version " + std::to_string(version) +
           " (this build reads version " +
           std::to_string(kDecisionLogVersion) + ")");
  }
  DecisionLogRecord rec;
  rec.view = r.u64("view");
  rec.generation = r.u64("generation");
  for (auto& word : rec.nature.rng) word = r.u64("nature rng state");
  rec.nature.planned = r.u64("nature planned count");
  rec.adopted = r.u8("adopted flag") != 0;
  rec.has_moran = r.u8("moran flag") != 0;
  rec.pick.reproducer = r.u32("moran reproducer");
  rec.pick.dying = r.u32("moran dying");
  rec.epoch = r.u64("ownership epoch");
  rec.table = OwnershipTable::decode(r);
  const std::uint32_t nalive = r.u32("alive count");
  rec.alive.reserve(nalive);
  for (std::uint32_t i = 0; i < nalive; ++i) {
    rec.alive.push_back(static_cast<int>(r.u32("alive rank")));
  }
  rec.table_hash = r.u64("table hash");
  return rec;
}

std::vector<std::byte> DecisionLogRecord::encode_blob() const {
  core::wire::Writer w;
  encode(w);
  return w.take();
}

DecisionLogRecord DecisionLogRecord::decode_blob(
    const std::vector<std::byte>& blob) {
  core::wire::Reader r(blob, "decision-log record");
  DecisionLogRecord rec = decode(r);
  r.expect_exhausted();
  return rec;
}

void DecisionLog::append(DecisionLogRecord rec) {
  // Idempotent per generation: a resend after a lost ack replaces its twin.
  for (DecisionLogRecord& existing : records_) {
    if (existing.generation == rec.generation) {
      existing = std::move(rec);
      return;
    }
  }
  EGT_REQUIRE_MSG(records_.empty() ||
                      rec.generation > records_.back().generation,
                  "decision log: records must arrive in generation order");
  records_.push_back(std::move(rec));
  if (records_.size() > kRetained) {
    records_.erase(records_.begin(),
                   records_.begin() +
                       static_cast<std::ptrdiff_t>(records_.size() -
                                                   kRetained));
  }
}

}  // namespace egt::ft
