// The replicated decision log behind Nature Agent failover.
//
// The paper's global tier is one process: the Nature Agent plans every
// generation's PC/mutation events and resolves adoptions. PR 2 left it a
// single point of failure. The fix is write-ahead replication of the only
// state that cannot be recomputed — Nature's RNG trajectory and the
// decisions already taken: before the master broadcasts a generation's
// final decision, it streams a DecisionLogRecord to its warm standby(s)
// and waits for the ack. Each record is a *self-contained snapshot* of the
// global tier after that generation: Nature's post-draw RNG state, the
// generation's decision, the ownership table and alive set, and the hash
// of the strategy table the decision produces. On master death the elected
// standby restores from its newest record alone — no multi-record replay,
// no dependence on earlier history — and resumes planning at the next
// generation with bit-identical draws.
//
// Wire format "egt.ft_declog/v1": magic + version + the fields below, all
// bounds-checked on decode (CheckpointError on anything malformed).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/wire.hpp"
#include "ft/ownership.hpp"
#include "pop/nature.hpp"

namespace egt::ft {

/// Bumped whenever the record layout changes; readers reject any other
/// value with a clear CheckpointError.
inline constexpr std::uint32_t kDecisionLogVersion = 1;

/// The global tier's state after one completed generation. See file
/// comment: self-contained — the newest record is all a successor needs.
struct DecisionLogRecord {
  std::uint64_t view = 0;        ///< master view (election count) at append
  std::uint64_t generation = 0;  ///< the generation this record completes
  /// Nature's state AFTER planning (and deciding) `generation`: restore it
  /// and the next plan_generation() consumes the same draws the dead
  /// master would have.
  pop::NatureAgent::State nature{};
  /// The generation's final decision — what the next PLAN's prev-decision
  /// field must carry so workers that missed the broadcast can heal.
  bool adopted = false;
  bool has_moran = false;
  pop::MoranPick pick{};
  /// Ownership view at append time: epoch-numbered table plus the ranks
  /// the master believed alive (master included). The successor seeds its
  /// reconfiguration from these instead of a fault-free initial table.
  std::uint64_t epoch = 0;
  OwnershipTable table;
  std::vector<int> alive;
  /// pop::Population::table_hash after applying `generation` — the
  /// integrity check for the successor's own replica of the table.
  std::uint64_t table_hash = 0;

  void encode(core::wire::Writer& w) const;
  /// Throws core::CheckpointError on truncation, bad magic or version.
  static DecisionLogRecord decode(core::wire::Reader& r);

  std::vector<std::byte> encode_blob() const;
  static DecisionLogRecord decode_blob(const std::vector<std::byte>& blob);
};

/// A standby's copy of the log. Records arrive in generation order over a
/// FIFO channel; append is idempotent per generation (a resent record
/// replaces its twin). Only the newest record matters for recovery —
/// older ones are pruned beyond a small debugging window.
class DecisionLog {
 public:
  void append(DecisionLogRecord rec);

  const DecisionLogRecord* newest() const noexcept {
    return records_.empty() ? nullptr : &records_.back();
  }

  /// The generation a master restored from this log resumes at: one past
  /// the newest completed generation, or 0 for an empty log (master died
  /// before completing generation 0 — the successor starts from scratch).
  std::uint64_t next_generation() const noexcept {
    return records_.empty() ? 0 : records_.back().generation + 1;
  }

  bool empty() const noexcept { return records_.empty(); }
  std::size_t size() const noexcept { return records_.size(); }

 private:
  static constexpr std::size_t kRetained = 4;
  std::vector<DecisionLogRecord> records_;  ///< ascending by generation
};

}  // namespace egt::ft
