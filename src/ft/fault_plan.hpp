// Deterministic fault plans.
//
// A FaultPlan is a declarative script of failures — "kill rank 2 at
// generation 50", "drop the 3rd fitness reply from rank 1" — parsed from
// JSON. Faults fire at exact, reproducible points (a generation number, a
// per-rule match count), never from a random clock, so a faulty run is as
// replayable as a fault-free one: the same plan against the same seed
// produces the same recovery sequence bit for bit.
//
// JSON schema ("egt.fault_plan/v1"):
//   {
//     "schema": "egt.fault_plan/v1",          // optional, validated
//     "kills":  [ {"rank": 2, "generation": 50} ],
//     "drops":  [ {"source": 1, "dest": 0, "tag": "fit",
//                  "skip": 0, "count": 1} ],
//     "delays": [ {"source": "any", "dest": 0, "tag": "plan_ack",
//                  "count": 2, "delay_ms": 40} ]
//   }
// source/dest/tag accept a number or "any"; tag also accepts the protocol
// names of ft/protocol.hpp ("plan", "fit", "pong", ...). skip lets the
// first N matching sends through before the rule starts firing; count
// bounds how many sends it affects (default 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace egt::ft {

/// Sentinel for "matches any rank" / "matches any tag".
inline constexpr int kAny = -1;

/// Rank `rank` stops participating when it receives the plan for
/// `generation` — before playing it, so the generation's work is lost and
/// must be recovered (what a mid-generation node crash looks like from the
/// master's side: the plan went out, no ack ever comes back).
struct KillFault {
  int rank = -1;
  std::uint64_t generation = 0;
};

/// One message-fault rule (drop or delay, depending on which list it is
/// in). Matches sends by (source, dest, tag), each optionally kAny.
struct MessageFault {
  int source = kAny;
  int dest = kAny;
  int tag = kAny;
  std::uint64_t skip = 0;      ///< let this many matching sends through first
  std::uint64_t count = 1;     ///< then affect this many
  std::uint64_t delay_ms = 0;  ///< delay rules only

  bool matches(int src, int dst, int t) const noexcept {
    return (source == kAny || source == src) &&
           (dest == kAny || dest == dst) && (tag == kAny || tag == t);
  }
};

class FaultPlan {
 public:
  /// Parse the JSON schema above; throws std::runtime_error with a message
  /// naming the offending field on malformed input.
  static FaultPlan parse(std::string_view json_text);
  /// Parse a plan from a file; throws std::runtime_error (missing file,
  /// malformed JSON).
  static FaultPlan from_file(const std::string& path);

  // Programmatic construction (tests, benches).
  FaultPlan& kill(int rank, std::uint64_t generation);
  FaultPlan& drop(MessageFault rule);
  FaultPlan& delay(MessageFault rule);

  /// The generation at which `rank` dies, if the plan kills it.
  std::optional<std::uint64_t> kill_generation(int rank) const noexcept;

  bool empty() const noexcept {
    return kills_.empty() && drops_.empty() && delays_.empty();
  }
  const std::vector<KillFault>& kills() const noexcept { return kills_; }
  const std::vector<MessageFault>& drops() const noexcept { return drops_; }
  const std::vector<MessageFault>& delays() const noexcept { return delays_; }

  /// Reject plans that cannot be executed on `nranks` ranks: out-of-range
  /// ranks, a kill of rank 0 (the Nature Agent is the job — when it dies
  /// there is nothing left to recover *to*), or two kills of one rank.
  /// Throws std::invalid_argument.
  void validate(int nranks) const;

 private:
  std::vector<KillFault> kills_;
  std::vector<MessageFault> drops_;
  std::vector<MessageFault> delays_;
};

}  // namespace egt::ft
