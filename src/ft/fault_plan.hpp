// Deterministic fault plans.
//
// A FaultPlan is a declarative script of failures — "kill rank 2 at
// generation 50", "drop the 3rd fitness reply from rank 1" — parsed from
// JSON. Faults fire at exact, reproducible points (a generation number, a
// per-rule match count), never from a random clock, so a faulty run is as
// replayable as a fault-free one: the same plan against the same seed
// produces the same recovery sequence bit for bit.
//
// JSON schema ("egt.fault_plan/v1"):
//   {
//     "schema": "egt.fault_plan/v1",          // optional, validated
//     "kills":  [ {"rank": 2, "generation": 50} ],
//     "drops":  [ {"source": 1, "dest": 0, "tag": "fit",
//                  "skip": 0, "count": 1} ],
//     "delays": [ {"source": "any", "dest": 0, "tag": "plan_ack",
//                  "count": 2, "delay_ms": 40} ],
//     "torn_checkpoints": [ {"rank": 1, "generation": 20} ]
//   }
// Kills may target rank 0: the Nature Agent fails over to a warm standby
// (the engine rejects such plans only when it runs with no standby
// replicas). A torn_checkpoints entry truncates the named rank's block
// checkpoint of that generation mid-write, exercising the CRC-detect /
// fallback path.
// source/dest/tag accept a number or "any"; tag also accepts the protocol
// names of ft/protocol.hpp ("plan", "fit", "pong", ...). skip lets the
// first N matching sends through before the rule starts firing; count
// bounds how many sends it affects (default 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace egt::ft {

/// Sentinel for "matches any rank" / "matches any tag".
inline constexpr int kAny = -1;

/// Rank `rank` stops participating at `generation` — a worker dies when it
/// receives the plan for that generation (before playing it), the master
/// dies at the top of its generation loop (before planning it). Either
/// way the generation's work is lost and must be recovered: what a node
/// crash looks like from the survivors' side.
struct KillFault {
  int rank = -1;
  std::uint64_t generation = 0;
};

/// Rank `rank`'s block checkpoint of `generation` is written torn — the
/// stored bytes are a truncated prefix, as a crash in the middle of a
/// non-atomic write would leave. Readers must detect it via CRC and fall
/// back (older intact generation, or recompute), never consume it.
struct TornCheckpointFault {
  int rank = -1;
  std::uint64_t generation = 0;
};

/// One message-fault rule (drop or delay, depending on which list it is
/// in). Matches sends by (source, dest, tag), each optionally kAny.
struct MessageFault {
  int source = kAny;
  int dest = kAny;
  int tag = kAny;
  std::uint64_t skip = 0;      ///< let this many matching sends through first
  std::uint64_t count = 1;     ///< then affect this many
  std::uint64_t delay_ms = 0;  ///< delay rules only

  bool matches(int src, int dst, int t) const noexcept {
    return (source == kAny || source == src) &&
           (dest == kAny || dest == dst) && (tag == kAny || tag == t);
  }
};

class FaultPlan {
 public:
  /// Parse the JSON schema above; throws std::runtime_error with a message
  /// naming the offending field on malformed input.
  static FaultPlan parse(std::string_view json_text);
  /// Parse a plan from a file; throws std::runtime_error (missing file,
  /// malformed JSON).
  static FaultPlan from_file(const std::string& path);

  // Programmatic construction (tests, benches).
  FaultPlan& kill(int rank, std::uint64_t generation);
  FaultPlan& drop(MessageFault rule);
  FaultPlan& delay(MessageFault rule);
  FaultPlan& torn_checkpoint(int rank, std::uint64_t generation);

  /// The generation at which `rank` dies, if the plan kills it.
  std::optional<std::uint64_t> kill_generation(int rank) const noexcept;

  /// Whether `rank`'s checkpoint of `generation` must be written torn.
  bool torn_checkpoint_at(int rank, std::uint64_t generation) const noexcept;

  bool empty() const noexcept {
    return kills_.empty() && drops_.empty() && delays_.empty() &&
           torn_checkpoints_.empty();
  }
  const std::vector<KillFault>& kills() const noexcept { return kills_; }
  const std::vector<MessageFault>& drops() const noexcept { return drops_; }
  const std::vector<MessageFault>& delays() const noexcept { return delays_; }
  const std::vector<TornCheckpointFault>& torn_checkpoints() const noexcept {
    return torn_checkpoints_;
  }

  /// Reject plans that cannot be executed on `nranks` ranks: out-of-range
  /// ranks, two kills of one rank, or kills of every rank (at least one
  /// must survive to finish the run). Kills of rank 0 are legal — the
  /// Nature Agent fails over — but the engine additionally rejects them
  /// when it runs without standby replicas. Throws std::invalid_argument.
  void validate(int nranks) const;

 private:
  std::vector<KillFault> kills_;
  std::vector<MessageFault> drops_;
  std::vector<MessageFault> delays_;
  std::vector<TornCheckpointFault> torn_checkpoints_;
};

}  // namespace egt::ft
