// Seeded chaos schedules for soak-testing the fault-tolerant engine.
//
// Every schedule is a pure function of one 64-bit seed: a small Sampled
// configuration plus a random FaultPlan — kills (including rank 0, the
// Nature Agent, and same-generation cascades), drops and delays on data
// tags, torn block checkpoints. Sampled fitness makes the oracle
// unconditional: whatever the schedule does, the surviving run must
// reproduce the serial engine's strategy table (and fitness) bit for bit.
//
// Drops and delays target only *data* tags (plan/ack/fitness/blocks/
// decide). Control traffic — log replication, election, takeover,
// eviction, abort — is excluded by construction: the failover protocol
// assumes control messages arrive within the silence timeout (DESIGN.md
// §7), so randomly dropping them tests the timeout tuning, not the
// protocol. `standby_replicas` is sized to the schedule's kill count, so
// a cascade can never outrun the decision log and every schedule must
// complete (an abort is a soak failure).
//
// Shared between tools/chaos_soak (CLI, CI seed sweeps) and
// tests/ft/chaos_soak_test.cpp (a fixed slice of the same seed space).
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "ft/ft_engine.hpp"

namespace egt::ft {

/// One seed's worth of chaos: configuration, rank count and fault plan.
struct ChaosSchedule {
  core::SimConfig config;
  FtRunOptions options;
  int nranks = 0;
  std::string summary;  ///< one line: ranks, faults, for log output
};

/// Deterministically derive schedule `seed`.
ChaosSchedule make_chaos_schedule(std::uint64_t seed);

/// The soak verdict for one seed.
struct ChaosOutcome {
  bool ok = false;
  std::string detail;  ///< schedule summary, or what diverged
  int ranks_lost = 0;
  int failovers = 0;
};

/// Run schedule `seed` against the serial reference: the strategy table
/// and fitness must match bit for bit; the merged "engine.*" counters must
/// match whenever no false-positive eviction occurred (ranks_lost equals
/// the planned kills). Never throws — a thrown ft run is reported as a
/// failed outcome.
ChaosOutcome run_chaos_schedule(std::uint64_t seed);

}  // namespace egt::ft
