#include "ft/chaos.hpp"

#include <iterator>
#include <optional>
#include <sstream>
#include <vector>

#include "core/engine.hpp"
#include "ft/protocol.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace egt::ft {
namespace {

std::uint64_t pick(util::Xoshiro256& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng() % (hi - lo + 1);
}

double pick_real(util::Xoshiro256& rng, double lo, double hi) {
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

/// Tags chaos may drop or delay: the per-generation data traffic. Control
/// traffic (log replication, election, takeover, eviction, abort, and the
/// recovery RECONFIG round) is excluded — see the header comment.
constexpr int kDataTags[] = {tag::kPlan, tag::kPlanAck, tag::kReqFit,
                             tag::kFit,  tag::kDecide,  tag::kPong,
                             tag::kBlocks};

constexpr const char* kEngineCounters[] = {
    "engine.generations",  "engine.pc_events", "engine.adoptions",
    "engine.moran_events", "engine.mutations", "engine.pairs_evaluated",
};

}  // namespace

ChaosSchedule make_chaos_schedule(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0xc4a05c4a05ull));
  ChaosSchedule s;
  s.nranks = static_cast<int>(pick(rng, 3, 5));

  s.config.ssets = static_cast<int>(
      pick(rng, static_cast<std::uint64_t>(s.nranks) * 3,
           static_cast<std::uint64_t>(s.nranks) * 3 + 12));
  s.config.memory = 1;
  s.config.generations = pick(rng, 10, 24);
  s.config.pc_rate = pick_real(rng, 0.2, 0.6);
  s.config.mutation_rate = pick_real(rng, 0.05, 0.3);
  s.config.seed = util::mix64(seed + 1);
  // Sampled fitness is a pure function of (population, generation): every
  // recovery path — restore, recompute, failover replan — is bit-exact, so
  // the oracle holds for arbitrary schedules.
  s.config.fitness_mode = core::FitnessMode::Sampled;

  std::ostringstream sum;
  sum << "seed " << seed << ": ranks=" << s.nranks
      << " ssets=" << s.config.ssets << " gens=" << s.config.generations;

  // Kills: up to nranks-2 distinct ranks (>= 2 survivors), rank 0 included
  // in the draw. Half the multi-kill schedules land on one generation —
  // the same-boundary cascade is the hardest failover case.
  const auto max_kills = static_cast<std::uint64_t>(
      s.nranks - 2 < 2 ? s.nranks - 2 : 2);
  const std::uint64_t nkills =
      pick(rng, 0, 3) == 0 ? 0 : pick(rng, 1, max_kills);
  std::vector<int> ranks;
  for (int r = 0; r < s.nranks; ++r) ranks.push_back(r);
  for (std::uint64_t i = 0; i < nkills; ++i) {
    const auto j = pick(rng, i, static_cast<std::uint64_t>(s.nranks) - 1);
    std::swap(ranks[i], ranks[j]);
  }
  const bool same_gen = nkills > 1 && pick(rng, 0, 1) == 0;
  const std::uint64_t gen0 = pick(rng, 0, s.config.generations - 1);
  for (std::uint64_t i = 0; i < nkills; ++i) {
    const std::uint64_t gen =
        same_gen ? gen0 : pick(rng, 0, s.config.generations - 1);
    s.options.plan.kill(ranks[i], gen);
    sum << " kill=" << ranks[i] << "@g" << gen;
  }
  // One log replica more than the worst-case master-kill cascade: the
  // decision log must survive every schedule, so an abort is a soak bug.
  s.options.standby_replicas = static_cast<int>(nkills) + 1;

  // Block checkpoints, sometimes torn mid-write.
  if (pick(rng, 0, 1) == 0) {
    s.options.checkpoint_every = pick(rng, 3, 6);
    if (pick(rng, 0, 1) == 0) {
      const std::uint64_t every = s.options.checkpoint_every;
      const int torn_rank = static_cast<int>(
          pick(rng, 0, static_cast<std::uint64_t>(s.nranks) - 1));
      const std::uint64_t torn_gen =
          every * pick(rng, 1, s.config.generations / every);
      s.options.plan.torn_checkpoint(torn_rank, torn_gen);
      sum << " torn=" << torn_rank << "@g" << torn_gen;
    }
    sum << " ckpt_every=" << s.options.checkpoint_every;
  }

  // Drops and delays on data tags.
  const std::uint64_t ndrops = pick(rng, 0, 2);
  for (std::uint64_t i = 0; i < ndrops; ++i) {
    MessageFault rule;
    rule.source = static_cast<int>(
        pick(rng, 0, static_cast<std::uint64_t>(s.nranks) - 1));
    rule.tag = kDataTags[pick(rng, 0, std::size(kDataTags) - 1)];
    rule.skip = pick(rng, 0, 5);
    rule.count = 1;
    s.options.plan.drop(rule);
    sum << " drop=src" << rule.source << "/tag" << std::hex << rule.tag
        << std::dec << "+skip" << rule.skip;
  }
  if (pick(rng, 0, 1) == 0) {
    MessageFault rule;
    rule.tag = kDataTags[pick(rng, 0, std::size(kDataTags) - 1)];
    rule.skip = pick(rng, 0, 5);
    rule.count = pick(rng, 1, 3);
    rule.delay_ms = pick(rng, 3, 20);
    s.options.plan.delay(rule);
    sum << " delay=tag" << std::hex << rule.tag << std::dec << "x"
        << rule.count << "/" << rule.delay_ms << "ms";
  }

  // Soak timeouts: small enough that a master kill costs well under a
  // second, generous enough that a loaded CI machine does not evict a
  // healthy rank (a false positive only waives the counter check, but a
  // soak should exercise real recovery, not timeout noise).
  s.options.detect_timeout_ms = 150.0;
  s.options.ping_timeout_ms = 60.0;
  s.options.max_pings = 2;
  s.options.master_silence_ms = 350.0;
  s.options.election_window_ms = 80.0;

  s.summary = sum.str();
  return s;
}

ChaosOutcome run_chaos_schedule(std::uint64_t seed) {
  const ChaosSchedule s = make_chaos_schedule(seed);

  obs::MetricsRegistry reg;
  core::Engine serial(s.config, &reg);
  serial.run_all();
  const pop::Population& ref = serial.population();
  const obs::MetricsSnapshot ref_metrics = reg.snapshot();

  ChaosOutcome out;
  std::optional<FtResult> ft;
  try {
    ft.emplace(run_parallel_ft(s.config, s.nranks, s.options));
  } catch (const std::exception& e) {
    out.detail = s.summary + " | ft run threw: " + e.what();
    return out;
  }
  out.ranks_lost = ft->ranks_lost;
  out.failovers = ft->failovers;

  std::ostringstream why;
  if (ft->generations != s.config.generations) {
    why << " generations=" << ft->generations << " want "
        << s.config.generations << ";";
  }
  if (ft->population.table_hash() != ref.table_hash()) {
    why << " strategy table diverged;";
  }
  for (pop::SSetId i = 0; i < ref.size(); ++i) {
    if (ft->population.fitness(i) != ref.fitness(i)) {
      why << " fitness diverged at sset " << i << ";";
      break;
    }
  }
  // Counters are only comparable when nothing beyond the planned kills was
  // declared dead: a drop-induced false-positive eviction keeps the
  // trajectory exact but over-counts recovery work.
  const auto planned = static_cast<int>(s.options.plan.kills().size());
  if (ft->ranks_lost == planned) {
    for (const char* name : kEngineCounters) {
      if (ft->metrics.counter_value(name) != ref_metrics.counter_value(name)) {
        why << " counter " << name << "=" << ft->metrics.counter_value(name)
            << " want " << ref_metrics.counter_value(name) << ";";
      }
    }
  }

  out.ok = why.str().empty();
  out.detail = out.ok ? s.summary : s.summary + " |" + why.str();
  return out;
}

}  // namespace egt::ft
