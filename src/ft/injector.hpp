// Plan-driven implementation of the runtime's fault-injection hook.
//
// PlanFaultInjector evaluates a FaultPlan's drop/delay rules against every
// send in the Context. Matching is deterministic: each rule keeps its own
// match counter (how many sends it has seen, how many it has affected), so
// "drop the 3rd fitness reply from rank 1" means exactly that on every
// run. Kill faults are not handled here — a killed rank falls silent at
// the engine level (ft_engine), which is what its peers would observe.
#pragma once

#include <mutex>
#include <vector>

#include "ft/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "par/fault.hpp"

namespace egt::ft {

class PlanFaultInjector : public par::FaultInjector {
 public:
  /// `metrics` (optional) receives "ft.faults.messages_dropped" /
  /// "ft.faults.messages_delayed"; it must outlive the injector.
  explicit PlanFaultInjector(const FaultPlan& plan,
                             obs::MetricsRegistry* metrics = nullptr);

  par::FaultDecision on_send(int source, int dest, int tag,
                             std::size_t bytes) override;

  std::uint64_t drops_fired() const;
  std::uint64_t delays_fired() const;

 private:
  struct Rule {
    MessageFault spec;
    bool is_delay = false;
    std::uint64_t seen = 0;   ///< matching sends observed
    std::uint64_t fired = 0;  ///< matching sends affected
  };

  // Sends race in from every rank thread; the counters need the lock. The
  // fault-injection path is not a measured one, so a mutex is fine.
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* delayed_ = nullptr;
};

}  // namespace egt::ft
