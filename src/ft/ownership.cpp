#include "ft/ownership.hpp"

#include <algorithm>

#include "par/partition.hpp"
#include "util/check.hpp"

namespace egt::ft {

OwnershipTable OwnershipTable::initial(pop::SSetId ssets, int nranks) {
  EGT_REQUIRE_MSG(nranks >= 1, "ownership table needs at least one rank");
  OwnershipTable table;
  table.ssets_ = ssets;
  const par::BlockPartition part(ssets, static_cast<std::uint64_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const auto b = static_cast<pop::SSetId>(
        part.begin(static_cast<std::uint64_t>(r)));
    const auto e =
        static_cast<pop::SSetId>(part.end(static_cast<std::uint64_t>(r)));
    if (b < e) table.ranges_.push_back({b, e, r});
  }
  return table;
}

int OwnershipTable::owner_of(pop::SSetId i) const {
  EGT_REQUIRE_MSG(i < ssets_, "ownership query out of range");
  // Last range with begin <= i (ranges are sorted and cover [0, ssets)).
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), i,
      [](pop::SSetId v, const OwnedRange& r) { return v < r.begin; });
  EGT_ASSERT(it != ranges_.begin());
  --it;
  EGT_ASSERT(i >= it->begin && i < it->end);
  return it->owner;
}

std::vector<std::pair<pop::SSetId, pop::SSetId>> OwnershipTable::ranges_of(
    int rank) const {
  std::vector<std::pair<pop::SSetId, pop::SSetId>> out;
  for (const OwnedRange& r : ranges_) {
    if (r.owner == rank) out.emplace_back(r.begin, r.end);
  }
  return out;
}

void OwnershipTable::reassign(int dead, const std::vector<int>& survivors) {
  EGT_REQUIRE_MSG(!survivors.empty(), "reassign needs at least one survivor");
  std::vector<OwnedRange> next;
  next.reserve(ranges_.size() + survivors.size());
  for (const OwnedRange& r : ranges_) {
    if (r.owner != dead) {
      next.push_back(r);
      continue;
    }
    const par::BlockPartition split(r.end - r.begin, survivors.size());
    for (std::size_t k = 0; k < survivors.size(); ++k) {
      const auto b = static_cast<pop::SSetId>(r.begin + split.begin(k));
      const auto e = static_cast<pop::SSetId>(r.begin + split.end(k));
      if (b < e) next.push_back({b, e, survivors[k]});
    }
  }
  std::sort(next.begin(), next.end(),
            [](const OwnedRange& a, const OwnedRange& b) {
              return a.begin < b.begin;
            });
  ranges_ = std::move(next);
}

void OwnershipTable::encode(core::wire::Writer& w) const {
  w.u32(ssets_);
  w.u32(static_cast<std::uint32_t>(ranges_.size()));
  for (const OwnedRange& r : ranges_) {
    w.u32(r.begin);
    w.u32(r.end);
    w.u32(static_cast<std::uint32_t>(r.owner));
  }
}

OwnershipTable OwnershipTable::decode(core::wire::Reader& r) {
  OwnershipTable table;
  table.ssets_ = r.u32("ownership ssets");
  const std::uint32_t n = r.u32("ownership range count");
  pop::SSetId expect = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    OwnedRange range;
    range.begin = r.u32("range begin");
    range.end = r.u32("range end");
    range.owner = static_cast<int>(r.u32("range owner"));
    if (range.begin != expect || range.end <= range.begin ||
        range.end > table.ssets_) {
      r.fail("ownership ranges do not tile the population");
    }
    expect = range.end;
    table.ranges_.push_back(range);
  }
  if (expect != table.ssets_) {
    r.fail("ownership ranges do not cover the population");
  }
  return table;
}

}  // namespace egt::ft
