// Explicit SSet-ownership table.
//
// The fault-free engines derive ownership arithmetically ("system size and
// processor rank data", paper §V) — every rank computes the same
// BlockPartition and no table is ever communicated. That stops working the
// moment a rank dies: ownership is no longer a pure function of (ssets,
// nranks). The ft engine therefore carries an explicit table, seeded from
// the same BlockPartition arithmetic, and *re-partitions only the dead
// rank's ranges* on a failure — survivors keep the blocks (and cached
// payoff matrices) they already paid for, which is also what keeps the
// merged pairs-evaluated counter identical to a fault-free run.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/wire.hpp"
#include "pop/population.hpp"

namespace egt::ft {

/// One contiguous range [begin, end) of SSets and the rank that owns it.
struct OwnedRange {
  pop::SSetId begin = 0;
  pop::SSetId end = 0;
  int owner = -1;
};

class OwnershipTable {
 public:
  OwnershipTable() = default;

  /// The fault-free assignment: par::BlockPartition(ssets, nranks), one
  /// range per rank. Identical to what the base parallel engine derives.
  static OwnershipTable initial(pop::SSetId ssets, int nranks);

  int owner_of(pop::SSetId i) const;

  /// The ranges `rank` owns, in SSet order.
  std::vector<std::pair<pop::SSetId, pop::SSetId>> ranges_of(int rank) const;

  /// Reassign every range owned by `dead` across `survivors` (must be
  /// non-empty, sorted): each range is split with the same BlockPartition
  /// arithmetic used for the initial assignment, so the result is a pure
  /// function of the inputs — every rank that applies the same
  /// reassignment reaches the same table.
  void reassign(int dead, const std::vector<int>& survivors);

  const std::vector<OwnedRange>& ranges() const noexcept { return ranges_; }
  pop::SSetId ssets() const noexcept { return ssets_; }

  /// Wire format for the RECONFIG broadcast.
  void encode(core::wire::Writer& w) const;
  static OwnershipTable decode(core::wire::Reader& r);

 private:
  std::vector<OwnedRange> ranges_;  // sorted by begin, covering [0, ssets_)
  pop::SSetId ssets_ = 0;
};

}  // namespace egt::ft
