// Per-rank block checkpoints: the recovery substrate of the ft engine.
//
// Every checkpoint interval each rank serializes the evaluation state of
// its owned fitness blocks — fitness vector plus, in the cached modes, the
// full payoff matrix — into a versioned blob (same wire helpers and
// versioning convention as core/checkpoint.hpp) and publishes it to a
// CheckpointStore. When a rank dies, the rank adopting one of its ranges
// first looks for a *fresh* covering blob (same generation, same strategy
// table hash): a hit restores the block without replaying a single game; a
// miss falls back to recomputation from the replicated strategy table —
// recovery is then slower but still bit-exact, because fitness is a pure
// function of (population, generation).
//
// The store is in-memory (the runtime's ranks are threads in one process —
// a surviving "node" can read a dead one's last published state, playing
// the role of the parallel file system a production MPI code would write
// to). The blob format itself is location-independent and hardened:
// truncated, corrupt or version-mismatched blobs throw CheckpointError.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "core/wire.hpp"
#include "pop/population.hpp"

namespace egt::ft {

/// Bumped whenever the block-checkpoint layout changes; readers reject any
/// other value with a clear CheckpointError.
inline constexpr std::uint32_t kBlockCheckpointVersion = 1;

/// Evaluation state of one fitness block at one instant.
struct BlockCheckpoint {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t generation = 0;  ///< next generation to run when captured
  std::uint64_t table_hash = 0;  ///< pop::Population::table_hash at capture
  pop::SSetId begin = 0;
  pop::SSetId end = 0;
  std::uint32_t matrix_cols = 0;  ///< ssets for cached modes, 0 for Sampled
  std::vector<double> fitness;    ///< end - begin entries
  std::vector<double> matrix;     ///< (end - begin) * matrix_cols entries

  std::vector<std::byte> encode() const;
  /// Throws CheckpointError on truncation, bad magic, unsupported version
  /// or inconsistent dimensions.
  static BlockCheckpoint decode(const std::vector<std::byte>& blob);

  bool covers(pop::SSetId b, pop::SSetId e) const noexcept {
    return begin <= b && e <= end;
  }

  /// Extract the rows of sub-range [b, e) (must be covered).
  std::vector<double> fitness_slice(pop::SSetId b, pop::SSetId e) const;
  std::vector<double> matrix_slice(pop::SSetId b, pop::SSetId e) const;
};

/// Thread-safe latest-blob store, keyed by (publishing rank, range). The
/// master reads a dead rank's entries while survivors keep publishing —
/// hence the lock.
class CheckpointStore {
 public:
  /// Publish (replacing any previous blob of the same rank and range).
  /// The blob is decoded lazily by readers; put() keeps bytes only.
  void put(int rank, pop::SSetId begin, pop::SSetId end,
           std::vector<std::byte> blob);

  /// Latest blob covering [begin, end) that decodes cleanly and matches
  /// (generation, table_hash) — the freshness check that makes the fast
  /// path safe. Corrupt entries are skipped (recovery falls back to
  /// recompute rather than failing the run).
  std::optional<BlockCheckpoint> find_covering(pop::SSetId begin,
                                               pop::SSetId end,
                                               std::uint64_t generation,
                                               std::uint64_t table_hash) const;

  std::size_t entries() const;
  std::uint64_t total_bytes() const;

 private:
  struct Entry {
    int rank;
    pop::SSetId begin, end;
    std::vector<std::byte> blob;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace egt::ft
