// Per-rank block checkpoints: the recovery substrate of the ft engine.
//
// Every checkpoint interval each rank serializes the evaluation state of
// its owned fitness blocks — fitness vector plus, in the cached modes, the
// full payoff matrix — into a versioned blob (same wire helpers and
// versioning convention as core/checkpoint.hpp) and publishes it to a
// CheckpointStore. When a rank dies, the rank adopting one of its ranges
// first looks for a *fresh* covering blob (same generation, same strategy
// table hash): a hit restores the block without replaying a single game; a
// miss falls back to recomputation from the replicated strategy table —
// recovery is then slower but still bit-exact, because fitness is a pure
// function of (population, generation).
//
// The store is in-memory (the runtime's ranks are threads in one process —
// a surviving "node" can read a dead one's last published state, playing
// the role of the parallel file system a production MPI code would write
// to). The blob format itself is location-independent and hardened:
// truncated, corrupt or version-mismatched blobs throw CheckpointError.
//
// Crash consistency (PR 3): every stored blob carries the shared CRC-32
// footer from core/checkpoint_store.hpp, and the store retains the newest
// `keep` generations per (rank, range) instead of only the latest. A torn
// write (injected via FaultPlan torn_checkpoints, or a real crash on a
// non-atomic PFS) fails the CRC on load and recovery falls back to the
// newest *intact* older entry — or to recomputation — rather than feeding
// garbage into the bit-exact restore path.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fitness.hpp"
#include "core/wire.hpp"
#include "pop/population.hpp"

namespace egt::ft {

/// Bumped whenever the block-checkpoint layout changes; readers reject any
/// other value with a clear CheckpointError.
/// v2: the blob additionally carries the block's dedup class-pair payoff
/// table (strategy content-hash pairs → payoff), so a restored block keeps
/// answering strategy changes without replaying class games.
inline constexpr std::uint32_t kBlockCheckpointVersion = 2;

/// Evaluation state of one fitness block at one instant.
struct BlockCheckpoint {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t generation = 0;  ///< next generation to run when captured
  std::uint64_t table_hash = 0;  ///< pop::Population::table_hash at capture
  pop::SSetId begin = 0;
  pop::SSetId end = 0;
  std::uint32_t matrix_cols = 0;  ///< ssets for cached modes, 0 for Sampled
  std::vector<double> fitness;    ///< end - begin entries
  std::vector<double> matrix;     ///< (end - begin) * matrix_cols entries
  /// The interned class table's pair payoffs (BlockFitness::dedup_cache(),
  /// sorted; empty when dedup is off). Keyed by strategy *content* hashes,
  /// so the entries are valid on any rank regardless of class-id recycling.
  std::vector<core::BlockFitness::DedupEntry> dedup;

  std::vector<std::byte> encode() const;
  /// Throws CheckpointError on truncation, bad magic, unsupported version
  /// or inconsistent dimensions.
  static BlockCheckpoint decode(const std::vector<std::byte>& blob);

  bool covers(pop::SSetId b, pop::SSetId e) const noexcept {
    return begin <= b && e <= end;
  }

  /// Extract the rows of sub-range [b, e) (must be covered).
  std::vector<double> fitness_slice(pop::SSetId b, pop::SSetId e) const;
  std::vector<double> matrix_slice(pop::SSetId b, pop::SSetId e) const;
};

/// Thread-safe blob store, keyed by (publishing rank, range, generation),
/// retaining the newest `keep` generations per (rank, range). The master
/// reads a dead rank's entries while survivors keep publishing — hence the
/// lock.
class CheckpointStore {
 public:
  explicit CheckpointStore(int keep = 3);

  /// Publish as generation `generation` (replacing any previous blob of
  /// the same rank, range and generation; pruning older generations of the
  /// same rank+range beyond the retention count). A CRC footer is appended
  /// here; when `torn` is set the stored bytes are truncated mid-payload,
  /// modelling a crash in the middle of a non-atomic checkpoint write.
  /// The blob is decoded lazily by readers; put() keeps bytes only.
  void put(int rank, pop::SSetId begin, pop::SSetId end,
           std::uint64_t generation, std::vector<std::byte> blob,
           bool torn = false);

  /// Newest usable blob covering [begin, end): CRC-verified, cleanly
  /// decoded, and passing the freshness gate that makes the restore fast
  /// path bit-exact — `table_hash` must match, and the generation must
  /// either equal `generation` or, for cached modes (matrix_cols > 0,
  /// where fitness and matrix are pure functions of the strategy table),
  /// may be older: a torn newest entry then falls back to the newest
  /// intact older generation instead of forcing a recompute. Corrupt
  /// entries are skipped (reported through `on_corrupt`, e.g. to bump
  /// ft.checkpoint_fallback) — recovery never fails on a damaged entry.
  std::optional<BlockCheckpoint> find_covering(
      pop::SSetId begin, pop::SSetId end, std::uint64_t generation,
      std::uint64_t table_hash,
      const std::function<void(const std::string& why)>& on_corrupt =
          nullptr) const;

  int keep() const noexcept { return keep_; }
  std::size_t entries() const;
  std::uint64_t total_bytes() const;

 private:
  struct Entry {
    int rank;
    pop::SSetId begin, end;
    std::uint64_t generation;
    std::vector<std::byte> blob;  ///< CRC-footed (possibly torn) bytes
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  int keep_;
};

}  // namespace egt::ft
