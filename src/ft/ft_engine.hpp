// The fault-tolerant parallel engine.
//
// Same simulation as core::run_parallel — rank 0 is the Nature Agent,
// every rank owns contiguous fitness blocks over the replicated strategy
// table — but coordinated over a master-driven point-to-point protocol
// (ft/protocol.hpp) that survives worker failures injected by a FaultPlan:
//
//   detection   Every generation plan is acknowledged (the ack doubles as
//               a heartbeat, so detection latency is one generation). A
//               missed ack or fitness return makes the master *suspect*
//               the rank; up to max_pings ping/pong probes guard against
//               false positives before it is declared dead.
//   recovery    The dead rank's SSet ranges are re-partitioned across the
//               survivors (ft/ownership.hpp). An adopting rank first tries
//               the dead rank's last published block checkpoint
//               (ft/block_checkpoint.hpp; bit-exact restore when fresh)
//               and otherwise recomputes the block from the replicated
//               strategy table. The new table is broadcast point-to-point
//               (RECONFIG, epoch-numbered) and acknowledged.
//   resilience  Dropped or delayed protocol messages are healed by
//               deduplicated resends; a dropped decision broadcast is
//               carried by the next generation's plan.
//
// Determinism: Nature's RNG lives on rank 0, which is never killed, so it
// consumes draws exactly as in a fault-free run. Fitness is a pure
// function of (population, generation) for Sampled and pure-Analytic
// configurations, so a recovered run's strategy trajectory — and, for
// kill-only fault plans, its merged "engine.*" counters — are bit-identical
// to the fault-free run with the same seed. Caveats (see DESIGN.md):
// Analytic recovery is bit-exact when a fresh block checkpoint covers the
// failure generation and exact-up-to-FP-summation-order otherwise;
// SampledFrozen recovery is statistically equivalent only (mirroring the
// engine-checkpoint caveat); drop-induced false-positive evictions keep
// the trajectory exact but can over-count pairs (the evicted zombie and
// its replacement both work).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "ft/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "par/runtime.hpp"
#include "pop/population.hpp"

namespace egt::ft {

struct FtRunOptions {
  /// Deterministic failures to inject (validated against nranks). Empty =
  /// fault-free; the run then produces the same trajectory and counters as
  /// core::run_parallel / the serial engine.
  FaultPlan plan;

  /// Publish block checkpoints every N generations (0 = never). Recovery
  /// works without them — it just recomputes instead of restoring.
  std::uint64_t checkpoint_every = 0;

  /// How long the master waits for an expected reply (plan ack, fitness
  /// return, reconfig ack) before suspecting the sender. Must be generous
  /// relative to one generation's compute time: a busy worker that misses
  /// the deadline is evicted as a false positive — the run stays correct
  /// (eviction is trajectory-preserving) but does redundant work.
  double detect_timeout_ms = 500.0;

  /// Deadline of each ping/pong probe of a suspected rank.
  double ping_timeout_ms = 250.0;

  /// Probes before a suspected rank is declared dead.
  int max_pings = 3;

  /// Also merge the per-rank registries into this registry. May be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct FtResult {
  pop::Population population;  ///< final strategy table + final fitness
  par::TrafficReport traffic;
  std::uint64_t generations = 0;
  /// Workers declared dead (injected kills + false-positive evictions).
  int ranks_lost = 0;
  /// Merged per-rank metrics: the base engine's phase timers and
  /// "engine.*" counters plus the "ft.*" family (ft.recoveries,
  /// ft.failures_detected, ft.checkpoint.*, ft.recovery.*, ...).
  obs::MetricsSnapshot metrics;
};

/// Run the full simulation on `nranks` ranks, surviving the plan's faults.
/// Blocks until done. Throws std::invalid_argument on an inexecutable
/// plan (rank 0 killed, ranks out of range).
FtResult run_parallel_ft(const core::SimConfig& config, int nranks);
FtResult run_parallel_ft(const core::SimConfig& config, int nranks,
                         const FtRunOptions& options);

}  // namespace egt::ft
