// The fault-tolerant parallel engine.
//
// Same simulation as core::run_parallel — the master rank is the Nature
// Agent, every rank owns contiguous fitness blocks over the replicated
// strategy table — but coordinated over a master-driven point-to-point
// protocol (ft/protocol.hpp) that survives rank failures injected by a
// FaultPlan, *including failures of the master itself*:
//
//   detection   Every generation plan is acknowledged (the ack doubles as
//               a heartbeat, so detection latency is one generation). A
//               missed ack or fitness return makes the master *suspect*
//               the rank; up to max_pings ping/pong probes guard against
//               false positives before it is declared dead. Workers
//               symmetrically watch the master: silence beyond
//               master_silence_ms triggers an election.
//   recovery    The dead rank's SSet ranges are re-partitioned across the
//               survivors (ft/ownership.hpp). An adopting rank first tries
//               the dead rank's last published block checkpoint
//               (ft/block_checkpoint.hpp; bit-exact restore when intact
//               and fresh, CRC-verified with fallback to the newest intact
//               older generation) and otherwise recomputes the block from
//               the replicated strategy table. The new table is broadcast
//               point-to-point (RECONFIG, epoch-numbered) and acknowledged.
//   failover    The master streams each generation's decision record —
//               Nature's post-draw RNG state, the generation's decision,
//               the ownership view — to `standby_replicas` warm standbys
//               (ft/decision_log.hpp) and waits for the acks *before*
//               broadcasting the generation's final decision. On master
//               death the survivors elect the rank with the newest log
//               (lowest rank on ties), which restores Nature bit-for-bit
//               from its newest record, announces itself (TAKEOVER), folds
//               the dead master's ranges in, and finishes the run.
//   resilience  Dropped or delayed protocol messages are healed by
//               deduplicated resends; a dropped decision broadcast is
//               carried by the next generation's plan.
//
// Determinism: Nature's RNG trajectory survives failover — the decision
// log is replicated ahead of every decision broadcast, and kills land at
// generation boundaries (a worker dies receiving a PLAN, a master at the
// top of its loop), so the successor's restored RNG consumes draws exactly
// as the dead master would have. Fitness is a pure function of
// (population, generation) for Sampled and pure-Analytic configurations,
// so a recovered run's strategy trajectory — and, for kill-only fault
// plans, its merged "engine.*" counters — are bit-identical to the
// fault-free run with the same seed. Caveats (see DESIGN.md §7): Analytic
// recovery is bit-exact when an intact block checkpoint covers the failure
// and exact-up-to-FP-summation-order otherwise; SampledFrozen recovery is
// statistically equivalent only; drop-induced false-positive evictions
// keep the trajectory exact but can over-count pairs; elections assume
// control messages (ELECT/TAKEOVER/EVICTED/ABORT, log replication) are
// delivered within the silence timeout.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "ft/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "par/runtime.hpp"
#include "pop/population.hpp"

namespace egt::obs {
class MetricsStreamWriter;
}

namespace egt::ft {

struct FtRunOptions {
  /// Deterministic failures to inject (validated against nranks). Empty =
  /// fault-free; the run then produces the same trajectory and counters as
  /// core::run_parallel / the serial engine.
  FaultPlan plan;

  /// Publish block checkpoints every N generations (0 = never). Recovery
  /// works without them — it just recomputes instead of restoring.
  std::uint64_t checkpoint_every = 0;

  /// Block-checkpoint generations retained per (rank, range) — older ones
  /// are pruned. Retention is what makes CRC fallback possible: a torn
  /// newest entry degrades to the previous intact generation.
  int checkpoint_keep = 3;

  /// Warm standbys receiving the replicated decision log. Rank-0 kills
  /// require at least one; cascading master+standby kills require one more
  /// than the depth of the cascade. 0 restores PR 2 behaviour (master is a
  /// single point of failure; plans killing rank 0 are rejected).
  int standby_replicas = 1;

  /// How long the master waits for an expected reply (plan ack, fitness
  /// return, reconfig ack) before suspecting the sender. Must be generous
  /// relative to one generation's compute time: a busy worker that misses
  /// the deadline is evicted as a false positive — the run stays correct
  /// (eviction is trajectory-preserving) but does redundant work.
  double detect_timeout_ms = 500.0;

  /// Deadline of each ping/pong probe of a suspected rank.
  double ping_timeout_ms = 250.0;

  /// Probes before a suspected rank is declared dead.
  int max_pings = 3;

  /// Master silence a worker tolerates before starting an election.
  /// 0 = auto: 4 * (detect_timeout + max_pings * ping_timeout), which
  /// covers the master stalling through several failure detections;
  /// ranks without a log copy wait twice as long, giving standbys
  /// first-mover priority. Must be generous relative to recovery time: a
  /// premature election against a live-but-stalled master degenerates into
  /// two masters racing to the same answer (trajectory-preserving, but
  /// counters diverge like a false-positive eviction).
  double master_silence_ms = 0.0;

  /// Vote-collection window of an election round. 0 = auto (one
  /// detect_timeout); the window extends while new votes arrive.
  double election_window_ms = 0.0;

  /// Also merge the per-rank registries into this registry. May be null.
  obs::MetricsRegistry* metrics = nullptr;

  /// The acting master emits one core::TracePoint per committed generation
  /// (see core/trace.hpp; fitness_hash stays 0 — the master owns only a
  /// block). On failover the successor resumes emitting from the
  /// generation it replans, so a sink must key points by generation and
  /// tolerate the master role migrating across rank threads. May be null.
  core::TraceSink* trace = nullptr;

  /// Live NDJSON telemetry (obs/metrics_stream.hpp). The acting master
  /// streams one line per committed generation; the writer deduplicates
  /// generations, so failover replays are emitted once. May be null.
  obs::MetricsStreamWriter* metrics_stream = nullptr;
};

struct FtResult {
  pop::Population population;  ///< final strategy table + final fitness
  par::TrafficReport traffic;
  std::uint64_t generations = 0;
  /// Ranks declared dead (injected kills + false-positive evictions).
  int ranks_lost = 0;
  /// Completed master elections (0 in a run that never lost a master).
  int failovers = 0;
  /// Merged per-rank metrics: the base engine's phase timers and
  /// "engine.*" counters plus the "ft.*" family (ft.recoveries,
  /// ft.failovers, ft.log.*, ft.checkpoint.*, ft.recovery.*, ...).
  obs::MetricsSnapshot metrics;
};

/// Run the full simulation on `nranks` ranks, surviving the plan's faults.
/// Blocks until done. Throws std::invalid_argument on an inexecutable
/// plan (ranks out of range, every rank killed, or a master kill with
/// standby_replicas == 0).
FtResult run_parallel_ft(const core::SimConfig& config, int nranks);
FtResult run_parallel_ft(const core::SimConfig& config, int nranks,
                         const FtRunOptions& options);

}  // namespace egt::ft
