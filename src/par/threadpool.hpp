// Agent-tier shared-memory parallelism (the paper's second level: concurrent
// game play of the agents inside a strategy group).
//
// A minimal OpenMP-parallel-for equivalent: a fixed pool of workers executes
// contiguous index chunks; the calling thread participates, so a pool of
// size 1 degenerates to an inline loop with no synchronisation overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace egt::par {

class ThreadPool {
 public:
  /// `workers` extra threads; 0 means all work runs on the calling thread.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Calls body(begin, end) over disjoint chunks covering [0, n); blocks
  /// until all chunks finish. Exceptions from chunks propagate (first one).
  void parallel_for(std::uint64_t n,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// A pool sized for this machine (hardware_concurrency - 1 workers).
  static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::uint64_t n = 0;
    std::uint64_t chunk = 0;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::uint64_t grabbed = 0;  // workers that took this job (under mutex)
    std::atomic<std::uint64_t> exited{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    // Completion signalling: each worker bumps `exited` under `m` and
    // notifies; the caller sleeps on `finished` instead of spinning, so an
    // oversubscribed host gives the core to the straggler.
    std::mutex m;
    std::condition_variable finished;
  };

  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace egt::par
