// Message-level fault injection hook of the mini message-passing runtime.
//
// A FaultInjector installed on a Context sees every point-to-point send
// and decides its fate: deliver normally, drop it (the torus ate the
// packet), or deliver it after a delay (congestion). Rank deaths are NOT
// modelled here — a "killed" rank is a rank program that stops
// participating (the ft engine exits the rank's loop), which is what a
// crashed process looks like to its peers: silence.
//
// The interface lives in par so the runtime has no dependency on the ft
// subsystem; the deterministic plan-driven implementation is
// ft::PlanFaultInjector.
#pragma once

#include <chrono>
#include <cstddef>

namespace egt::par {

/// What to do with one send.
struct FaultDecision {
  enum class Kind { Deliver, Drop, Delay };
  Kind kind = Kind::Deliver;
  std::chrono::milliseconds delay{0};  ///< Kind::Delay only

  static FaultDecision deliver() { return {}; }
  static FaultDecision drop() { return {Kind::Drop, {}}; }
  static FaultDecision delayed(std::chrono::milliseconds d) {
    return {Kind::Delay, d};
  }
};

/// Consulted on every Comm::send. Called concurrently from all rank
/// threads; implementations must be thread-safe.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision on_send(int source, int dest, int tag,
                                std::size_t bytes) = 0;
};

}  // namespace egt::par
