#include "par/threadpool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/tracer.hpp"
#include "util/check.hpp"

namespace egt::par {

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::uint64_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) break;
    const std::uint64_t end = std::min(begin + job.chunk, job.n);
    if (!job.failed.load(std::memory_order_relaxed)) {
      // One task span per chunk: the agent-tier work unit. On the caller
      // thread it nests under the surrounding phase span; on pool workers
      // it lands on the kPoolPid timeline.
      obs::TraceSpan span(obs::kPoolChunk, obs::kCatPool, "items",
                          end - begin);
      try {
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.failed.exchange(true)) job.error = std::current_exception();
      }
    }
    job.done.fetch_add(end - begin, std::memory_order_release);
  }
}

void ThreadPool::worker_loop() {
  // Pool workers serve whichever rank submitted the job; attribute their
  // chunks to the shared-pool pseudo-rank instead of a wrong real rank.
  obs::Tracer::set_thread_name("pool.worker");
  const obs::TraceRankScope pool_scope(obs::kPoolPid);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      if (job != nullptr) ++job->grabbed;
    }
    if (job != nullptr) {
      run_chunks(*job);
      // Last touch of the job: signal under its mutex so the caller cannot
      // destroy the stack frame between our increment and the notify.
      std::lock_guard<std::mutex> done_lock(job->m);
      job->exited.fetch_add(1, std::memory_order_release);
      job->finished.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (n == 0) return;
  if (threads_.empty()) {
    body(0, n);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  // ~4 chunks per participant amortises scheduling while limiting imbalance.
  const std::uint64_t participants = threads_.size() + 1;
  job.chunk = std::max<std::uint64_t>(1, n / (participants * 4));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
  }
  cv_.notify_all();
  run_chunks(job);
  // run_chunks returned, so every chunk is claimed; workers may still be
  // inside their final one. Unpublish the job first (late wakers must not
  // grab it), then sleep on the job's condition variable until the last
  // claimed chunk is done and every worker that took the pointer has let
  // go of it — the job lives on this stack frame. Sleeping (rather than
  // the old yield() spin) matters on oversubscribed hosts, where the spin
  // was stealing the very core the straggler needed.
  std::uint64_t grabbed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = nullptr;
    grabbed = job.grabbed;
  }
  // Fast path: no worker grabbed the job before the caller claimed every
  // chunk, so nothing is outstanding — skip the lock + CV sleep (small n
  // on a busy pool hits this constantly).
  if (grabbed > 0 || job.done.load(std::memory_order_acquire) < n) {
    std::unique_lock<std::mutex> lock(job.m);
    job.finished.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) >= n &&
             job.exited.load(std::memory_order_acquire) >= grabbed;
    });
  }
  if (job.failed.load()) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) -
                         1u);
  return pool;
}

}  // namespace egt::par
