#include "par/mailbox.hpp"

namespace egt::par {

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int source, int tag, Message& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool src_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (src_ok && tag_ok) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  cv_.wait(lock, [&] { return match_locked(source, tag, out); });
  return out;
}

std::optional<Message> Mailbox::receive_for(int source, int tag,
                                            std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  if (cv_.wait_for(lock, timeout,
                   [&] { return match_locked(source, tag, out); })) {
    return out;
  }
  return std::nullopt;
}

bool Mailbox::try_receive(int source, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return match_locked(source, tag, out);
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace egt::par
