// Block partitioning of SSets (and of the game matrix) over ranks.
//
// The paper assigns each node a contiguous block of SSets and lets every
// node derive ownership locally from "system size and processor rank data"
// (§V) — no ownership table is communicated. BlockPartition is exactly that
// arithmetic. GamePartition additionally splits the s*(s-1) ordered games
// evenly when there are more processors than SSets (the paper's "each
// processor handles between 1/2 and 8 full SSets" regime, Fig. 3).
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace egt::par {

/// Distributes `items` items over `parts` parts in contiguous blocks whose
/// sizes differ by at most one (the first `items % parts` blocks get the
/// extra item).
class BlockPartition {
 public:
  BlockPartition(std::uint64_t items, std::uint64_t parts)
      : items_(items), parts_(parts) {
    EGT_REQUIRE_MSG(parts > 0, "partition needs at least one part");
  }

  std::uint64_t items() const noexcept { return items_; }
  std::uint64_t parts() const noexcept { return parts_; }

  std::uint64_t begin(std::uint64_t part) const noexcept {
    const std::uint64_t q = items_ / parts_;
    const std::uint64_t r = items_ % parts_;
    return part * q + (part < r ? part : r);
  }
  std::uint64_t end(std::uint64_t part) const noexcept {
    return begin(part + 1);
  }
  std::uint64_t count(std::uint64_t part) const noexcept {
    return end(part) - begin(part);
  }

  /// The part owning item `i`.
  std::uint64_t owner(std::uint64_t i) const noexcept {
    const std::uint64_t q = items_ / parts_;
    const std::uint64_t r = items_ % parts_;
    const std::uint64_t big = r * (q + 1);  // items covered by the big blocks
    if (q == 0 || i < big) return q == 0 ? i : i / (q + 1);
    return r + (i - big) / q;
  }

 private:
  std::uint64_t items_;
  std::uint64_t parts_;
};

/// Agents per processor for the paper's configuration where each SSet holds
/// one agent per opponent SSet: population = ssets^2 agents (Table VIII).
constexpr std::uint64_t agents_per_processor(std::uint64_t ssets,
                                             std::uint64_t procs) noexcept {
  return ssets * ssets / procs;
}

}  // namespace egt::par
