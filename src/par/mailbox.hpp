// Per-rank inbox of the mini message-passing runtime.
//
// Mirrors the matching semantics of MPI point-to-point: a receive names a
// source rank and a tag (or wildcards) and blocks until a matching message
// arrives. Message order between one (source, tag) pair is preserved.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace egt::par {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Flow-event id stamped by Comm::send when the flight recorder is on
  /// (obs/tracer.hpp); 0 = untraced. Links the send's "s" event to the
  /// receive's "f" event so Perfetto draws the message arrow.
  std::uint64_t trace_id = 0;
};

class Mailbox {
 public:
  /// Deliver a message (called by the sending rank's thread).
  void deliver(Message msg);

  /// Block until a message matching (source, tag) is available and remove
  /// it. kAnySource / kAnyTag act as wildcards.
  Message receive(int source, int tag);

  /// Deadline variant: wait at most `timeout` for a matching message.
  /// Returns std::nullopt on timeout. Built on the same condition variable
  /// as receive() — no polling, the waiter sleeps until a delivery or the
  /// deadline. The failure-detection primitive of the ft layer: a Nature
  /// Agent that stops hearing from a rank uses the timeout to suspect it.
  std::optional<Message> receive_for(int source, int tag,
                                     std::chrono::nanoseconds timeout);

  /// Non-blocking variant; returns false if nothing matches right now.
  bool try_receive(int source, int tag, Message& out);

  /// Messages currently queued (diagnostics / tests).
  std::size_t pending() const;

 private:
  bool match_locked(int source, int tag, Message& out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace egt::par
