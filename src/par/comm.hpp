// Communicator of the mini message-passing runtime ("mini-MPI").
//
// The paper's implementation uses MPI on Blue Gene: MPI_Bcast over the
// collective network for Nature-Agent announcements and non-blocking
// point-to-point over the torus for fitness returns (§V-B). This runtime
// reproduces that programming model in-process: each rank is a thread, each
// rank has a Mailbox, and the collectives are built from point-to-point
// messages over a binomial tree — the same logical structure a collective
// network implements.
//
// Collective calls must be invoked by every rank of the context in the same
// order; an internal sequence number keeps concurrent collectives from
// interfering.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "par/fault.hpp"
#include "par/mailbox.hpp"
#include "util/check.hpp"

namespace egt::par {

/// Which network a message logically travelled on. The paper's machine has
/// two: the collective (tree) network for Nature-Agent broadcasts and the
/// 3-D torus for point-to-point fitness returns (§V-B). Sends issued from
/// inside a broadcast are Broadcast traffic; everything else — user p2p,
/// gathers, reductions, barriers — is PointToPoint.
enum class TrafficClass { PointToPoint, Broadcast };

/// One rank's send-side traffic, split by class.
struct RankTraffic {
  std::uint64_t p2p_bytes = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t bcast_bytes = 0;
  std::uint64_t bcast_messages = 0;

  std::uint64_t bytes() const noexcept { return p2p_bytes + bcast_bytes; }
  std::uint64_t messages() const noexcept {
    return p2p_messages + bcast_messages;
  }
};

/// Shared state of one group of ranks.
class Context {
 public:
  explicit Context(int nranks);
  ~Context();

  int size() const noexcept { return static_cast<int>(inboxes_.size()); }
  Mailbox& inbox(int rank) { return *inboxes_[static_cast<std::size_t>(rank)]; }

  /// Install a fault injector consulted on every send (null = none). Must
  /// be called before rank threads start sending.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  FaultInjector* fault_injector() const noexcept { return injector_.get(); }

  /// Deliver `msg` to `dest`'s inbox after `delay` (fault injection's
  /// Delay action). The courier thread is spawned lazily on the first
  /// delayed send; messages still pending when the context is destroyed
  /// are dropped (the run is over, nobody is listening).
  void deliver_later(int dest, Message msg, std::chrono::milliseconds delay);

  /// Totals over all ranks and both traffic classes.
  std::uint64_t bytes_sent() const noexcept;
  std::uint64_t messages_sent() const noexcept;

  /// Record one send issued by `rank` (attributed to the sender).
  void account_send(int rank, std::size_t bytes, TrafficClass cls) noexcept;

  /// Send-side traffic of one rank, split broadcast vs point-to-point.
  RankTraffic rank_traffic(int rank) const noexcept;

 private:
  // Cache-line sized per-rank slots: traffic accounting on the hot send
  // path must not make rank threads ping-pong a shared counter line.
  struct alignas(64) RankCounters {
    std::atomic<std::uint64_t> p2p_bytes{0};
    std::atomic<std::uint64_t> p2p_messages{0};
    std::atomic<std::uint64_t> bcast_bytes{0};
    std::atomic<std::uint64_t> bcast_messages{0};
  };

  // Courier state for deliver_later (guarded by courier_mu_).
  struct DelayedMessage {
    std::chrono::steady_clock::time_point due;
    int dest;
    Message msg;
  };
  void courier_main();

  std::vector<std::unique_ptr<Mailbox>> inboxes_;
  std::vector<RankCounters> traffic_;
  std::shared_ptr<FaultInjector> injector_;

  std::mutex courier_mu_;
  std::condition_variable courier_cv_;
  std::vector<DelayedMessage> delayed_;
  std::thread courier_;
  bool courier_stop_ = false;
};

/// Per-rank handle. Not thread-safe: one rank thread uses one Comm.
class Comm {
 public:
  Comm(Context& ctx, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return ctx_->size(); }
  bool is_root() const noexcept { return rank_ == 0; }

  // -- point-to-point -------------------------------------------------------

  /// Sends never block (the mailbox buffers) — the moral equivalent of the
  /// paper's non-blocking torus sends.
  void send(int dest, int tag, std::vector<std::byte> payload);
  Message recv(int source = kAnySource, int tag = kAnyTag);
  bool try_recv(int source, int tag, Message& out);

  /// Deadline receive (Mailbox::receive_for): nullopt on timeout. The ft
  /// layer's failure-detection primitive.
  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::nanoseconds timeout);

  /// Non-blocking receive handle: post now, overlap work, complete later.
  class Request {
   public:
    /// Completed yet? On true, `out` holds the message (once).
    bool test(Message& out);
    /// Block until the matching message arrives.
    Message wait();
    bool done() const noexcept { return done_; }

   private:
    friend class Comm;
    Request(Comm& comm, int source, int tag)
        : comm_(&comm), source_(source), tag_(tag) {}
    Comm* comm_;
    int source_;
    int tag_;
    bool done_ = false;
  };

  /// Post a receive for (source, tag) without blocking.
  Request irecv(int source = kAnySource, int tag = kAnyTag) {
    return Request(*this, source, tag);
  }

  /// Typed convenience for trivially copyable values.
  template <class T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    send(dest, tag, std::move(bytes));
  }

  template <class T>
  T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Message m = recv(source, tag);
    EGT_REQUIRE_MSG(m.payload.size() == sizeof(T), "typed recv size mismatch");
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  // -- collectives (binomial tree / recursive structure) --------------------

  void barrier();

  /// Broadcast `data` from `root`; on non-root ranks `data` is replaced.
  void bcast(std::vector<std::byte>& data, int root = 0);

  template <class T>
  void bcast_value(T& value, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    if (rank_ == root) std::memcpy(bytes.data(), &value, sizeof(T));
    bcast(bytes, root);
    std::memcpy(&value, bytes.data(), sizeof(T));
  }

  /// Gather each rank's block at the root; result (root only) is indexed by
  /// rank. Non-root ranks get an empty vector.
  std::vector<std::vector<std::byte>> gather(std::vector<std::byte> mine,
                                             int root = 0);

  /// All ranks obtain every rank's block.
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine);

  /// Element-wise reduction of equal-length double vectors at the root.
  enum class ReduceOp { Sum, Min, Max };
  std::vector<double> reduce(std::vector<double> mine, ReduceOp op,
                             int root = 0);
  std::vector<double> allreduce(std::vector<double> mine, ReduceOp op);

  double reduce_scalar(double mine, ReduceOp op, int root = 0);
  double allreduce_scalar(double mine, ReduceOp op);

  // Traffic accounting passthrough.
  std::uint64_t context_bytes_sent() const noexcept {
    return ctx_->bytes_sent();
  }
  /// This rank's own send-side traffic so far.
  RankTraffic traffic() const noexcept { return ctx_->rank_traffic(rank_); }

 private:
  int coll_tag();  ///< fresh reserved tag for the next collective

  /// Scope guard classifying every send issued inside a broadcast.
  class ClassScope {
   public:
    ClassScope(Comm& comm, TrafficClass cls)
        : comm_(comm), prev_(comm.send_class_) {
      comm_.send_class_ = cls;
    }
    ~ClassScope() { comm_.send_class_ = prev_; }

   private:
    Comm& comm_;
    TrafficClass prev_;
  };

  Context* ctx_;
  int rank_;
  int coll_seq_ = 0;
  TrafficClass send_class_ = TrafficClass::PointToPoint;
};

/// Tags >= kCollectiveTagBase are reserved for collectives.
inline constexpr int kCollectiveTagBase = 1 << 24;

}  // namespace egt::par
