#include "par/comm.hpp"

#include <algorithm>
#include <atomic>

#include "obs/tracer.hpp"

namespace egt::par {

Context::Context(int nranks)
    : traffic_(nranks > 0 ? static_cast<std::size_t>(nranks) : 0) {
  EGT_REQUIRE_MSG(nranks > 0, "context needs at least one rank");
  inboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    inboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Context::~Context() {
  {
    std::lock_guard<std::mutex> lock(courier_mu_);
    courier_stop_ = true;
  }
  courier_cv_.notify_all();
  if (courier_.joinable()) courier_.join();
}

void Context::deliver_later(int dest, Message msg,
                            std::chrono::milliseconds delay) {
  EGT_REQUIRE(dest >= 0 && dest < size());
  std::lock_guard<std::mutex> lock(courier_mu_);
  delayed_.push_back(
      {std::chrono::steady_clock::now() + delay, dest, std::move(msg)});
  if (!courier_.joinable()) {
    courier_ = std::thread([this] { courier_main(); });
  }
  courier_cv_.notify_all();
}

void Context::courier_main() {
  std::unique_lock<std::mutex> lock(courier_mu_);
  while (true) {
    if (courier_stop_) return;  // pending messages die with the run
    if (delayed_.empty()) {
      courier_cv_.wait(lock);
      continue;
    }
    auto next = std::min_element(
        delayed_.begin(), delayed_.end(),
        [](const DelayedMessage& a, const DelayedMessage& b) {
          return a.due < b.due;
        });
    const auto now = std::chrono::steady_clock::now();
    if (next->due > now) {
      courier_cv_.wait_until(lock, next->due);
      continue;  // re-evaluate: stop flag or an earlier message may exist
    }
    DelayedMessage ready = std::move(*next);
    delayed_.erase(next);
    lock.unlock();
    inbox(ready.dest).deliver(std::move(ready.msg));
    lock.lock();
  }
}

std::uint64_t Context::bytes_sent() const noexcept {
  std::uint64_t total = 0;
  for (int r = 0; r < size(); ++r) total += rank_traffic(r).bytes();
  return total;
}

std::uint64_t Context::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (int r = 0; r < size(); ++r) total += rank_traffic(r).messages();
  return total;
}

void Context::account_send(int rank, std::size_t bytes,
                           TrafficClass cls) noexcept {
  auto& slot = traffic_[static_cast<std::size_t>(rank)];
  if (cls == TrafficClass::Broadcast) {
    slot.bcast_bytes.fetch_add(bytes, std::memory_order_relaxed);
    slot.bcast_messages.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot.p2p_bytes.fetch_add(bytes, std::memory_order_relaxed);
    slot.p2p_messages.fetch_add(1, std::memory_order_relaxed);
  }
}

RankTraffic Context::rank_traffic(int rank) const noexcept {
  const auto& slot = traffic_[static_cast<std::size_t>(rank)];
  RankTraffic out;
  out.p2p_bytes = slot.p2p_bytes.load(std::memory_order_relaxed);
  out.p2p_messages = slot.p2p_messages.load(std::memory_order_relaxed);
  out.bcast_bytes = slot.bcast_bytes.load(std::memory_order_relaxed);
  out.bcast_messages = slot.bcast_messages.load(std::memory_order_relaxed);
  return out;
}

Comm::Comm(Context& ctx, int rank) : ctx_(&ctx), rank_(rank) {
  EGT_REQUIRE(rank >= 0 && rank < ctx.size());
}

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  EGT_REQUIRE(dest >= 0 && dest < size());
  // Flight recorder: one span per send, named by traffic class (the same
  // broadcast/p2p split the TrafficReport accounts), plus the tail of the
  // flow arrow the receiver's "f" event completes. A dropped or delayed
  // message keeps its flow id — a tail with no head is exactly what a
  // lost packet looks like in the timeline.
  obs::TraceSpan span(send_class_ == TrafficClass::Broadcast
                          ? obs::kCommBcastSend
                          : obs::kCommSend,
                      obs::kCatComm, "bytes", payload.size());
  const std::uint64_t flow = obs::Tracer::new_flow_id();
  obs::trace_flow_start(flow);
  // Traffic is accounted at the sender regardless of the message's fate:
  // a dropped packet was still injected into the network.
  ctx_->account_send(rank_, payload.size(), send_class_);
  if (FaultInjector* injector = ctx_->fault_injector()) {
    const FaultDecision decision =
        injector->on_send(rank_, dest, tag, payload.size());
    switch (decision.kind) {
      case FaultDecision::Kind::Drop:
        return;
      case FaultDecision::Kind::Delay:
        ctx_->deliver_later(dest, {rank_, tag, std::move(payload), flow},
                            decision.delay);
        return;
      case FaultDecision::Kind::Deliver:
        break;
    }
  }
  ctx_->inbox(dest).deliver({rank_, tag, std::move(payload), flow});
}

Message Comm::recv(int source, int tag) {
  // The span covers the wait: a long comm.recv is time this rank sat
  // blocked on the network.
  obs::TraceSpan span(obs::kCommRecv, obs::kCatComm);
  Message m = ctx_->inbox(rank_).receive(source, tag);
  obs::trace_flow_end(m.trace_id);
  return m;
}

bool Comm::try_recv(int source, int tag, Message& out) {
  // No span: try_recv is a poll, not a wait.
  if (!ctx_->inbox(rank_).try_receive(source, tag, out)) return false;
  obs::trace_flow_end(out.trace_id);
  return true;
}

std::optional<Message> Comm::recv_for(int source, int tag,
                                      std::chrono::nanoseconds timeout) {
  // Timed-out waits record too: heartbeat silences are the interesting
  // gaps in an ft timeline.
  obs::TraceSpan span(obs::kCommRecv, obs::kCatComm);
  auto m = ctx_->inbox(rank_).receive_for(source, tag, timeout);
  if (m) obs::trace_flow_end(m->trace_id);
  return m;
}

bool Comm::Request::test(Message& out) {
  EGT_REQUIRE_MSG(!done_, "request already completed");
  if (comm_->try_recv(source_, tag_, out)) {
    done_ = true;
    return true;
  }
  return false;
}

Message Comm::Request::wait() {
  EGT_REQUIRE_MSG(!done_, "request already completed");
  done_ = true;
  return comm_->recv(source_, tag_);
}

int Comm::coll_tag() {
  const int tag = kCollectiveTagBase + (coll_seq_ & 0x3fffff);
  ++coll_seq_;
  return tag;
}

void Comm::barrier() {
  // Dissemination barrier: log2(size) rounds of shifted token exchange.
  const int tag = coll_tag();
  for (int mask = 1; mask < size(); mask <<= 1) {
    const int to = (rank_ + mask) % size();
    const int from = (rank_ - mask % size() + size()) % size();
    send(to, tag, {});
    (void)recv(from, tag);
  }
}

void Comm::bcast(std::vector<std::byte>& data, int root) {
  EGT_REQUIRE(root >= 0 && root < size());
  // Binomial tree rooted at `root`, the logical structure of a collective
  // network broadcast (paper §V-B). Relay sends count as Broadcast traffic.
  const ClassScope scope(*this, TrafficClass::Broadcast);
  const int tag = coll_tag();
  const int vrank = (rank_ - root + size()) % size();
  auto real = [&](int v) { return (v + root) % size(); };

  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      Message m = recv(real(vrank ^ mask), tag);
      data = std::move(m.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank | mask) != vrank && (vrank | mask) < size()) {
      send(real(vrank | mask), tag, data);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gather(std::vector<std::byte> mine,
                                                 int root) {
  EGT_REQUIRE(root >= 0 && root < size());
  // Direct point-to-point collection at the root: the paper returns SSet
  // fitness values to the Nature Agent with non-blocking torus p2p sends.
  const int tag = coll_tag();
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int i = 0; i < size() - 1; ++i) {
      Message m = recv(kAnySource, tag);
      out[static_cast<std::size_t>(m.source)] = std::move(m.payload);
    }
  } else {
    send(root, tag, std::move(mine));
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather(
    std::vector<std::byte> mine) {
  auto blocks = gather(std::move(mine), 0);
  // Flatten, broadcast, re-split.
  std::vector<std::byte> flat;
  if (rank_ == 0) {
    std::uint64_t n = blocks.size();
    flat.resize(sizeof n);
    std::memcpy(flat.data(), &n, sizeof n);
    for (const auto& b : blocks) {
      std::uint64_t len = b.size();
      const auto off = flat.size();
      flat.resize(off + sizeof len + b.size());
      std::memcpy(flat.data() + off, &len, sizeof len);
      std::memcpy(flat.data() + off + sizeof len, b.data(), b.size());
    }
  }
  bcast(flat, 0);
  std::vector<std::vector<std::byte>> out;
  std::uint64_t n = 0;
  std::size_t off = 0;
  std::memcpy(&n, flat.data(), sizeof n);
  off += sizeof n;
  out.resize(n);
  for (auto& b : out) {
    std::uint64_t len = 0;
    std::memcpy(&len, flat.data() + off, sizeof len);
    off += sizeof len;
    b.assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
             flat.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
  }
  return out;
}

namespace {
void apply_op(std::vector<double>& acc, const std::vector<double>& other,
              Comm::ReduceOp op) {
  EGT_REQUIRE_MSG(acc.size() == other.size(), "reduce length mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case Comm::ReduceOp::Sum:
        acc[i] += other[i];
        break;
      case Comm::ReduceOp::Min:
        acc[i] = std::min(acc[i], other[i]);
        break;
      case Comm::ReduceOp::Max:
        acc[i] = std::max(acc[i], other[i]);
        break;
    }
  }
}

std::vector<std::byte> pack(const std::vector<double>& v) {
  std::vector<std::byte> b(v.size() * sizeof(double));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

std::vector<double> unpack(const std::vector<std::byte>& b) {
  std::vector<double> v(b.size() / sizeof(double));
  std::memcpy(v.data(), b.data(), b.size());
  return v;
}
}  // namespace

std::vector<double> Comm::reduce(std::vector<double> mine, ReduceOp op,
                                 int root) {
  // Binomial-tree combine toward the root (deterministic combine order:
  // children merge in fixed vrank order, so floating-point sums are
  // reproducible run to run).
  const int tag = coll_tag();
  const int vrank = (rank_ - root + size()) % size();
  auto real = [&](int v) { return (v + root) % size(); };

  for (int mask = 1; mask < size(); mask <<= 1) {
    if (vrank & mask) {
      send(real(vrank ^ mask), tag, pack(mine));
      return rank_ == root ? mine : std::vector<double>{};
    }
    if (vrank + mask < size()) {
      Message m = recv(real(vrank + mask), tag);
      apply_op(mine, unpack(m.payload), op);
    }
  }
  return rank_ == root ? mine : std::vector<double>{};
}

std::vector<double> Comm::allreduce(std::vector<double> mine, ReduceOp op) {
  const std::size_t len = mine.size();
  auto result = reduce(std::move(mine), op, 0);
  std::vector<std::byte> bytes;
  if (rank_ == 0) bytes = pack(result);
  bcast(bytes, 0);
  auto out = unpack(bytes);
  EGT_REQUIRE(out.size() == len);
  return out;
}

double Comm::reduce_scalar(double mine, ReduceOp op, int root) {
  auto v = reduce({mine}, op, root);
  return v.empty() ? 0.0 : v[0];
}

double Comm::allreduce_scalar(double mine, ReduceOp op) {
  return allreduce({mine}, op)[0];
}

}  // namespace egt::par
