#include "par/runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace egt::par {

namespace {
TrafficReport run_impl(int nranks,
                       const std::function<void(Comm&)>& rank_main,
                       const RunOptions& options = {}) {
  EGT_REQUIRE_MSG(nranks > 0, "need at least one rank");
  Context ctx(nranks);
  ctx.set_fault_injector(options.fault_injector);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(ctx, r);
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  TrafficReport report;
  report.per_rank.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const RankTraffic t = ctx.rank_traffic(r);
    report.per_rank.push_back(t);
    report.p2p_bytes += t.p2p_bytes;
    report.p2p_messages += t.p2p_messages;
    report.bcast_bytes += t.bcast_bytes;
    report.bcast_messages += t.bcast_messages;
  }
  report.bytes = report.p2p_bytes + report.bcast_bytes;
  report.messages = report.p2p_messages + report.bcast_messages;
  return report;
}
}  // namespace

void run_ranks(int nranks, const std::function<void(Comm&)>& rank_main) {
  (void)run_impl(nranks, rank_main);
}

TrafficReport run_ranks_traced(int nranks,
                               const std::function<void(Comm&)>& rank_main) {
  return run_impl(nranks, rank_main);
}

TrafficReport run_ranks_traced(int nranks,
                               const std::function<void(Comm&)>& rank_main,
                               const RunOptions& options) {
  return run_impl(nranks, rank_main, options);
}

}  // namespace egt::par
