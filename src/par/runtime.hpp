// Launch a rank program on N ranks (one thread per rank), the moral
// equivalent of `mpirun -np N`.
#pragma once

#include <functional>
#include <memory>

#include "par/comm.hpp"

namespace egt::par {

/// Launch-time knobs shared by all run_ranks variants.
struct RunOptions {
  /// Consulted on every send (drop / delay injection). Null = no faults.
  std::shared_ptr<FaultInjector> fault_injector;
};

/// Runs `rank_main(comm)` on `nranks` threads sharing one Context. Blocks
/// until every rank returns. If any rank throws, the first exception (by
/// rank order) is rethrown after all ranks have been joined.
void run_ranks(int nranks, const std::function<void(Comm&)>& rank_main);

/// As run_ranks, but also returns the traffic the run generated, split by
/// class (broadcast-tree vs point-to-point) and by sending rank — the
/// paper's collective-network vs torus distinction. `bytes`/`messages` are
/// the grand totals across both classes (historical field names).
struct TrafficReport {
  std::uint64_t bytes = 0;     ///< total, both classes
  std::uint64_t messages = 0;  ///< total, both classes

  std::uint64_t p2p_bytes = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t bcast_bytes = 0;
  std::uint64_t bcast_messages = 0;

  /// Send-side traffic per rank (index = rank).
  std::vector<RankTraffic> per_rank;
};
TrafficReport run_ranks_traced(int nranks,
                               const std::function<void(Comm&)>& rank_main);
TrafficReport run_ranks_traced(int nranks,
                               const std::function<void(Comm&)>& rank_main,
                               const RunOptions& options);

}  // namespace egt::par
