// Launch a rank program on N ranks (one thread per rank), the moral
// equivalent of `mpirun -np N`.
#pragma once

#include <functional>

#include "par/comm.hpp"

namespace egt::par {

/// Runs `rank_main(comm)` on `nranks` threads sharing one Context. Blocks
/// until every rank returns. If any rank throws, the first exception (by
/// rank order) is rethrown after all ranks have been joined.
void run_ranks(int nranks, const std::function<void(Comm&)>& rank_main);

/// As run_ranks, but also returns the total point-to-point traffic the run
/// generated (bytes, messages) for communication-volume assertions.
struct TrafficReport {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};
TrafficReport run_ranks_traced(int nranks,
                               const std::function<void(Comm&)>& rank_main);

}  // namespace egt::par
