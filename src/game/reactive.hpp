// Reactive strategies and their closed-form analysis.
//
// A reactive strategy (y, p, q) cooperates with probability y on the first
// move, p after an opponent's cooperation and q after an opponent's
// defection — the subspace of memory-one strategies that ignores one's own
// last move. Nowak (1990) / Nowak & Sigmund (1992, ref [13]) give the
// long-run payoffs in closed form, which this module implements and which
// the tests cross-validate against the general Markov machinery
// (game/markov.hpp). Includes the classic Generous-Tit-For-Tat optimum
// that the named-strategy catalogue's GTFT uses.
#pragma once

#include "game/payoff.hpp"
#include "game/strategy.hpp"

namespace egt::game::reactive {

struct ReactiveStrategy {
  double y = 1.0;  ///< P(cooperate | first round)
  double p = 1.0;  ///< P(cooperate | opponent cooperated)
  double q = 0.0;  ///< P(cooperate | opponent defected)
};

/// Validity check: all probabilities in [0, 1].
bool is_valid(const ReactiveStrategy& s) noexcept;

/// The equivalent memory-one mixed strategy (own last move ignored).
MixedStrategy to_memory_one(const ReactiveStrategy& s);

/// Long-run (stationary) cooperation levels c1, c2 of two reactive
/// strategies playing each other, by the closed form
///   c1 = (q1 + s1 q2) / (1 - s1 s2),  s_i = p_i - q_i.
/// Requires |s1 s2| < 1 (guaranteed unless both strategies are fully
/// deterministic with |p - q| = 1).
struct CooperationLevels {
  double c1 = 0.0;
  double c2 = 0.0;
};
CooperationLevels stationary_cooperation(const ReactiveStrategy& a,
                                         const ReactiveStrategy& b);

/// Long-run per-round expected payoff of `a` against `b`.
double stationary_payoff(const ReactiveStrategy& a, const ReactiveStrategy& b,
                         const PayoffMatrix& payoff);

/// The most generous q that is still safe for TFT-like strategies:
///   q* = min(1 - (T-R)/(R-S), (R-P)/(T-P))
/// (Nowak & Sigmund's GTFT). For the paper's payoffs [3,0,4,1] this is 1/3.
double gtft_optimal_generosity(const PayoffMatrix& payoff);

/// Named reactive points.
ReactiveStrategy tft() noexcept;
ReactiveStrategy gtft(const PayoffMatrix& payoff);
ReactiveStrategy all_c() noexcept;
ReactiveStrategy all_d() noexcept;

}  // namespace egt::game::reactive
