#include "game/batch.hpp"

#include <cmath>

#include "game/simd.hpp"
#include "game/state.hpp"
#include "util/check.hpp"

namespace egt::game::batch {

namespace {

/// Effective cooperation probability after execution noise — must match
/// markov.cpp's noisy() exactly (the scalar kernel replicates the
/// OutcomeChain arithmetic bit-for-bit).
inline double noisy(double p, double eps) noexcept {
  return (1.0 - eps) * p + eps * (1.0 - p);
}

/// B observes the mirrored outcome: (my, opp) bits swap.
constexpr int swap_outcome(int o) noexcept {
  return ((o & 1) << 1) | (o >> 1);
}

}  // namespace

void Mem1Batch::push_pair(const Strategy& a, const Strategy& b, double eps) {
  EGT_REQUIRE_MSG(a.memory() == 1 && b.memory() == 1,
                  "batch kernel requires memory-one strategies");
  for (int o = 0; o < 4; ++o) {
    pa_[o].push_back(noisy(a.coop_prob(static_cast<State>(o)), eps));
    pb_[o].push_back(noisy(
        b.coop_prob(static_cast<State>(swap_outcome(o))), eps));
  }
}

void Mem1Batch::push_probs(const double* ca, const double* cb, double eps) {
  for (int o = 0; o < 4; ++o) {
    pa_[o].push_back(noisy(ca[o], eps));
    pb_[o].push_back(noisy(cb[swap_outcome(o)], eps));
  }
}

void expected_totals_mem1_scalar(const Mem1Batch& batch,
                                 const PayoffMatrix& payoff,
                                 std::uint32_t rounds, BatchTotals* out) {
  // Per-pair replica of markov::finite_totals_mem1 (same expressions, same
  // accumulation order, same zero-mass skip), reading the SoA lanes: a
  // scalar build of the batch kernel is bit-identical to the pre-batch
  // engine.
  const std::array<double, 4> va{payoff.reward, payoff.sucker,
                                 payoff.temptation, payoff.punishment};
  const std::array<double, 4> vb{payoff.reward, payoff.temptation,
                                 payoff.sucker, payoff.punishment};
  const std::size_t n = batch.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::array<double, 4> pa{batch.pa(0)[k], batch.pa(1)[k],
                                   batch.pa(2)[k], batch.pa(3)[k]};
    const std::array<double, 4> pb{batch.pb(0)[k], batch.pb(1)[k],
                                   batch.pb(2)[k], batch.pb(3)[k]};
    BatchTotals t;
    std::array<double, 4> prev{1.0, 0.0, 0.0, 0.0};
    for (std::uint32_t r = 0; r < rounds; ++r) {
      std::array<double, 4> d{};
      for (std::size_t o = 0; o < 4; ++o) {
        if (prev[o] == 0.0) continue;
        const double ca = pa[o];
        const double cb = pb[o];
        d[0] += prev[o] * ca * cb;
        d[1] += prev[o] * ca * (1.0 - cb);
        d[2] += prev[o] * (1.0 - ca) * cb;
        d[3] += prev[o] * (1.0 - ca) * (1.0 - cb);
      }
      for (std::size_t o = 0; o < 4; ++o) {
        t.payoff_a += d[o] * va[o];
        t.payoff_b += d[o] * vb[o];
      }
      t.coop_a += d[0] + d[1];
      t.coop_b += d[0] + d[2];
      prev = d;
    }
    out[k] = t;
  }
}

void expected_totals_mem1(const Mem1Batch& batch, const PayoffMatrix& payoff,
                          std::uint32_t rounds, std::span<BatchTotals> out) {
  EGT_REQUIRE(out.size() >= batch.size());
  if (batch.empty()) return;
#if defined(EGT_SIMD_AVX2)
  if (simd::active_kernel() == simd::Kernel::Avx2) {
    expected_totals_mem1_avx2(batch, payoff, rounds, out.data());
    return;
  }
#endif
  expected_totals_mem1_scalar(batch, payoff, rounds, out.data());
}

#if !defined(EGT_SIMD_AVX2)
// Link-time stub for -DEGT_SIMD=OFF / non-x86 builds: cross-kernel checks
// (simcheck --kernels, the gtest suites) reference this symbol but gate the
// call on simd::compiled_with_avx2(), which is false here.
void expected_totals_mem1_avx2(const Mem1Batch&, const PayoffMatrix&,
                               std::uint32_t, BatchTotals*) {
  EGT_REQUIRE_MSG(false, "AVX2 batch kernel not compiled in (EGT_SIMD=OFF)");
}
#endif

void expected_payoff_mem1(const Mem1Batch& batch, const PayoffMatrix& payoff,
                          std::uint32_t rounds, std::span<double> out) {
  EGT_REQUIRE(out.size() >= batch.size());
  thread_local std::vector<BatchTotals> totals;
  if (totals.size() < batch.size()) totals.resize(batch.size());
  expected_totals_mem1(batch, payoff, rounds, totals);
  for (std::size_t k = 0; k < batch.size(); ++k) out[k] = totals[k].payoff_a;
}

bool integer_exact_payoff(const PayoffMatrix& payoff,
                          std::uint32_t rounds) noexcept {
  // Every partial sum of up to `rounds` entries (and the closed-form
  // cycle-count products, bounded by rounds * max|entry|) must be an
  // exactly-representable integer.
  constexpr double kExact = 4503599627370496.0;  // 2^52 (margin under 2^53)
  for (const double v :
       {payoff.reward, payoff.sucker, payoff.temptation, payoff.punishment}) {
    if (std::nearbyint(v) != v) return false;
    if (std::fabs(v) * static_cast<double>(rounds) >= kExact) return false;
  }
  return true;
}

namespace {

/// Per-thread walker scratch: replaces the five vectors
/// markov::exact_pure_game allocates per call. Sized lazily to the largest
/// state space seen; `visited` undoes the first_seen stamps after each
/// walk so resets cost O(steps walked), not O(states).
struct PureScratch {
  std::vector<std::int32_t> first_seen;  // -1 = unseen
  std::vector<State> visited;
  std::vector<double> cum_a, cum_b;
  std::vector<std::uint32_t> cum_ca, cum_cb;

  void prepare(std::uint32_t states, std::uint32_t max_steps) {
    if (first_seen.size() < states) first_seen.assign(states, -1);
    visited.clear();
    // +2: index max_steps must be addressable (prefix sums over steps).
    if (cum_a.size() < max_steps + 2) {
      cum_a.resize(max_steps + 2);
      cum_b.resize(max_steps + 2);
      cum_ca.resize(max_steps + 2);
      cum_cb.resize(max_steps + 2);
    }
  }
  void release() {
    for (const State s : visited) first_seen[s] = -1;
    visited.clear();
  }
};

PureScratch& scratch() {
  thread_local PureScratch tls;
  return tls;
}

/// The closed-form totals of markov::exact_pure_game::result_at, verbatim:
/// totals over `rounds` steps of a trajectory that is a cycle [t0, t1)
/// after a transient of t0 steps.
GameResult result_at(const PureScratch& s, std::uint32_t t0, std::uint32_t t1,
                     std::uint32_t rounds) {
  GameResult res;
  res.rounds = rounds;
  if (rounds < t1) {
    res.payoff_a = s.cum_a[rounds];
    res.payoff_b = s.cum_b[rounds];
    res.coop_a = s.cum_ca[rounds];
    res.coop_b = s.cum_cb[rounds];
    return res;
  }
  const std::uint32_t len = t1 - t0;
  const std::uint32_t after = rounds - t0;
  const std::uint32_t cycles = after / len;
  const std::uint32_t rem = after % len;
  res.payoff_a = s.cum_a[t0] + cycles * (s.cum_a[t1] - s.cum_a[t0]) +
                 (s.cum_a[t0 + rem] - s.cum_a[t0]);
  res.payoff_b = s.cum_b[t0] + cycles * (s.cum_b[t1] - s.cum_b[t0]) +
                 (s.cum_b[t0 + rem] - s.cum_b[t0]);
  res.coop_a = s.cum_ca[t0] + cycles * (s.cum_ca[t1] - s.cum_ca[t0]) +
               (s.cum_ca[t0 + rem] - s.cum_ca[t0]);
  res.coop_b = s.cum_cb[t0] + cycles * (s.cum_cb[t1] - s.cum_cb[t0]) +
               (s.cum_cb[t0 + rem] - s.cum_cb[t0]);
  return res;
}

/// Cycle-detecting walker shared by the analytic and sampled fast paths.
/// Both strategies' views are maintained as packed states; the next move
/// is a branchless word-indexed bit read of the packed strategy table.
GameResult walk_pure_cycle(const PureStrategy& a, const PureStrategy& b,
                           const PayoffMatrix& payoff, std::uint32_t rounds) {
  const std::uint32_t states = num_states(a.memory());
  const State mask = states - 1;
  const std::uint64_t* wa = a.table().words().data();
  const std::uint64_t* wb = b.table().words().data();
  // o = 2 * (A defects) + (B defects): pay_a[o] == payoff.payoff(ma, mb).
  const double pay_a[4] = {payoff.reward, payoff.sucker, payoff.temptation,
                           payoff.punishment};
  const double pay_b[4] = {payoff.reward, payoff.temptation, payoff.sucker,
                           payoff.punishment};

  PureScratch& s = scratch();
  // The walk revisits a state within min(states, rounds) + 1 steps.
  s.prepare(states, states < rounds ? states : rounds);
  s.cum_a[0] = 0.0;
  s.cum_b[0] = 0.0;
  s.cum_ca[0] = 0;
  s.cum_cb[0] = 0;

  State sa = StateCodec::initial();
  State sb = StateCodec::initial();  // == swap_perspective(sa), maintained
  for (std::uint32_t t = 0;; ++t) {
    if (s.first_seen[sa] >= 0) {
      const auto t0 = static_cast<std::uint32_t>(s.first_seen[sa]);
      const GameResult res = result_at(s, t0, t, rounds);
      s.release();
      return res;
    }
    if (t >= rounds) {
      // No revisit needed: we already walked the whole game.
      const GameResult res = result_at(s, t, t + 1, rounds);
      s.release();
      return res;
    }
    s.first_seen[sa] = static_cast<std::int32_t>(t);
    s.visited.push_back(sa);
    const std::uint64_t ba = (wa[sa >> 6] >> (sa & 63)) & 1u;
    const std::uint64_t bb = (wb[sb >> 6] >> (sb & 63)) & 1u;
    const std::uint64_t o = 2 * ba + bb;
    s.cum_a[t + 1] = s.cum_a[t] + pay_a[o];
    s.cum_b[t + 1] = s.cum_b[t] + pay_b[o];
    s.cum_ca[t + 1] = s.cum_ca[t] + static_cast<std::uint32_t>(1 - ba);
    s.cum_cb[t + 1] = s.cum_cb[t] + static_cast<std::uint32_t>(1 - bb);
    sa = static_cast<State>(((sa << 2) | o) & mask);
    sb = static_cast<State>(((sb << 2) | (2 * bb + ba)) & mask);
  }
}

}  // namespace

GameResult exact_pure_game_fast(const PureStrategy& a, const PureStrategy& b,
                                const PayoffMatrix& payoff,
                                std::uint32_t rounds) {
  EGT_REQUIRE(a.memory() == b.memory());
  EGT_REQUIRE(rounds > 0);
  return walk_pure_cycle(a, b, payoff, rounds);
}

GameResult run_pure_game(const PureStrategy& a, const PureStrategy& b,
                         const PayoffMatrix& payoff, std::uint32_t rounds) {
  EGT_REQUIRE(a.memory() == b.memory());
  EGT_REQUIRE(rounds > 0);
  if (integer_exact_payoff(payoff, rounds)) {
    // Every partial sum is an exact integer, so the cycle closed form
    // reproduces the sequential loop's totals bit-for-bit.
    return walk_pure_cycle(a, b, payoff, rounds);
  }
  // Non-integral payoffs: replay every round through the packed walker,
  // accumulating in loop order — bitwise identical to the IpdEngine loop.
  const State mask = num_states(a.memory()) - 1;
  const std::uint64_t* wa = a.table().words().data();
  const std::uint64_t* wb = b.table().words().data();
  const double pay_a[4] = {payoff.reward, payoff.sucker, payoff.temptation,
                           payoff.punishment};
  const double pay_b[4] = {payoff.reward, payoff.temptation, payoff.sucker,
                           payoff.punishment};
  GameResult res;
  res.rounds = rounds;
  State sa = StateCodec::initial();
  State sb = StateCodec::initial();
  for (std::uint32_t t = 0; t < rounds; ++t) {
    const std::uint64_t ba = (wa[sa >> 6] >> (sa & 63)) & 1u;
    const std::uint64_t bb = (wb[sb >> 6] >> (sb & 63)) & 1u;
    const std::uint64_t o = 2 * ba + bb;
    res.payoff_a += pay_a[o];
    res.payoff_b += pay_b[o];
    res.coop_a += static_cast<std::uint32_t>(1 - ba);
    res.coop_b += static_cast<std::uint32_t>(1 - bb);
    sa = static_cast<State>(((sa << 2) | o) & mask);
    sb = static_cast<State>(((sb << 2) | (2 * bb + ba)) & mask);
  }
  return res;
}

}  // namespace egt::game::batch
