// Structure-of-arrays batch fitness kernels (DESIGN.md §12).
//
// The fitness hot path evaluates many strategy pairs with identical control
// flow; this module restructures the two dominant per-pair kernels so a
// whole batch runs through one tight loop:
//
//  * Mem1Batch + expected_totals_mem1 — the batch twin of
//    markov::expected_game_mem1. The memory-one Markov propagation is four
//    multiply-accumulate chains over the outcome distribution {CC, CD, DC,
//    DD}; laid out as structure-of-arrays across pairs it runs 4 pairs per
//    AVX2 register (game/batch_avx2.cpp, runtime-dispatched via
//    game/simd.hpp with a portable scalar fallback). Lane arithmetic is
//    strictly vertical: a pair's result does not depend on its lane
//    position or the batch size, so a batch of one equals a lane of eight
//    bitwise, and in-process bitwise invariants (dedup on/off, serial vs
//    threaded) survive batching. The scalar fallback replicates
//    markov::finite_totals_mem1 operation-for-operation, so scalar builds
//    are bit-identical to the pre-batch engine; the AVX2 kernel agrees with
//    the scalar reference to 1e-12 relative (FMA rounding).
//
//  * exact_pure_game_fast / run_pure_game — zero-allocation bit-packed
//    walkers over the deterministic joint trajectory of two pure
//    strategies. The next move is a branchless word-indexed bit read of the
//    packed strategy table over the packed memory-n state (no Move enum
//    round-trips, no payoff matrix branch); per-thread scratch replaces the
//    five vector allocations markov::exact_pure_game pays per call.
//    exact_pure_game_fast is bitwise identical to markov::exact_pure_game
//    (same prefix-sum + closed-form arithmetic); run_pure_game is bitwise
//    identical to the IpdEngine round loop — it takes the cycle
//    closed-form shortcut only when every payoff entry is integral (then
//    every partial sum is an exactly-represented integer, so the closed
//    form reproduces the loop's sum bit-for-bit) and otherwise replays all
//    rounds through the packed walker, accumulating in loop order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "game/ipd.hpp"
#include "game/payoff.hpp"
#include "game/strategy.hpp"

namespace egt::game::batch {

/// SoA batch of memory-one pairs prepared for the lane kernel: for each
/// pair, the outcome-conditioned cooperation probabilities of both sides
/// with execution noise already applied and B's perspective already
/// swapped — exactly the markov::OutcomeChain precomputation, transposed
/// across pairs.
class Mem1Batch {
 public:
  void clear() noexcept {
    for (auto& v : pa_) v.clear();
    for (auto& v : pb_) v.clear();
  }
  std::size_t size() const noexcept { return pa_[0].size(); }
  bool empty() const noexcept { return pa_[0].empty(); }

  /// Append pair (a, b); both must be memory-one (pure or mixed).
  void push_pair(const Strategy& a, const Strategy& b, double eps);

  /// Append a pair from raw outcome-conditioned cooperation probabilities
  /// (A's perspective for both, as stored by the pop-layer SoA class
  /// table): ca[o] = P(A cooperates | outcome o), cb likewise for B over
  /// *B's own* outcome encoding. Noise and B's perspective swap are
  /// applied here.
  void push_probs(const double* ca, const double* cb, double eps);

  /// pa(o)[k] = P(pair k's A cooperates | previous outcome o).
  std::span<const double> pa(int o) const noexcept { return pa_[o]; }
  std::span<const double> pb(int o) const noexcept { return pb_[o]; }

 private:
  std::vector<double> pa_[4];
  std::vector<double> pb_[4];
};

/// Exact expected totals of one finite memory-one game (the four fields of
/// markov::FiniteTotals, per pair).
struct BatchTotals {
  double payoff_a = 0.0;
  double payoff_b = 0.0;
  double coop_a = 0.0;
  double coop_b = 0.0;
};

/// Batch twin of markov::expected_game_mem1's totals: out[k] receives pair
/// k's expected totals over `rounds` rounds from the all-cooperate start.
/// Dispatches to the AVX2 lane kernel or the scalar fallback via
/// simd::active_kernel(). `out.size() >= batch.size()`.
void expected_totals_mem1(const Mem1Batch& batch, const PayoffMatrix& payoff,
                          std::uint32_t rounds, std::span<BatchTotals> out);

/// Convenience: only the row player's expected total payoff (what the
/// fitness tier consumes).
void expected_payoff_mem1(const Mem1Batch& batch, const PayoffMatrix& payoff,
                          std::uint32_t rounds, std::span<double> out);

/// Zero-allocation twin of markov::exact_pure_game: exact finite-round
/// totals for two deterministic pure strategies (zero noise) of equal
/// memory depth via cycle detection, bitwise identical to the original.
GameResult exact_pure_game_fast(const PureStrategy& a, const PureStrategy& b,
                                const PayoffMatrix& payoff,
                                std::uint32_t rounds);

/// Zero-allocation twin of the IpdEngine round loop for two pure
/// strategies with zero noise under LookupMode::Indexed: bitwise identical
/// to IpdEngine::play for those parameters (and consumes no RNG, like the
/// loop). Takes the cycle closed-form shortcut only when the payoff matrix
/// is integer-exact over `rounds` rounds.
GameResult run_pure_game(const PureStrategy& a, const PureStrategy& b,
                         const PayoffMatrix& payoff, std::uint32_t rounds);

/// True when every payoff entry is an integer small enough that any
/// `rounds`-length partial sum is exactly representable in a double — the
/// gate under which the cycle closed form reproduces the sequential round
/// loop bit-for-bit.
bool integer_exact_payoff(const PayoffMatrix& payoff,
                          std::uint32_t rounds) noexcept;

// Internal: the AVX2 lane kernel (only defined when the AVX2 TU is
// compiled in; callers go through expected_totals_mem1's dispatch).
void expected_totals_mem1_avx2(const Mem1Batch& batch,
                               const PayoffMatrix& payoff,
                               std::uint32_t rounds, BatchTotals* out);

// Internal: the portable scalar fallback, exposed for kernel
// cross-validation (simcheck --kernels).
void expected_totals_mem1_scalar(const Mem1Batch& batch,
                                 const PayoffMatrix& payoff,
                                 std::uint32_t rounds, BatchTotals* out);

}  // namespace egt::game::batch
