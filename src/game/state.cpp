#include "game/state.hpp"

#include <numeric>

#include "util/check.hpp"

namespace egt::game {

StateCodec::StateCodec(int memory)
    : memory_(memory),
      states_(num_states(memory)),
      mask_(num_states(memory) - 1) {
  EGT_REQUIRE_MSG(memory >= 0 && memory <= kMaxMemory,
                  "memory steps must be in [0, 6]");
}

State StateCodec::encode(const std::vector<Move>& mine,
                         const std::vector<Move>& theirs) const {
  EGT_REQUIRE(mine.size() == static_cast<std::size_t>(memory_));
  EGT_REQUIRE(theirs.size() == static_cast<std::size_t>(memory_));
  State s = 0;
  // Oldest round first so that round 0 lands in the lowest bits.
  for (int k = memory_ - 1; k >= 0; --k) {
    s = (s << 2) | static_cast<State>(2 * to_bit(mine[static_cast<std::size_t>(k)]) +
                                      to_bit(theirs[static_cast<std::size_t>(k)]));
  }
  return s;
}

LinearStateTable::LinearStateTable(int memory) : codec_(memory) {
  // The paper's `states` array simply enumerates all patterns; we store the
  // identity permutation explicitly so find_state really scans memory the
  // way the original code did.
  rows_.resize(codec_.states());
  std::iota(rows_.begin(), rows_.end(), 0u);
}

State LinearStateTable::find_state(State view) const noexcept {
  for (std::uint32_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i] == view) return i;
  }
  return 0;  // unreachable for valid views; keeps noexcept contract
}

}  // namespace egt::game
