// Catalogue of named strategies from the cooperation literature, each
// generalised to an arbitrary memory depth n (1..6 unless noted).
//
// Conventions follow the paper: Cooperate = 0, Defect = 1; state bit layout
// from game/state.hpp (round 0 = most recent, own move = high bit of pair).
#pragma once

#include <string>
#include <vector>

#include "game/strategy.hpp"

namespace egt::game::named {

/// Always cooperate.
PureStrategy all_c(int memory);

/// Always defect.
PureStrategy all_d(int memory);

/// Tit-For-Tat: copy the opponent's most recent move.
PureStrategy tit_for_tat(int memory);

/// Tit-For-Two-Tats: defect only after two consecutive opponent defections
/// (memory >= 2).
PureStrategy tit_for_two_tats(int memory);

/// Grim trigger: cooperate until any defection (own or opponent's) appears
/// in the remembered window; defection is then self-sustaining.
PureStrategy grim(int memory);

/// Win-Stay Lose-Shift (Pavlov): repeat own move after R or T, switch after
/// S or P. Memory-one pattern "0110" in the paper's state order... see
/// Table V; generalised by looking at the most recent round only.
PureStrategy win_stay_lose_shift(int memory);

/// Generous Tit-For-Tat: cooperate after opponent C; after opponent D still
/// cooperate with probability `generosity`.
MixedStrategy generous_tit_for_tat(int memory, double generosity);

/// Unconditional coin flip: cooperate with probability p in every state.
MixedStrategy random_strategy(int memory, double p = 0.5);

/// Contrite TFT approximation: like TFT, but cooperate when own last move
/// was a defection while the opponent cooperated (apologise after own
/// error). Needs memory >= 1.
PureStrategy contrite_tit_for_tat(int memory);

/// Firm-But-Fair: like WSLS but keeps cooperating after being suckered once.
PureStrategy firm_but_fair(int memory);

/// Alternator: cooperate iff own most recent move was a defection.
PureStrategy alternator(int memory);

/// The registry entry used by tournaments and censuses.
struct NamedStrategy {
  std::string name;
  Strategy strategy;
};

/// All pure named strategies at the given memory depth (deterministic order).
std::vector<NamedStrategy> pure_catalog(int memory);

/// Full catalogue including stochastic entries (GTFT, RANDOM).
std::vector<NamedStrategy> full_catalog(int memory);

/// Nearest catalogue entry (by L2 distance in cooperation-probability
/// space) to the given strategy; returns its name and the distance.
std::pair<std::string, double> nearest_named(const Strategy& s);

}  // namespace egt::game::named
