#include "game/enumerate.hpp"

#include "util/check.hpp"

namespace egt::game {

std::uint64_t pure_strategy_count(int memory) {
  EGT_REQUIRE_MSG(memory >= 0 && memory <= 2,
                  "pure strategy count only fits 64 bits for memory <= 2");
  return std::uint64_t{1} << num_states(memory);
}

PureStrategy pure_strategy_from_index(int memory, std::uint64_t index) {
  EGT_REQUIRE(memory >= 0 && memory <= 2);
  EGT_REQUIRE_MSG(index < pure_strategy_count(memory),
                  "strategy index out of range");
  PureStrategy s(memory);
  for (State st = 0; st < s.states(); ++st) {
    s.set_move(st, from_bit(static_cast<int>((index >> st) & 1u)));
  }
  return s;
}

std::vector<PureStrategy> all_pure_strategies(int memory) {
  const std::uint64_t n = pure_strategy_count(memory);
  std::vector<PureStrategy> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(pure_strategy_from_index(memory, i));
  }
  return out;
}

}  // namespace egt::game
