#include "game/markov.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace egt::game::markov {

namespace {

/// Effective cooperation probability after execution noise.
inline double noisy(double p, double eps) noexcept {
  return (1.0 - eps) * p + eps * (1.0 - p);
}

/// Cooperation probabilities of both players conditioned on the previous
/// outcome o = 2*moveA + moveB (bit = 1 means defect).
struct OutcomeChain {
  // pa[o] = P(A cooperates | previous outcome o); same for pb.
  std::array<double, 4> pa{};
  std::array<double, 4> pb{};

  OutcomeChain(const Strategy& a, const Strategy& b, double eps) {
    EGT_REQUIRE_MSG(a.memory() == 1 && b.memory() == 1,
                    "outcome-chain analysis requires memory-one strategies");
    for (int o = 0; o < 4; ++o) {
      const auto oa = static_cast<State>(o);
      // B sees the mirrored state: (my, opp) swaps.
      const auto ob = static_cast<State>(((o & 1) << 1) | (o >> 1));
      pa[static_cast<std::size_t>(o)] = noisy(a.coop_prob(oa), eps);
      pb[static_cast<std::size_t>(o)] = noisy(b.coop_prob(ob), eps);
    }
  }

  /// One exact propagation step of the outcome distribution.
  std::array<double, 4> step(const std::array<double, 4>& d) const noexcept {
    std::array<double, 4> out{};
    for (std::size_t o = 0; o < 4; ++o) {
      if (d[o] == 0.0) continue;
      const double ca = pa[o];
      const double cb = pb[o];
      out[0] += d[o] * ca * cb;
      out[1] += d[o] * ca * (1.0 - cb);
      out[2] += d[o] * (1.0 - ca) * cb;
      out[3] += d[o] * (1.0 - ca) * (1.0 - cb);
    }
    return out;
  }
};

/// Payoff of A for each outcome o = 2*moveA + moveB.
std::array<double, 4> payoff_vector_a(const PayoffMatrix& m) {
  return {m.reward, m.sucker, m.temptation, m.punishment};
}
/// Payoff of B (mirror).
std::array<double, 4> payoff_vector_b(const PayoffMatrix& m) {
  return {m.reward, m.temptation, m.sucker, m.punishment};
}

}  // namespace

namespace {
/// Totals of the exact finite-game expectation (payoff sums, cooperation
/// move counts as real numbers).
struct FiniteTotals {
  double payoff_a = 0.0, payoff_b = 0.0;
  double coop_a = 0.0, coop_b = 0.0;
};

FiniteTotals finite_totals_mem1(const Strategy& a, const Strategy& b,
                                const PayoffMatrix& payoff,
                                std::uint32_t rounds, double eps) {
  EGT_REQUIRE(rounds > 0);
  const OutcomeChain chain(a, b, eps);
  const auto va = payoff_vector_a(payoff);
  const auto vb = payoff_vector_b(payoff);

  FiniteTotals t;
  // The all-cooperate initial history is outcome CC.
  std::array<double, 4> prev{1.0, 0.0, 0.0, 0.0};
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const auto d = chain.step(prev);
    for (std::size_t o = 0; o < 4; ++o) {
      t.payoff_a += d[o] * va[o];
      t.payoff_b += d[o] * vb[o];
    }
    t.coop_a += d[0] + d[1];
    t.coop_b += d[0] + d[2];
    prev = d;
  }
  return t;
}
}  // namespace

GameResult expected_game_mem1(const Strategy& a, const Strategy& b,
                              const PayoffMatrix& payoff, std::uint32_t rounds,
                              double eps) {
  const FiniteTotals t = finite_totals_mem1(a, b, payoff, rounds, eps);
  GameResult res;
  res.rounds = rounds;
  res.payoff_a = t.payoff_a;
  res.payoff_b = t.payoff_b;
  // Expected cooperation counts, rounded to the nearest integer for the
  // integral fields; exact expectations are available via
  // finite_outcome_mem1.
  res.coop_a = static_cast<std::uint32_t>(std::lround(t.coop_a));
  res.coop_b = static_cast<std::uint32_t>(std::lround(t.coop_b));
  return res;
}

ExpectedOutcome finite_outcome_mem1(const Strategy& a, const Strategy& b,
                                    const PayoffMatrix& payoff,
                                    std::uint32_t rounds, double eps) {
  const FiniteTotals t = finite_totals_mem1(a, b, payoff, rounds, eps);
  ExpectedOutcome out;
  const double n = rounds;
  out.payoff_a = t.payoff_a / n;
  out.payoff_b = t.payoff_b / n;
  out.coop_a = t.coop_a / n;
  out.coop_b = t.coop_b / n;
  return out;
}

std::array<double, 4> stationary_distribution_mem1(const Strategy& a,
                                                   const Strategy& b,
                                                   double eps) {
  const OutcomeChain chain(a, b, eps);

  // Solve pi = pi * T, sum(pi) = 1 by Gaussian elimination on
  // (T^t - I) pi = 0 with the last equation replaced by sum = 1.
  double m[4][5] = {};
  for (int j = 0; j < 4; ++j) {  // equation j: sum_i pi_i (T[i][j] - I) = 0
    const std::array<double, 4> unit_rows[4] = {
        chain.step({1, 0, 0, 0}), chain.step({0, 1, 0, 0}),
        chain.step({0, 0, 1, 0}), chain.step({0, 0, 0, 1})};
    for (int i = 0; i < 4; ++i) {
      m[j][i] = unit_rows[i][static_cast<std::size_t>(j)] - (i == j ? 1.0 : 0.0);
    }
    m[j][4] = 0.0;
  }
  for (int i = 0; i < 4; ++i) m[3][i] = 1.0;
  m[3][4] = 1.0;

  // Partial-pivot elimination.
  bool singular = false;
  for (int col = 0; col < 4 && !singular; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    if (std::fabs(m[pivot][col]) < 1e-12) {
      singular = true;
      break;
    }
    if (pivot != col) {
      for (int c = 0; c <= 4; ++c) std::swap(m[pivot][c], m[col][c]);
    }
    for (int r = 0; r < 4; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (int c = col; c <= 4; ++c) m[r][c] -= f * m[col][c];
    }
  }

  std::array<double, 4> pi{};
  if (!singular) {
    bool ok = true;
    for (int i = 0; i < 4; ++i) {
      pi[static_cast<std::size_t>(i)] = m[i][4] / m[i][i];
      if (!(pi[static_cast<std::size_t>(i)] >= -1e-9)) ok = false;
    }
    if (ok) {
      for (auto& p : pi) p = std::max(p, 0.0);
      double sum = pi[0] + pi[1] + pi[2] + pi[3];
      for (auto& p : pi) p /= sum;
      return pi;
    }
  }

  // Non-ergodic chain (several closed classes or a periodic orbit): the
  // Cesàro average of the distribution sequence always converges; average
  // the orbit from the all-cooperate start.
  std::array<double, 4> d{1.0, 0.0, 0.0, 0.0};
  std::array<double, 4> acc{};
  constexpr int kBurn = 512;
  constexpr int kAvg = 4096;
  for (int t = 0; t < kBurn; ++t) d = chain.step(d);
  for (int t = 0; t < kAvg; ++t) {
    d = chain.step(d);
    for (std::size_t o = 0; o < 4; ++o) acc[o] += d[o];
  }
  for (auto& p : acc) p /= kAvg;
  return acc;
}

ExpectedOutcome stationary_mem1(const Strategy& a, const Strategy& b,
                                const PayoffMatrix& payoff, double eps) {
  const auto pi = stationary_distribution_mem1(a, b, eps);
  const auto va = payoff_vector_a(payoff);
  const auto vb = payoff_vector_b(payoff);
  ExpectedOutcome out;
  for (std::size_t o = 0; o < 4; ++o) {
    out.payoff_a += pi[o] * va[o];
    out.payoff_b += pi[o] * vb[o];
  }
  out.coop_a = pi[0] + pi[1];
  out.coop_b = pi[0] + pi[2];
  return out;
}

PureOrbit pure_orbit(const PureStrategy& a, const PureStrategy& b,
                     const PayoffMatrix& payoff) {
  EGT_REQUIRE(a.memory() == b.memory());
  const StateCodec codec(a.memory());
  std::vector<std::int32_t> first_seen(codec.states(), -1);
  std::vector<double> pay_a, pay_b;
  std::vector<int> coop_a, coop_b;

  State s = StateCodec::initial();
  for (std::uint32_t t = 0;; ++t) {
    if (first_seen[s] >= 0) {
      PureOrbit orbit;
      orbit.transient = static_cast<std::uint32_t>(first_seen[s]);
      orbit.cycle = t - orbit.transient;
      for (std::uint32_t k = orbit.transient; k < t; ++k) {
        orbit.cycle_payoff_a += pay_a[k];
        orbit.cycle_payoff_b += pay_b[k];
        orbit.cycle_coop_a += coop_a[k];
        orbit.cycle_coop_b += coop_b[k];
      }
      orbit.cycle_payoff_a /= orbit.cycle;
      orbit.cycle_payoff_b /= orbit.cycle;
      orbit.cycle_coop_a /= orbit.cycle;
      orbit.cycle_coop_b /= orbit.cycle;
      return orbit;
    }
    first_seen[s] = static_cast<std::int32_t>(t);
    const Move ma = a.move(s);
    const Move mb = b.move(codec.swap_perspective(s));
    pay_a.push_back(payoff.payoff(ma, mb));
    pay_b.push_back(payoff.payoff(mb, ma));
    coop_a.push_back(ma == Move::Cooperate ? 1 : 0);
    coop_b.push_back(mb == Move::Cooperate ? 1 : 0);
    s = codec.push(s, ma, mb);
  }
}

GameResult exact_pure_game(const PureStrategy& a, const PureStrategy& b,
                           const PayoffMatrix& payoff, std::uint32_t rounds) {
  EGT_REQUIRE(a.memory() == b.memory());
  EGT_REQUIRE(rounds > 0);
  const StateCodec codec(a.memory());

  // The joint configuration is A's view; B's view is its mirror. The map
  // config -> next config is deterministic, so the trajectory from state 0
  // reaches a cycle after at most 4^n steps.
  std::vector<std::int32_t> first_seen(codec.states(), -1);
  std::vector<double> cum_a{0.0};
  std::vector<double> cum_b{0.0};
  std::vector<std::uint32_t> cum_ca{0};
  std::vector<std::uint32_t> cum_cb{0};

  auto result_at = [&](std::uint32_t t0, std::uint32_t t1) {
    // Totals over `rounds` steps of a trajectory that is a cycle
    // [t0, t1) after a transient of t0 steps.
    GameResult res;
    res.rounds = rounds;
    if (rounds < t1) {
      res.payoff_a = cum_a[rounds];
      res.payoff_b = cum_b[rounds];
      res.coop_a = cum_ca[rounds];
      res.coop_b = cum_cb[rounds];
      return res;
    }
    const std::uint32_t len = t1 - t0;
    const std::uint32_t after = rounds - t0;
    const std::uint32_t cycles = after / len;
    const std::uint32_t rem = after % len;
    res.payoff_a = cum_a[t0] + cycles * (cum_a[t1] - cum_a[t0]) +
                   (cum_a[t0 + rem] - cum_a[t0]);
    res.payoff_b = cum_b[t0] + cycles * (cum_b[t1] - cum_b[t0]) +
                   (cum_b[t0 + rem] - cum_b[t0]);
    res.coop_a = cum_ca[t0] + cycles * (cum_ca[t1] - cum_ca[t0]) +
                 (cum_ca[t0 + rem] - cum_ca[t0]);
    res.coop_b = cum_cb[t0] + cycles * (cum_cb[t1] - cum_cb[t0]) +
                 (cum_cb[t0 + rem] - cum_cb[t0]);
    return res;
  };

  State s = StateCodec::initial();
  for (std::uint32_t t = 0;; ++t) {
    if (first_seen[s] >= 0) {
      return result_at(static_cast<std::uint32_t>(first_seen[s]), t);
    }
    if (t >= rounds) {
      // No revisit needed: we already walked the whole game.
      return result_at(t, t + 1);  // degenerate: rounds < t1 branch fires
    }
    first_seen[s] = static_cast<std::int32_t>(t);
    const Move ma = a.move(s);
    const Move mb = b.move(codec.swap_perspective(s));
    cum_a.push_back(cum_a.back() + payoff.payoff(ma, mb));
    cum_b.push_back(cum_b.back() + payoff.payoff(mb, ma));
    cum_ca.push_back(cum_ca.back() + (ma == Move::Cooperate ? 1u : 0u));
    cum_cb.push_back(cum_cb.back() + (mb == Move::Cooperate ? 1u : 0u));
    s = codec.push(s, ma, mb);
  }
}

}  // namespace egt::game::markov
