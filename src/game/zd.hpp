// Zero-determinant (ZD) strategies — Press & Dyson (2012), published the
// same year as the paper. A memory-one strategy can unilaterally enforce a
// *linear relation* between the two players' long-run payoffs:
//
//   alpha * pi_self + beta * pi_opponent + gamma = 0
//
// Special cases: *extortionate* strategies guarantee
// pi_self - P = chi (pi_opponent - P) with extortion factor chi >= 1, and
// *generous* ZD strategies pin the relation to R instead of P. These are
// the modern counterpoint to the WSLS story the paper validates: ZD
// extortioners beat any evolutionary opponent one-on-one, yet lose to
// WSLS-like populations in evolving ensembles.
//
// Verified against the general Markov machinery in tests/game/zd_test.cpp.
#pragma once

#include <optional>

#include "game/payoff.hpp"
#include "game/strategy.hpp"

namespace egt::game::zd {

/// Memory-one cooperation probabilities in Press-Dyson order
/// (p_R, p_S, p_T, p_P) = outcomes (CC, CD, DC, DD) from the player's view.
struct ZdProbs {
  double p_cc = 1.0;
  double p_cd = 0.0;
  double p_dc = 0.0;
  double p_dd = 0.0;

  bool valid() const noexcept {
    auto ok = [](double v) { return v >= 0.0 && v <= 1.0; };
    return ok(p_cc) && ok(p_cd) && ok(p_dc) && ok(p_dd);
  }
};

/// The equivalent library strategy (states in StateCodec order).
MixedStrategy to_memory_one(const ZdProbs& p);

/// Extortionate ZD strategy with factor `chi` >= 1 and normalisation
/// `phi` in (0, phi_max]: enforces  pi_self - P = chi * (pi_opp - P).
/// Returns nullopt if (chi, phi) yields probabilities outside [0, 1].
std::optional<ZdProbs> extortionate(const PayoffMatrix& payoff, double chi,
                                    double phi);

/// Largest phi for which `extortionate` stays within [0, 1].
double max_phi_extortionate(const PayoffMatrix& payoff, double chi);

/// Generous ZD strategy: enforces  pi_self - R = chi * (pi_opp - R) with
/// chi in (0, 1]; cooperative counterpart of extortion (Stewart & Plotkin).
std::optional<ZdProbs> generous(const PayoffMatrix& payoff, double chi,
                                double phi);

/// Check (numerically) that `p` enforces alpha*pi_a + beta*pi_b + gamma = 0
/// against the three canonical probes ALLC, ALLD, RANDOM; used by tests
/// and available for exploratory work.
bool enforces_linear_relation(const ZdProbs& p, const PayoffMatrix& payoff,
                              double alpha, double beta, double gamma,
                              double tolerance = 1e-6);

}  // namespace egt::game::zd
