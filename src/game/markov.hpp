// Analytic game evaluation (the "analytic fitness engine" of DESIGN.md).
//
// Two independent exact methods replace round-by-round sampling:
//
//  * Memory-one stochastic pairs: the outcome of round t+1 depends only on
//    the outcome of round t, so the joint play is a Markov chain over the
//    four outcomes {CC, CD, DC, DD}. We propagate the exact outcome
//    distribution for the finite number of rounds (expected total payoff,
//    matching the sampled engine in expectation), and also expose the
//    stationary distribution for the infinitely repeated game
//    (Nowak & Sigmund 1993 style analysis).
//
//  * Deterministic pure pairs of any memory depth with zero noise: the joint
//    trajectory is eventually periodic, so cycle detection gives the *exact*
//    finite-round totals in O(transient + cycle) instead of O(rounds).
#pragma once

#include <array>

#include "game/ipd.hpp"
#include "game/payoff.hpp"
#include "game/strategy.hpp"

namespace egt::game::markov {

/// Expected per-round quantities of a strategy pair.
struct ExpectedOutcome {
  double payoff_a = 0.0;  ///< expected per-round payoff of A
  double payoff_b = 0.0;
  double coop_a = 0.0;  ///< probability A cooperates (per round, averaged)
  double coop_b = 0.0;
};

/// Exact expected totals of a finite game between two memory-one
/// strategies (mixed or pure) with execution noise `eps`, starting from the
/// all-cooperate history, over `rounds` rounds. Equals the expectation of
/// IpdEngine::play over its RNG.
GameResult expected_game_mem1(const Strategy& a, const Strategy& b,
                              const PayoffMatrix& payoff, std::uint32_t rounds,
                              double eps);

/// Per-round averages of the same finite game, as exact expectations
/// (payoffs per round, cooperation probabilities per move).
ExpectedOutcome finite_outcome_mem1(const Strategy& a, const Strategy& b,
                                    const PayoffMatrix& payoff,
                                    std::uint32_t rounds, double eps);

/// Stationary (infinitely repeated) per-round expectations for a
/// memory-one pair. Requires an ergodic chain: eps > 0, or all
/// probabilities strictly inside (0, 1). Falls back to long-run averaging
/// of the deterministic orbit when the chain is not ergodic.
ExpectedOutcome stationary_mem1(const Strategy& a, const Strategy& b,
                                const PayoffMatrix& payoff, double eps);

/// Exact finite-round totals for two deterministic pure strategies of any
/// memory depth with zero noise, via cycle detection on the joint state
/// trajectory. Identical to IpdEngine::play for the same parameters.
GameResult exact_pure_game(const PureStrategy& a, const PureStrategy& b,
                           const PayoffMatrix& payoff, std::uint32_t rounds);

/// Stationary distribution over outcomes {CC, CD, DC, DD} (A's move first)
/// of the memory-one chain; exposed for tests and theory work.
std::array<double, 4> stationary_distribution_mem1(const Strategy& a,
                                                   const Strategy& b,
                                                   double eps);

/// Orbit structure of a deterministic pure pair: the play from the
/// all-cooperate start is a transient followed by a cycle. Explains *why*
/// a pair scores what it does (e.g. a noisy-free TFT pair has cycle length
/// 1 on mutual cooperation; two alternators lock into a 2-cycle).
struct PureOrbit {
  std::uint32_t transient = 0;  ///< rounds before the cycle is entered
  std::uint32_t cycle = 0;      ///< cycle length in rounds (>= 1)
  double cycle_payoff_a = 0.0;  ///< per-round payoff of A averaged over the cycle
  double cycle_payoff_b = 0.0;
  double cycle_coop_a = 0.0;  ///< fraction of C moves by A on the cycle
  double cycle_coop_b = 0.0;
};
PureOrbit pure_orbit(const PureStrategy& a, const PureStrategy& b,
                     const PayoffMatrix& payoff);

}  // namespace egt::game::markov
