// Exhaustive enumeration of small strategy spaces.
//
// The paper's Table III lists all 16 memory-one pure strategies and
// Table IV counts the explosion beyond (2^16 at memory-two, astronomically
// more after). Enumeration is feasible exactly for memory-zero/one (2 and
// 16 strategies) and, with patience, memory-two (65,536) — which is what
// exhaustive tests and small exact studies use.
#pragma once

#include <vector>

#include "game/strategy.hpp"

namespace egt::game {

/// Number of pure memory-n strategies, 2^(4^n), as long as it fits 64 bits
/// (memory <= 2).
std::uint64_t pure_strategy_count(int memory);

/// All pure strategies of the given memory depth, ordered by their table
/// read as a binary number (state 0 = least significant bit) — the paper's
/// Table III ordering up to row permutation. memory <= 2 only.
std::vector<PureStrategy> all_pure_strategies(int memory);

/// The strategy whose table equals `index` in the enumeration order.
PureStrategy pure_strategy_from_index(int memory, std::uint64_t index);

}  // namespace egt::game
