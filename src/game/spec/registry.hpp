// Preset game registry (DESIGN.md §10).
//
// Presets are registered at static-initialization time by GameRegistrar
// objects in registry.cpp (the C++ twin of the ESSModule `register_game`
// shape): each translation unit that defines presets links them into the
// process before main runs, and registry() exposes them name-sorted.
//
// Names are lowercase snake_case and part of the CLI / repro-JSON surface:
// add, never rename. Lookup normalizes '-' to '_' so `--game hawk-dove`
// and `--game hawk_dove` both resolve.
#pragma once

#include <string>
#include <vector>

#include "game/spec/gamespec.hpp"

namespace egt::game {

/// All registered presets, sorted by name. Stable for the process lifetime.
const std::vector<GameSpec>& registry();

/// Look a preset up by name (case-sensitive, '-' normalized to '_').
/// Returns nullptr for unknown names.
const GameSpec* find_game(const std::string& name);

/// The registered preset names, sorted.
std::vector<std::string> game_names();

/// Human-readable registry table (one "name — description" line per
/// preset) for --list-games and unknown-preset errors.
std::string registry_listing();

namespace detail {
/// Registers a preset at static-initialization time.
struct GameRegistrar {
  explicit GameRegistrar(GameSpec spec);
};
}  // namespace detail

}  // namespace egt::game
