// GameSpec: the generalized game kernel (DESIGN.md §10).
//
// A GameSpec describes *what game the population plays*. The engine was
// historically hardwired to the paper's 2x2 Iterated Prisoner's Dilemma
// (game::IpdParams); GameSpec subsumes that as its default and extends the
// kernel along two axes:
//
//  * GameKind::Matrix — an m-action matrix game, symmetric or bimatrix.
//    For m == 2 the PayoffMatrix view (`payoff`) is authoritative and the
//    whole existing memory-n IPD machinery applies unchanged (iterated
//    play, sampled / frozen / analytic fitness, dedup). For m >= 3 (or an
//    explicit bimatrix) strategies are per-SSet action distributions
//    (game::NWayStrategy, memory 0) and each pair plays `rounds` repeated
//    one-shot stage games — sampled on the (gen, i, j)-keyed stream or
//    analytically as the exact expectation (game::spec::expected_game).
//
//  * GameKind::PublicGoods — a k-player Public Goods Game played in groups
//    of SSets: every contributor pays `pgg_cost`, the pot is multiplied by
//    `pgg_r` and shared equally, so a member of group g earns
//    r * cost * (sum of contributions) / |g| - own contribution * cost
//    per round. Contribution is binary (action 0 = contribute), carried by
//    the ordinary memory-0 pure/mixed strategies. Group structure:
//    pgg_k == 0 plays one whole-population group (well-mixed) or the
//    {i} ∪ N(i) neighbourhood groups (structured populations); pgg_k >= 2
//    plays the ssets ring windows {t, .., t+k-1 (mod n)}.
//
// Default-constructed GameSpec is bit-for-bit the paper's IPD: the same
// payoff/rounds/noise members the rest of the code has always read, so
// every existing call site (config.game.payoff, .rounds, .noise) and every
// existing trajectory is untouched.
//
// Presets live in game/spec/registry.hpp (egt::game::registry()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "game/ipd.hpp"
#include "game/payoff.hpp"

namespace egt::game {

/// What kind of game the population plays.
enum class GameKind : std::uint8_t {
  Matrix,       ///< pairwise m-action matrix game (m == 2: the classic path)
  PublicGoods,  ///< k-player group game over binary contributions
};

/// How a pair plays a Matrix game.
enum class PlayMode : std::uint8_t {
  /// Memory-n iterated play from the all-cooperate history — the paper's
  /// IPD engine. Only defined for 2-action games.
  Iterated,
  /// `rounds` independent repetitions of the stage game (no history). The
  /// only mode for m >= 3; for m == 2 it is the memory-0 special case of
  /// Iterated and therefore not a separate code path.
  OneShot,
};

struct GameSpec {
  GameKind kind = GameKind::Matrix;
  std::string display_name = "ipd";  ///< registry name ("custom" when edited)
  std::uint32_t actions = 2;         ///< m, the per-player action count
  std::vector<std::string> labels;   ///< per-action labels (empty = C/D)
  PlayMode play = PlayMode::Iterated;

  /// m == 2 symmetric games: the authoritative payoff table (row player),
  /// exactly the member the whole IPD pipeline has always read.
  PayoffMatrix payoff = paper_payoff();

  /// m >= 3 or bimatrix: flattened row-major m x m payoff of the *row*
  /// player (entry a*m + b = payoff of playing a against b). Empty for the
  /// 2-action symmetric case, where `payoff` rules.
  std::vector<double> row_payoff;
  /// Bimatrix column-player payoff (entry b*m + a layout mirrors
  /// row_payoff: col_payoff[b*m + a] = payoff of the column player playing
  /// b against a). Empty = symmetric (column player reads row_payoff
  /// transposed). Fitness always evaluates each ordered pair (i, j) with i
  /// as the row player, so roles symmetrize across the two orderings.
  std::vector<double> col_payoff;

  std::uint32_t rounds = 200;  ///< repetitions per pairing / group play
  double noise = 0.0;  ///< per-move execution error (uniform other action)

  // --- GameKind::PublicGoods ---------------------------------------------
  double pgg_r = 3.0;     ///< pot multiplier r
  double pgg_cost = 1.0;  ///< contribution cost c
  /// Group size k. 0 = automatic: the whole population (well-mixed) or the
  /// {i} ∪ N(i) neighbourhoods (structured). k >= 2 plays the ssets ring
  /// windows of size k (well-mixed populations only).
  std::uint32_t pgg_k = 0;

  /// The classic-IPD view consumed by IpdEngine / the analysis layer.
  /// Meaningful exactly when the 2-action machinery applies.
  IpdParams ipd_params() const noexcept { return {payoff, rounds, noise}; }

  /// True when play needs NWayStrategy action distributions (m >= 3 or an
  /// explicit bimatrix) instead of the binary memory-n strategies.
  bool uses_nway() const noexcept {
    return kind == GameKind::Matrix && (actions > 2 || !col_payoff.empty());
  }

  /// True when the population must be memory-0 (no game history exists).
  bool requires_memory0() const noexcept {
    return uses_nway() || kind == GameKind::PublicGoods ||
           play == PlayMode::OneShot;
  }

  /// Row-player payoff of action `mine` against `theirs`.
  double payoff_of(std::uint32_t mine, std::uint32_t theirs) const;
  /// Column-player payoff of action `theirs` against `mine` (reads
  /// col_payoff when present, row_payoff transposed otherwise).
  double col_payoff_of(std::uint32_t theirs, std::uint32_t mine) const;

  /// Label of action `a` ("C"/"D" defaults for unlabelled 2-action games,
  /// "a<i>" beyond).
  std::string label(std::uint32_t a) const;

  /// Content hash of everything that defines the game's payoff structure
  /// (kind, actions, play, tables, PGG parameters — not labels or name).
  /// Recorded in run manifests and mixed into checkpoint fingerprints.
  std::uint64_t matrix_hash() const noexcept;

  /// Throws std::invalid_argument on an inconsistent spec (table sizes,
  /// action counts, PGG parameters, play/kind pairing).
  void validate() const;

  /// One-line human description (registry listings, config summaries).
  std::string describe() const;

  // --- construction helpers (the registry is built from these) ----------
  /// 2-action symmetric game from a PayoffMatrix.
  static GameSpec matrix2(std::string name, const PayoffMatrix& m,
                          std::vector<std::string> labels = {},
                          std::uint32_t rounds = 200);
  /// m-action symmetric game from a flattened row-major table.
  static GameSpec matrix_n(std::string name, std::uint32_t actions,
                           std::vector<double> row_major,
                           std::vector<std::string> labels = {},
                           std::uint32_t rounds = 50);
  /// Public goods game.
  static GameSpec public_goods(std::string name, double r, double cost,
                               std::uint32_t k = 0,
                               std::uint32_t rounds = 50);

  friend bool operator==(const GameSpec& a, const GameSpec& b) noexcept;
};

}  // namespace egt::game
