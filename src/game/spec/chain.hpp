// The m-action analytic engine (DESIGN.md §10): the generalization of
// game/markov.hpp's memory-one machinery from the 2x2 IPD to arbitrary
// m-action matrix games.
//
// Joint play of two memory-<=1 behavioral strategies is a Markov chain over
// the m^2 joint outcomes (A's last action, B's last action). This module
// propagates the exact outcome distribution for a finite number of rounds
// (expected totals, matching the sampled engine in expectation) and solves
// for the stationary distribution of the infinitely repeated game (dense
// linear solve, with a long-run-average fallback for non-ergodic chains).
//
// The existing 2x2 path (markov::expected_game_mem1 et al.) remains the
// fast case for 2-action games — the fitness tier only routes through this
// chain when the spec actually needs n-way play (actions >= 3 / bimatrix);
// chain_test.cpp pins the m = 2 equivalence between the two.
#pragma once

#include <cstdint>
#include <vector>

#include "game/markov.hpp"
#include "game/spec/gamespec.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::game::spec {

/// Dispatch gate for the batch fitness kernels (game/batch.hpp): true when
/// a spec's pairwise play must route through this m-action chain and may
/// NOT use the 2x2 SIMD/SoA batch kernels — any n-way spec (actions >= 3
/// or bimatrix payoffs). 2-action IPD-shaped specs return false and keep
/// the markov/batch fast path. The fitness tier consults this gate before
/// batching, so adding an m-action game can never silently flow into a
/// kernel that assumes binary moves.
inline bool requires_spec_chain(const GameSpec& spec) noexcept {
  return spec.uses_nway();
}

/// Behavioral strategy over m actions: one action distribution per chain
/// state. memory 0 = one state (unconditional play); memory 1 = m^2 states
/// indexed (my last action) * m + (their last action), the m-action
/// generalization of the StateCodec memory-one convention.
struct Behavioral {
  std::uint32_t actions = 2;
  int memory = 0;  ///< 0 or 1
  /// states() x actions row-major: probs[s * actions + a] = P(a | state s).
  std::vector<double> probs;

  std::uint32_t states() const noexcept {
    return memory == 0 ? 1 : actions * actions;
  }

  /// Memory-0 strategy playing `dist` (size = actions, sums to 1).
  static Behavioral constant(std::uint32_t actions, std::vector<double> dist);

  /// Lift an engine strategy: NWayStrategy (memory 0, any m) directly;
  /// pure/mixed binary strategies of memory <= 1 via their cooperation
  /// probabilities (m must be 2).
  static Behavioral from_strategy(const GameSpec& spec, const Strategy& s);

  void validate() const;
};

/// Exact expected totals of `spec.rounds` stage games between `a` and `b`
/// with execution noise spec.noise (a move is replaced by a uniformly
/// random *other* action with that probability), starting from the
/// both-played-action-0 history. Equals the expectation of the sampled
/// one-shot play over its RNG; for actions == 2 it equals
/// markov::expected_game_mem1 exactly.
GameResult expected_game(const GameSpec& spec, const Behavioral& a,
                         const Behavioral& b);

/// Stationary distribution over the m^2 joint outcomes of the infinitely
/// repeated game (row-major: A's action * m + B's action). Ergodic chains
/// are solved exactly (dense Gaussian elimination); non-ergodic chains fall
/// back to the long-run average of the deterministic propagation.
std::vector<double> stationary_distribution(const GameSpec& spec,
                                            const Behavioral& a,
                                            const Behavioral& b);

/// Per-round stationary expectations (payoffs, action-0 shares) — the
/// m-action twin of markov::stationary_mem1.
markov::ExpectedOutcome stationary_outcome(const GameSpec& spec,
                                           const Behavioral& a,
                                           const Behavioral& b);

/// One sampled game: `spec.rounds` independent stage games on the caller's
/// keyed stream (memory-0 strategies only — the sampled twin of
/// expected_game; one uniform draw per player per round, noise folded into
/// the per-move action distribution).
GameResult play_oneshot(const GameSpec& spec, const Strategy& a,
                        const Strategy& b, util::StreamRng rng);

}  // namespace egt::game::spec
