#include "game/spec/gamespec.hpp"

#include <cstring>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::game {

double GameSpec::payoff_of(std::uint32_t mine, std::uint32_t theirs) const {
  EGT_REQUIRE(mine < actions && theirs < actions);
  if (row_payoff.empty()) {
    // 2-action symmetric: the PayoffMatrix view is authoritative.
    return payoff.payoff(from_bit(static_cast<int>(mine)),
                         from_bit(static_cast<int>(theirs)));
  }
  return row_payoff[static_cast<std::size_t>(mine) * actions + theirs];
}

double GameSpec::col_payoff_of(std::uint32_t theirs,
                               std::uint32_t mine) const {
  if (!col_payoff.empty()) {
    return col_payoff[static_cast<std::size_t>(theirs) * actions + mine];
  }
  // Symmetric: the column player's payoff is the row table with the roles
  // swapped.
  return payoff_of(theirs, mine);
}

std::string GameSpec::label(std::uint32_t a) const {
  if (a < labels.size()) return labels[a];
  if (actions == 2) return a == 0 ? "C" : "D";
  return "a" + std::to_string(a);
}

std::uint64_t GameSpec::matrix_hash() const noexcept {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(kind) + 1);
  auto mixin = [&h](std::uint64_t v) { h = util::mix64(h ^ v); };
  auto mixd = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mixin(bits);
  };
  mixin(actions);
  mixin(static_cast<std::uint64_t>(play));
  mixin(rounds);
  mixd(noise);
  if (kind == GameKind::PublicGoods) {
    mixd(pgg_r);
    mixd(pgg_cost);
    mixin(pgg_k);
    return h;
  }
  // Canonical table: the effective row-major entries, whichever member
  // holds them, so a 2-action spec hashes the same through either view.
  for (std::uint32_t a = 0; a < actions; ++a) {
    for (std::uint32_t b = 0; b < actions; ++b) mixd(payoff_of(a, b));
  }
  mixin(col_payoff.empty() ? 0 : 1);
  for (double v : col_payoff) mixd(v);
  return h;
}

void GameSpec::validate() const {
  EGT_REQUIRE_MSG(rounds > 0, "need at least one round per game");
  EGT_REQUIRE_MSG(noise >= 0.0 && noise <= 1.0, "noise out of [0,1]");
  EGT_REQUIRE_MSG(labels.empty() || labels.size() == actions,
                  "labels must cover every action (or be empty)");
  if (kind == GameKind::PublicGoods) {
    EGT_REQUIRE_MSG(actions == 2,
                    "the public goods game is over binary contributions");
    EGT_REQUIRE_MSG(row_payoff.empty() && col_payoff.empty(),
                    "public goods games take pgg_* parameters, not a table");
    EGT_REQUIRE_MSG(pgg_r > 0.0, "pgg_r must be positive");
    EGT_REQUIRE_MSG(pgg_cost > 0.0, "pgg_cost must be positive");
    EGT_REQUIRE_MSG(pgg_k == 0 || pgg_k >= 2,
                    "pgg_k must be 0 (auto) or at least 2");
    return;
  }
  EGT_REQUIRE_MSG(actions >= 2, "a matrix game needs at least two actions");
  const std::size_t cells =
      static_cast<std::size_t>(actions) * actions;
  if (actions == 2) {
    EGT_REQUIRE_MSG(row_payoff.empty() || row_payoff.size() == cells,
                    "row_payoff must be empty (PayoffMatrix view) or 2x2");
  } else {
    EGT_REQUIRE_MSG(row_payoff.size() == cells,
                    "row_payoff must hold actions^2 entries");
  }
  EGT_REQUIRE_MSG(col_payoff.empty() || col_payoff.size() == cells,
                  "col_payoff must be empty (symmetric) or actions^2");
  if (uses_nway() || play == PlayMode::OneShot) {
    EGT_REQUIRE_MSG(play == PlayMode::OneShot || actions == 2,
                    "m >= 3 matrix games play one-shot stage games");
  }
}

std::string GameSpec::describe() const {
  std::ostringstream os;
  os << display_name << ": ";
  if (kind == GameKind::PublicGoods) {
    os << "public goods (r=" << pgg_r << ", cost=" << pgg_cost << ", k="
       << (pgg_k == 0 ? std::string("auto") : std::to_string(pgg_k)) << ")";
    return os.str();
  }
  os << actions << "-action " << (col_payoff.empty() ? "symmetric" : "bimatrix")
     << " matrix game";
  if (actions == 2 && row_payoff.empty()) {
    os << " " << payoff.to_string();
  }
  os << (play == PlayMode::OneShot ? ", one-shot" : ", iterated");
  return os.str();
}

GameSpec GameSpec::matrix2(std::string name, const PayoffMatrix& m,
                           std::vector<std::string> labels,
                           std::uint32_t rounds) {
  GameSpec s;
  s.display_name = std::move(name);
  s.payoff = m;
  s.labels = std::move(labels);
  s.rounds = rounds;
  return s;
}

GameSpec GameSpec::matrix_n(std::string name, std::uint32_t actions,
                            std::vector<double> row_major,
                            std::vector<std::string> labels,
                            std::uint32_t rounds) {
  GameSpec s;
  s.display_name = std::move(name);
  s.actions = actions;
  s.row_payoff = std::move(row_major);
  s.labels = std::move(labels);
  s.play = PlayMode::OneShot;
  s.rounds = rounds;
  s.validate();
  return s;
}

GameSpec GameSpec::public_goods(std::string name, double r, double cost,
                                std::uint32_t k, std::uint32_t rounds) {
  GameSpec s;
  s.display_name = std::move(name);
  s.kind = GameKind::PublicGoods;
  s.play = PlayMode::OneShot;
  s.pgg_r = r;
  s.pgg_cost = cost;
  s.pgg_k = k;
  s.rounds = rounds;
  s.validate();
  return s;
}

bool operator==(const GameSpec& a, const GameSpec& b) noexcept {
  return a.kind == b.kind && a.actions == b.actions && a.play == b.play &&
         a.payoff.reward == b.payoff.reward &&
         a.payoff.sucker == b.payoff.sucker &&
         a.payoff.temptation == b.payoff.temptation &&
         a.payoff.punishment == b.payoff.punishment &&
         a.row_payoff == b.row_payoff && a.col_payoff == b.col_payoff &&
         a.rounds == b.rounds && a.noise == b.noise && a.pgg_r == b.pgg_r &&
         a.pgg_cost == b.pgg_cost && a.pgg_k == b.pgg_k;
}

}  // namespace egt::game
