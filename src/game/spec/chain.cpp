#include "game/spec/chain.hpp"

#include <cmath>

#include "util/check.hpp"

namespace egt::game::spec {

namespace {

/// Per-state action distributions with execution noise folded in: an
/// intended action is executed with probability 1 - eps, otherwise one of
/// the m - 1 other actions is executed uniformly. For m = 2 this is
/// exactly the classic flip-with-probability-eps IPD noise.
std::vector<double> noisy_probs(const Behavioral& s, double eps) {
  std::vector<double> out(s.probs);
  if (eps == 0.0) return out;
  // p'(a) = (1 - eps) p(a) + (eps / (m - 1)) (1 - p(a)).
  const double other = eps / (s.actions - 1);
  for (double& p : out) p = (1.0 - eps) * p + other * (1.0 - p);
  return out;
}

/// Memory-0 action distribution of an engine strategy (noise folded in).
std::vector<double> action_dist(const GameSpec& spec, const Strategy& s) {
  std::vector<double> dist;
  if (s.is_nway()) {
    EGT_REQUIRE_MSG(s.as_nway().actions() == spec.actions,
                    "strategy action count does not match the game");
    dist = s.as_nway().probs();
  } else {
    EGT_REQUIRE_MSG(spec.actions == 2,
                    "binary strategies only play 2-action games");
    EGT_REQUIRE_MSG(s.memory() == 0,
                    "one-shot sampled play needs memory-0 strategies");
    const double p = s.coop_prob(0);
    dist = {p, 1.0 - p};
  }
  if (spec.noise > 0.0) {
    const double other = spec.noise / (spec.actions - 1);
    for (double& p : dist) p = (1.0 - spec.noise) * p + other * (1.0 - p);
  }
  return dist;
}

struct Chain {
  std::uint32_t m = 0;
  std::uint32_t states = 0;          // m^2
  std::vector<double> pay_a;         // per state: expected round payoff of A
  std::vector<double> pay_b;
  std::vector<double> coop_a;        // per state: P(A plays action 0)
  std::vector<double> coop_b;
  std::vector<double> transition;    // states x states row-major
};

Chain build_chain(const GameSpec& spec, const Behavioral& a,
                  const Behavioral& b) {
  a.validate();
  b.validate();
  EGT_REQUIRE_MSG(a.actions == spec.actions && b.actions == spec.actions,
                  "behavioral strategies must match the game's action count");
  Chain c;
  c.m = spec.actions;
  c.states = c.m * c.m;
  c.pay_a.assign(c.states, 0.0);
  c.pay_b.assign(c.states, 0.0);
  c.coop_a.assign(c.states, 0.0);
  c.coop_b.assign(c.states, 0.0);
  c.transition.assign(static_cast<std::size_t>(c.states) * c.states, 0.0);
  const auto pa = noisy_probs(a, spec.noise);
  const auto pb = noisy_probs(b, spec.noise);
  for (std::uint32_t x = 0; x < c.m; ++x) {
    for (std::uint32_t y = 0; y < c.m; ++y) {
      const std::uint32_t s = x * c.m + y;
      // A conditions on (my last, their last) = (x, y); B sees the state
      // from its own side, (y, x).
      const double* da = &pa[(a.memory == 0 ? 0 : s) * c.m];
      const double* db = &pb[(b.memory == 0 ? 0 : y * c.m + x) * c.m];
      c.coop_a[s] = da[0];
      c.coop_b[s] = db[0];
      for (std::uint32_t u = 0; u < c.m; ++u) {
        for (std::uint32_t v = 0; v < c.m; ++v) {
          const double w = da[u] * db[v];
          c.pay_a[s] += w * spec.payoff_of(u, v);
          c.pay_b[s] += w * spec.col_payoff_of(v, u);
          c.transition[static_cast<std::size_t>(s) * c.states + u * c.m + v] +=
              w;
        }
      }
    }
  }
  return c;
}

/// Solve pi = pi * T by dense Gaussian elimination on (T^t - I) with the
/// normalization row sum(pi) = 1. Returns empty when the system is
/// (numerically) singular — a reducible or periodic chain.
std::vector<double> solve_stationary(const Chain& c) {
  const std::uint32_t n = c.states;
  // A[i][j] * pi[j] = rhs[i]; rows are the balance equations
  // sum_j T[j][i] pi[j] - pi[i] = 0, with the last row replaced by the
  // normalization.
  std::vector<double> A(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> rhs(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      A[static_cast<std::size_t>(i) * n + j] =
          c.transition[static_cast<std::size_t>(j) * n + i] -
          (i == j ? 1.0 : 0.0);
    }
  }
  for (std::uint32_t j = 0; j < n; ++j) {
    A[static_cast<std::size_t>(n - 1) * n + j] = 1.0;
  }
  rhs[n - 1] = 1.0;
  // Gaussian elimination with partial pivoting.
  for (std::uint32_t col = 0; col < n; ++col) {
    std::uint32_t pivot = col;
    for (std::uint32_t r = col + 1; r < n; ++r) {
      if (std::abs(A[static_cast<std::size_t>(r) * n + col]) >
          std::abs(A[static_cast<std::size_t>(pivot) * n + col])) {
        pivot = r;
      }
    }
    const double pv = A[static_cast<std::size_t>(pivot) * n + col];
    if (std::abs(pv) < 1e-12) return {};  // singular: not ergodic
    if (pivot != col) {
      for (std::uint32_t j = 0; j < n; ++j) {
        std::swap(A[static_cast<std::size_t>(pivot) * n + j],
                  A[static_cast<std::size_t>(col) * n + j]);
      }
      std::swap(rhs[pivot], rhs[col]);
    }
    for (std::uint32_t r = col + 1; r < n; ++r) {
      const double f = A[static_cast<std::size_t>(r) * n + col] / pv;
      if (f == 0.0) continue;
      for (std::uint32_t j = col; j < n; ++j) {
        A[static_cast<std::size_t>(r) * n + j] -=
            f * A[static_cast<std::size_t>(col) * n + j];
      }
      rhs[r] -= f * rhs[col];
    }
  }
  std::vector<double> pi(n, 0.0);
  for (std::uint32_t i = n; i-- > 0;) {
    double v = rhs[i];
    for (std::uint32_t j = i + 1; j < n; ++j) {
      v -= A[static_cast<std::size_t>(i) * n + j] * pi[j];
    }
    pi[i] = v / A[static_cast<std::size_t>(i) * n + i];
  }
  // Clip the tiny negatives elimination can leave on boundary chains.
  double total = 0.0;
  for (double& p : pi) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total <= 0.0) return {};
  for (double& p : pi) p /= total;
  return pi;
}

/// Non-ergodic fallback: long-run average of the deterministic propagation
/// from the both-played-action-0 start (matches the orbit-averaging
/// fallback of markov::stationary_mem1 in spirit).
std::vector<double> longrun_average(const Chain& c) {
  const std::uint32_t n = c.states;
  std::vector<double> d(n, 0.0), nd(n, 0.0), avg(n, 0.0);
  d[0] = 1.0;
  constexpr int kWarmup = 2048;
  constexpr int kAverage = 2048;
  for (int t = 0; t < kWarmup + kAverage; ++t) {
    if (t >= kWarmup) {
      for (std::uint32_t s = 0; s < n; ++s) avg[s] += d[s];
    }
    nd.assign(n, 0.0);
    for (std::uint32_t s = 0; s < n; ++s) {
      const double w = d[s];
      if (w == 0.0) continue;
      const double* row = &c.transition[static_cast<std::size_t>(s) * n];
      for (std::uint32_t s2 = 0; s2 < n; ++s2) nd[s2] += w * row[s2];
    }
    d.swap(nd);
  }
  for (double& v : avg) v /= kAverage;
  return avg;
}

}  // namespace

Behavioral Behavioral::constant(std::uint32_t actions,
                                std::vector<double> dist) {
  Behavioral b;
  b.actions = actions;
  b.memory = 0;
  b.probs = std::move(dist);
  b.validate();
  return b;
}

Behavioral Behavioral::from_strategy(const GameSpec& spec, const Strategy& s) {
  Behavioral b;
  b.actions = spec.actions;
  if (s.is_nway()) {
    EGT_REQUIRE_MSG(s.as_nway().actions() == spec.actions,
                    "strategy action count does not match the game");
    b.memory = 0;
    b.probs = s.as_nway().probs();
    return b;
  }
  EGT_REQUIRE_MSG(spec.actions == 2,
                  "binary strategies lift to 2-action chains only");
  EGT_REQUIRE_MSG(s.memory() <= 1, "the chain covers memory <= 1");
  b.memory = s.memory();
  const std::uint32_t states = b.memory == 0 ? 1 : 4;
  b.probs.reserve(states * 2);
  for (std::uint32_t st = 0; st < states; ++st) {
    const double p = s.coop_prob(st);
    b.probs.push_back(p);
    b.probs.push_back(1.0 - p);
  }
  return b;
}

void Behavioral::validate() const {
  EGT_REQUIRE_MSG(actions >= 2, "need at least two actions");
  EGT_REQUIRE_MSG(memory == 0 || memory == 1, "memory must be 0 or 1");
  EGT_REQUIRE_MSG(probs.size() ==
                      static_cast<std::size_t>(states()) * actions,
                  "probs must hold states x actions entries");
  for (std::uint32_t st = 0; st < states(); ++st) {
    double sum = 0.0;
    for (std::uint32_t a = 0; a < actions; ++a) {
      const double p = probs[static_cast<std::size_t>(st) * actions + a];
      EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
      sum += p;
    }
    EGT_REQUIRE_MSG(std::abs(sum - 1.0) <= 1e-9,
                    "per-state action distribution must sum to 1");
  }
}

GameResult expected_game(const GameSpec& spec, const Behavioral& a,
                         const Behavioral& b) {
  const Chain c = build_chain(spec, a, b);
  std::vector<double> d(c.states, 0.0), nd(c.states, 0.0);
  d[0] = 1.0;  // both-played-action-0 history, the all-C generalization
  double pay_a = 0.0, pay_b = 0.0, coop_a = 0.0, coop_b = 0.0;
  for (std::uint32_t t = 0; t < spec.rounds; ++t) {
    double pa = 0.0, pb = 0.0, ca = 0.0, cb = 0.0;
    for (std::uint32_t s = 0; s < c.states; ++s) {
      const double w = d[s];
      if (w == 0.0) continue;
      pa += w * c.pay_a[s];
      pb += w * c.pay_b[s];
      ca += w * c.coop_a[s];
      cb += w * c.coop_b[s];
    }
    pay_a += pa;
    pay_b += pb;
    coop_a += ca;
    coop_b += cb;
    nd.assign(c.states, 0.0);
    for (std::uint32_t s = 0; s < c.states; ++s) {
      const double w = d[s];
      if (w == 0.0) continue;
      const double* row =
          &c.transition[static_cast<std::size_t>(s) * c.states];
      for (std::uint32_t s2 = 0; s2 < c.states; ++s2) nd[s2] += w * row[s2];
    }
    d.swap(nd);
  }
  GameResult r;
  r.payoff_a = pay_a;
  r.payoff_b = pay_b;
  r.rounds = spec.rounds;
  r.coop_a = static_cast<std::uint32_t>(std::llround(coop_a));
  r.coop_b = static_cast<std::uint32_t>(std::llround(coop_b));
  return r;
}

std::vector<double> stationary_distribution(const GameSpec& spec,
                                            const Behavioral& a,
                                            const Behavioral& b) {
  const Chain c = build_chain(spec, a, b);
  auto pi = solve_stationary(c);
  if (pi.empty()) pi = longrun_average(c);
  return pi;
}

markov::ExpectedOutcome stationary_outcome(const GameSpec& spec,
                                           const Behavioral& a,
                                           const Behavioral& b) {
  const auto pi = stationary_distribution(spec, a, b);
  const std::uint32_t m = spec.actions;
  markov::ExpectedOutcome out;
  for (std::uint32_t x = 0; x < m; ++x) {
    for (std::uint32_t y = 0; y < m; ++y) {
      const double w = pi[static_cast<std::size_t>(x) * m + y];
      out.payoff_a += w * spec.payoff_of(x, y);
      out.payoff_b += w * spec.col_payoff_of(y, x);
      if (x == 0) out.coop_a += w;
      if (y == 0) out.coop_b += w;
    }
  }
  return out;
}

GameResult play_oneshot(const GameSpec& spec, const Strategy& a,
                        const Strategy& b, util::StreamRng rng) {
  const auto da = action_dist(spec, a);
  const auto db = action_dist(spec, b);
  auto draw = [&](const std::vector<double>& dist) {
    const double u = util::uniform01(rng);
    double acc = 0.0;
    std::uint32_t pick = spec.actions - 1;  // numeric safety net
    for (std::uint32_t i = 0; i < spec.actions; ++i) {
      acc += dist[i];
      if (u < acc) {
        pick = i;
        break;
      }
    }
    return pick;
  };
  GameResult r;
  r.rounds = spec.rounds;
  for (std::uint32_t t = 0; t < spec.rounds; ++t) {
    const std::uint32_t x = draw(da);
    const std::uint32_t y = draw(db);
    r.payoff_a += spec.payoff_of(x, y);
    r.payoff_b += spec.col_payoff_of(y, x);
    if (x == 0) ++r.coop_a;
    if (y == 0) ++r.coop_b;
  }
  return r;
}

}  // namespace egt::game::spec
