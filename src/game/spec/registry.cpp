#include "game/spec/registry.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace egt::game {

namespace {

/// Static-init registration store. Function-local so registrars in any
/// translation unit can run before this file's dynamic initializers.
std::vector<GameSpec>& store() {
  static std::vector<GameSpec> games;
  return games;
}

std::string normalize(std::string name) {
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

}  // namespace

namespace detail {

GameRegistrar::GameRegistrar(GameSpec spec) {
  spec.validate();
  EGT_REQUIRE_MSG(find_game(spec.display_name) == nullptr,
                  "duplicate game preset registration");
  auto& games = store();
  const auto at = std::lower_bound(
      games.begin(), games.end(), spec,
      [](const GameSpec& a, const GameSpec& b) {
        return a.display_name < b.display_name;
      });
  games.insert(at, std::move(spec));
}

}  // namespace detail

const std::vector<GameSpec>& registry() { return store(); }

const GameSpec* find_game(const std::string& name) {
  const std::string wanted = normalize(name);
  for (const GameSpec& g : store()) {
    if (g.display_name == wanted) return &g;
  }
  return nullptr;
}

std::vector<std::string> game_names() {
  std::vector<std::string> names;
  names.reserve(store().size());
  for (const GameSpec& g : store()) names.push_back(g.display_name);
  return names;
}

std::string registry_listing() {
  std::ostringstream os;
  for (const GameSpec& g : store()) os << "  " << g.describe() << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// The shipped presets. 2-action presets keep the full memory-n iterated
// machinery; rps is the 3-action one-shot exemplar; pgg is the group-play
// kind. Registration order is irrelevant (the store stays name-sorted).

namespace {

using detail::GameRegistrar;

/// The paper's IPD, f[R,S,T,P] = [3,0,4,1] — identical to a
/// default-constructed GameSpec.
const GameRegistrar r_ipd{GameSpec::matrix2("ipd", paper_payoff())};

/// Axelrod's tournament values [3,0,5,1].
const GameRegistrar r_axelrod{GameSpec::matrix2("axelrod", axelrod_payoff())};

/// Generic donation game, benefit 3, cost 1: [2,-1,3,0].
const GameRegistrar r_donation{
    GameSpec::matrix2("donation", donation_payoff(3.0, 1.0))};

/// Hawk-Dove with resource V=2, injury cost C=3: mixed ESS at hawk
/// frequency V/C = 2/3. Action 0 = dove, action 1 = hawk.
const GameRegistrar r_hawk_dove{GameSpec::matrix2(
    "hawk_dove", PayoffMatrix{1.0, 0.0, 2.0, -0.5}, {"dove", "hawk"})};

/// Snowdrift, benefit 4, cost 2: [3,2,4,0] — cooperation survives in
/// mixtures where the PD would kill it.
const GameRegistrar r_snowdrift{GameSpec::matrix2(
    "snowdrift", snowdrift_payoff(4.0, 2.0), {"shovel", "sit"})};

/// Stag hunt [4,0,3,2]: payoff-dominant stag vs risk-dominant hare
/// (T+P = 5 > R+S = 4).
const GameRegistrar r_stag_hunt{GameSpec::matrix2(
    "stag_hunt", stag_hunt_payoff(), {"stag", "hare"})};

/// Pure coordination [2,0,0,1]: two strict equilibria, A both payoff- and
/// risk-dominant.
const GameRegistrar r_coordination{GameSpec::matrix2(
    "coordination", PayoffMatrix{2.0, 0.0, 0.0, 1.0}, {"A", "B"})};

/// Rock-paper-scissors, win 1 / lose -1 / tie 0: the canonical 3-action
/// cyclic game — no pure ESS, dynamics orbit the uniform mixture.
const GameRegistrar r_rps{GameSpec::matrix_n(
    "rps", 3,
    {0.0, -1.0, 1.0,  //
     1.0, 0.0, -1.0,  //
     -1.0, 1.0, 0.0},
    {"rock", "paper", "scissors"})};

/// Public goods, r=3, cost 1, automatic groups: contribution is dominated
/// when r < group size and dominant when r exceeds it.
const GameRegistrar r_pgg{
    GameSpec::public_goods("pgg", 3.0, 1.0, /*k=*/0)};

}  // namespace

}  // namespace egt::game
