#include "game/tournament.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::game {

TournamentResult run_tournament(
    const std::vector<named::NamedStrategy>& entries, int engine_memory,
    const TournamentConfig& config) {
  EGT_REQUIRE_MSG(!entries.empty(), "tournament needs at least one entry");
  const std::size_t n = entries.size();
  for (const auto& e : entries) {
    EGT_REQUIRE_MSG(e.strategy.memory() == engine_memory,
                    "entry memory depth must match the engine");
  }

  const IpdEngine engine(engine_memory, config.game);

  TournamentResult res;
  res.names.reserve(n);
  for (const auto& e : entries) res.names.push_back(e.name);
  res.score.assign(n, std::vector<double>(n, 0.0));
  res.total.assign(n, 0.0);
  res.coop_rate.assign(n, 0.0);

  std::vector<double> rounds_played(n, 0.0);
  std::vector<double> coop_moves(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (i == j && !config.include_self_play) continue;
      for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
        util::StreamRng rng(config.seed, util::stream_key(i, j, rep));
        const GameResult g =
            engine.play(entries[i].strategy, entries[j].strategy, rng);
        res.score[i][j] += g.payoff_a;
        coop_moves[i] += g.coop_a;
        rounds_played[i] += g.rounds;
        if (i != j) {
          res.score[j][i] += g.payoff_b;
          coop_moves[j] += g.coop_b;
          rounds_played[j] += g.rounds;
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    res.total[i] = std::accumulate(res.score[i].begin(), res.score[i].end(), 0.0);
    res.coop_rate[i] =
        rounds_played[i] == 0.0 ? 0.0 : coop_moves[i] / rounds_played[i];
  }

  res.ranking.resize(n);
  std::iota(res.ranking.begin(), res.ranking.end(), std::size_t{0});
  std::stable_sort(res.ranking.begin(), res.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return res.total[a] > res.total[b];
                   });
  return res;
}

std::string format_ranking(const TournamentResult& result) {
  std::ostringstream os;
  std::size_t width = 4;
  for (const auto& name : result.names) width = std::max(width, name.size());
  os << "rank  strategy" << std::string(width - 4, ' ')
     << "  total-payoff  coop-rate\n";
  for (std::size_t r = 0; r < result.ranking.size(); ++r) {
    const std::size_t i = result.ranking[r];
    os << r + 1 << ".    " << result.names[i]
       << std::string(width - result.names[i].size() + 4, ' ');
    char buf[64];
    std::snprintf(buf, sizeof buf, "%12.1f  %8.3f", result.total[i],
                  result.coop_rate[i]);
    os << buf << '\n';
  }
  return os.str();
}

}  // namespace egt::game
