// Two-player symmetric 2x2 payoff matrices.
//
// The paper's Prisoner's Dilemma uses f[R,S,T,P] = [3,0,4,1] (Table I /
// §V-C). Other classic games are provided for the examples and tests.
#pragma once

#include <string>

#include "game/move.hpp"

namespace egt::game {

/// Payoffs for the row player of a symmetric 2x2 game.
///   R: both cooperate, S: I cooperate / opponent defects,
///   T: I defect / opponent cooperates, P: both defect.
struct PayoffMatrix {
  double reward = 3.0;      ///< R
  double sucker = 0.0;      ///< S
  double temptation = 4.0;  ///< T
  double punishment = 1.0;  ///< P

  /// Payoff for `mine` against `theirs`.
  constexpr double payoff(Move mine, Move theirs) const noexcept {
    if (mine == Move::Cooperate) {
      return theirs == Move::Cooperate ? reward : sucker;
    }
    return theirs == Move::Cooperate ? temptation : punishment;
  }

  /// T > R > P > S: defection dominant, mutual cooperation efficient.
  constexpr bool is_prisoners_dilemma() const noexcept {
    return temptation > reward && reward > punishment && punishment > sucker;
  }

  /// 2R > T + S: mutual cooperation beats alternating exploitation, the
  /// standard extra condition for the *iterated* PD.
  constexpr bool rewards_mutual_cooperation() const noexcept {
    return 2.0 * reward > temptation + sucker;
  }

  std::string to_string() const;
};

/// The paper's payoff values f[R,S,T,P] = [3,0,4,1].
constexpr PayoffMatrix paper_payoff() noexcept { return {3.0, 0.0, 4.0, 1.0}; }

/// Axelrod's tournament values [3,0,5,1].
constexpr PayoffMatrix axelrod_payoff() noexcept {
  return {3.0, 0.0, 5.0, 1.0};
}

/// Donation game: benefit b, cost c (b > c > 0).
PayoffMatrix donation_payoff(double benefit, double cost);

/// Snowdrift / hawk-dove game with benefit b and cost c (b > c > 0).
PayoffMatrix snowdrift_payoff(double benefit, double cost);

/// Stag hunt: coordination game, R > T >= P > S.
constexpr PayoffMatrix stag_hunt_payoff() noexcept {
  return {4.0, 0.0, 3.0, 2.0};
}

}  // namespace egt::game
