// Memory-n strategies.
//
// A strategy maps every game state (4^n of them) to a move. *Pure*
// strategies pick the move deterministically (one bit per state, the
// paper's Table III); *mixed* strategies pick Cooperate with a per-state
// probability (§III-C). `Strategy` is the value-type wrapper the population
// layer stores, compares, hashes and serialises for broadcast.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "game/move.hpp"
#include "game/state.hpp"
#include "util/bitvec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::game {

/// Deterministic strategy: bit s is the move played in state s (0=C, 1=D).
class PureStrategy {
 public:
  PureStrategy() : PureStrategy(1) {}

  /// All-cooperate strategy of the given memory depth.
  explicit PureStrategy(int memory)
      : memory_(memory), moves_(num_states(memory)) {
    EGT_REQUIRE(memory >= 0 && memory <= kMaxMemory);
  }

  /// From a '0'/'1' string of length 4^n (state 0 first), e.g. "0110" for
  /// memory-one; n is inferred from the length.
  static PureStrategy from_bits(const std::string& bits);

  /// Uniformly random strategy (every move a fair coin).
  template <class Rng>
  static PureStrategy random(int memory, Rng& rng) {
    PureStrategy s(memory);
    s.moves_.randomize(rng);
    return s;
  }

  int memory() const noexcept { return memory_; }
  std::uint32_t states() const noexcept {
    return static_cast<std::uint32_t>(moves_.size());
  }

  Move move(State s) const noexcept { return from_bit(moves_.get(s)); }
  void set_move(State s, Move m) noexcept { moves_.set(s, to_bit(m) != 0); }

  const util::BitVec& table() const noexcept { return moves_; }
  util::BitVec& table() noexcept { return moves_; }

  std::uint64_t hash() const noexcept { return moves_.hash(); }
  std::string to_string() const { return moves_.to_string(); }

  friend bool operator==(const PureStrategy& a,
                         const PureStrategy& b) noexcept {
    return a.memory_ == b.memory_ && a.moves_ == b.moves_;
  }

 private:
  int memory_;
  util::BitVec moves_;
};

/// Stochastic strategy: coop_[s] is the probability of cooperating in
/// state s.
class MixedStrategy {
 public:
  MixedStrategy() : MixedStrategy(1) {}

  /// Memory-n strategy cooperating with probability `p` in every state.
  explicit MixedStrategy(int memory, double p = 1.0);

  /// From an explicit per-state cooperation probability vector; the memory
  /// depth is inferred from the size (must be 4^n).
  static MixedStrategy from_probs(std::vector<double> coop);

  /// Memory-one convenience: probabilities for states (CC, CD, DC, DD) in
  /// the (my move, opp move) order of StateCodec.
  static MixedStrategy mem1(const std::array<double, 4>& coop);

  /// Every state probability uniform in [0, 1].
  template <class Rng>
  static MixedStrategy random(int memory, Rng& rng) {
    MixedStrategy s(memory, 0.0);
    for (auto& p : s.coop_) p = util::uniform01(rng);
    return s;
  }

  /// Deterministic strategy viewed as a degenerate mixed one.
  static MixedStrategy from_pure(const PureStrategy& p);

  int memory() const noexcept { return memory_; }
  std::uint32_t states() const noexcept {
    return static_cast<std::uint32_t>(coop_.size());
  }

  double coop_prob(State s) const noexcept { return coop_[s]; }
  void set_coop_prob(State s, double p);

  template <class Rng>
  Move move(State s, Rng& rng) const {
    return util::uniform01(rng) < coop_[s] ? Move::Cooperate : Move::Defect;
  }

  const std::vector<double>& probs() const noexcept { return coop_; }

  /// True when every probability is exactly 0 or 1.
  bool is_degenerate() const noexcept;

  /// Euclidean distance in probability space (used by k-means / census).
  double distance(const MixedStrategy& other) const;

  std::uint64_t hash() const noexcept;
  std::string to_string() const;

  friend bool operator==(const MixedStrategy& a,
                         const MixedStrategy& b) noexcept {
    return a.memory_ == b.memory_ && a.coop_ == b.coop_;
  }

 private:
  int memory_;
  std::vector<double> coop_;
};

/// Memory-0 action distribution over m >= 2 actions, for n-way matrix
/// games (DESIGN.md §10). N-way games play one-shot stage games, so unlike
/// Pure/MixedStrategy there is no game state: the strategy is a single
/// point on the action simplex. Binary games (including the public goods
/// contribution choice) keep using Pure/MixedStrategy.
class NWayStrategy {
 public:
  NWayStrategy() : NWayStrategy(2) {}

  /// Uniform distribution over `actions` actions.
  explicit NWayStrategy(std::uint32_t actions);

  /// Explicit distribution; the action count is the vector size (in
  /// [2, 255], entries in [0,1] summing to 1).
  static NWayStrategy from_probs(std::vector<double> probs);

  /// One-hot "pure" n-way strategy always playing `action`.
  static NWayStrategy pure_action(std::uint32_t actions,
                                  std::uint32_t action);

  /// Uniform on the simplex (Dirichlet(1,...,1), via normalized Exp(1)
  /// draws — `actions` uniform01 consumptions).
  template <class Rng>
  static NWayStrategy random(std::uint32_t actions, Rng& rng) {
    std::vector<double> p(actions);
    double total = 0.0;
    for (auto& v : p) {
      v = -std::log1p(-util::uniform01(rng));
      total += v;
    }
    if (total <= 0.0) return NWayStrategy(actions);  // all-zero draw
    for (auto& v : p) v /= total;
    return from_probs(std::move(p));
  }

  std::uint32_t actions() const noexcept {
    return static_cast<std::uint32_t>(probs_.size());
  }
  int memory() const noexcept { return 0; }
  std::uint32_t states() const noexcept { return 1; }

  double action_prob(std::uint32_t a) const { return probs_[a]; }
  const std::vector<double>& probs() const noexcept { return probs_; }

  /// True when the distribution is one-hot.
  bool is_degenerate() const noexcept;

  std::uint64_t hash() const noexcept;
  std::string to_string() const;

  friend bool operator==(const NWayStrategy& a,
                         const NWayStrategy& b) noexcept {
    return a.probs_ == b.probs_;
  }

 private:
  std::vector<double> probs_;
};

/// Value-type strategy wrapper stored by the population layer.
class Strategy {
 public:
  Strategy() : impl_(PureStrategy(1)) {}
  Strategy(PureStrategy p) : impl_(std::move(p)) {}    // NOLINT(implicit)
  Strategy(MixedStrategy m) : impl_(std::move(m)) {}   // NOLINT(implicit)
  Strategy(NWayStrategy n) : impl_(std::move(n)) {}    // NOLINT(implicit)

  bool is_pure() const noexcept {
    return std::holds_alternative<PureStrategy>(impl_);
  }
  bool is_nway() const noexcept {
    return std::holds_alternative<NWayStrategy>(impl_);
  }
  const PureStrategy& as_pure() const { return std::get<PureStrategy>(impl_); }
  const MixedStrategy& as_mixed() const {
    return std::get<MixedStrategy>(impl_);
  }
  const NWayStrategy& as_nway() const { return std::get<NWayStrategy>(impl_); }

  int memory() const noexcept;
  std::uint32_t states() const noexcept;

  /// Cooperation probability in state s (0/1 for pure strategies).
  double coop_prob(State s) const noexcept;

  /// Pure strategies never consume randomness. N-way strategies do not
  /// play binary Moves — config validation routes them through the
  /// one-shot spec engine instead.
  template <class Rng>
  Move move(State s, Rng& rng) const {
    if (const auto* p = std::get_if<PureStrategy>(&impl_)) return p->move(s);
    EGT_REQUIRE_MSG(!is_nway(),
                    "n-way strategies play via the spec engine, not Move");
    return std::get<MixedStrategy>(impl_).move(s, rng);
  }

  /// Mixed view of the strategy (per-state cooperation probabilities).
  /// N-way strategies only convert when actions == 2.
  MixedStrategy to_mixed() const;

  std::uint64_t hash() const noexcept;

  /// Ordered content key of a strategy pair, built from two Strategy::hash
  /// values. The dedup fitness cache and the ft block checkpoints key the
  /// class-pair payoff table by this value — a pure function of strategy
  /// *content*, so it is stable across ranks, runs and class-id recycling.
  /// Asymmetric: pair_key(a, b) != pair_key(b, a) in general, matching the
  /// asymmetric payoff of the row player.
  static std::uint64_t pair_key(std::uint64_t hash_a,
                                std::uint64_t hash_b) noexcept;

  /// Wire format for the parallel runtime's strategy broadcasts:
  /// [kind:u8][memory:u8][payload]. Kind 0 = pure (payload packed bits),
  /// 1 = mixed (per-state doubles), 2 = n-way ([actions:u8] then
  /// per-action doubles, memory byte always 0).
  std::vector<std::byte> serialize() const;
  static Strategy deserialize(const std::vector<std::byte>& bytes);

  friend bool operator==(const Strategy& a, const Strategy& b) noexcept {
    return a.impl_ == b.impl_;
  }

 private:
  std::variant<PureStrategy, MixedStrategy, NWayStrategy> impl_;
};

}  // namespace egt::game
