// Axelrod-style round-robin tournament (paper §III-B): every strategy plays
// every other (and optionally itself) for a number of repetitions; scores
// are summed and ranked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "game/ipd.hpp"
#include "game/named.hpp"

namespace egt::game {

struct TournamentConfig {
  IpdParams game;                 ///< payoffs / rounds / noise per game
  std::uint32_t repetitions = 1;  ///< games per ordered pair
  bool include_self_play = false;
  std::uint64_t seed = 42;
};

struct TournamentResult {
  std::vector<std::string> names;
  /// score[i][j]: total payoff strategy i earned against j (summed over
  /// repetitions).
  std::vector<std::vector<double>> score;
  /// total[i]: sum over opponents (the tournament ranking criterion).
  std::vector<double> total;
  /// ranking: indices into names, best first.
  std::vector<std::size_t> ranking;
  /// overall cooperation rate per strategy.
  std::vector<double> coop_rate;
};

/// Run the round-robin. All strategies must share one memory depth equal to
/// `engine_memory`.
TournamentResult run_tournament(const std::vector<named::NamedStrategy>& entries,
                                int engine_memory,
                                const TournamentConfig& config = {});

/// Render the ranking as an aligned text block.
std::string format_ranking(const TournamentResult& result);

}  // namespace egt::game
