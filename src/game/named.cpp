#include "game/named.hpp"

#include <limits>

#include "util/check.hpp"

namespace egt::game::named {

namespace {

/// Build a pure strategy by evaluating `rule` on every state.
template <class Rule>
PureStrategy build(int memory, Rule&& rule) {
  const StateCodec codec(memory);
  PureStrategy s(memory);
  for (State st = 0; st < codec.states(); ++st) {
    s.set_move(st, rule(codec, st));
  }
  return s;
}

}  // namespace

PureStrategy all_c(int memory) {
  return build(memory, [](const StateCodec&, State) { return Move::Cooperate; });
}

PureStrategy all_d(int memory) {
  return build(memory, [](const StateCodec&, State) { return Move::Defect; });
}

PureStrategy tit_for_tat(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "TFT needs at least memory-one");
  return build(memory, [](const StateCodec& c, State s) {
    return c.opp_move(s, 0);
  });
}

PureStrategy tit_for_two_tats(int memory) {
  EGT_REQUIRE_MSG(memory >= 2, "TF2T needs at least memory-two");
  return build(memory, [](const StateCodec& c, State s) {
    const bool two_defections = c.opp_move(s, 0) == Move::Defect &&
                                c.opp_move(s, 1) == Move::Defect;
    return two_defections ? Move::Defect : Move::Cooperate;
  });
}

PureStrategy grim(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "GRIM needs at least memory-one");
  // Any set bit in the state means some defection is remembered; once we
  // defect, our own defection keeps the trigger armed for `memory` rounds,
  // making defection absorbing.
  return build(memory, [](const StateCodec&, State s) {
    return s == 0 ? Move::Cooperate : Move::Defect;
  });
}

PureStrategy win_stay_lose_shift(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "WSLS needs at least memory-one");
  return build(memory, [](const StateCodec& c, State s) {
    const Move mine = c.my_move(s, 0);
    const Move theirs = c.opp_move(s, 0);
    // Opponent cooperation means I scored R or T ("win"): repeat my move.
    // Opponent defection means S or P ("lose"): switch.
    return theirs == Move::Cooperate ? mine : opposite(mine);
  });
}

MixedStrategy generous_tit_for_tat(int memory, double generosity) {
  EGT_REQUIRE_MSG(memory >= 1, "GTFT needs at least memory-one");
  EGT_REQUIRE_MSG(generosity >= 0.0 && generosity <= 1.0,
                  "generosity out of [0,1]");
  const StateCodec codec(memory);
  MixedStrategy m(memory, 1.0);
  for (State s = 0; s < codec.states(); ++s) {
    m.set_coop_prob(
        s, codec.opp_move(s, 0) == Move::Cooperate ? 1.0 : generosity);
  }
  return m;
}

MixedStrategy random_strategy(int memory, double p) {
  return MixedStrategy(memory, p);
}

PureStrategy contrite_tit_for_tat(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "CTFT needs at least memory-one");
  // Retaliate only from good standing: defect iff I cooperated and the
  // opponent defected in the most recent round; otherwise cooperate
  // (including accepting punishment after my own defection).
  return build(memory, [](const StateCodec& c, State s) {
    const bool provoked_in_good_standing =
        c.my_move(s, 0) == Move::Cooperate && c.opp_move(s, 0) == Move::Defect;
    return provoked_in_good_standing ? Move::Defect : Move::Cooperate;
  });
}

PureStrategy firm_but_fair(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "FBF needs at least memory-one");
  // WSLS variant that keeps cooperating after being suckered (state C,D).
  return build(memory, [](const StateCodec& c, State s) {
    const Move mine = c.my_move(s, 0);
    const Move theirs = c.opp_move(s, 0);
    if (mine == Move::Cooperate && theirs == Move::Defect) {
      return Move::Cooperate;
    }
    return theirs == Move::Cooperate ? mine : opposite(mine);
  });
}

PureStrategy alternator(int memory) {
  EGT_REQUIRE_MSG(memory >= 1, "alternator needs at least memory-one");
  return build(memory, [](const StateCodec& c, State s) {
    return opposite(c.my_move(s, 0));
  });
}

std::vector<NamedStrategy> pure_catalog(int memory) {
  std::vector<NamedStrategy> out;
  out.push_back({"ALLC", all_c(memory)});
  out.push_back({"ALLD", all_d(memory)});
  if (memory >= 1) {
    out.push_back({"TFT", tit_for_tat(memory)});
    out.push_back({"GRIM", grim(memory)});
    out.push_back({"WSLS", win_stay_lose_shift(memory)});
    out.push_back({"CTFT", contrite_tit_for_tat(memory)});
    out.push_back({"FBF", firm_but_fair(memory)});
    out.push_back({"ALT", alternator(memory)});
  }
  if (memory >= 2) {
    out.push_back({"TF2T", tit_for_two_tats(memory)});
  }
  return out;
}

std::vector<NamedStrategy> full_catalog(int memory) {
  auto out = pure_catalog(memory);
  if (memory >= 1) {
    out.push_back({"GTFT", generous_tit_for_tat(memory, 1.0 / 3.0)});
  }
  out.push_back({"RANDOM", random_strategy(memory, 0.5)});
  return out;
}

std::pair<std::string, double> nearest_named(const Strategy& s) {
  // The catalog is binary; strategies on a larger action simplex have no
  // meaningful neighbour in it.
  if (s.is_nway() && s.as_nway().actions() != 2) {
    return {"?", std::numeric_limits<double>::infinity()};
  }
  const MixedStrategy probe = s.to_mixed();
  std::string best_name = "?";
  double best = std::numeric_limits<double>::infinity();
  for (const auto& entry : full_catalog(s.memory())) {
    const double d = probe.distance(entry.strategy.to_mixed());
    if (d < best) {
      best = d;
      best_name = entry.name;
    }
  }
  return {best_name, best};
}

}  // namespace egt::game::named
