// The binary move of the Prisoner's Dilemma. The paper encodes cooperate as
// 0 and defect as 1 (Table V); we keep that convention everywhere.
#pragma once

#include <cstdint>

namespace egt::game {

enum class Move : std::uint8_t { Cooperate = 0, Defect = 1 };

constexpr Move opposite(Move m) noexcept {
  return m == Move::Cooperate ? Move::Defect : Move::Cooperate;
}

constexpr int to_bit(Move m) noexcept { return static_cast<int>(m); }

constexpr Move from_bit(int b) noexcept {
  return b == 0 ? Move::Cooperate : Move::Defect;
}

constexpr char to_char(Move m) noexcept {
  return m == Move::Cooperate ? 'C' : 'D';
}

}  // namespace egt::game
