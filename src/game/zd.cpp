#include "game/zd.hpp"

#include <algorithm>
#include <cmath>

#include "game/markov.hpp"
#include "util/check.hpp"

namespace egt::game::zd {

namespace {
constexpr double kEps = 1e-12;

std::optional<ZdProbs> validated(ZdProbs p) {
  // Clamp away sub-epsilon numerical dust, then validate.
  auto tidy = [](double v) {
    if (v > -kEps && v < 0.0) return 0.0;
    if (v > 1.0 && v < 1.0 + kEps) return 1.0;
    return v;
  };
  p.p_cc = tidy(p.p_cc);
  p.p_cd = tidy(p.p_cd);
  p.p_dc = tidy(p.p_dc);
  p.p_dd = tidy(p.p_dd);
  if (!p.valid()) return std::nullopt;
  return p;
}
}  // namespace

MixedStrategy to_memory_one(const ZdProbs& p) {
  EGT_REQUIRE_MSG(p.valid(), "ZD probabilities out of [0,1]");
  // StateCodec order (my, opp): CC, CD, DC, DD.
  return MixedStrategy::mem1({p.p_cc, p.p_cd, p.p_dc, p.p_dd});
}

std::optional<ZdProbs> extortionate(const PayoffMatrix& m, double chi,
                                    double phi) {
  EGT_REQUIRE_MSG(chi >= 1.0, "extortion factor chi must be >= 1");
  EGT_REQUIRE_MSG(phi > 0.0, "phi must be positive");
  // Press & Dyson: p~ = phi * [(S_self - P) - chi (S_opp - P)].
  ZdProbs p;
  p.p_cc = 1.0 - phi * (chi - 1.0) * (m.reward - m.punishment);
  p.p_cd = 1.0 - phi * ((m.punishment - m.sucker) +
                        chi * (m.temptation - m.punishment));
  p.p_dc = phi * ((m.temptation - m.punishment) +
                  chi * (m.punishment - m.sucker));
  p.p_dd = 0.0;
  return validated(p);
}

double max_phi_extortionate(const PayoffMatrix& m, double chi) {
  EGT_REQUIRE_MSG(chi >= 1.0, "extortion factor chi must be >= 1");
  double bound = 1.0 / ((m.temptation - m.punishment) +
                        chi * (m.punishment - m.sucker));  // p_dc <= 1
  bound = std::min(bound, 1.0 / ((m.punishment - m.sucker) +
                                 chi * (m.temptation - m.punishment)));
  if (chi > 1.0) {
    bound = std::min(bound,
                     1.0 / ((chi - 1.0) * (m.reward - m.punishment)));
  }
  return bound;
}

std::optional<ZdProbs> generous(const PayoffMatrix& m, double chi,
                                double phi) {
  EGT_REQUIRE_MSG(chi > 0.0 && chi <= 1.0, "generous chi must be in (0, 1]");
  EGT_REQUIRE_MSG(phi > 0.0, "phi must be positive");
  // Enforces pi_opp - R = chi (pi_self - R): the player caps its own
  // surplus relative to full cooperation (Stewart & Plotkin's generous ZD).
  ZdProbs p;
  p.p_cc = 1.0;
  p.p_cd = 1.0 - phi * ((m.temptation - m.reward) +
                        chi * (m.reward - m.sucker));
  p.p_dc = phi * (chi * (m.temptation - m.reward) + (m.reward - m.sucker));
  p.p_dd = phi * (1.0 - chi) * (m.reward - m.punishment);
  return validated(p);
}

bool enforces_linear_relation(const ZdProbs& p, const PayoffMatrix& payoff,
                              double alpha, double beta, double gamma,
                              double tolerance) {
  const Strategy self = to_memory_one(p);
  const std::array<Strategy, 4> probes{
      Strategy(MixedStrategy::mem1({1.0, 1.0, 1.0, 1.0})),      // ALLC
      Strategy(MixedStrategy::mem1({0.0, 0.0, 0.0, 0.0})),      // ALLD
      Strategy(MixedStrategy::mem1({0.5, 0.5, 0.5, 0.5})),      // RANDOM
      Strategy(MixedStrategy::mem1({0.9, 0.2, 0.7, 0.4})),      // arbitrary
  };
  for (const auto& q : probes) {
    const auto out = markov::stationary_mem1(self, q, payoff, 0.0);
    const double relation =
        alpha * out.payoff_a + beta * out.payoff_b + gamma;
    if (std::fabs(relation) > tolerance) return false;
  }
  return true;
}

}  // namespace egt::game::zd
