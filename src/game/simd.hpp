// Runtime kernel dispatch for the batch fitness kernels (DESIGN.md §12).
//
// The batch memory-one Markov kernel (game/batch.hpp) has two
// implementations: a portable scalar loop and an AVX2+FMA lane kernel
// compiled into its own translation unit with -mavx2 -mfma. Which one runs
// is resolved once per process:
//
//   * compile gate  — -DEGT_SIMD=OFF (CMake) removes the AVX2 TU entirely;
//   * runtime gate  — the AVX2 kernel only runs when the CPU reports AVX2
//     and FMA support (__builtin_cpu_supports), scalar otherwise;
//   * env/test gate — EGT_FORCE_SCALAR=1 in the environment, or
//     set_force_scalar(true) from test code, forces the scalar path.
//
// One kernel per process: every analytic memory-one evaluation in a process
// goes through the same kernel (batches of one included), so in-process
// bitwise invariants (dedup on/off, serial vs threaded, prefill vs lazy)
// hold under either kernel. Results *across* kernels agree to 1e-12
// relative (FMA contraction and lane arithmetic reorder rounding), the same
// tolerance simcheck already applies to Analytic restores — which is why
// set_force_scalar is a test/bench hook, not something to flip mid-run.
#pragma once

namespace egt::game::simd {

enum class Kernel { Scalar, Avx2 };

/// The kernel the batch entry points dispatch to right now.
Kernel active_kernel() noexcept;

/// "scalar" / "avx2".
const char* kernel_name(Kernel k) noexcept;

/// True when the AVX2 TU was compiled in (-DEGT_SIMD=ON on x86-64).
bool compiled_with_avx2() noexcept;

/// True when the CPU supports the AVX2 kernel (regardless of the gates).
bool cpu_supports_avx2() noexcept;

/// Test/bench hook: force the scalar kernel (true) or return to runtime
/// detection (false). Flipping this mid-simulation breaks the
/// one-kernel-per-process invariant — only toggle between full runs.
void set_force_scalar(bool force) noexcept;

/// Current force-scalar state (env EGT_FORCE_SCALAR=1 sets it at startup).
bool force_scalar() noexcept;

}  // namespace egt::game::simd
