#include "game/strategy.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

namespace egt::game {

namespace {
int memory_from_states(std::size_t states) {
  for (int n = 0; n <= kMaxMemory; ++n) {
    if (num_states(n) == states) return n;
  }
  EGT_REQUIRE_MSG(false, "state count is not 4^n for n in [0,6]");
  return -1;  // unreachable
}
}  // namespace

PureStrategy PureStrategy::from_bits(const std::string& bits) {
  const int memory = memory_from_states(bits.size());
  PureStrategy s(memory);
  s.moves_ = util::BitVec::from_string(bits);
  return s;
}

MixedStrategy::MixedStrategy(int memory, double p)
    : memory_(memory), coop_(num_states(memory), p) {
  EGT_REQUIRE(memory >= 0 && memory <= kMaxMemory);
  EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
}

MixedStrategy MixedStrategy::from_probs(std::vector<double> coop) {
  const int memory = memory_from_states(coop.size());
  MixedStrategy s(memory, 0.0);
  for (double p : coop) {
    EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  }
  s.coop_ = std::move(coop);
  return s;
}

MixedStrategy MixedStrategy::mem1(const std::array<double, 4>& coop) {
  return from_probs({coop[0], coop[1], coop[2], coop[3]});
}

MixedStrategy MixedStrategy::from_pure(const PureStrategy& p) {
  MixedStrategy m(p.memory(), 0.0);
  for (State s = 0; s < p.states(); ++s) {
    m.coop_[s] = p.move(s) == Move::Cooperate ? 1.0 : 0.0;
  }
  return m;
}

void MixedStrategy::set_coop_prob(State s, double p) {
  EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  coop_[s] = p;
}

bool MixedStrategy::is_degenerate() const noexcept {
  for (double p : coop_) {
    if (p != 0.0 && p != 1.0) return false;
  }
  return true;
}

double MixedStrategy::distance(const MixedStrategy& other) const {
  EGT_REQUIRE(memory_ == other.memory_);
  double d2 = 0.0;
  for (std::size_t i = 0; i < coop_.size(); ++i) {
    const double d = coop_[i] - other.coop_[i];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

std::uint64_t MixedStrategy::hash() const noexcept {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(memory_) + 1);
  for (double p : coop_) {
    std::uint64_t bits;
    std::memcpy(&bits, &p, sizeof bits);
    h = util::mix64(h ^ bits);
  }
  return h;
}

std::string MixedStrategy::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < coop_.size(); ++i) {
    if (i != 0) os << ", ";
    os << coop_[i];
  }
  os << "]";
  return os.str();
}

int Strategy::memory() const noexcept {
  return std::visit([](const auto& s) { return s.memory(); }, impl_);
}

std::uint32_t Strategy::states() const noexcept {
  return std::visit([](const auto& s) { return s.states(); }, impl_);
}

double Strategy::coop_prob(State s) const noexcept {
  if (const auto* p = std::get_if<PureStrategy>(&impl_)) {
    return p->move(s) == Move::Cooperate ? 1.0 : 0.0;
  }
  return std::get<MixedStrategy>(impl_).coop_prob(s);
}

MixedStrategy Strategy::to_mixed() const {
  if (const auto* p = std::get_if<PureStrategy>(&impl_)) {
    return MixedStrategy::from_pure(*p);
  }
  return std::get<MixedStrategy>(impl_);
}

std::uint64_t Strategy::hash() const noexcept {
  const std::uint64_t tag = is_pure() ? 0x9e3779b97f4a7c15ULL : 0;
  return util::mix64(
      tag ^ std::visit([](const auto& s) { return s.hash(); }, impl_));
}

std::uint64_t Strategy::pair_key(std::uint64_t hash_a,
                                 std::uint64_t hash_b) noexcept {
  // Mix the second hash first so (a, b) and (b, a) land on different keys.
  return util::mix64(hash_a ^ util::mix64(hash_b + 0x9e3779b97f4a7c15ULL));
}

std::vector<std::byte> Strategy::serialize() const {
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(is_pure() ? 0 : 1));
  out.push_back(static_cast<std::byte>(memory()));
  if (is_pure()) {
    const auto words = as_pure().table().words();
    const auto* p = reinterpret_cast<const std::byte*>(words.data());
    out.insert(out.end(), p, p + words.size() * sizeof(std::uint64_t));
  } else {
    const auto& probs = as_mixed().probs();
    const auto* p = reinterpret_cast<const std::byte*>(probs.data());
    out.insert(out.end(), p, p + probs.size() * sizeof(double));
  }
  return out;
}

Strategy Strategy::deserialize(const std::vector<std::byte>& bytes) {
  EGT_REQUIRE_MSG(bytes.size() >= 2, "strategy payload too short");
  const bool pure = std::to_integer<int>(bytes[0]) == 0;
  const int memory = std::to_integer<int>(bytes[1]);
  EGT_REQUIRE(memory >= 0 && memory <= kMaxMemory);
  const std::uint32_t states = num_states(memory);
  if (pure) {
    const std::size_t nwords = (states + 63) / 64;
    EGT_REQUIRE_MSG(bytes.size() == 2 + nwords * sizeof(std::uint64_t),
                    "pure strategy payload size mismatch");
    PureStrategy s(memory);
    for (State i = 0; i < states; ++i) {
      std::uint64_t w;
      std::memcpy(&w, bytes.data() + 2 + (i / 64) * sizeof w, sizeof w);
      s.set_move(i, from_bit((w >> (i % 64)) & 1u));
    }
    return s;
  }
  EGT_REQUIRE_MSG(bytes.size() == 2 + states * sizeof(double),
                  "mixed strategy payload size mismatch");
  std::vector<double> probs(states);
  std::memcpy(probs.data(), bytes.data() + 2, states * sizeof(double));
  return MixedStrategy::from_probs(std::move(probs));
}

}  // namespace egt::game
