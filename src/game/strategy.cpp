#include "game/strategy.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

namespace egt::game {

namespace {
int memory_from_states(std::size_t states) {
  for (int n = 0; n <= kMaxMemory; ++n) {
    if (num_states(n) == states) return n;
  }
  EGT_REQUIRE_MSG(false, "state count is not 4^n for n in [0,6]");
  return -1;  // unreachable
}
}  // namespace

PureStrategy PureStrategy::from_bits(const std::string& bits) {
  const int memory = memory_from_states(bits.size());
  PureStrategy s(memory);
  s.moves_ = util::BitVec::from_string(bits);
  return s;
}

MixedStrategy::MixedStrategy(int memory, double p)
    : memory_(memory), coop_(num_states(memory), p) {
  EGT_REQUIRE(memory >= 0 && memory <= kMaxMemory);
  EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
}

MixedStrategy MixedStrategy::from_probs(std::vector<double> coop) {
  const int memory = memory_from_states(coop.size());
  MixedStrategy s(memory, 0.0);
  for (double p : coop) {
    EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  }
  s.coop_ = std::move(coop);
  return s;
}

MixedStrategy MixedStrategy::mem1(const std::array<double, 4>& coop) {
  return from_probs({coop[0], coop[1], coop[2], coop[3]});
}

MixedStrategy MixedStrategy::from_pure(const PureStrategy& p) {
  MixedStrategy m(p.memory(), 0.0);
  for (State s = 0; s < p.states(); ++s) {
    m.coop_[s] = p.move(s) == Move::Cooperate ? 1.0 : 0.0;
  }
  return m;
}

void MixedStrategy::set_coop_prob(State s, double p) {
  EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  coop_[s] = p;
}

bool MixedStrategy::is_degenerate() const noexcept {
  for (double p : coop_) {
    if (p != 0.0 && p != 1.0) return false;
  }
  return true;
}

double MixedStrategy::distance(const MixedStrategy& other) const {
  EGT_REQUIRE(memory_ == other.memory_);
  double d2 = 0.0;
  for (std::size_t i = 0; i < coop_.size(); ++i) {
    const double d = coop_[i] - other.coop_[i];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

std::uint64_t MixedStrategy::hash() const noexcept {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(memory_) + 1);
  for (double p : coop_) {
    std::uint64_t bits;
    std::memcpy(&bits, &p, sizeof bits);
    h = util::mix64(h ^ bits);
  }
  return h;
}

std::string MixedStrategy::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < coop_.size(); ++i) {
    if (i != 0) os << ", ";
    os << coop_[i];
  }
  os << "]";
  return os.str();
}

NWayStrategy::NWayStrategy(std::uint32_t actions)
    : probs_(actions, actions > 0 ? 1.0 / actions : 0.0) {
  EGT_REQUIRE_MSG(actions >= 2 && actions <= 255,
                  "n-way strategies span 2..255 actions");
}

NWayStrategy NWayStrategy::from_probs(std::vector<double> probs) {
  EGT_REQUIRE_MSG(probs.size() >= 2 && probs.size() <= 255,
                  "n-way strategies span 2..255 actions");
  double sum = 0.0;
  for (double p : probs) {
    EGT_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
    sum += p;
  }
  EGT_REQUIRE_MSG(std::abs(sum - 1.0) <= 1e-9,
                  "action distribution must sum to 1");
  NWayStrategy s(static_cast<std::uint32_t>(probs.size()));
  s.probs_ = std::move(probs);
  return s;
}

NWayStrategy NWayStrategy::pure_action(std::uint32_t actions,
                                       std::uint32_t action) {
  EGT_REQUIRE(action < actions);
  NWayStrategy s(actions);
  s.probs_.assign(actions, 0.0);
  s.probs_[action] = 1.0;
  return s;
}

bool NWayStrategy::is_degenerate() const noexcept {
  for (double p : probs_) {
    if (p != 0.0 && p != 1.0) return false;
  }
  return true;
}

std::uint64_t NWayStrategy::hash() const noexcept {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(actions()) + 1);
  for (double p : probs_) {
    std::uint64_t bits;
    std::memcpy(&bits, &p, sizeof bits);
    h = util::mix64(h ^ bits);
  }
  return h;
}

std::string NWayStrategy::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (i != 0) os << ", ";
    os << probs_[i];
  }
  os << "}";
  return os.str();
}

int Strategy::memory() const noexcept {
  return std::visit([](const auto& s) { return s.memory(); }, impl_);
}

std::uint32_t Strategy::states() const noexcept {
  return std::visit([](const auto& s) { return s.states(); }, impl_);
}

double Strategy::coop_prob(State s) const noexcept {
  if (const auto* p = std::get_if<PureStrategy>(&impl_)) {
    return p->move(s) == Move::Cooperate ? 1.0 : 0.0;
  }
  if (const auto* n = std::get_if<NWayStrategy>(&impl_)) {
    return n->action_prob(0);  // action 0 is the "cooperate" analogue
  }
  return std::get<MixedStrategy>(impl_).coop_prob(s);
}

MixedStrategy Strategy::to_mixed() const {
  if (const auto* p = std::get_if<PureStrategy>(&impl_)) {
    return MixedStrategy::from_pure(*p);
  }
  if (const auto* n = std::get_if<NWayStrategy>(&impl_)) {
    EGT_REQUIRE_MSG(n->actions() == 2,
                    "only 2-action n-way strategies have a mixed view");
    return MixedStrategy::from_probs({n->action_prob(0)});
  }
  return std::get<MixedStrategy>(impl_);
}

std::uint64_t Strategy::hash() const noexcept {
  std::uint64_t tag = 0;
  if (is_pure()) {
    tag = 0x9e3779b97f4a7c15ULL;
  } else if (is_nway()) {
    tag = 0x2545F4914F6CDD1DULL;
  }
  return util::mix64(
      tag ^ std::visit([](const auto& s) { return s.hash(); }, impl_));
}

std::uint64_t Strategy::pair_key(std::uint64_t hash_a,
                                 std::uint64_t hash_b) noexcept {
  // Mix the second hash first so (a, b) and (b, a) land on different keys.
  return util::mix64(hash_a ^ util::mix64(hash_b + 0x9e3779b97f4a7c15ULL));
}

std::vector<std::byte> Strategy::serialize() const {
  std::vector<std::byte> out;
  if (is_nway()) {
    const auto& n = as_nway();
    out.push_back(static_cast<std::byte>(2));
    out.push_back(static_cast<std::byte>(0));  // memory, always 0
    out.push_back(static_cast<std::byte>(n.actions()));
    const auto& probs = n.probs();
    const auto* p = reinterpret_cast<const std::byte*>(probs.data());
    out.insert(out.end(), p, p + probs.size() * sizeof(double));
    return out;
  }
  out.push_back(static_cast<std::byte>(is_pure() ? 0 : 1));
  out.push_back(static_cast<std::byte>(memory()));
  if (is_pure()) {
    const auto words = as_pure().table().words();
    const auto* p = reinterpret_cast<const std::byte*>(words.data());
    out.insert(out.end(), p, p + words.size() * sizeof(std::uint64_t));
  } else {
    const auto& probs = as_mixed().probs();
    const auto* p = reinterpret_cast<const std::byte*>(probs.data());
    out.insert(out.end(), p, p + probs.size() * sizeof(double));
  }
  return out;
}

Strategy Strategy::deserialize(const std::vector<std::byte>& bytes) {
  EGT_REQUIRE_MSG(bytes.size() >= 2, "strategy payload too short");
  const int kind = std::to_integer<int>(bytes[0]);
  EGT_REQUIRE_MSG(kind >= 0 && kind <= 2, "unknown strategy kind byte");
  if (kind == 2) {
    EGT_REQUIRE_MSG(std::to_integer<int>(bytes[1]) == 0,
                    "n-way strategies are memory-0");
    EGT_REQUIRE_MSG(bytes.size() >= 3, "n-way strategy payload too short");
    const auto actions =
        static_cast<std::uint32_t>(std::to_integer<int>(bytes[2]));
    EGT_REQUIRE_MSG(bytes.size() == 3 + actions * sizeof(double),
                    "n-way strategy payload size mismatch");
    std::vector<double> probs(actions);
    std::memcpy(probs.data(), bytes.data() + 3, actions * sizeof(double));
    return NWayStrategy::from_probs(std::move(probs));
  }
  const bool pure = kind == 0;
  const int memory = std::to_integer<int>(bytes[1]);
  EGT_REQUIRE(memory >= 0 && memory <= kMaxMemory);
  const std::uint32_t states = num_states(memory);
  if (pure) {
    const std::size_t nwords = (states + 63) / 64;
    EGT_REQUIRE_MSG(bytes.size() == 2 + nwords * sizeof(std::uint64_t),
                    "pure strategy payload size mismatch");
    PureStrategy s(memory);
    for (State i = 0; i < states; ++i) {
      std::uint64_t w;
      std::memcpy(&w, bytes.data() + 2 + (i / 64) * sizeof w, sizeof w);
      s.set_move(i, from_bit((w >> (i % 64)) & 1u));
    }
    return s;
  }
  EGT_REQUIRE_MSG(bytes.size() == 2 + states * sizeof(double),
                  "mixed strategy payload size mismatch");
  std::vector<double> probs(states);
  std::memcpy(probs.data(), bytes.data() + 2, states * sizeof(double));
  return MixedStrategy::from_probs(std::move(probs));
}

}  // namespace egt::game
