// AVX2+FMA lane kernel for the batch memory-one Markov solve (DESIGN.md
// §12). Compiled as its own translation unit with -mavx2 -mfma; callers
// reach it only through expected_totals_mem1's runtime dispatch
// (game/simd.hpp), so the rest of the library stays baseline-ISA.
//
// Four pairs ride the four lanes of each __m256d. All arithmetic is
// vertical (no cross-lane shuffles or horizontal reductions), so a pair's
// result is independent of its lane position and of the batch size —
// the property the fitness tier's bitwise invariants rely on. Relative to
// the scalar reference the kernel reassociates nothing, but FMA
// contraction perturbs rounding: agreement is 1e-12 relative, verified by
// simcheck --kernels and tests/game/batch_test.cpp.
#include "game/batch.hpp"

#if defined(EGT_SIMD_AVX2)

#include <immintrin.h>

#include <cstring>

namespace egt::game::batch {

namespace {

/// One group of four pairs: ca[o]/cb[o] hold the outcome-conditioned
/// cooperation probabilities of the four pairs in lanes 0..3.
inline void kernel4(const __m256d ca[4], const __m256d cb[4],
                    const PayoffMatrix& m, std::uint32_t rounds,
                    BatchTotals* out, int valid) {
  const __m256d one = _mm256_set1_pd(1.0);
  // Transition products T[next][cur]: the chain step is
  //   d'[next] = sum_cur d[cur] * T[next][cur].
  __m256d t0[4], t1[4], t2[4], t3[4];
  for (int o = 0; o < 4; ++o) {
    const __m256d ia = _mm256_sub_pd(one, ca[o]);
    const __m256d ib = _mm256_sub_pd(one, cb[o]);
    t0[o] = _mm256_mul_pd(ca[o], cb[o]);
    t1[o] = _mm256_mul_pd(ca[o], ib);
    t2[o] = _mm256_mul_pd(ia, cb[o]);
    t3[o] = _mm256_mul_pd(ia, ib);
  }
  const __m256d va0 = _mm256_set1_pd(m.reward);
  const __m256d va1 = _mm256_set1_pd(m.sucker);
  const __m256d va2 = _mm256_set1_pd(m.temptation);
  const __m256d va3 = _mm256_set1_pd(m.punishment);
  // B's payoff vector mirrors the CD/DC outcomes.
  const __m256d vb1 = va2;
  const __m256d vb2 = va1;

  // All-cooperate start: the whole mass sits on outcome CC.
  __m256d d0 = one;
  __m256d d1 = _mm256_setzero_pd();
  __m256d d2 = _mm256_setzero_pd();
  __m256d d3 = _mm256_setzero_pd();
  __m256d acc_pa = _mm256_setzero_pd();
  __m256d acc_pb = _mm256_setzero_pd();
  __m256d acc_ca = _mm256_setzero_pd();
  __m256d acc_cb = _mm256_setzero_pd();

  for (std::uint32_t r = 0; r < rounds; ++r) {
    const __m256d n0 = _mm256_fmadd_pd(
        d3, t0[3],
        _mm256_fmadd_pd(d2, t0[2],
                        _mm256_fmadd_pd(d1, t0[1], _mm256_mul_pd(d0, t0[0]))));
    const __m256d n1 = _mm256_fmadd_pd(
        d3, t1[3],
        _mm256_fmadd_pd(d2, t1[2],
                        _mm256_fmadd_pd(d1, t1[1], _mm256_mul_pd(d0, t1[0]))));
    const __m256d n2 = _mm256_fmadd_pd(
        d3, t2[3],
        _mm256_fmadd_pd(d2, t2[2],
                        _mm256_fmadd_pd(d1, t2[1], _mm256_mul_pd(d0, t2[0]))));
    const __m256d n3 = _mm256_fmadd_pd(
        d3, t3[3],
        _mm256_fmadd_pd(d2, t3[2],
                        _mm256_fmadd_pd(d1, t3[1], _mm256_mul_pd(d0, t3[0]))));
    acc_pa = _mm256_fmadd_pd(n0, va0, acc_pa);
    acc_pa = _mm256_fmadd_pd(n1, va1, acc_pa);
    acc_pa = _mm256_fmadd_pd(n2, va2, acc_pa);
    acc_pa = _mm256_fmadd_pd(n3, va3, acc_pa);
    acc_pb = _mm256_fmadd_pd(n0, va0, acc_pb);
    acc_pb = _mm256_fmadd_pd(n1, vb1, acc_pb);
    acc_pb = _mm256_fmadd_pd(n2, vb2, acc_pb);
    acc_pb = _mm256_fmadd_pd(n3, va3, acc_pb);
    acc_ca = _mm256_add_pd(acc_ca, _mm256_add_pd(n0, n1));
    acc_cb = _mm256_add_pd(acc_cb, _mm256_add_pd(n0, n2));
    d0 = n0;
    d1 = n1;
    d2 = n2;
    d3 = n3;
  }

  alignas(32) double pa[4], pb[4], cca[4], ccb[4];
  _mm256_store_pd(pa, acc_pa);
  _mm256_store_pd(pb, acc_pb);
  _mm256_store_pd(cca, acc_ca);
  _mm256_store_pd(ccb, acc_cb);
  for (int k = 0; k < valid; ++k) {
    out[k].payoff_a = pa[k];
    out[k].payoff_b = pb[k];
    out[k].coop_a = cca[k];
    out[k].coop_b = ccb[k];
  }
}

}  // namespace

void expected_totals_mem1_avx2(const Mem1Batch& batch,
                               const PayoffMatrix& payoff,
                               std::uint32_t rounds, BatchTotals* out) {
  const std::size_t n = batch.size();
  std::size_t k = 0;
  __m256d ca[4], cb[4];
  for (; k + 4 <= n; k += 4) {
    for (int o = 0; o < 4; ++o) {
      ca[o] = _mm256_loadu_pd(batch.pa(o).data() + k);
      cb[o] = _mm256_loadu_pd(batch.pb(o).data() + k);
    }
    kernel4(ca, cb, payoff, rounds, out + k, 4);
  }
  if (k < n) {
    // Remainder group: pad the empty lanes with a benign probability —
    // lane arithmetic is vertical, so padding cannot perturb live lanes.
    alignas(32) double buf_a[4][4], buf_b[4][4];
    const int valid = static_cast<int>(n - k);
    for (int o = 0; o < 4; ++o) {
      for (int l = 0; l < 4; ++l) {
        buf_a[o][l] = l < valid ? batch.pa(o)[k + l] : 0.5;
        buf_b[o][l] = l < valid ? batch.pb(o)[k + l] : 0.5;
      }
      ca[o] = _mm256_load_pd(buf_a[o]);
      cb[o] = _mm256_load_pd(buf_b[o]);
    }
    kernel4(ca, cb, payoff, rounds, out + k, valid);
  }
}

}  // namespace egt::game::batch

#endif  // EGT_SIMD_AVX2
