#include "game/reactive.hpp"

#include <cmath>

#include "util/check.hpp"

namespace egt::game::reactive {

bool is_valid(const ReactiveStrategy& s) noexcept {
  auto ok = [](double v) { return v >= 0.0 && v <= 1.0; };
  return ok(s.y) && ok(s.p) && ok(s.q);
}

MixedStrategy to_memory_one(const ReactiveStrategy& s) {
  EGT_REQUIRE_MSG(is_valid(s), "reactive probabilities out of [0,1]");
  // States (my, opp): CC=0, CD=1, DC=2, DD=3 — only the opponent bit acts.
  return MixedStrategy::mem1({s.p, s.q, s.p, s.q});
}

CooperationLevels stationary_cooperation(const ReactiveStrategy& a,
                                         const ReactiveStrategy& b) {
  EGT_REQUIRE_MSG(is_valid(a) && is_valid(b),
                  "reactive probabilities out of [0,1]");
  const double s1 = a.p - a.q;
  const double s2 = b.p - b.q;
  const double denom = 1.0 - s1 * s2;
  EGT_REQUIRE_MSG(std::fabs(denom) > 1e-12,
                  "closed form undefined: |(p1-q1)(p2-q2)| = 1 "
                  "(deterministic echo pair)");
  CooperationLevels c;
  c.c1 = (a.q + s1 * b.q) / denom;
  c.c2 = (b.q + s2 * a.q) / denom;
  return c;
}

double stationary_payoff(const ReactiveStrategy& a, const ReactiveStrategy& b,
                         const PayoffMatrix& payoff) {
  const auto c = stationary_cooperation(a, b);
  // Moves are independent across players in the stationary regime of
  // reactive pairs: P(I play C) = c1, P(opponent plays C) = c2.
  return payoff.reward * c.c1 * c.c2 + payoff.sucker * c.c1 * (1.0 - c.c2) +
         payoff.temptation * (1.0 - c.c1) * c.c2 +
         payoff.punishment * (1.0 - c.c1) * (1.0 - c.c2);
}

double gtft_optimal_generosity(const PayoffMatrix& payoff) {
  EGT_REQUIRE_MSG(payoff.is_prisoners_dilemma(),
                  "GTFT generosity is defined for Prisoner's Dilemmas");
  const double a =
      1.0 - (payoff.temptation - payoff.reward) /
                (payoff.reward - payoff.sucker);
  const double b = (payoff.reward - payoff.punishment) /
                   (payoff.temptation - payoff.punishment);
  return std::min(a, b);
}

ReactiveStrategy tft() noexcept { return {1.0, 1.0, 0.0}; }

ReactiveStrategy gtft(const PayoffMatrix& payoff) {
  return {1.0, 1.0, gtft_optimal_generosity(payoff)};
}

ReactiveStrategy all_c() noexcept { return {1.0, 1.0, 1.0}; }
ReactiveStrategy all_d() noexcept { return {0.0, 0.0, 0.0}; }

}  // namespace egt::game::reactive
