#include "game/ipd.hpp"

#include "game/batch.hpp"
#include "util/check.hpp"

namespace egt::game {

namespace {

inline Move next_move(const PureStrategy& s, State st, util::StreamRng&) {
  return s.move(st);
}

inline Move next_move(const MixedStrategy& s, State st, util::StreamRng& rng) {
  return s.move(st, rng);
}

}  // namespace

IpdEngine::IpdEngine(int memory, IpdParams params, LookupMode mode)
    : params_(params), codec_(memory), mode_(mode) {
  EGT_REQUIRE_MSG(params.rounds > 0, "IPD needs at least one round");
  EGT_REQUIRE_MSG(params.noise >= 0.0 && params.noise <= 1.0,
                  "noise out of [0,1]");
  if (mode_ == LookupMode::LinearSearch) {
    table_.emplace(memory);
  }
}

template <class StratA, class StratB>
GameResult IpdEngine::run(const StratA& a, const StratB& b,
                          util::StreamRng& rng) const {
  GameResult res;
  res.rounds = params_.rounds;

  State view_a = StateCodec::initial();
  State view_b = StateCodec::initial();
  const bool noisy = params_.noise > 0.0;

  for (std::uint32_t r = 0; r < params_.rounds; ++r) {
    State sa = view_a;
    State sb = view_b;
    if (mode_ == LookupMode::LinearSearch) {
      sa = table_->find_state(view_a);
      sb = table_->find_state(view_b);
    }
    Move ma = next_move(a, sa, rng);
    Move mb = next_move(b, sb, rng);
    if (noisy) {
      if (util::bernoulli(rng, params_.noise)) ma = opposite(ma);
      if (util::bernoulli(rng, params_.noise)) mb = opposite(mb);
    }
    res.payoff_a += params_.payoff.payoff(ma, mb);
    res.payoff_b += params_.payoff.payoff(mb, ma);
    res.coop_a += ma == Move::Cooperate ? 1u : 0u;
    res.coop_b += mb == Move::Cooperate ? 1u : 0u;
    view_a = codec_.push(view_a, ma, mb);
    view_b = codec_.push(view_b, mb, ma);
  }
  return res;
}

GameResult IpdEngine::play(const Strategy& a, const Strategy& b,
                           util::StreamRng rng) const {
  EGT_REQUIRE_MSG(a.memory() == memory() && b.memory() == memory(),
                  "strategy memory depth must match the engine");
  if (a.is_pure() && b.is_pure()) {
    if (params_.noise == 0.0 && mode_ == LookupMode::Indexed) {
      // Deterministic game: the bit-packed walker reproduces the round
      // loop bit-for-bit (and, like the loop, consumes no RNG draws).
      return batch::run_pure_game(a.as_pure(), b.as_pure(), params_.payoff,
                                  params_.rounds);
    }
    return run(a.as_pure(), b.as_pure(), rng);
  }
  if (a.is_pure()) {
    return run(a.as_pure(), b.as_mixed(), rng);
  }
  if (b.is_pure()) {
    return run(a.as_mixed(), b.as_pure(), rng);
  }
  return run(a.as_mixed(), b.as_mixed(), rng);
}

GameResult IpdEngine::play(const PureStrategy& a, const PureStrategy& b,
                           util::StreamRng rng) const {
  EGT_REQUIRE_MSG(a.memory() == memory() && b.memory() == memory(),
                  "strategy memory depth must match the engine");
  if (params_.noise == 0.0 && mode_ == LookupMode::Indexed) {
    return batch::run_pure_game(a, b, params_.payoff, params_.rounds);
  }
  return run(a, b, rng);
}

}  // namespace egt::game
