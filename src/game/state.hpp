// Memory-n game state machinery.
//
// A *state* is the content of the last n rounds as seen by one player: for
// each remembered round, the player's own move and the opponent's move
// (2 bits per round), so there are 4^n states (paper §III-D). We encode a
// state as an integer: round t-1 (most recent) occupies the lowest 2 bits,
// with the player's own move as the high bit of the pair:
//
//   state = sum_k 4^k * (2 * my_move[t-1-k] + opp_move[t-1-k])
//
// The opponent observes the mirrored state (bits in each pair swapped). The
// initial history is "everyone cooperated", i.e. state 0, which matches the
// paper's zero-initialised current_view.
//
// Two lookup paths exist:
//  * StateCodec — O(1) arithmetic push/encode (the library default);
//  * LinearStateTable — materialises the state list and locates the current
//    view by linear search, which is what the paper's find_state pseudocode
//    does and what it blames for the runtime growth with memory steps.
//    Kept as an ablation (bench/ablation_state_lookup).
#pragma once

#include <cstdint>
#include <vector>

#include "game/move.hpp"

namespace egt::game {

using State = std::uint32_t;

/// Maximum memory steps supported (memory-six: 4,096 states, as the paper).
inline constexpr int kMaxMemory = 6;

/// Number of states for memory-n: 4^n (1 for memory-zero).
constexpr std::uint32_t num_states(int memory) noexcept {
  return 1u << (2 * memory);
}

/// Number of pure strategies is 2^(4^n); returns the exponent 4^n.
constexpr std::uint32_t pure_strategy_bits(int memory) noexcept {
  return num_states(memory);
}

/// O(1) state arithmetic for a fixed memory depth.
class StateCodec {
 public:
  explicit StateCodec(int memory);

  int memory() const noexcept { return memory_; }
  std::uint32_t states() const noexcept { return states_; }

  /// Append a round (my move, opponent's move) to `s`, dropping the oldest.
  State push(State s, Move mine, Move theirs) const noexcept {
    return ((s << 2) | static_cast<State>(2 * to_bit(mine) + to_bit(theirs))) &
           mask_;
  }

  /// The same history seen from the opponent's side: each 2-bit pair swaps
  /// (my move <-> opponent move).
  State swap_perspective(State s) const noexcept {
    const State mine = (s >> 1) & kOddBits;   // my-move bits, shifted down
    const State theirs = s & kOddBits;        // opp-move bits
    return (theirs << 1) | mine;
  }

  /// My move in remembered round k (0 = most recent) of state `s`.
  Move my_move(State s, int k) const noexcept {
    return from_bit((s >> (2 * k + 1)) & 1u);
  }
  /// Opponent's move in remembered round k of state `s`.
  Move opp_move(State s, int k) const noexcept {
    return from_bit((s >> (2 * k)) & 1u);
  }

  /// Encode a full history (round 0 = most recent); vectors sized memory().
  State encode(const std::vector<Move>& mine,
               const std::vector<Move>& theirs) const;

  /// Initial state: all-cooperate history.
  static constexpr State initial() noexcept { return 0; }

 private:
  // 0b0101...01 over 2*memory bits.
  static constexpr State kOddBits = 0x55555555u;

  int memory_;
  std::uint32_t states_;
  State mask_;
};

/// The paper's state table: an explicit list of per-round move patterns,
/// searched linearly for the pattern matching the current view (the
/// `find_state` of the IPD pseudocode in §IV-C).
class LinearStateTable {
 public:
  explicit LinearStateTable(int memory);

  int memory() const noexcept { return codec_.memory(); }
  std::uint32_t states() const noexcept { return codec_.states(); }

  /// Linear search for the row equal to `view`; `view` holds 2 bits per
  /// remembered round in the same layout as StateCodec.
  State find_state(State view) const noexcept;

  const StateCodec& codec() const noexcept { return codec_; }

 private:
  StateCodec codec_;
  std::vector<State> rows_;  // rows_[i] is the view pattern of state i
};

}  // namespace egt::game
