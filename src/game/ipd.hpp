// The Iterated Prisoner's Dilemma engine (paper §IV-C).
//
// Plays two memory-n strategies against each other for a fixed number of
// rounds (200 in the paper), with optional per-move execution errors
// (§III-E). Both players start from the all-cooperate history (state 0).
//
// Randomness comes from a caller-supplied counter-based StreamRng so that a
// game's outcome depends only on (seed, stream key), never on which rank or
// thread computes it — the determinism backbone of the parallel engine.
#pragma once

#include <cstdint>
#include <optional>

#include "game/payoff.hpp"
#include "game/state.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::game {

/// Outcome of one iterated game.
struct GameResult {
  double payoff_a = 0.0;  ///< total (summed) payoff of player A
  double payoff_b = 0.0;
  std::uint32_t rounds = 0;
  std::uint32_t coop_a = 0;  ///< number of rounds A cooperated
  std::uint32_t coop_b = 0;

  double mean_payoff_a() const noexcept {
    return rounds == 0 ? 0.0 : payoff_a / rounds;
  }
  double mean_payoff_b() const noexcept {
    return rounds == 0 ? 0.0 : payoff_b / rounds;
  }
  double coop_rate() const noexcept {
    return rounds == 0 ? 0.0
                       : static_cast<double>(coop_a + coop_b) / (2.0 * rounds);
  }
};

/// Game-level parameters (defaults are the paper's §V-C settings).
struct IpdParams {
  PayoffMatrix payoff = paper_payoff();
  std::uint32_t rounds = 200;
  double noise = 0.0;  ///< probability a move is executed flipped
};

/// How the engine maps the current view to a state id. `Indexed` is O(1)
/// arithmetic; `LinearSearch` replicates the paper's find_state scan and is
/// kept for the ablation study.
enum class LookupMode { Indexed, LinearSearch };

class IpdEngine {
 public:
  explicit IpdEngine(int memory, IpdParams params = {},
                     LookupMode mode = LookupMode::Indexed);

  int memory() const noexcept { return codec_.memory(); }
  const IpdParams& params() const noexcept { return params_; }
  LookupMode lookup_mode() const noexcept { return mode_; }
  const StateCodec& codec() const noexcept { return codec_; }

  /// Play one iterated game. Strategy memory depths must equal the
  /// engine's. `rng` is consumed (pure strategies with zero noise draw
  /// nothing, keeping the pure path deterministic and fast).
  GameResult play(const Strategy& a, const Strategy& b,
                  util::StreamRng rng) const;

  /// Fast path for two pure strategies.
  GameResult play(const PureStrategy& a, const PureStrategy& b,
                  util::StreamRng rng) const;

 private:
  template <class StratA, class StratB>
  GameResult run(const StratA& a, const StratB& b, util::StreamRng& rng) const;

  IpdParams params_;
  StateCodec codec_;
  LookupMode mode_;
  std::optional<LinearStateTable> table_;
};

}  // namespace egt::game
