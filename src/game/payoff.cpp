#include "game/payoff.hpp"

#include <sstream>

#include "util/check.hpp"

namespace egt::game {

std::string PayoffMatrix::to_string() const {
  std::ostringstream os;
  os << "[R=" << reward << ", S=" << sucker << ", T=" << temptation
     << ", P=" << punishment << "]";
  return os.str();
}

PayoffMatrix donation_payoff(double benefit, double cost) {
  EGT_REQUIRE_MSG(benefit > cost && cost > 0,
                  "donation game requires b > c > 0");
  return {benefit - cost, -cost, benefit, 0.0};
}

PayoffMatrix snowdrift_payoff(double benefit, double cost) {
  EGT_REQUIRE_MSG(benefit > cost && cost > 0,
                  "snowdrift requires b > c > 0");
  return {benefit - cost / 2.0, benefit - cost, benefit, 0.0};
}

}  // namespace egt::game
