#include "game/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace egt::game::simd {

namespace {

bool env_force_scalar() {
  const char* v = std::getenv("EGT_FORCE_SCALAR");
  return v != nullptr && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "") != 0;
}

std::atomic<bool>& force_flag() {
  static std::atomic<bool> flag{env_force_scalar()};
  return flag;
}

}  // namespace

bool compiled_with_avx2() noexcept {
#if defined(EGT_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

Kernel active_kernel() noexcept {
  if (force_flag().load(std::memory_order_relaxed)) return Kernel::Scalar;
  if (compiled_with_avx2() && cpu_supports_avx2()) return Kernel::Avx2;
  return Kernel::Scalar;
}

const char* kernel_name(Kernel k) noexcept {
  return k == Kernel::Avx2 ? "avx2" : "scalar";
}

void set_force_scalar(bool force) noexcept {
  force_flag().store(force, std::memory_order_relaxed);
}

bool force_scalar() noexcept {
  return force_flag().load(std::memory_order_relaxed);
}

}  // namespace egt::game::simd
