#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "core/checkpoint_store.hpp"
#include "core/engine.hpp"
#include "core/trace.hpp"
#include "obs/metrics_stream.hpp"
#include "serve/job_checkpoint.hpp"
#include "serve/jobspec.hpp"
#include "util/check.hpp"

namespace egt::serve {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

EngineCounters counters_from(const obs::MetricsSnapshot& s) {
  EngineCounters c;
  c.generations = s.counter_value("engine.generations");
  c.pc_events = s.counter_value("engine.pc_events");
  c.adoptions = s.counter_value("engine.adoptions");
  c.moran_events = s.counter_value("engine.moran_events");
  c.mutations = s.counter_value("engine.mutations");
  c.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  c.games_played = s.counter_value("engine.games_played");
  return c;
}

/// Internal control-flow signals for the cooperative cancellation points.
struct AttemptAborted {
  Scheduler::FaultAction action;
};
struct AttemptHardStopped {};
struct AttemptGraceful {};
struct AttemptCancelled {};

}  // namespace

const char* to_string(JobEvent::Kind k) noexcept {
  switch (k) {
    case JobEvent::Kind::Submitted:
      return "submitted";
    case JobEvent::Kind::Rejected:
      return "rejected";
    case JobEvent::Kind::Started:
      return "started";
    case JobEvent::Kind::Preempted:
      return "preempted";
    case JobEvent::Kind::Retrying:
      return "retrying";
    case JobEvent::Kind::Completed:
      return "completed";
    case JobEvent::Kind::Failed:
      return "failed";
    case JobEvent::Kind::Cancelled:
      return "cancelled";
    case JobEvent::Kind::Recovered:
      return "recovered";
  }
  return "unknown";
}

Scheduler::Scheduler(SchedulerOptions options) : options_(std::move(options)) {
  EGT_REQUIRE_MSG(options_.workers >= 1, "scheduler needs >= 1 worker");
  EGT_REQUIRE_MSG(options_.queue_capacity >= 1,
                  "scheduler queue capacity must be >= 1");
  EGT_REQUIRE_MSG(options_.max_attempts >= 1,
                  "scheduler max_attempts must be >= 1");
  if (!options_.data_dir.empty()) {
    fs::create_directories(options_.data_dir);
    fs::create_directories(options_.data_dir + "/ckpt");
    if (options_.metrics_stream_every > 0) {
      fs::create_directories(options_.data_dir + "/streams");
    }
  }
}

Scheduler::~Scheduler() {
  if (!hard_.load(std::memory_order_relaxed)) shutdown();
}

std::string Scheduler::wal_path() const {
  return options_.data_dir + "/jobs.wal";
}

std::string Scheduler::job_ckpt_dir(std::uint64_t id) const {
  return options_.data_dir + "/ckpt/job_" + std::to_string(id);
}

obs::Counter* Scheduler::serve_counter(const char* name) {
  if (options_.metrics == nullptr) return nullptr;
  return &options_.metrics->counter(name);
}

void Scheduler::bump(const char* name, std::uint64_t n) {
  if (options_.metrics != nullptr) options_.metrics->counter(name).inc(n);
}

void Scheduler::ensure_journal() {
  if (options_.data_dir.empty() || journal_ != nullptr) return;
  journal_ = std::make_unique<JobJournal>(wal_path());
}

void Scheduler::append_journal(const JournalRecord& rec) {
  if (options_.data_dir.empty()) return;
  ensure_journal();
  try {
    journal_->append(rec);
  } catch (const std::exception&) {
    // Warn-and-continue (same contract as checkpoint write errors): an
    // unwritable journal degrades durability, never the running jobs.
    bump("serve.journal_write_errors");
  }
}

void Scheduler::emit(JobEvent::Kind kind, const JobRec& job,
                     std::uint64_t generation, const std::string& detail) {
  if (!event_sink_) return;
  JobEvent ev;
  ev.kind = kind;
  ev.job_id = job.id;
  ev.tenant = job.tenant;
  ev.generation = generation;
  ev.detail = detail;
  event_sink_(ev);
}

Scheduler::RecoveryReport Scheduler::recover() {
  RecoveryReport report;
  if (options_.data_dir.empty()) return report;
  EGT_REQUIRE_MSG(!started_ && journal_ == nullptr,
                  "recover() must run before start()");
  const auto replay = JobJournal::replay(wal_path());
  report.replayed = replay.records.size();
  report.corrupt_skipped = replay.corrupt_skipped;
  report.truncated_tail = replay.truncated_tail;
  bump("serve.journal_records_replayed", replay.records.size());
  bump("serve.journal_corrupt_skipped", replay.corrupt_skipped);
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalRecord& rec : replay.records) {
    switch (rec.type) {
      case JournalRecord::Type::Submitted: {
        if (jobs_.count(rec.job_id) != 0) break;  // idempotent replay
        auto job = std::make_unique<JobRec>();
        job->id = rec.job_id;
        job->tenant = rec.tenant;
        job->spec_json = rec.spec_json;
        try {
          job->config = parse_job_spec(rec.spec_json).config;
        } catch (const std::exception& e) {
          // The canonical spec no longer parses (foreign edit, version
          // skew): surface the job as Failed instead of dropping it.
          job->state = JobState::Failed;
          job->failure = std::string("spec no longer parses: ") + e.what();
        }
        job->submit_order = next_order_++;
        jobs_.emplace(rec.job_id, std::move(job));
        break;
      }
      case JournalRecord::Type::Completed: {
        const auto it = jobs_.find(rec.job_id);
        if (it == jobs_.end()) break;
        it->second->state = JobState::Completed;
        it->second->result = rec.result;
        it->second->next_generation = rec.result.generations;
        it->second->attempts = rec.result.attempts;
        it->second->preemptions = rec.result.preemptions;
        break;
      }
      case JournalRecord::Type::Failed: {
        const auto it = jobs_.find(rec.job_id);
        if (it == jobs_.end()) break;
        it->second->state = JobState::Failed;
        it->second->failure = rec.reason;
        break;
      }
      case JournalRecord::Type::Cancelled: {
        const auto it = jobs_.find(rec.job_id);
        if (it == jobs_.end()) break;
        it->second->state = JobState::Cancelled;
        break;
      }
    }
    next_id_ = std::max(next_id_, rec.job_id + 1);
  }
  std::vector<JournalRecord> compacted;
  for (const auto& [id, job] : jobs_) {
    JournalRecord sub;
    sub.type = JournalRecord::Type::Submitted;
    sub.job_id = job->id;
    sub.tenant = job->tenant;
    sub.spec_json = job->spec_json;
    compacted.push_back(std::move(sub));
    switch (job->state) {
      case JobState::Completed: {
        JournalRecord rec;
        rec.type = JournalRecord::Type::Completed;
        rec.job_id = job->id;
        rec.result = job->result;
        compacted.push_back(std::move(rec));
        ++report.completed;
        break;
      }
      case JobState::Failed: {
        JournalRecord rec;
        rec.type = JournalRecord::Type::Failed;
        rec.job_id = job->id;
        rec.reason = job->failure;
        compacted.push_back(std::move(rec));
        ++report.completed;
        break;
      }
      case JobState::Cancelled: {
        JournalRecord rec;
        rec.type = JournalRecord::Type::Cancelled;
        rec.job_id = job->id;
        compacted.push_back(std::move(rec));
        ++report.completed;
        break;
      }
      case JobState::Queued:
      case JobState::Running: {
        // Requeued. Resume from a checkpoint when one survived.
        job->state = JobState::Queued;
        std::error_code ec;
        if (fs::is_directory(job_ckpt_dir(job->id), ec)) {
          core::CheckpointDir dir(job_ckpt_dir(job->id),
                                  options_.checkpoint_keep);
          job->has_checkpoint = !dir.generations().empty();
        }
        ++report.requeued;
        emit(JobEvent::Kind::Recovered, *job, job->next_generation);
        break;
      }
    }
  }
  if (!replay.missing || !compacted.empty()) {
    try {
      JobJournal::compact(wal_path(), compacted);
    } catch (const std::exception&) {
      bump("serve.journal_write_errors");
    }
  }
  bump("serve.jobs_recovered", report.requeued);
  recovered_ = true;
  return report;
}

void Scheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  ensure_journal();
  started_ = true;
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

SubmitOutcome Scheduler::submit(const std::string& spec_json) {
  SubmitOutcome out;
  JobSpec spec;
  try {
    spec = parse_job_spec(spec_json);
  } catch (const std::exception& e) {
    out.rejected = std::string("invalid: ") + e.what();
    bump("serve.jobs_rejected_invalid");
    return out;
  }
  const std::string canonical = job_spec_to_json(spec);
  std::unique_ptr<JobRec> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t live = 0;
    for (const auto& [id, j] : jobs_) {
      if (j->state == JobState::Queued || j->state == JobState::Running) {
        ++live;
      }
    }
    if (live >= options_.queue_capacity) {
      // Load shed before journaling: a rejected job leaves no trace to
      // replay, so backlog is bounded on disk as well as in memory.
      out.rejected = "capacity";
      bump("serve.jobs_rejected_capacity");
      return out;
    }
    job = std::make_unique<JobRec>();
    job->id = next_id_++;
    job->tenant = spec.tenant;
    job->spec_json = canonical;
    job->config = spec.config;
    job->submit_order = next_order_++;
    out.accepted = true;
    out.job_id = job->id;
  }
  // Durable before acknowledged: the Submitted record is fsynced before
  // the caller learns the id, so an accepted job can never be lost.
  JournalRecord rec;
  rec.type = JournalRecord::Type::Submitted;
  rec.job_id = job->id;
  rec.tenant = job->tenant;
  rec.spec_json = canonical;
  append_journal(rec);
  JobRec* raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw = job.get();
    jobs_.emplace(raw->id, std::move(job));
  }
  bump("serve.jobs_submitted");
  emit(JobEvent::Kind::Submitted, *raw, 0);
  work_cv_.notify_one();
  return out;
}

bool Scheduler::cancel(std::uint64_t job_id) {
  JobRec* terminal = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    JobRec& job = *it->second;
    switch (job.state) {
      case JobState::Queued:
        job.state = JobState::Cancelled;
        terminal = &job;
        break;
      case JobState::Running:
        // Cooperative: the owning worker sees the flag at the next
        // generation boundary and finishes the cancellation itself.
        job.cancel_requested.store(true, std::memory_order_relaxed);
        return true;
      default:
        return false;
    }
  }
  JournalRecord rec;
  rec.type = JournalRecord::Type::Cancelled;
  rec.job_id = job_id;
  append_journal(rec);
  bump("serve.jobs_cancelled");
  emit(JobEvent::Kind::Cancelled, *terminal, terminal->next_generation);
  drain_cv_.notify_all();
  return true;
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    if (graceful_.load(std::memory_order_relaxed) ||
        hard_.load(std::memory_order_relaxed)) {
      return true;  // stopping: nothing more will finish
    }
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::Queued || job->state == JobState::Running) {
        return false;
      }
    }
    return true;
  });
}

void Scheduler::shutdown() {
  graceful_.store(true, std::memory_order_relaxed);
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  drain_cv_.notify_all();
}

void Scheduler::hard_stop() {
  hard_.store(true, std::memory_order_relaxed);
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  drain_cv_.notify_all();
}

std::vector<JobStatus> Scheduler::statuses() const {
  std::vector<JobStatus> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    JobStatus s;
    s.id = job->id;
    s.tenant = job->tenant;
    s.state = job->state;
    s.attempts = job->attempts;
    s.preemptions = job->preemptions;
    s.next_generation = job->next_generation;
    s.failure = job->failure;
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<JobState> Scheduler::state(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->state;
}

std::optional<JobResult> Scheduler::result(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second->state != JobState::Completed) {
    return std::nullopt;
  }
  return it->second->result;
}

Scheduler::JobRec* Scheduler::pick_runnable_locked(Clock::time_point now) {
  JobRec* best = nullptr;
  std::uint64_t best_tenant_gens = 0;
  for (auto& [id, job] : jobs_) {
    if (job->state != JobState::Queued) continue;
    if (job->not_before > now) continue;
    const std::uint64_t tg = tenant_generations_[job->tenant];
    // Fair share: least-served tenant first, FIFO inside a tenant.
    if (best == nullptr || tg < best_tenant_gens ||
        (tg == best_tenant_gens && job->submit_order < best->submit_order)) {
      best = job.get();
      best_tenant_gens = tg;
    }
  }
  return best;
}

std::optional<Clock::time_point> Scheduler::earliest_backoff_locked() const {
  std::optional<Clock::time_point> earliest;
  for (const auto& [id, job] : jobs_) {
    if (job->state != JobState::Queued) continue;
    if (!earliest || job->not_before < *earliest) {
      earliest = job->not_before;
    }
  }
  return earliest;
}

bool Scheduler::other_job_waiting(std::uint64_t self_id) {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : jobs_) {
    if (id == self_id) continue;
    if (job->state == JobState::Queued && job->not_before <= now) return true;
  }
  return false;
}

bool Scheduler::commit_checkpoint(JobRec& job, const core::Engine& engine,
                                  const EngineCounters& counters,
                                  std::uint32_t attempts,
                                  std::uint32_t preemptions) {
  if (options_.data_dir.empty()) return false;
  try {
    const std::string dir = job_ckpt_dir(job.id);
    fs::create_directories(dir);
    core::CheckpointDir store(dir, options_.checkpoint_keep);
    store.commit(engine.generation(),
                 encode_job_checkpoint(capture_job_checkpoint(
                     engine, counters, attempts, preemptions)));
    bump("serve.checkpoints_written");
    return true;
  } catch (const std::exception&) {
    bump("serve.checkpoint_write_errors");
    return false;
  }
}

Scheduler::AttemptResult Scheduler::run_attempt(JobRec& job) {
  AttemptResult out;
  out.attempts = job.attempts;
  out.preemptions = job.preemptions;
  obs::MetricsRegistry reg;
  EngineCounters base{};
  std::optional<core::Engine> engine;
  // Resume from the newest intact checkpoint; damage falls back to older
  // generations (CheckpointDir) and, past that, to a fresh start — a
  // deterministic engine makes every resume point bit-exact.
  if (job.has_checkpoint && !options_.data_dir.empty()) {
    std::error_code ec;
    if (fs::is_directory(job_ckpt_dir(job.id), ec)) {
      core::CheckpointDir store(job_ckpt_dir(job.id), options_.checkpoint_keep);
      const auto loaded = store.newest_intact(
          [this](std::uint64_t, const std::string&) {
            bump("serve.checkpoint_fallbacks");
          });
      if (loaded) {
        try {
          JobCheckpoint ckpt = decode_job_checkpoint(loaded->payload);
          base = ckpt.counters;
          out.attempts = std::max(out.attempts, ckpt.attempts + 1);
          out.preemptions = std::max(out.preemptions, ckpt.preemptions);
          engine.emplace(
              resume_job_engine(job.config, std::move(ckpt), &reg));
          bump("serve.jobs_resumed");
        } catch (const std::exception&) {
          bump("serve.checkpoint_fallbacks");
          engine.reset();
        }
      }
    }
  }
  if (!engine) {
    base = EngineCounters{};
    engine.emplace(job.config, &reg);
  }
  const std::uint64_t start_generation = engine->generation();

  std::optional<obs::MetricsStreamWriter> stream;
  if (!options_.data_dir.empty() && options_.metrics_stream_every > 0) {
    obs::MetricsStreamWriter::Options so;
    so.path = options_.data_dir + "/streams/job_" + std::to_string(job.id) +
              "_a" + std::to_string(out.attempts) + ".ndjson";
    so.every = options_.metrics_stream_every;
    stream.emplace(std::move(so));
  }

  const auto attempt_start = Clock::now();
  std::uint64_t ran_this_slice = 0;
  try {
    while (engine->generation() < job.config.generations) {
      // Cooperative cancellation points, checked once per generation.
      if (hard_.load(std::memory_order_relaxed)) throw AttemptHardStopped{};
      if (job.cancel_requested.load(std::memory_order_relaxed)) {
        throw AttemptCancelled{};
      }
      if (graceful_.load(std::memory_order_relaxed)) throw AttemptGraceful{};
      if (options_.watchdog_seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            Clock::now() - attempt_start;
        if (elapsed.count() > options_.watchdog_seconds) {
          throw AttemptAborted{FaultAction::Expire};
        }
      }
      if (fault_hook_) {
        const FaultAction action = fault_hook_(job.id, engine->generation());
        if (action != FaultAction::None) throw AttemptAborted{action};
      }
      engine->step();
      ++ran_this_slice;
      if (stream && stream->wants(engine->last_record().generation)) {
        stream->on_generation(engine->last_record().generation,
                              engine->population(), reg);
      }
      if (options_.slice_generations > 0 &&
          ran_this_slice >= options_.slice_generations &&
          engine->generation() < job.config.generations &&
          other_job_waiting(job.id)) {
        // Preemption: persist and yield the worker to the waiting job.
        const EngineCounters counters =
            counters_add(base, counters_from(reg.snapshot()));
        out.preemptions += 1;
        out.checkpointed = commit_checkpoint(job, *engine, counters,
                                             out.attempts, out.preemptions);
        out.end = AttemptEnd::Preempted;
        out.reached_generation = engine->generation();
        out.ran_generations = engine->generation() - start_generation;
        return out;
      }
    }
  } catch (const AttemptAborted& abort) {
    out.end = AttemptEnd::Failure;
    out.error = abort.action == FaultAction::Kill ? "worker killed"
                                                  : "deadline expired";
    bump(abort.action == FaultAction::Kill ? "serve.worker_kills"
                                           : "serve.watchdog_expiries");
    out.reached_generation = engine->generation();
    out.ran_generations = engine->generation() - start_generation;
    return out;
  } catch (const AttemptHardStopped&) {
    // Simulated SIGKILL: no checkpoint, no journaling, no state change.
    out.end = AttemptEnd::Hard;
    return out;
  } catch (const AttemptGraceful&) {
    const EngineCounters counters =
        counters_add(base, counters_from(reg.snapshot()));
    out.checkpointed = commit_checkpoint(job, *engine, counters, out.attempts,
                                         out.preemptions);
    out.end = AttemptEnd::Graceful;
    out.reached_generation = engine->generation();
    out.ran_generations = engine->generation() - start_generation;
    return out;
  } catch (const AttemptCancelled&) {
    out.end = AttemptEnd::Cancelled;
    out.reached_generation = engine->generation();
    out.ran_generations = engine->generation() - start_generation;
    return out;
  } catch (const std::exception& e) {
    out.end = AttemptEnd::Failure;
    out.error = std::string("engine error: ") + e.what();
    return out;
  }

  out.end = AttemptEnd::Completed;
  out.reached_generation = engine->generation();
  out.ran_generations = engine->generation() - start_generation;
  JobResult& res = out.result;
  res.generations = engine->generation();
  res.table_hash = engine->population().table_hash();
  const auto fit = engine->population().fitness();
  res.fitness.assign(fit.begin(), fit.end());
  res.fitness_hash = core::hash_fitness(engine->population().fitness());
  res.counters = counters_add(base, counters_from(reg.snapshot()));
  res.attempts = out.attempts;
  res.preemptions = out.preemptions;
  return out;
}

void Scheduler::worker_main() {
  while (true) {
    JobRec* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        if (graceful_.load(std::memory_order_relaxed) ||
            hard_.load(std::memory_order_relaxed)) {
          return;
        }
        job = pick_runnable_locked(Clock::now());
        if (job != nullptr) break;
        const auto wake = earliest_backoff_locked();
        if (wake) {
          work_cv_.wait_until(lock, *wake);
        } else {
          work_cv_.wait(lock);
        }
      }
      job->state = JobState::Running;
      ++job->attempts;
    }
    emit(JobEvent::Kind::Started, *job, job->next_generation);
    AttemptResult res = run_attempt(*job);

    if (res.end == AttemptEnd::Hard) return;

    // Journal the terminal transitions before exposing them (WAL
    // discipline: acknowledged implies durable).
    if (res.end == AttemptEnd::Completed) {
      JournalRecord rec;
      rec.type = JournalRecord::Type::Completed;
      rec.job_id = job->id;
      rec.result = res.result;
      append_journal(rec);
    }

    bool permanent_failure = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenant_generations_[job->tenant] += res.ran_generations;
      job->attempts = res.attempts;
      job->preemptions = res.preemptions;
      switch (res.end) {
        case AttemptEnd::Completed:
          job->state = JobState::Completed;
          job->result = std::move(res.result);
          job->next_generation = job->result.generations;
          job->consecutive_failures = 0;
          break;
        case AttemptEnd::Preempted:
          job->state = JobState::Queued;
          job->next_generation = res.reached_generation;
          job->has_checkpoint = job->has_checkpoint || res.checkpointed;
          job->consecutive_failures = 0;
          job->not_before = Clock::time_point{};  // immediately runnable
          break;
        case AttemptEnd::Graceful:
          job->state = JobState::Queued;
          job->next_generation = res.reached_generation;
          job->has_checkpoint = job->has_checkpoint || res.checkpointed;
          break;
        case AttemptEnd::Cancelled:
          job->state = JobState::Cancelled;
          break;
        case AttemptEnd::Failure: {
          ++job->consecutive_failures;
          job->failure = res.error;
          if (job->consecutive_failures >= options_.max_attempts) {
            job->state = JobState::Failed;
            permanent_failure = true;
          } else {
            job->state = JobState::Queued;
            const double backoff =
                options_.backoff_base_seconds *
                std::pow(options_.backoff_factor,
                         static_cast<double>(job->consecutive_failures - 1));
            job->not_before =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(backoff));
          }
          break;
        }
        case AttemptEnd::Hard:
          break;  // unreachable
      }
    }

    switch (res.end) {
      case AttemptEnd::Completed:
        bump("serve.jobs_completed");
        emit(JobEvent::Kind::Completed, *job, res.reached_generation);
        break;
      case AttemptEnd::Preempted:
        bump("serve.preemptions");
        emit(JobEvent::Kind::Preempted, *job, res.reached_generation);
        break;
      case AttemptEnd::Graceful:
        break;
      case AttemptEnd::Cancelled: {
        JournalRecord rec;
        rec.type = JournalRecord::Type::Cancelled;
        rec.job_id = job->id;
        append_journal(rec);
        bump("serve.jobs_cancelled");
        emit(JobEvent::Kind::Cancelled, *job, res.reached_generation);
        break;
      }
      case AttemptEnd::Failure:
        if (permanent_failure) {
          JournalRecord rec;
          rec.type = JournalRecord::Type::Failed;
          rec.job_id = job->id;
          rec.reason = res.error;
          append_journal(rec);
          bump("serve.jobs_failed");
          emit(JobEvent::Kind::Failed, *job, res.reached_generation,
               res.error);
        } else {
          bump("serve.retries");
          emit(JobEvent::Kind::Retrying, *job, res.reached_generation,
               res.error);
        }
        break;
      case AttemptEnd::Hard:
        break;
    }
    work_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

}  // namespace egt::serve
