// Seeded chaos schedules for soak-testing the job scheduler.
//
// Every schedule is a pure function of one 64-bit seed: a handful of
// small jobs across several tenants and game presets, a scheduler shape
// (workers, slice quantum, max attempts), a fault plan (worker kills and
// watchdog expiries at chosen generations, injected deterministically via
// the scheduler's FaultHook), a mid-soak hard stop (the in-process
// SIGKILL stand-in) with optional torn-tail journal damage, then a second
// scheduler that recover()s and drains the survivors.
//
// The verdict is timing-independent even though thread interleavings are
// not: every completed job must be bit-identical — strategy table hash,
// fitness doubles, merged engine.* counters — to an undisturbed serial
// run of the same spec, no acknowledged job may be lost across the
// restart, and no job completed before the hard stop may run again after
// it.
//
// Shared between tools/egtd_soak (CLI, CI seed sweeps) and
// tests/serve/serve_chaos_test.cpp (a fixed slice of the same seed
// space).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace egt::serve {

/// One seed's worth of chaos.
struct ServeChaosSchedule {
  SchedulerOptions options;          ///< data_dir filled in by the runner
  std::vector<std::string> specs;    ///< job spec JSON, submission order
  /// generation → action, per job (job ids are 1-based submission order).
  std::map<std::uint64_t, std::map<std::uint64_t, Scheduler::FaultAction>>
      faults;
  /// Jobs completed before the hard stop fires (rest finish after
  /// recovery). Ranges over [0, specs.size()].
  std::size_t stop_after_completed = 0;
  bool tear_journal_tail = false;  ///< append a torn record before restart
  std::size_t cancel_job = 0;      ///< 1-based id to cancel early; 0 = none
  std::string summary;             ///< one line for log output
};

/// Deterministically derive schedule `seed`.
ServeChaosSchedule make_serve_schedule(std::uint64_t seed);

/// The soak verdict for one seed.
struct ServeChaosOutcome {
  bool ok = false;
  std::string detail;  ///< schedule summary, or what diverged
  std::size_t completed = 0;
  std::size_t requeued = 0;    ///< jobs the restart had to requeue
  std::uint64_t retries = 0;   ///< fault-induced retry dispatches observed
  std::uint64_t preemptions = 0;
};

/// Run schedule `seed` in `data_dir` (wiped first) and compare every
/// completed job against the serial oracle. Never throws — a thrown run
/// is reported as a failed outcome.
ServeChaosOutcome run_serve_schedule(std::uint64_t seed,
                                     const std::string& data_dir);

}  // namespace egt::serve
