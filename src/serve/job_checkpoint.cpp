#include "serve/job_checkpoint.hpp"

#include "core/wire.hpp"

namespace egt::serve {

std::vector<std::byte> encode_job_checkpoint(const JobCheckpoint& ckpt) {
  core::wire::Writer w;
  w.u64(kJobCheckpointMagic);
  w.u32(kJobCheckpointVersion);
  w.u32(ckpt.attempts);
  w.u32(ckpt.preemptions);
  w.u64(ckpt.counters.generations);
  w.u64(ckpt.counters.pc_events);
  w.u64(ckpt.counters.adoptions);
  w.u64(ckpt.counters.moran_events);
  w.u64(ckpt.counters.mutations);
  w.u64(ckpt.counters.pairs_evaluated);
  w.u64(ckpt.counters.games_played);
  w.bytes(ckpt.core);
  w.u32(static_cast<std::uint32_t>(ckpt.fitness.size()));
  w.doubles(ckpt.fitness.data(), ckpt.fitness.size());
  w.u32(static_cast<std::uint32_t>(ckpt.matrix.size()));
  w.doubles(ckpt.matrix.data(), ckpt.matrix.size());
  w.u32(static_cast<std::uint32_t>(ckpt.dedup.size()));
  for (const core::BlockFitness::DedupEntry& e : ckpt.dedup) {
    w.u64(e.a);
    w.u64(e.b);
    w.f64(e.payoff);
  }
  return w.take();
}

JobCheckpoint decode_job_checkpoint(const std::vector<std::byte>& blob) {
  core::wire::Reader r(blob, "job checkpoint");
  if (r.u64("magic") != kJobCheckpointMagic) {
    r.fail("not a job checkpoint");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kJobCheckpointVersion) {
    r.fail("unsupported job checkpoint version " + std::to_string(version));
  }
  JobCheckpoint ckpt;
  ckpt.attempts = r.u32("attempts");
  ckpt.preemptions = r.u32("preemptions");
  ckpt.counters.generations = r.u64("counter generations");
  ckpt.counters.pc_events = r.u64("counter pc_events");
  ckpt.counters.adoptions = r.u64("counter adoptions");
  ckpt.counters.moran_events = r.u64("counter moran_events");
  ckpt.counters.mutations = r.u64("counter mutations");
  ckpt.counters.pairs_evaluated = r.u64("counter pairs_evaluated");
  ckpt.counters.games_played = r.u64("counter games_played");
  ckpt.core = r.bytes("core checkpoint");
  const std::uint32_t nf = r.u32("fitness count");
  ckpt.fitness = r.doubles(nf, "fitness values");
  const std::uint32_t nm = r.u32("matrix count");
  ckpt.matrix = r.doubles(nm, "matrix values");
  const std::uint32_t nd = r.u32("dedup count");
  ckpt.dedup.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) {
    core::BlockFitness::DedupEntry e;
    e.a = r.u64("dedup row hash");
    e.b = r.u64("dedup col hash");
    e.payoff = r.f64("dedup payoff");
    ckpt.dedup.push_back(e);
  }
  r.expect_exhausted();
  return ckpt;
}

JobCheckpoint capture_job_checkpoint(const core::Engine& engine,
                                     const EngineCounters& counters,
                                     std::uint32_t attempts,
                                     std::uint32_t preemptions) {
  JobCheckpoint ckpt;
  ckpt.attempts = attempts;
  ckpt.preemptions = preemptions;
  ckpt.counters = counters;
  ckpt.core = core::save_checkpoint(engine);
  const core::BlockFitness& fit = engine.fitness_block();
  ckpt.fitness.assign(fit.block().begin(), fit.block().end());
  ckpt.matrix.assign(fit.payoff_matrix().begin(), fit.payoff_matrix().end());
  ckpt.dedup = fit.dedup_cache();
  return ckpt;
}

core::Engine resume_job_engine(const core::SimConfig& config,
                               JobCheckpoint ckpt,
                               obs::MetricsRegistry* metrics) {
  core::Engine::RestoredState state = core::decode_checkpoint(config, ckpt.core);
  core::Engine::FitnessRestore fit{std::move(ckpt.fitness),
                                   std::move(ckpt.matrix),
                                   std::move(ckpt.dedup)};
  return core::Engine(config, std::move(state), std::move(fit), metrics);
}

}  // namespace egt::serve
