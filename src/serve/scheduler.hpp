// Multi-tenant job scheduler: the egtd daemon's core (DESIGN.md §11).
//
// A fixed pool of worker threads multiplexes many simulation jobs:
//
//   admission     a bounded backlog; a submission past queue_capacity is
//                 load-shed with an explicit `rejected: capacity` outcome
//                 *before* anything is journaled — the daemon never builds
//                 unbounded memory or replay debt.
//   fair share    the next dispatch goes to the runnable job whose tenant
//                 has consumed the fewest generations so far (FIFO within
//                 a tenant), so one tenant's flood cannot starve another's
//                 trickle.
//   preemption    with slice_generations > 0, a running job is evicted at
//                 the next generation boundary once its slice is up and
//                 another job is waiting: a job checkpoint is committed
//                 (serve/job_checkpoint.hpp) and the job requeues. Resume
//                 is bit-identical — table, fitness AND engine.* counters —
//                 via the Engine block-restore path.
//   watchdog      per-attempt deadlines, checked cooperatively at
//                 generation boundaries (the only safe in-process
//                 cancellation points). An expired attempt is abandoned
//                 and retried with exponential backoff; attempts_exhausted
//                 turns the job Failed, loudly.
//   durability    every externally acknowledged transition is a fsynced
//                 egt.jobs/v1 record (serve/journal.hpp). recover() replays
//                 the journal on restart: completed jobs keep their result
//                 and never run again; accepted-but-unfinished jobs requeue
//                 and resume from their newest intact checkpoint.
//
// Two stop modes mirror the chaos soak's needs: shutdown() is the SIGTERM
// path (checkpoint running jobs, then exit), hard_stop() is the in-process
// stand-in for SIGKILL (abandon everything immediately, no durability
// actions — whatever already hit the disk is what a restart sees).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"

namespace egt::core {
class Engine;
}  // namespace egt::core

namespace egt::serve {

struct SchedulerOptions {
  unsigned workers = 1;
  /// Admission bound: max jobs in a non-terminal state (queued + running).
  std::size_t queue_capacity = 64;
  /// Generations per dispatch before a job may be evicted for waiting
  /// work. 0 disables preemption (jobs run to completion).
  std::uint64_t slice_generations = 0;
  /// Max dispatch failures (kills, expiries, errors) before a job turns
  /// Failed. Preemptions and graceful shutdowns do not count.
  std::uint32_t max_attempts = 3;
  /// Per-attempt wall deadline; 0 disables the watchdog.
  double watchdog_seconds = 0.0;
  /// Backoff after the n-th consecutive failure:
  /// base * factor^(n-1) seconds.
  double backoff_base_seconds = 0.02;
  double backoff_factor = 2.0;
  /// Journal + checkpoints + metric streams live here; empty runs the
  /// scheduler ephemeral (no durability — unit tests, throwaway runs).
  std::string data_dir;
  /// Checkpoints retained per job (core::CheckpointDir retention).
  int checkpoint_keep = 2;
  /// Per-generation NDJSON metrics stream per dispatch
  /// (<data_dir>/streams/job_<id>_a<attempt>.ndjson); 0 disables.
  std::uint64_t metrics_stream_every = 0;
  /// Scheduler-level "serve.*" counters land here (not per-job engine
  /// counters — each dispatch runs against its own private registry).
  obs::MetricsRegistry* metrics = nullptr;
};

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;
  /// "capacity" (load shed) or "invalid: <why>" when !accepted.
  std::string rejected;
};

struct JobStatus {
  std::uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::Queued;
  std::uint32_t attempts = 0;
  std::uint32_t preemptions = 0;
  std::uint64_t next_generation = 0;  ///< progress (checkpoint frontier)
  std::string failure;
};

struct JobEvent {
  enum class Kind {
    Submitted,
    Rejected,
    Started,
    Preempted,
    Retrying,
    Completed,
    Failed,
    Cancelled,
    Recovered,
  };
  Kind kind = Kind::Submitted;
  std::uint64_t job_id = 0;
  std::string tenant;
  std::uint64_t generation = 0;  ///< progress at the event, when meaningful
  std::string detail;
};

const char* to_string(JobEvent::Kind k) noexcept;

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();  ///< graceful shutdown if still running

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Replay the data dir's journal (call before start()): completed jobs
  /// keep their results, unfinished acknowledged jobs requeue (resuming
  /// from their newest intact checkpoint), and the journal is compacted.
  struct RecoveryReport {
    std::size_t replayed = 0;   ///< journal records read
    std::size_t completed = 0;  ///< jobs restored in a terminal state
    std::size_t requeued = 0;   ///< jobs put back in the queue
    std::size_t corrupt_skipped = 0;
    bool truncated_tail = false;
  };
  RecoveryReport recover();

  /// Spawn the worker pool. Jobs may be submitted before or after.
  void start();

  /// Admission: parse, validate, journal, enqueue. A full queue or an
  /// invalid spec is rejected synchronously with nothing journaled.
  SubmitOutcome submit(const std::string& spec_json);

  /// Cancel a queued or running job (a running attempt aborts at the next
  /// generation boundary). False when the job is unknown or terminal.
  bool cancel(std::uint64_t job_id);

  /// Block until every accepted job reaches a terminal state.
  void drain();

  /// Graceful stop (SIGTERM path): running jobs are checkpointed at their
  /// next generation boundary and requeued in memory; workers exit. The
  /// journal keeps them acknowledged, so a restart resumes them.
  void shutdown();

  /// Simulated SIGKILL: abandon all in-memory work immediately — no
  /// checkpoints, no journal writes. Only what already reached the disk
  /// survives to the next recover().
  void hard_stop();

  std::vector<JobStatus> statuses() const;
  std::optional<JobState> state(std::uint64_t job_id) const;
  std::optional<JobResult> result(std::uint64_t job_id) const;

  /// Test/chaos hooks. Set before start().
  enum class FaultAction {
    None,
    Kill,    ///< simulate the worker dying mid-attempt
    Expire,  ///< simulate the watchdog deadline firing now
  };
  using FaultHook =
      std::function<FaultAction(std::uint64_t job_id, std::uint64_t generation)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  using EventSink = std::function<void(const JobEvent&)>;
  /// The sink runs on scheduler threads and must not call back into the
  /// scheduler.
  void set_event_sink(EventSink sink) { event_sink_ = std::move(sink); }

  const SchedulerOptions& options() const noexcept { return options_; }

 private:
  struct JobRec {
    std::uint64_t id = 0;
    std::string tenant;
    std::string spec_json;
    core::SimConfig config;
    JobState state = JobState::Queued;
    std::uint32_t attempts = 0;
    std::uint32_t preemptions = 0;
    std::uint32_t consecutive_failures = 0;
    std::uint64_t next_generation = 0;
    std::uint64_t submit_order = 0;
    bool has_checkpoint = false;
    std::atomic<bool> cancel_requested{false};
    std::chrono::steady_clock::time_point not_before{};
    std::string failure;
    JobResult result;
  };

  enum class AttemptEnd {
    Completed,
    Preempted,
    Failure,   ///< transient: kill / expiry / engine error
    Graceful,  ///< shutdown flag seen; checkpointed and parked
    Hard,      ///< hard_stop flag seen; abandoned
    Cancelled,
  };
  struct AttemptResult {
    AttemptEnd end = AttemptEnd::Failure;
    JobResult result;
    std::string error;
    std::uint64_t reached_generation = 0;
    std::uint64_t ran_generations = 0;
    std::uint32_t attempts = 0;
    std::uint32_t preemptions = 0;
    bool checkpointed = false;
  };

  void worker_main();
  JobRec* pick_runnable_locked(std::chrono::steady_clock::time_point now);
  std::optional<std::chrono::steady_clock::time_point> earliest_backoff_locked()
      const;
  bool other_job_waiting(std::uint64_t self_id);
  AttemptResult run_attempt(JobRec& job);
  bool commit_checkpoint(JobRec& job, const core::Engine& engine,
                         const EngineCounters& counters, std::uint32_t attempts,
                         std::uint32_t preemptions);
  void append_journal(const JournalRecord& rec);
  void emit(JobEvent::Kind kind, const JobRec& job, std::uint64_t generation,
            const std::string& detail = std::string());
  void ensure_journal();
  std::string wal_path() const;
  std::string job_ckpt_dir(std::uint64_t id) const;
  obs::Counter* serve_counter(const char* name);
  void bump(const char* name, std::uint64_t n = 1);

  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::map<std::uint64_t, std::unique_ptr<JobRec>> jobs_;
  std::map<std::string, std::uint64_t> tenant_generations_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_order_ = 0;
  std::vector<std::thread> workers_;
  std::unique_ptr<JobJournal> journal_;
  std::atomic<bool> graceful_{false};
  std::atomic<bool> hard_{false};
  bool started_ = false;
  bool recovered_ = false;
  FaultHook fault_hook_;
  EventSink event_sink_;
};

}  // namespace egt::serve
