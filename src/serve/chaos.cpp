#include "serve/chaos.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "game/spec/registry.hpp"
#include "obs/metrics.hpp"
#include "serve/jobspec.hpp"
#include "util/rng.hpp"

namespace egt::serve {
namespace fs = std::filesystem;

namespace {

std::uint64_t pick(util::Xoshiro256& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng() % (hi - lo + 1);
}

double pick_real(util::Xoshiro256& rng, double lo, double hi) {
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

constexpr const char* kTenants[] = {"alice", "bob", "carol"};

/// Presets safe under every schedule. Analytic is drawn only for the
/// 2-action iterated presets (group play and one-shot games stay on the
/// sampled paths the whole engine test matrix exercises for them).
constexpr const char* kIteratedPresets[] = {"ipd", "hawk_dove", "snowdrift",
                                            "stag_hunt"};
constexpr const char* kOtherPresets[] = {"rps", "pgg"};

EngineCounters serial_counters(const obs::MetricsSnapshot& s) {
  EngineCounters c;
  c.generations = s.counter_value("engine.generations");
  c.pc_events = s.counter_value("engine.pc_events");
  c.adoptions = s.counter_value("engine.adoptions");
  c.moran_events = s.counter_value("engine.moran_events");
  c.mutations = s.counter_value("engine.mutations");
  c.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  c.games_played = s.counter_value("engine.games_played");
  return c;
}

}  // namespace

ServeChaosSchedule make_serve_schedule(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x5e4ced5c4edull));
  ServeChaosSchedule s;

  const std::size_t njobs = pick(rng, 3, 6);
  const std::size_t ntenants = pick(rng, 2, 3);

  s.options.workers = static_cast<unsigned>(pick(rng, 1, 2));
  s.options.queue_capacity = njobs + 2;  // admission rejects tested apart
  s.options.slice_generations = pick(rng, 0, 1) == 0 ? 0 : pick(rng, 2, 5);
  s.options.max_attempts = 4;
  s.options.backoff_base_seconds = 0.001;  // keep retry storms fast
  s.options.metrics_stream_every = pick(rng, 0, 1) == 0 ? 0 : 2;

  std::ostringstream sum;
  sum << "seed " << seed << ": jobs=" << njobs
      << " workers=" << s.options.workers
      << " slice=" << s.options.slice_generations;

  for (std::size_t i = 0; i < njobs; ++i) {
    JobSpec spec;
    spec.tenant = kTenants[pick(rng, 0, ntenants - 1)];
    const bool iterated = pick(rng, 0, 3) != 0;
    const char* preset =
        iterated ? kIteratedPresets[pick(rng, 0, std::size(kIteratedPresets) -
                                                     1)]
                 : kOtherPresets[pick(rng, 0, std::size(kOtherPresets) - 1)];
    spec.config.game = *game::find_game(preset);
    spec.config.ssets = static_cast<int>(pick(rng, 6, 12));
    spec.config.memory = iterated ? 1 : 0;  // one-shot/group games: memory 0
    spec.config.generations = pick(rng, 8, 20);
    spec.config.pc_rate = pick_real(rng, 0.2, 0.6);
    spec.config.mutation_rate = pick_real(rng, 0.05, 0.3);
    spec.config.seed = util::mix64(seed * 131 + i + 1);
    if (iterated && pick(rng, 0, 2) == 0) {
      spec.config.fitness_mode = core::FitnessMode::Analytic;
    } else if (pick(rng, 0, 2) == 0) {
      spec.config.fitness_mode = core::FitnessMode::SampledFrozen;
    } else {
      spec.config.fitness_mode = core::FitnessMode::Sampled;
    }
    s.specs.push_back(job_spec_to_json(spec));

    // Faults: strictly fewer per job than max_attempts, so every job that
    // is not cancelled must end Completed — a Failed job is a soak bug.
    const std::uint64_t job_id = i + 1;
    const std::uint64_t nfaults = pick(rng, 0, 2);
    for (std::uint64_t f = 0; f < nfaults; ++f) {
      const std::uint64_t gen = pick(rng, 0, spec.config.generations - 1);
      const auto action = pick(rng, 0, 1) == 0 ? Scheduler::FaultAction::Kill
                                               : Scheduler::FaultAction::Expire;
      s.faults[job_id][gen] = action;
    }
    sum << " j" << job_id << "=" << preset << "/g" << spec.config.generations
        << "/f" << s.faults.count(job_id);
  }

  s.stop_after_completed = pick(rng, 0, njobs);
  s.tear_journal_tail = pick(rng, 0, 1) == 0;
  if (pick(rng, 0, 2) == 0) s.cancel_job = pick(rng, 1, njobs);
  sum << " stop@" << s.stop_after_completed
      << (s.tear_journal_tail ? " torn" : "");
  if (s.cancel_job != 0) sum << " cancel=j" << s.cancel_job;
  s.summary = sum.str();
  return s;
}

namespace {

/// Thread-safe observation of scheduler events plus one-shot fault
/// injection, shared by both scheduler phases of a soak run.
struct SoakState {
  std::mutex mu;
  std::map<std::uint64_t, std::map<std::uint64_t, Scheduler::FaultAction>>
      pending_faults;
  std::set<std::uint64_t> completed;  ///< durably acknowledged (event seen)
  std::set<std::uint64_t> terminal;   ///< completed + failed + cancelled
  std::set<std::uint64_t> phase2_started;
  std::uint64_t retries = 0;
  std::uint64_t preemptions = 0;
  bool phase2 = false;

  Scheduler::FaultAction consume_fault(std::uint64_t job_id,
                                       std::uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = pending_faults.find(job_id);
    if (it == pending_faults.end()) return Scheduler::FaultAction::None;
    auto gt = it->second.find(generation);
    if (gt == it->second.end()) return Scheduler::FaultAction::None;
    const Scheduler::FaultAction action = gt->second;
    it->second.erase(gt);
    return action;
  }

  void on_event(const JobEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    switch (ev.kind) {
      case JobEvent::Kind::Completed:
        completed.insert(ev.job_id);
        terminal.insert(ev.job_id);
        break;
      case JobEvent::Kind::Failed:
      case JobEvent::Kind::Cancelled:
        terminal.insert(ev.job_id);
        break;
      case JobEvent::Kind::Retrying:
        ++retries;
        break;
      case JobEvent::Kind::Preempted:
        ++preemptions;
        break;
      case JobEvent::Kind::Started:
        if (phase2) phase2_started.insert(ev.job_id);
        break;
      default:
        break;
    }
  }

  std::size_t completed_count() {
    std::lock_guard<std::mutex> lock(mu);
    return completed.size();
  }
  std::size_t terminal_count() {
    std::lock_guard<std::mutex> lock(mu);
    return terminal.size();
  }
};

void wire(Scheduler& sched, SoakState& state) {
  sched.set_fault_hook([&state](std::uint64_t id, std::uint64_t gen) {
    return state.consume_fault(id, gen);
  });
  sched.set_event_sink([&state](const JobEvent& ev) { state.on_event(ev); });
}

/// Append half a record frame, as a crash mid-append would leave.
void tear_tail(const std::string& wal) {
  std::ofstream out(wal, std::ios::binary | std::ios::app);
  const std::uint32_t magic = kRecordMagic;
  const std::uint32_t len = 64;
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&len), sizeof len);
  out.write("torn", 4);  // 60 payload bytes and the CRC never made it
}

bool fitness_bits_equal(const std::vector<double>& a,
                        const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

ServeChaosOutcome run_serve_schedule(std::uint64_t seed,
                                     const std::string& data_dir) {
  ServeChaosOutcome out;
  const ServeChaosSchedule plan = make_serve_schedule(seed);
  out.detail = plan.summary;
  try {
    fs::remove_all(data_dir);
    fs::create_directories(data_dir);

    SoakState state;
    state.pending_faults = plan.faults;
    const std::size_t njobs = plan.specs.size();

    // Phase 1: run under fault injection, then die without warning.
    SchedulerOptions opts = plan.options;
    opts.data_dir = data_dir;
    {
      Scheduler sched(opts);
      wire(sched, state);
      sched.start();
      for (std::size_t i = 0; i < njobs; ++i) {
        const SubmitOutcome sub = sched.submit(plan.specs[i]);
        if (!sub.accepted || sub.job_id != i + 1) {
          out.detail += " | submit " + std::to_string(i + 1) +
                        " rejected: " + sub.rejected;
          return out;
        }
      }
      if (plan.cancel_job != 0) sched.cancel(plan.cancel_job);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (state.completed_count() < plan.stop_after_completed &&
             state.terminal_count() < njobs) {
        if (std::chrono::steady_clock::now() > deadline) {
          out.detail += " | phase 1 stalled";
          return out;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      sched.hard_stop();
    }
    const std::set<std::uint64_t> acked_completed = state.completed;
    const std::set<std::uint64_t> acked_terminal = state.terminal;

    if (plan.tear_journal_tail) tear_tail(data_dir + "/jobs.wal");

    // Phase 2: recover and drain the survivors.
    state.phase2 = true;
    Scheduler sched(opts);
    wire(sched, state);
    const Scheduler::RecoveryReport rep = sched.recover();
    out.requeued = rep.requeued;
    if (plan.tear_journal_tail && !rep.truncated_tail) {
      out.detail += " | torn tail not detected on replay";
      return out;
    }
    for (const std::uint64_t id : acked_completed) {
      if (sched.state(id) != JobState::Completed) {
        out.detail += " | acknowledged completion of job " +
                      std::to_string(id) + " lost across restart";
        return out;
      }
    }
    for (std::size_t i = 1; i <= njobs; ++i) {
      if (!sched.state(i).has_value()) {
        out.detail +=
            " | acknowledged job " + std::to_string(i) + " lost across restart";
        return out;
      }
    }
    sched.start();
    sched.drain();
    sched.shutdown();

    // No job acknowledged terminal before the kill may have run again.
    for (const std::uint64_t id : acked_terminal) {
      if (state.phase2_started.count(id) != 0) {
        out.detail += " | terminal job " + std::to_string(id) +
                      " was dispatched again after restart";
        return out;
      }
    }

    // Every surviving job must have completed; compare each against an
    // undisturbed serial run of the same spec.
    for (std::size_t i = 1; i <= njobs; ++i) {
      const JobState st = *sched.state(i);
      if (st == JobState::Cancelled) {
        if (plan.cancel_job != i) {
          out.detail += " | job " + std::to_string(i) + " cancelled unasked";
          return out;
        }
        continue;
      }
      if (st != JobState::Completed) {
        out.detail += " | job " + std::to_string(i) +
                      " ended " + to_string(st);
        for (const JobStatus& js : sched.statuses()) {
          if (js.id == i && !js.failure.empty()) {
            out.detail += " (" + js.failure + ")";
          }
        }
        return out;
      }
      const JobResult got = *sched.result(i);
      const JobSpec spec = parse_job_spec(plan.specs[i - 1]);
      obs::MetricsRegistry reg;
      core::Engine oracle(spec.config, &reg);
      while (oracle.generation() < spec.config.generations) oracle.step();
      const auto fit = oracle.population().fitness();
      const std::vector<double> want_fitness(fit.begin(), fit.end());
      if (got.table_hash != oracle.population().table_hash()) {
        out.detail += " | job " + std::to_string(i) + " table diverged";
        return out;
      }
      if (!fitness_bits_equal(got.fitness, want_fitness) ||
          got.fitness_hash != core::hash_fitness(fit)) {
        out.detail += " | job " + std::to_string(i) + " fitness diverged";
        return out;
      }
      if (!counters_equal(got.counters, serial_counters(reg.snapshot()))) {
        out.detail += " | job " + std::to_string(i) + " counters diverged";
        return out;
      }
      ++out.completed;
    }
    out.retries = state.retries;
    out.preemptions = state.preemptions;
    out.ok = true;
  } catch (const std::exception& e) {
    out.detail += std::string(" | threw: ") + e.what();
    out.ok = false;
  }
  return out;
}

}  // namespace egt::serve
