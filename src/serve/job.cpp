#include "serve/job.hpp"

namespace egt::serve {

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Completed:
      return "completed";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace egt::serve
