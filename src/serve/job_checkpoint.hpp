// Job checkpoints ("egt.job_ckpt/v1"): the preemption/resume unit.
//
// A plain core checkpoint restores the trajectory bit-exactly but pays a
// full re-initialization (ssets² pairs) on restore — which is why
// simcheck marks checkpoint/restore counters non-comparable. A job
// checkpoint additionally captures the fitness block's evaluation state
// (per-row fitness, cached payoff matrix, dedup class-pair cache) and the
// job's accumulated engine.* counters, so a preempted-and-resumed job
// finishes with the *same* final table, fitness and counters as an
// undisturbed run — the property the scheduler chaos soak asserts.
//
// Blob layout (wire; CRC footer and atomic rename are added by the
// CheckpointDir it is committed through):
//   u64 magic "EGTJCKP1", u32 version,
//   u32 attempts, u32 preemptions,
//   7 × u64 accumulated engine.* counters,
//   bytes core checkpoint (core/checkpoint.hpp blob, self-validating),
//   u32 fitness count + doubles, u32 matrix count + doubles,
//   u32 dedup count + (u64 a, u64 b, f64 payoff) each.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "serve/job.hpp"

namespace egt::serve {

inline constexpr std::uint64_t kJobCheckpointMagic =
    0x4547544a434b5031ull;  // "EGTJCKP1"
inline constexpr std::uint32_t kJobCheckpointVersion = 1;

struct JobCheckpoint {
  std::uint32_t attempts = 0;
  std::uint32_t preemptions = 0;
  /// engine.* event totals accumulated across every attempt up to the
  /// moment of capture (the resumed attempt adds its own growth on top).
  EngineCounters counters;
  std::vector<std::byte> core;  ///< core/checkpoint.hpp blob
  std::vector<double> fitness;
  std::vector<double> matrix;
  std::vector<core::BlockFitness::DedupEntry> dedup;
};

std::vector<std::byte> encode_job_checkpoint(const JobCheckpoint& ckpt);

/// Throws core::CheckpointError on any damage or version mismatch.
JobCheckpoint decode_job_checkpoint(const std::vector<std::byte>& blob);

/// Capture a running engine plus the job's accounting.
JobCheckpoint capture_job_checkpoint(const core::Engine& engine,
                                     const EngineCounters& counters,
                                     std::uint32_t attempts,
                                     std::uint32_t preemptions);

/// Reconstruct the engine mid-run via the block-restore path (no
/// re-initialization; see Engine's FitnessRestore constructor). The core
/// blob's config fingerprint is validated against `config`.
core::Engine resume_job_engine(const core::SimConfig& config,
                               JobCheckpoint ckpt,
                               obs::MetricsRegistry* metrics = nullptr);

}  // namespace egt::serve
