// Crash-safe write-ahead job journal ("egt.jobs/v1").
//
// The scheduler's durable source of truth: every externally visible job
// transition is one appended record, fsynced before the caller observes
// the acknowledgement. An egtd restart replays the file and reconstructs
// exactly the acknowledged set — accepted-but-unfinished jobs are
// requeued, completed jobs keep their full result (so they are never run
// twice), and nothing the daemon acknowledged is ever lost.
//
// On-disk layout:
//
//   header   u64 kJournalMagic ("EGTJOBS1"), u32 kJournalVersion
//   record*  u32 kRecordMagic ("EGTR"), u32 payload length,
//            payload bytes (wire-encoded JournalRecord),
//            u32 CRC-32 of the payload
//
// Failure semantics, mirrored by the property tests (tests/serve):
//   * torn tail (crash mid-append): the incomplete final record is
//     dropped; every record acknowledged before it survives.
//   * bit flip mid-file: the CRC rejects the record; replay resynchronises
//     on the next record magic and counts the loss in corrupt_skipped —
//     one damaged record never poisons the records behind it.
//   * compaction rewrites the whole file via the checkpoint store's
//     fsync + atomic-rename path, so a crash mid-compaction leaves the
//     previous journal intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace egt::serve {

inline constexpr const char* kJournalSchema = "egt.jobs/v1";
inline constexpr std::uint64_t kJournalMagic = 0x4547544a4f425331ull;  // EGTJOBS1
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::uint32_t kRecordMagic = 0x45475452u;  // "EGTR"
inline constexpr std::size_t kJournalHeaderBytes = 8 + 4;
/// Per-record framing overhead: magic + length + trailing CRC.
inline constexpr std::size_t kRecordFrameBytes = 4 + 4 + 4;
/// Upper bound on one record's payload; a corrupt length field beyond it
/// is treated as damage, not as a request to allocate gigabytes.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

struct JournalRecord {
  enum class Type : std::uint32_t {
    Submitted = 1,  ///< job accepted past admission control
    Completed = 2,  ///< terminal success; carries the full result
    Failed = 3,     ///< terminal failure (attempts exhausted)
    Cancelled = 4,  ///< terminal cancellation
  };

  Type type = Type::Submitted;
  std::uint64_t job_id = 0;
  std::string tenant;     ///< Submitted
  std::string spec_json;  ///< Submitted: canonical job spec
  JobResult result;       ///< Completed
  std::string reason;     ///< Failed
};

/// Wire-encode one record's payload (no framing).
std::vector<std::byte> encode_record(const JournalRecord& rec);

/// Decode one payload. Throws core::CheckpointError on any damage.
JournalRecord decode_record(const std::vector<std::byte>& payload);

/// Payload + framing, as appended to the file.
std::vector<std::byte> frame_record(const JournalRecord& rec);

/// Append-side handle. Thread-safe: workers append terminal records
/// concurrently with the admission path appending Submitted records.
class JobJournal {
 public:
  /// Opens `path` for appending, creating it (with the file header) when
  /// missing. Throws std::runtime_error when the path is unwritable.
  explicit JobJournal(std::string path);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Append one record and fsync. When this returns the record is durable:
  /// a crash at any later point replays it. Throws std::runtime_error on
  /// I/O failure.
  void append(const JournalRecord& rec);

  const std::string& path() const noexcept { return path_; }

  /// Everything replay recovered, plus how much damage it skipped.
  struct Replay {
    std::vector<JournalRecord> records;
    std::size_t corrupt_skipped = 0;  ///< records lost to CRC/decode damage
    bool truncated_tail = false;      ///< torn final record dropped
    bool missing = false;             ///< no journal file at all
  };

  /// Read every intact record of `path` in append order. Never throws on
  /// damage — a journal that cannot be fully read still yields everything
  /// readable (the crash-recovery contract).
  static Replay replay(const std::string& path);

  /// Atomically rewrite `path` to contain exactly `records` (bounding the
  /// file to live state after a restart replay). Uses the checkpoint
  /// store's fsync + atomic-rename commit.
  static void compact(const std::string& path,
                      const std::vector<JournalRecord>& records);

 private:
  std::string path_;
  std::mutex mu_;
  int fd_ = -1;
};

}  // namespace egt::serve
