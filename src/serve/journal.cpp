#include "serve/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "core/checkpoint_store.hpp"
#include "core/wire.hpp"
#include "util/crc32.hpp"

namespace egt::serve {

namespace fs = std::filesystem;
using core::CheckpointError;

namespace {

void put_string(core::wire::Writer& w, const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  w.bytes(b);
}

std::string get_string(core::wire::Reader& r, const char* field) {
  const auto b = r.bytes(field);
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void write_all(int fd, const std::byte* data, std::size_t size,
               const std::string& what) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("failed writing " + what + ": " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::uint32_t read_u32(const std::vector<std::byte>& buf, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, buf.data() + off, sizeof v);
  return v;
}

}  // namespace

std::vector<std::byte> encode_record(const JournalRecord& rec) {
  core::wire::Writer w;
  w.u32(static_cast<std::uint32_t>(rec.type));
  w.u64(rec.job_id);
  switch (rec.type) {
    case JournalRecord::Type::Submitted:
      put_string(w, rec.tenant);
      put_string(w, rec.spec_json);
      break;
    case JournalRecord::Type::Completed: {
      const JobResult& res = rec.result;
      w.u64(res.generations);
      w.u64(res.table_hash);
      w.u64(res.fitness_hash);
      w.u32(static_cast<std::uint32_t>(res.fitness.size()));
      w.doubles(res.fitness.data(), res.fitness.size());
      w.u64(res.counters.generations);
      w.u64(res.counters.pc_events);
      w.u64(res.counters.adoptions);
      w.u64(res.counters.moran_events);
      w.u64(res.counters.mutations);
      w.u64(res.counters.pairs_evaluated);
      w.u64(res.counters.games_played);
      w.u32(res.attempts);
      w.u32(res.preemptions);
      break;
    }
    case JournalRecord::Type::Failed:
      put_string(w, rec.reason);
      break;
    case JournalRecord::Type::Cancelled:
      break;
  }
  return w.take();
}

JournalRecord decode_record(const std::vector<std::byte>& payload) {
  core::wire::Reader r(payload, "journal record");
  JournalRecord rec;
  const std::uint32_t type = r.u32("record type");
  if (type < 1 || type > 4) {
    r.fail("unknown record type " + std::to_string(type));
  }
  rec.type = static_cast<JournalRecord::Type>(type);
  rec.job_id = r.u64("job id");
  switch (rec.type) {
    case JournalRecord::Type::Submitted:
      rec.tenant = get_string(r, "tenant");
      rec.spec_json = get_string(r, "spec json");
      break;
    case JournalRecord::Type::Completed: {
      JobResult& res = rec.result;
      res.generations = r.u64("generations");
      res.table_hash = r.u64("table hash");
      res.fitness_hash = r.u64("fitness hash");
      const std::uint32_t n = r.u32("fitness count");
      res.fitness = r.doubles(n, "fitness values");
      res.counters.generations = r.u64("counter generations");
      res.counters.pc_events = r.u64("counter pc_events");
      res.counters.adoptions = r.u64("counter adoptions");
      res.counters.moran_events = r.u64("counter moran_events");
      res.counters.mutations = r.u64("counter mutations");
      res.counters.pairs_evaluated = r.u64("counter pairs_evaluated");
      res.counters.games_played = r.u64("counter games_played");
      res.attempts = r.u32("attempts");
      res.preemptions = r.u32("preemptions");
      break;
    }
    case JournalRecord::Type::Failed:
      rec.reason = get_string(r, "failure reason");
      break;
    case JournalRecord::Type::Cancelled:
      break;
  }
  r.expect_exhausted();
  return rec;
}

std::vector<std::byte> frame_record(const JournalRecord& rec) {
  const auto payload = encode_record(rec);
  core::wire::Writer w;
  w.u32(kRecordMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  auto frame = w.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  core::wire::Writer tail;
  tail.u32(util::crc32(payload.data(), payload.size()));
  const auto crc = tail.take();
  frame.insert(frame.end(), crc.begin(), crc.end());
  return frame;
}

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  const bool fresh = !fs::exists(path_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open job journal " + path_ + ": " +
                             std::strerror(errno));
  }
  if (fresh) {
    core::wire::Writer w;
    w.u64(kJournalMagic);
    w.u32(kJournalVersion);
    const auto header = w.take();
    write_all(fd_, header.data(), header.size(), "journal header " + path_);
    if (::fsync(fd_) != 0) {
      throw std::runtime_error("failed syncing job journal " + path_ + ": " +
                               std::strerror(errno));
    }
    const auto slash = path_.find_last_of('/');
    core::fsync_dir(slash == std::string::npos ? std::string(".")
                                               : path_.substr(0, slash));
  }
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void JobJournal::append(const JournalRecord& rec) {
  const auto frame = frame_record(rec);
  std::lock_guard<std::mutex> lock(mu_);
  write_all(fd_, frame.data(), frame.size(), "journal record " + path_);
  // The ack contract: the record is on stable storage before the caller
  // (admission reply, completion notification) can observe it.
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("failed syncing job journal " + path_ + ": " +
                             std::strerror(errno));
  }
}

JobJournal::Replay JobJournal::replay(const std::string& path) {
  Replay out;
  std::vector<std::byte> buf;
  try {
    buf = core::read_file_bytes(path);
  } catch (const std::exception&) {
    out.missing = true;
    return out;
  }
  if (buf.size() < kJournalHeaderBytes) {
    out.truncated_tail = !buf.empty();
    return out;
  }
  {
    const std::vector<std::byte> header(
        buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(
                                       kJournalHeaderBytes));
    core::wire::Reader r(header, "journal header");
    if (r.u64("journal magic") != kJournalMagic) {
      // A foreign file is damage, not a journal: recover nothing rather
      // than resync into noise.
      out.corrupt_skipped = 1;
      return out;
    }
    if (r.u32("journal version") != kJournalVersion) {
      out.corrupt_skipped = 1;
      return out;
    }
  }
  std::size_t off = kJournalHeaderBytes;
  bool in_damage = false;     // one resync gap counts one skipped record
  bool tear_at_eof = false;   // saw a frame reaching past EOF this gap
  while (off < buf.size()) {
    // A complete frame needs magic + length + CRC beyond the payload.
    if (buf.size() - off < kRecordFrameBytes) {
      out.truncated_tail = true;
      break;
    }
    if (read_u32(buf, off) != kRecordMagic) {
      if (!in_damage) {
        ++out.corrupt_skipped;
        in_damage = true;
      }
      ++off;  // resync: scan for the next record magic
      continue;
    }
    const std::uint32_t len = read_u32(buf, off + 4);
    if (len > kMaxRecordBytes) {
      // A length this size is a flipped bit, not a record.
      if (!in_damage) {
        ++out.corrupt_skipped;
        in_damage = true;
      }
      ++off;
      continue;
    }
    if (buf.size() - off - kRecordFrameBytes < len) {
      // Frame reaches past EOF: a torn final append — or a flipped length
      // field mid-file. Resync rather than break, so one bad length never
      // swallows the intact records behind it; if nothing valid follows,
      // the end-of-loop check reports the tear.
      if (!in_damage) {
        ++out.corrupt_skipped;
        in_damage = true;
      }
      tear_at_eof = true;
      ++off;
      continue;
    }
    const std::size_t payload_off = off + 8;
    const std::uint32_t stored_crc = read_u32(buf, payload_off + len);
    if (util::crc32(buf.data() + payload_off, len) != stored_crc) {
      if (!in_damage) {
        ++out.corrupt_skipped;
        in_damage = true;
      }
      ++off;
      continue;
    }
    std::vector<std::byte> payload(
        buf.begin() + static_cast<std::ptrdiff_t>(payload_off),
        buf.begin() + static_cast<std::ptrdiff_t>(payload_off + len));
    try {
      out.records.push_back(decode_record(payload));
    } catch (const CheckpointError&) {
      // CRC-intact but undecodable: framing is trustworthy, so skip just
      // this record and continue at the next frame boundary.
      ++out.corrupt_skipped;
    }
    in_damage = false;
    tear_at_eof = false;
    off = payload_off + len + 4;
  }
  if (in_damage && tear_at_eof) out.truncated_tail = true;
  return out;
}

void JobJournal::compact(const std::string& path,
                         const std::vector<JournalRecord>& records) {
  core::wire::Writer w;
  w.u64(kJournalMagic);
  w.u32(kJournalVersion);
  auto blob = w.take();
  for (const JournalRecord& rec : records) {
    const auto frame = frame_record(rec);
    blob.insert(blob.end(), frame.begin(), frame.end());
  }
  core::atomic_write_file(path, blob);
}

}  // namespace egt::serve
