// Job model for the serving layer (DESIGN.md §11).
//
// A job is one simulation spec moving through the scheduler's state
// machine:
//
//   Queued ──dispatch──▶ Running ──finish──▶ Completed
//     ▲                    │ ├─ preempt (slice up, others waiting) ─▶ Queued
//     │                    │ ├─ worker kill / watchdog expiry ──────▶ Queued
//     └────── backoff ─────┘ │       (attempts left; exponential backoff)
//                            ├─ attempts exhausted ────────────────▶ Failed
//                            └─ cancel ────────────────────────────▶ Cancelled
//
// Requeues after a preemption or a failed attempt resume from the job's
// newest intact checkpoint (serve/job_checkpoint.hpp) when one exists, so
// progress survives both eviction and worker death — and the completed
// job is bit-identical to an undisturbed serial run either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "simcheck/case.hpp"

namespace egt::serve {

/// The seven "engine.*" event counters a job accounts across attempts
/// (same layout simcheck diffs between engine variants).
using EngineCounters = simcheck::EngineCounters;

inline bool counters_equal(const EngineCounters& a, const EngineCounters& b) {
  return a.generations == b.generations && a.pc_events == b.pc_events &&
         a.adoptions == b.adoptions && a.moran_events == b.moran_events &&
         a.mutations == b.mutations &&
         a.pairs_evaluated == b.pairs_evaluated &&
         a.games_played == b.games_played;
}

inline EngineCounters counters_add(const EngineCounters& a,
                                   const EngineCounters& b) {
  return EngineCounters{a.generations + b.generations,
                        a.pc_events + b.pc_events,
                        a.adoptions + b.adoptions,
                        a.moran_events + b.moran_events,
                        a.mutations + b.mutations,
                        a.pairs_evaluated + b.pairs_evaluated,
                        a.games_played + b.games_played};
}

enum class JobState : std::uint8_t {
  Queued,
  Running,
  Completed,
  Failed,
  Cancelled,
};

const char* to_string(JobState s) noexcept;

/// Terminal output of a completed job — everything the acceptance
/// comparison against an undisturbed serial run needs (final strategy
/// table hash, exact fitness vector, merged engine.* counters), plus the
/// retry/preemption history. Carried verbatim by the journal's Completed
/// record so a restarted daemon still serves the result.
struct JobResult {
  std::uint64_t generations = 0;
  std::uint64_t table_hash = 0;
  std::uint64_t fitness_hash = 0;
  std::vector<double> fitness;
  EngineCounters counters;
  std::uint32_t attempts = 0;     ///< dispatches (1 = ran once, clean)
  std::uint32_t preemptions = 0;  ///< slice evictions survived
};

}  // namespace egt::serve
