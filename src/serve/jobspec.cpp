#include "serve/jobspec.hpp"

#include <sstream>
#include <stdexcept>

#include "game/spec/registry.hpp"
#include "simcheck/config_json.hpp"
#include "util/json.hpp"

namespace egt::serve {

JobSpec parse_job_spec(const std::string& text) {
  util::JsonValue v;
  try {
    v = util::JsonValue::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("invalid job spec JSON: ") +
                             e.what());
  }
  if (!v.is_object()) {
    throw std::runtime_error("invalid job spec: expected a JSON object");
  }
  if (const auto* schema = v.find("schema")) {
    if (schema->as_string() != kJobSchema) {
      throw std::runtime_error("invalid job spec: schema \"" +
                               schema->as_string() + "\" (this daemon reads " +
                               kJobSchema + ")");
    }
  }
  JobSpec spec;
  if (const auto* tenant = v.find("tenant")) {
    spec.tenant = tenant->as_string();
    if (spec.tenant.empty()) {
      throw std::runtime_error("invalid job spec: tenant must be non-empty");
    }
  }
  if (const auto* preset = v.find("game")) {
    if (preset->is_string()) {
      const game::GameSpec* found = game::find_game(preset->as_string());
      if (found == nullptr) {
        throw std::runtime_error("invalid job spec: unknown game preset \"" +
                                 preset->as_string() + "\"; registered presets:\n" +
                                 game::registry_listing());
      }
      spec.config.game = *found;
    } else {
      throw std::runtime_error(
          "invalid job spec: \"game\" must be a preset name string "
          "(use config.game for explicit tables)");
    }
  }
  if (const auto* config = v.find("config")) {
    // Preserve the preset as the starting point: config_from_json only
    // overwrites the game fields the object actually carries.
    const core::SimConfig base = spec.config;
    core::SimConfig parsed;
    try {
      parsed = simcheck::config_from_json(*config);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("invalid job spec config: ") +
                               e.what());
    }
    if (config->find("game") == nullptr) parsed.game = base.game;
    spec.config = parsed;
  }
  try {
    spec.config.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("invalid job spec config: ") +
                             e.what());
  }
  return spec;
}

std::string job_spec_to_json(const JobSpec& spec) {
  std::ostringstream os;
  util::JsonWriter w(os, 0);
  w.begin_object();
  w.field("schema", kJobSchema);
  w.field("tenant", spec.tenant);
  w.key("config");
  simcheck::write_config(w, spec.config);
  w.end_object();
  return os.str();
}

std::string job_result_to_json(std::uint64_t job_id, const JobResult& result) {
  std::ostringstream os;
  util::JsonWriter w(os, 0);
  w.begin_object();
  w.field("job_id", job_id);
  w.field("generations", result.generations);
  w.field("table_hash", result.table_hash);
  w.field("fitness_hash", result.fitness_hash);
  w.key("counters").begin_object();
  w.field("generations", result.counters.generations);
  w.field("pc_events", result.counters.pc_events);
  w.field("adoptions", result.counters.adoptions);
  w.field("moran_events", result.counters.moran_events);
  w.field("mutations", result.counters.mutations);
  w.field("pairs_evaluated", result.counters.pairs_evaluated);
  w.field("games_played", result.counters.games_played);
  w.end_object();
  w.field("attempts", result.attempts);
  w.field("preemptions", result.preemptions);
  w.end_object();
  return os.str();
}

}  // namespace egt::serve
