// Job submission schema ("egt.job/v1") and result/event JSON.
//
// A submission is one JSON object per line on egtd's stdin (or any
// transport that delivers the object text):
//
//   { "schema": "egt.job/v1",            // optional, validated if present
//     "tenant": "alice",                 // fair-share accounting key
//     "game":   "hawk_dove",             // optional preset (game registry)
//     "config": { ... } }                // egt.sim_config/v1 fields
//
// The config object reuses the simcheck schema verbatim — missing keys
// keep SimConfig defaults, unknown keys are ignored — and the optional
// "game" preset resolves through game::find_game before the config's own
// "game" block (if any) applies, so a spec can name a preset and still
// override rounds/noise on top.
#pragma once

#include <string>

#include "core/config.hpp"
#include "serve/job.hpp"

namespace egt::serve {

inline constexpr const char* kJobSchema = "egt.job/v1";

struct JobSpec {
  std::string tenant = "default";
  core::SimConfig config;
};

/// Parse one submission. Throws std::runtime_error with a
/// submitter-addressable message on malformed JSON, an unknown preset, or
/// a config that fails SimConfig::validate().
JobSpec parse_job_spec(const std::string& text);

/// Canonical re-serialization (the form stored in Submitted journal
/// records, so a restart replays exactly what was accepted).
std::string job_spec_to_json(const JobSpec& spec);

/// One completed job's result as a JSON object (egtd's response line).
std::string job_result_to_json(std::uint64_t job_id, const JobResult& result);

}  // namespace egt::serve
