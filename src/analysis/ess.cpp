#include "analysis/ess.hpp"

#include "game/enumerate.hpp"
#include "game/markov.hpp"
#include "util/check.hpp"

namespace egt::analysis {

namespace {

/// Per-round expected payoff of `a` against `b` (A's side), analytic only.
double mean_payoff(const game::Strategy& a, const game::Strategy& b,
                   const game::IpdParams& params) {
  if (a.is_pure() && b.is_pure() && params.noise == 0.0) {
    return game::markov::exact_pure_game(a.as_pure(), b.as_pure(),
                                         params.payoff, params.rounds)
        .mean_payoff_a();
  }
  EGT_REQUIRE_MSG(a.memory() == 1 && b.memory() == 1,
                  "invasion analysis needs an analytically solvable game "
                  "(memory-one, or pure strategies without noise)");
  return game::markov::finite_outcome_mem1(a, b, params.payoff, params.rounds,
                                           params.noise)
      .payoff_a;
}

}  // namespace

InvasionAnalysis analyze_invasion(const game::Strategy& resident,
                                  const game::Strategy& mutant,
                                  std::uint32_t n,
                                  const game::IpdParams& params,
                                  double tolerance) {
  EGT_REQUIRE_MSG(n >= 3, "invasion analysis needs at least three SSets");
  // One mutant among n-1 residents; everyone plays everyone else.
  const double rr = mean_payoff(resident, resident, params);
  const double rm = mean_payoff(resident, mutant, params);
  const double mr = mean_payoff(mutant, resident, params);

  InvasionAnalysis out;
  out.mutant_fitness = mr;  // all n-1 opponents are residents
  out.resident_fitness =
      (static_cast<double>(n - 2) * rr + rm) / static_cast<double>(n - 1);
  const double edge = out.mutant_fitness - out.resident_fitness;
  if (edge > tolerance) {
    out.outcome = InvasionOutcome::Invadable;
  } else if (edge < -tolerance) {
    out.outcome = InvasionOutcome::Resists;
  } else {
    out.outcome = InvasionOutcome::Neutral;
  }
  return out;
}

bool is_uninvadable_pure_mem1(const game::PureStrategy& resident,
                              std::uint32_t n, const game::IpdParams& params,
                              double tolerance) {
  EGT_REQUIRE_MSG(resident.memory() == 1, "memory-one sweep");
  for (const auto& mutant : game::all_pure_strategies(1)) {
    if (mutant == resident) continue;
    const auto a = analyze_invasion(game::Strategy(resident),
                                    game::Strategy(mutant), n, params,
                                    tolerance);
    if (a.outcome == InvasionOutcome::Invadable) return false;
  }
  return true;
}

std::vector<game::PureStrategy> uninvadable_pure_mem1(
    std::uint32_t n, const game::IpdParams& params, double tolerance) {
  std::vector<game::PureStrategy> out;
  for (const auto& resident : game::all_pure_strategies(1)) {
    if (is_uninvadable_pure_mem1(resident, n, params, tolerance)) {
      out.push_back(resident);
    }
  }
  return out;
}

}  // namespace egt::analysis
