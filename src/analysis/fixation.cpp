#include "analysis/fixation.hpp"

#include "pop/stats.hpp"
#include "util/check.hpp"

namespace egt::analysis {

FixationResult run_until_fixation(core::Engine& engine,
                                  std::uint64_t max_generations,
                                  double threshold,
                                  std::uint64_t check_interval) {
  EGT_REQUIRE_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold out of (0, 1]");
  EGT_REQUIRE_MSG(check_interval >= 1, "check interval must be positive");

  FixationResult result;
  auto check = [&]() {
    const auto c = pop::census(engine.population());
    result.final_dominant_fraction =
        static_cast<double>(c.front().count) / engine.population().size();
    if (result.final_dominant_fraction >= threshold) {
      result.fixated = true;
      result.generation = engine.generation();
      result.strategy = engine.population().strategy(c.front().example);
      return true;
    }
    return false;
  };

  if (check()) return result;
  std::uint64_t done = 0;
  while (done < max_generations) {
    // Boundary contract (pinned by fixation_test.cpp): the last stride is
    // clamped to the remaining budget, so a check_interval larger than —
    // or not dividing — max_generations still ends with a census exactly
    // at the max_generations boundary and never overruns the budget.
    const std::uint64_t step =
        std::min<std::uint64_t>(check_interval, max_generations - done);
    engine.run(step);
    done += step;
    if (check()) return result;
  }
  return result;
}

double fixation_probability(const core::SimConfig& config,
                            const game::Strategy& resident,
                            const game::Strategy& mutant,
                            std::uint32_t trials,
                            std::uint64_t max_generations_per_trial) {
  EGT_REQUIRE_MSG(trials >= 1, "need at least one trial");
  EGT_REQUIRE_MSG(resident.memory() == config.memory &&
                      mutant.memory() == config.memory,
                  "strategy memory depth must match the config");

  auto cfg = config;
  cfg.mutation_rate = 0.0;  // pure imitation: homogeneity is absorbing
  cfg.validate();

  const std::uint64_t mutant_hash = mutant.hash();
  std::uint32_t took_over = 0;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    auto trial_cfg = cfg;
    trial_cfg.seed = util::mix64(cfg.seed + 0x9e3779b97f4a7c15ULL * (trial + 1));

    std::vector<game::Strategy> strategies(cfg.ssets, resident);
    strategies[trial % cfg.ssets] = mutant;

    pop::NatureAgent fresh(trial_cfg.nature_config());
    core::Engine engine(
        trial_cfg,
        core::Engine::RestoredState{0, fresh.save_state(),
                                    pop::Population(std::move(strategies))});
    const auto result =
        run_until_fixation(engine, max_generations_per_trial, 1.0);
    if (result.fixated && result.strategy->hash() == mutant_hash) {
      ++took_over;
    }
  }
  return static_cast<double>(took_over) / trials;
}

}  // namespace egt::analysis
