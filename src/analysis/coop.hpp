// Play-based cooperation measures.
//
// pop::mean_coop_probability averages the strategy *tables* — cheap, but a
// rule's table says nothing about which states its games actually visit
// (WSLS's table averages 0.5 yet WSLS pairs cooperate almost always).
// These functions compute the cooperation that would actually be *played*:
// the expected fraction of cooperative moves over all ordered pair games
// of a generation, exactly where an analytic evaluator exists (memory-one
// chains, deterministic pure pairs) and by a seeded sample otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "game/ipd.hpp"
#include "pop/population.hpp"

namespace egt::analysis {

struct CooperationReport {
  /// Expected fraction of cooperative moves across all games.
  double mean_coop_rate = 0.0;
  /// Expected per-round payoff averaged over all (ordered) games.
  double mean_payoff = 0.0;
  /// Each SSet's own expected cooperation rate (its agents' moves only).
  std::vector<double> per_sset_coop;
};

/// Evaluate the whole population's expected play. O(ssets^2) pair
/// evaluations. `sample_seed` feeds the fallback sampler used for
/// stochastic memory>=2 pairs.
CooperationReport expected_play_cooperation(const pop::Population& pop,
                                            const game::IpdParams& params,
                                            std::uint64_t sample_seed = 0);

/// Expected cooperation rate of one ordered pair game (player A's moves).
double pair_cooperation(const game::Strategy& a, const game::Strategy& b,
                        const game::IpdParams& params,
                        std::uint64_t sample_seed = 0);

}  // namespace egt::analysis
