// Strategy heat-map rendering (the paper's Fig. 2 artefact): one row per
// SSet, one column per state; yellow = cooperate, blue = defect,
// intermediate probabilities interpolate. Written as binary PPM (P6),
// viewable everywhere and convertible with any image tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pop/population.hpp"

namespace egt::analysis {

struct HeatmapOptions {
  /// Pixel size of one matrix cell.
  int cell_width = 4;
  int cell_height = 1;
  /// Optional row order (e.g. cluster_sorted_order); empty = natural.
  std::vector<std::size_t> row_order;
};

/// Write `rows` (values in [0,1] = cooperation probability) to `path`.
void write_heatmap_ppm(const std::string& path,
                       const std::vector<std::vector<double>>& rows,
                       const HeatmapOptions& options = {});

/// Convenience: render a population's strategy table.
void write_population_heatmap(const std::string& path,
                              const pop::Population& pop,
                              const HeatmapOptions& options = {});

/// ASCII rendition for terminals/tests: one char per cell,
/// 'C' (p >= 0.75), 'c' (>= 0.5), 'd' (>= 0.25), 'D' (< 0.25).
std::string ascii_heatmap(const std::vector<std::vector<double>>& rows,
                          std::size_t max_rows = 40);

}  // namespace egt::analysis
