// Lloyd k-means clustering, used (as in the paper's Fig. 2) to group the
// final population's strategies so dominant rules stand out visually.
#pragma once

#include <cstdint>
#include <vector>

#include "pop/population.hpp"

namespace egt::analysis {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x dim
  std::vector<std::size_t> assignment;         ///< point -> cluster
  std::vector<std::size_t> cluster_sizes;      ///< per cluster
  double inertia = 0.0;                        ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Lloyd iterations with k-means++ seeding. `points` must be non-empty and
/// rectangular. Deterministic for a fixed seed.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::uint64_t seed = 17,
                    std::size_t max_iterations = 200);

/// The population's strategy table as rows of per-state cooperation
/// probabilities (the point set clustered for Fig. 2).
std::vector<std::vector<double>> strategy_matrix(const pop::Population& pop);

/// Row order that groups rows by cluster (largest cluster first), which is
/// what makes the Fig. 2(b) bands visible.
std::vector<std::size_t> cluster_sorted_order(const KMeansResult& result);

}  // namespace egt::analysis
