// Fixation analysis: run the dynamics until one strategy takes over (or a
// budget runs out) and report when. The quantity of interest across the
// evolutionary-dynamics literature (fixation probability/time under
// pairwise comparison, Traulsen et al. 2007 — the paper's ref [15]).
#pragma once

#include <cstdint>
#include <optional>

#include "core/engine.hpp"

namespace egt::analysis {

struct FixationResult {
  bool fixated = false;
  /// Generation at which the threshold was first reached (valid if fixated).
  std::uint64_t generation = 0;
  /// The (near-)fixed strategy (valid if fixated).
  std::optional<game::Strategy> strategy;
  /// Dominant-strategy share when the run stopped.
  double final_dominant_fraction = 0.0;
};

/// Advance `engine` until the most common strategy holds at least
/// `threshold` of the population, checking every `check_interval`
/// generations, giving up after `max_generations` more generations.
FixationResult run_until_fixation(core::Engine& engine,
                                  std::uint64_t max_generations,
                                  double threshold = 1.0,
                                  std::uint64_t check_interval = 16);

/// Monte-Carlo fixation probability of a single `mutant` SSet invading a
/// `resident` population under the config's dynamics (mutation disabled;
/// runs until the population is homogeneous). Returns the fraction of
/// `trials` in which the mutant's strategy took over.
double fixation_probability(const core::SimConfig& config,
                            const game::Strategy& resident,
                            const game::Strategy& mutant, std::uint32_t trials,
                            std::uint64_t max_generations_per_trial = 200000);

}  // namespace egt::analysis
