#include "analysis/heatmap.hpp"

#include <algorithm>
#include <fstream>

#include "analysis/kmeans.hpp"
#include "util/check.hpp"

namespace egt::analysis {

namespace {
struct Rgb {
  std::uint8_t r, g, b;
};

/// Blue (defect) -> yellow (cooperate), matching the paper's colouring.
Rgb colour(double coop) {
  coop = std::clamp(coop, 0.0, 1.0);
  const auto lerp = [&](double a, double b) {
    return static_cast<std::uint8_t>(a + (b - a) * coop + 0.5);
  };
  // defect: #2159a6 ; cooperate: #ffd21f
  return {lerp(0x21, 0xff), lerp(0x59, 0xd2), lerp(0xa6, 0x1f)};
}
}  // namespace

void write_heatmap_ppm(const std::string& path,
                       const std::vector<std::vector<double>>& rows,
                       const HeatmapOptions& options) {
  EGT_REQUIRE_MSG(!rows.empty(), "heatmap needs rows");
  EGT_REQUIRE(options.cell_width >= 1 && options.cell_height >= 1);
  const std::size_t ncols = rows.front().size();
  for (const auto& r : rows) {
    EGT_REQUIRE_MSG(r.size() == ncols, "heatmap needs rectangular input");
  }
  std::vector<std::size_t> order = options.row_order;
  if (order.empty()) {
    order.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) order[i] = i;
  }
  EGT_REQUIRE_MSG(order.size() == rows.size(), "row_order size mismatch");

  const std::size_t width = ncols * static_cast<std::size_t>(options.cell_width);
  const std::size_t height =
      rows.size() * static_cast<std::size_t>(options.cell_height);

  std::ofstream out(path, std::ios::binary);
  EGT_REQUIRE_MSG(out.good(), "cannot open heatmap file " + path);
  out << "P6\n" << width << " " << height << "\n255\n";

  std::vector<std::uint8_t> scanline(width * 3);
  for (std::size_t r : order) {
    const auto& row = rows[r];
    std::size_t px = 0;
    for (std::size_t c = 0; c < ncols; ++c) {
      const Rgb rgb = colour(row[c]);
      for (int w = 0; w < options.cell_width; ++w) {
        scanline[px++] = rgb.r;
        scanline[px++] = rgb.g;
        scanline[px++] = rgb.b;
      }
    }
    for (int h = 0; h < options.cell_height; ++h) {
      out.write(reinterpret_cast<const char*>(scanline.data()),
                static_cast<std::streamsize>(scanline.size()));
    }
  }
}

void write_population_heatmap(const std::string& path,
                              const pop::Population& pop,
                              const HeatmapOptions& options) {
  write_heatmap_ppm(path, strategy_matrix(pop), options);
}

std::string ascii_heatmap(const std::vector<std::vector<double>>& rows,
                          std::size_t max_rows) {
  std::string out;
  const std::size_t n = std::min(rows.size(), max_rows);
  for (std::size_t r = 0; r < n; ++r) {
    for (double v : rows[r]) {
      out += v >= 0.75 ? 'C' : (v >= 0.5 ? 'c' : (v >= 0.25 ? 'd' : 'D'));
    }
    out += '\n';
  }
  if (n < rows.size()) out += "...\n";
  return out;
}

}  // namespace egt::analysis
