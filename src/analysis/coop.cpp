#include "analysis/coop.hpp"

#include "game/markov.hpp"
#include "util/check.hpp"

namespace egt::analysis {

namespace {

/// (A's coop rate, A's per-round payoff) for an ordered pair game.
std::pair<double, double> pair_outcome(const game::Strategy& a,
                                       const game::Strategy& b,
                                       const game::IpdParams& params,
                                       std::uint64_t stream_key) {
  if (a.is_pure() && b.is_pure() && params.noise == 0.0) {
    const auto g = game::markov::exact_pure_game(a.as_pure(), b.as_pure(),
                                                 params.payoff, params.rounds);
    return {static_cast<double>(g.coop_a) / g.rounds, g.mean_payoff_a()};
  }
  if (a.memory() == 1) {
    const auto o = game::markov::finite_outcome_mem1(
        a, b, params.payoff, params.rounds, params.noise);
    return {o.coop_a, o.payoff_a};
  }
  // Stochastic memory>=2: one seeded sampled game.
  const game::IpdEngine engine(a.memory(), params);
  const auto g = engine.play(a, b, util::StreamRng(0x0c00b, stream_key));
  return {static_cast<double>(g.coop_a) / g.rounds, g.mean_payoff_a()};
}

}  // namespace

double pair_cooperation(const game::Strategy& a, const game::Strategy& b,
                        const game::IpdParams& params,
                        std::uint64_t sample_seed) {
  return pair_outcome(a, b, params, sample_seed).first;
}

CooperationReport expected_play_cooperation(const pop::Population& pop,
                                            const game::IpdParams& params,
                                            std::uint64_t sample_seed) {
  const pop::SSetId n = pop.size();
  EGT_REQUIRE(n >= 2);
  CooperationReport rep;
  rep.per_sset_coop.assign(n, 0.0);
  double coop_total = 0.0;
  double payoff_total = 0.0;
  for (pop::SSetId i = 0; i < n; ++i) {
    double coop_i = 0.0;
    for (pop::SSetId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto [coop, payoff] =
          pair_outcome(pop.strategy(i), pop.strategy(j), params,
                       util::stream_key(sample_seed, i, j));
      coop_i += coop;
      payoff_total += payoff;
    }
    rep.per_sset_coop[i] = coop_i / (n - 1);
    coop_total += coop_i;
  }
  const double games = static_cast<double>(n) * (n - 1);
  rep.mean_coop_rate = coop_total / games;
  rep.mean_payoff = payoff_total / games;
  return rep;
}

}  // namespace egt::analysis
