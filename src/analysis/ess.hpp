// Invasion analysis / evolutionary stability in the finite population.
//
// §III of the paper frames the whole field around two facts: defection is
// the unbeatable one-shot strategy, yet strategies like WSLS stabilise
// cooperation in the repeated game. This module makes those statements
// checkable: drop one mutant SSet into a resident population of size N and
// compare fitness exactly (using the analytic game evaluators), or sweep
// all 16 memory-one pure strategies for uninvadability.
//
// Requires analytically solvable games: memory-one (any mix, any noise) or
// deterministic pure pairs of any memory with zero noise.
#pragma once

#include <vector>

#include "game/ipd.hpp"
#include "game/strategy.hpp"

namespace egt::analysis {

enum class InvasionOutcome {
  Resists,    ///< mutant strictly less fit: selection removes it
  Neutral,    ///< equal fitness: drift decides
  Invadable,  ///< mutant strictly fitter: selection amplifies it
};

struct InvasionAnalysis {
  double resident_fitness = 0.0;  ///< per-round, per-opponent average
  double mutant_fitness = 0.0;
  InvasionOutcome outcome = InvasionOutcome::Neutral;
};

/// One `mutant` SSet among (n - 1) `resident` SSets, all-pairs play.
InvasionAnalysis analyze_invasion(const game::Strategy& resident,
                                  const game::Strategy& mutant,
                                  std::uint32_t n,
                                  const game::IpdParams& params,
                                  double tolerance = 1e-9);

/// True when `resident` resists (or is neutral against) every one of the
/// 16 memory-one pure mutants.
bool is_uninvadable_pure_mem1(const game::PureStrategy& resident,
                              std::uint32_t n, const game::IpdParams& params,
                              double tolerance = 1e-9);

/// All memory-one pure strategies that no memory-one pure mutant can
/// strictly invade at population size n.
std::vector<game::PureStrategy> uninvadable_pure_mem1(
    std::uint32_t n, const game::IpdParams& params, double tolerance = 1e-9);

}  // namespace egt::analysis
