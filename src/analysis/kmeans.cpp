#include "analysis/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace egt::analysis {

namespace {
double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}
}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::uint64_t seed,
                    std::size_t max_iterations) {
  EGT_REQUIRE_MSG(!points.empty(), "kmeans needs points");
  EGT_REQUIRE_MSG(k >= 1, "kmeans needs k >= 1");
  k = std::min(k, points.size());
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    EGT_REQUIRE_MSG(p.size() == dim, "kmeans needs rectangular input");
  }

  util::Xoshiro256 rng(seed);

  // k-means++ seeding.
  KMeansResult res;
  res.centroids.push_back(
      points[util::uniform_below(rng, points.size())]);
  std::vector<double> min_d2(points.size(),
                             std::numeric_limits<double>::infinity());
  while (res.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      min_d2[i] =
          std::min(min_d2[i], sq_distance(points[i], res.centroids.back()));
      total += min_d2[i];
    }
    if (total == 0.0) break;  // fewer distinct points than k
    double target = util::uniform01(rng) * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= min_d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    res.centroids.push_back(points[chosen]);
  }
  const std::size_t kk = res.centroids.size();

  // Lloyd iterations.
  res.assignment.assign(points.size(), 0);
  for (res.iterations = 0; res.iterations < max_iterations; ++res.iterations) {
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < kk; ++c) {
        const double d2 = sq_distance(points[i], res.centroids[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && res.iterations > 0) break;

    std::vector<std::vector<double>> sums(kk, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(kk, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = res.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < kk; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dim; ++d) {
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  res.cluster_sizes.assign(kk, 0);
  res.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++res.cluster_sizes[res.assignment[i]];
    res.inertia += sq_distance(points[i], res.centroids[res.assignment[i]]);
  }
  return res;
}

std::vector<std::vector<double>> strategy_matrix(const pop::Population& pop) {
  std::vector<std::vector<double>> rows;
  rows.reserve(pop.size());
  for (pop::SSetId i = 0; i < pop.size(); ++i) {
    const auto& s = pop.strategy(i);
    std::vector<double> row(s.states());
    for (game::State st = 0; st < s.states(); ++st) {
      row[st] = s.coop_prob(st);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::size_t> cluster_sorted_order(const KMeansResult& result) {
  // Rank clusters by size (descending), then emit point indices cluster by
  // cluster, preserving point order within a cluster.
  std::vector<std::size_t> cluster_rank(result.cluster_sizes.size());
  std::iota(cluster_rank.begin(), cluster_rank.end(), std::size_t{0});
  std::stable_sort(cluster_rank.begin(), cluster_rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.cluster_sizes[a] > result.cluster_sizes[b];
                   });
  std::vector<std::size_t> order;
  order.reserve(result.assignment.size());
  for (std::size_t c : cluster_rank) {
    for (std::size_t i = 0; i < result.assignment.size(); ++i) {
      if (result.assignment[i] == c) order.push_back(i);
    }
  }
  return order;
}

}  // namespace egt::analysis
