// Mean-field ground truth #2: the exact invasion chain (DESIGN.md §13).
//
// With mutation off and exactly two strategy classes (resident R, mutant
// M), the well-mixed pairwise-comparison dynamics is a birth-death Markov
// chain on the mutant count k ∈ {0..N}. One generation moves k by at most
// one:
//
//   T±_k = pc_rate · k (N-k) / (N (N-1)) · g(±Δ_k),
//   g(δ) = 1 / (1 + exp(-β δ)),   Δ_k = f_M(k) - f_R(k)
//
// with the engine's finite-N self-excluded fitness on the configured
// FitnessScale. Everything about fixation is then exact linear algebra:
// the fixation-probability vector ρ_k via the classic γ-product formula
// (γ_l = T⁻_l/T⁺_l = e^{-βΔ_l} when the teacher-better gate is off), and
// the unconditional/conditional fixation-time vectors via tridiagonal
// solves — generalizing the ρ = (1-γ)/(1-γ^N) constant-gap closed form
// pinned in tests/analysis/fixation_test.cpp to arbitrary GameSpec payoff
// tables. Times are in generations, directly comparable to the
// Monte-Carlo estimates of analysis::fixation_probability, which simcheck
// --stats bounds against ρ_1 at Wilson 99% intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "game/strategy.hpp"

namespace egt::analysis::meanfield {

/// Expected total pair payoffs (summed over rounds, pre-row_scale) of the
/// mutant/resident pair — the four numbers that fully determine the chain.
struct PairPayoffs {
  double mm = 0.0;  ///< mutant vs mutant
  double mr = 0.0;  ///< mutant vs resident
  double rm = 0.0;  ///< resident vs mutant
  double rr = 0.0;  ///< resident vs resident
};

/// The birth-death chain over the mutant count k = 0..N.
struct MoranChain {
  std::uint32_t population = 0;  ///< N
  std::vector<double> t_plus;    ///< size N+1; T⁺_k (0 at k = 0, N)
  std::vector<double> t_minus;   ///< size N+1; T⁻_k (0 at k = 0, N)
  std::vector<double> delta;     ///< size N+1; fitness gap Δ_k (interior k)

  void validate() const;
};

/// Exact expected payoff (a's side, totals over spec.rounds) of strategy
/// `a` against `b` under `config`'s game — PairEvaluator's exact kernels
/// where they apply (pure pairs, memory-one), the m-action spec chain
/// otherwise. Throws for configurations with no analytic pair expectation
/// (public goods, stochastic memory >= 2).
double mean_pair_payoff(const core::SimConfig& config, const game::Strategy& a,
                        const game::Strategy& b);

/// Build the chain for `mutant` invading `resident` under `config`
/// (config.ssets = N; beta / pc_rate / require_teacher_better /
/// fitness_scale all honoured; mutation ignored — fixation chains are
/// mutation-free by construction, matching analysis::fixation_probability).
/// Throws std::invalid_argument for structured populations or
/// UpdateRule::Moran — the chain is the well-mixed PC model only.
MoranChain build_moran_chain(const core::SimConfig& config,
                             const game::Strategy& resident,
                             const game::Strategy& mutant);

/// Same chain from raw pair payoffs: `scale` multiplies the payoff sums
/// into fitness (pass 1/((N-1) * rounds) for PerRoundAverage, 1 for
/// Total).
MoranChain build_moran_chain(std::uint32_t population,
                             const PairPayoffs& payoffs, double scale,
                             double beta, double pc_rate,
                             bool require_teacher_better);

struct MoranSolution {
  /// ρ_k: probability the chain started at k mutants absorbs at N.
  std::vector<double> fixation;
  /// t_k: expected generations to absorption (either end) from k.
  std::vector<double> absorption_time;
  /// τ_k: expected generations to absorption at N, conditioned on that
  /// happening. NaN where ρ_k = 0.
  std::vector<double> conditional_fixation_time;
};

/// Full solve: ρ via the γ-product formula in log space (overflow-safe for
/// strong selection), times via tridiagonal (Thomas) solves of the
/// standard recurrences. Throws std::invalid_argument if an interior state
/// is absorbing (T⁺_k = T⁻_k = 0, possible only under the teacher-better
/// gate at Δ_k = 0 — the agent chain would be stuck there too).
MoranSolution solve(const MoranChain& chain);

/// ρ_1 of build_moran_chain(config, resident, mutant) — the exact twin of
/// analysis::fixation_probability.
double exact_fixation_probability(const core::SimConfig& config,
                                  const game::Strategy& resident,
                                  const game::Strategy& mutant);

/// Reference implementation of ρ by solving the full linear system
/// instead of the product formula — kept separate so tests can cross-check
/// two independent derivations to machine precision.
std::vector<double> fixation_by_linear_solve(const MoranChain& chain);

/// The constant-gap closed form ρ_1 = (1 - γ) / (1 - γ^N), γ = e^{-βΔ}
/// (neutral limit 1/N), valid when Δ_k is k-independent — the formula
/// tests/analysis/fixation_test.cpp pins. Exposed for the ≤ 1e-12
/// acceptance check against solve().
double constant_gap_closed_form(std::uint32_t population, double beta,
                                double delta);

}  // namespace egt::analysis::meanfield
