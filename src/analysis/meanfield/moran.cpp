#include "analysis/meanfield/moran.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/fitness.hpp"
#include "game/spec/chain.hpp"
#include "pop/fermi.hpp"

namespace egt::analysis::meanfield {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Adoption probability of a planned PC event, honouring the
/// teacher-better gate exactly as pop::NatureAgent::decide_adoption does
/// (the gate zeroes adoption unless the teacher is *strictly* better).
double adoption_probability(double teacher, double learner, double beta,
                            bool require_teacher_better) {
  if (require_teacher_better && !(teacher > learner)) return 0.0;
  return pop::fermi_probability(teacher, learner, beta);
}

/// Thomas solve of T⁺_k y_{k+1} - (T⁺_k + T⁻_k) y_k + T⁻_k y_{k-1} =
/// rhs_k for interior k with y_0 = y0 and y_N = yN. The system is a
/// weakly diagonally dominant M-matrix (|diag| = sub + super), so the
/// forward elimination never hits a zero pivot while some transition out
/// of every interior state exists — which MoranChain::validate enforces.
std::vector<double> tridiagonal_solve(const MoranChain& chain,
                                      const std::vector<double>& rhs,
                                      double y0, double yN) {
  const std::uint32_t n = chain.population;
  std::vector<double> diag(n + 1), upper(n + 1), b(n + 1);
  for (std::uint32_t k = 1; k < n; ++k) {
    diag[k] = -(chain.t_plus[k] + chain.t_minus[k]);
    upper[k] = chain.t_plus[k];
    b[k] = rhs[k];
  }
  b[1] -= chain.t_minus[1] * y0;
  b[n - 1] -= chain.t_plus[n - 1] * yN;

  for (std::uint32_t k = 2; k < n; ++k) {
    const double w = chain.t_minus[k] / diag[k - 1];
    diag[k] -= w * upper[k - 1];
    b[k] -= w * b[k - 1];
  }
  std::vector<double> y(n + 1, 0.0);
  y[0] = y0;
  y[n] = yN;
  if (n >= 2) {
    y[n - 1] = b[n - 1] / diag[n - 1];
    for (std::uint32_t k = n - 1; k-- > 1;) {
      y[k] = (b[k] - upper[k] * y[k + 1]) / diag[k];
    }
  }
  return y;
}

}  // namespace

void MoranChain::validate() const {
  if (population < 2) {
    throw std::invalid_argument("MoranChain: population must be >= 2");
  }
  const std::size_t want = static_cast<std::size_t>(population) + 1;
  if (t_plus.size() != want || t_minus.size() != want ||
      delta.size() != want) {
    throw std::invalid_argument("MoranChain: vectors must have N + 1 entries");
  }
  if (t_plus.front() != 0.0 || t_minus.front() != 0.0 ||
      t_plus.back() != 0.0 || t_minus.back() != 0.0) {
    throw std::invalid_argument("MoranChain: k = 0 and k = N must be absorbing");
  }
  for (std::uint32_t k = 1; k < population; ++k) {
    if (t_plus[k] < 0.0 || t_minus[k] < 0.0 ||
        t_plus[k] + t_minus[k] > 1.0 + 1e-12) {
      throw std::invalid_argument("MoranChain: transition rates out of range");
    }
    if (t_plus[k] == 0.0 && t_minus[k] == 0.0) {
      // Only reachable with the teacher-better gate at Δ_k = 0: the
      // agent dynamics would be frozen at k mutants and fixation is
      // undefined — exactly the runs analysis::fixation_probability
      // would never finish.
      throw std::invalid_argument(
          "MoranChain: interior state " + std::to_string(k) +
          " is absorbing (teacher-better gate at zero fitness gap)");
    }
  }
}

double mean_pair_payoff(const core::SimConfig& config, const game::Strategy& a,
                        const game::Strategy& b) {
  if (config.game.kind == game::GameKind::PublicGoods) {
    throw std::invalid_argument(
        "mean_pair_payoff: public goods fitness is group-pooled, not "
        "pairwise — no mean-field pair payoff exists");
  }
  core::SimConfig analytic = config;
  analytic.fitness_mode = core::FitnessMode::Analytic;
  const core::PairEvaluator eval(analytic);
  if (eval.strategy_pure(a, b)) return eval.pair_payoff(a, b);
  // Stochastic pairs outside the evaluator's exact kernels (e.g. binary
  // memory-0 mixed play with noise): the m-action chain still gives the
  // exact expectation for memory <= 1.
  const auto ba = game::spec::Behavioral::from_strategy(config.game, a);
  const auto bb = game::spec::Behavioral::from_strategy(config.game, b);
  return game::spec::expected_game(config.game, ba, bb).payoff_a;
}

MoranChain build_moran_chain(std::uint32_t population,
                             const PairPayoffs& payoffs, double scale,
                             double beta, double pc_rate,
                             bool require_teacher_better) {
  if (population < 2) {
    throw std::invalid_argument("build_moran_chain: population must be >= 2");
  }
  MoranChain chain;
  chain.population = population;
  chain.t_plus.assign(population + 1, 0.0);
  chain.t_minus.assign(population + 1, 0.0);
  chain.delta.assign(population + 1, 0.0);
  const double n = static_cast<double>(population);
  for (std::uint32_t k = 1; k < population; ++k) {
    const double kd = static_cast<double>(k);
    // Engine fitness at k mutants: each member sums pair payoffs against
    // the other N-1 SSets (self excluded), then row_scale maps the sum
    // onto the configured FitnessScale.
    const double f_mut =
        scale * ((kd - 1.0) * payoffs.mm + (n - kd) * payoffs.mr);
    const double f_res =
        scale * (kd * payoffs.rm + (n - kd - 1.0) * payoffs.rr);
    chain.delta[k] = f_mut - f_res;
    // One PC event per generation with probability pc_rate; teacher
    // uniform over N, learner uniform over the other N-1. k rises when a
    // mutant teaches a resident, falls in the mirrored case.
    const double pair_prob = pc_rate * kd * (n - kd) / (n * (n - 1.0));
    chain.t_plus[k] =
        pair_prob *
        adoption_probability(f_mut, f_res, beta, require_teacher_better);
    chain.t_minus[k] =
        pair_prob *
        adoption_probability(f_res, f_mut, beta, require_teacher_better);
  }
  chain.validate();
  return chain;
}

MoranChain build_moran_chain(const core::SimConfig& config,
                             const game::Strategy& resident,
                             const game::Strategy& mutant) {
  if (config.interaction.structured()) {
    throw std::invalid_argument(
        "build_moran_chain: only the well-mixed population is a birth-death "
        "chain in the mutant count (structured graphs need per-site state)");
  }
  if (config.update_rule != pop::UpdateRule::PairwiseComparison) {
    throw std::invalid_argument(
        "build_moran_chain: transitions model pairwise-comparison updating");
  }
  PairPayoffs payoffs;
  payoffs.mm = mean_pair_payoff(config, mutant, mutant);
  payoffs.mr = mean_pair_payoff(config, mutant, resident);
  payoffs.rm = mean_pair_payoff(config, resident, mutant);
  payoffs.rr = mean_pair_payoff(config, resident, resident);
  const double scale =
      config.fitness_scale == core::FitnessScale::Total
          ? 1.0
          : 1.0 / (static_cast<double>(config.ssets - 1) * config.game.rounds);
  return build_moran_chain(config.ssets, payoffs, scale, config.beta,
                           config.pc_rate, config.require_teacher_better);
}

MoranSolution solve(const MoranChain& chain) {
  chain.validate();
  const std::uint32_t n = chain.population;
  MoranSolution sol;

  bool plus_vanishes = false;
  for (std::uint32_t k = 1; k < n; ++k) {
    if (chain.t_plus[k] == 0.0) plus_vanishes = true;
  }
  if (plus_vanishes) {
    // γ_k = T⁻_k / T⁺_k is infinite somewhere — the product formula
    // degenerates, the linear system does not.
    sol.fixation = fixation_by_linear_solve(chain);
  } else {
    // ρ_k = Σ_{l<k} Π_{m<=l} γ_m / Σ_{l<N} Π_{m<=l} γ_m, evaluated in
    // log space so strong selection (γ^N far outside double range) stays
    // finite.
    std::vector<double> log_term(n, 0.0);
    double running = 0.0;
    bool dead = false;  // a γ_m = 0 zeroes every later product
    for (std::uint32_t l = 1; l < n; ++l) {
      if (!dead) {
        if (chain.t_minus[l] == 0.0) {
          dead = true;
        } else {
          running += std::log(chain.t_minus[l]) - std::log(chain.t_plus[l]);
        }
      }
      log_term[l] =
          dead ? -std::numeric_limits<double>::infinity() : running;
    }
    const double peak = *std::max_element(log_term.begin(), log_term.end());
    std::vector<double> prefix(n + 1, 0.0);
    for (std::uint32_t l = 0; l < n; ++l) {
      prefix[l + 1] = prefix[l] + std::exp(log_term[l] - peak);
    }
    sol.fixation.assign(n + 1, 0.0);
    for (std::uint32_t k = 0; k <= n; ++k) {
      sol.fixation[k] = prefix[std::min(k, n)] / prefix[n];
    }
  }

  std::vector<double> neg_one(n + 1, -1.0);
  neg_one[0] = neg_one[n] = 0.0;
  sol.absorption_time = tridiagonal_solve(chain, neg_one, 0.0, 0.0);

  // Conditional times via θ_k = ρ_k τ_k: T⁺ θ_{k+1} - (T⁺+T⁻) θ_k +
  // T⁻ θ_{k-1} = -ρ_k with θ_0 = θ_N = 0 (Traulsen & Hauert 2009).
  std::vector<double> neg_rho(n + 1, 0.0);
  for (std::uint32_t k = 1; k < n; ++k) neg_rho[k] = -sol.fixation[k];
  const auto theta = tridiagonal_solve(chain, neg_rho, 0.0, 0.0);
  sol.conditional_fixation_time.assign(n + 1, kNaN);
  sol.conditional_fixation_time[n] = 0.0;
  for (std::uint32_t k = 1; k < n; ++k) {
    if (sol.fixation[k] > 0.0) {
      sol.conditional_fixation_time[k] = theta[k] / sol.fixation[k];
    }
  }
  return sol;
}

double exact_fixation_probability(const core::SimConfig& config,
                                  const game::Strategy& resident,
                                  const game::Strategy& mutant) {
  return solve(build_moran_chain(config, resident, mutant)).fixation[1];
}

std::vector<double> fixation_by_linear_solve(const MoranChain& chain) {
  chain.validate();
  const std::uint32_t n = chain.population;
  std::vector<double> zero(n + 1, 0.0);
  auto rho = tridiagonal_solve(chain, zero, 0.0, 1.0);
  for (double& v : rho) v = std::clamp(v, 0.0, 1.0);  // shave rounding
  return rho;
}

double constant_gap_closed_form(std::uint32_t population, double beta,
                                double delta) {
  const double x = beta * delta;
  if (std::abs(x) < 1e-14) return 1.0 / static_cast<double>(population);
  // (1 - γ) / (1 - γ^N) with γ = e^{-x}, written through expm1 so weak
  // selection keeps full precision.
  return std::expm1(-x) / std::expm1(-static_cast<double>(population) * x);
}

}  // namespace egt::analysis::meanfield
