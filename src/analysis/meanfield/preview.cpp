#include "analysis/meanfield/preview.hpp"

#include <stdexcept>
#include <unordered_map>

#include "analysis/meanfield/moran.hpp"
#include "core/engine.hpp"
#include "game/spec/gamespec.hpp"

namespace egt::analysis::meanfield {

namespace {

std::vector<game::Strategy> enumerate_classes(const core::SimConfig& config) {
  std::vector<game::Strategy> classes;
  if (config.game.uses_nway()) {
    for (std::uint32_t a = 0; a < config.game.actions; ++a) {
      classes.emplace_back(
          game::NWayStrategy::pure_action(config.game.actions, a));
    }
    return classes;
  }
  const std::uint32_t states = config.memory == 0 ? 1 : 4;
  const std::uint32_t count = 1u << states;
  for (std::uint32_t b = 0; b < count; ++b) {
    game::PureStrategy s(config.memory);
    for (std::uint32_t st = 0; st < states; ++st) {
      s.set_move(static_cast<game::State>(st), ((b >> st) & 1u) != 0
                                                   ? game::Move::Defect
                                                   : game::Move::Cooperate);
    }
    classes.emplace_back(std::move(s));
  }
  return classes;
}

double class_coop(const game::Strategy& s) {
  if (s.is_nway()) return s.as_nway().action_prob(0);
  double acc = 0.0;
  for (std::uint32_t st = 0; st < s.states(); ++st) {
    acc += s.coop_prob(static_cast<game::State>(st));
  }
  return acc / s.states();
}

std::vector<double> mutation_matrix(const core::SimConfig& config,
                                    const std::vector<game::Strategy>& cls) {
  const std::size_t d = cls.size();
  if (config.mutation_kernel == pop::MutationKernel::UniformProbs) {
    return {};  // ReplicatorModel's empty kernel = uniform over classes
  }
  // Single-bit PureBitFlip: binary strategies hop to a uniformly random
  // Hamming-1 neighbour; n-way one-hots to a uniformly random *other*
  // action (nature.cpp's kernel, exactly).
  std::vector<double> m(d * d, 0.0);
  if (!cls.empty() && cls.front().is_nway()) {
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        if (a != b) m[a * d + b] = 1.0 / static_cast<double>(d - 1);
      }
    }
    return m;
  }
  const std::uint32_t states = cls.front().states();
  for (std::size_t a = 0; a < d; ++a) {
    for (std::uint32_t st = 0; st < states; ++st) {
      m[a * d + (a ^ (std::size_t{1} << st))] =
          1.0 / static_cast<double>(states);
    }
  }
  return m;
}

}  // namespace

double PreviewModel::cooperation(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < coop.size(); ++i) acc += coop[i] * x[i];
  return acc;
}

bool preview_supported(const core::SimConfig& config, std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why) *why = reason;
    return false;
  };
  if (config.game.kind == game::GameKind::PublicGoods) {
    return fail("public goods fitness is group-pooled — no pairwise "
                "mean-field payoff matrix exists");
  }
  if (config.interaction.structured()) {
    return fail("structured populations have per-site state the well-mixed "
                "mean field cannot represent");
  }
  if (config.update_rule != pop::UpdateRule::PairwiseComparison) {
    return fail("the mean-field drift models pairwise-comparison updating");
  }
  if (config.space != pop::StrategySpace::Pure) {
    return fail("the mixed strategy space is a continuum — only pure "
                "spaces enumerate into replicator classes");
  }
  if (!config.game.uses_nway() && config.memory > 1) {
    return fail("memory >= 2 enumerates 2^16+ classes — beyond the "
                "mean-field preview's class budget");
  }
  if (config.mutation_kernel != pop::MutationKernel::UniformProbs &&
      !(config.mutation_kernel == pop::MutationKernel::PureBitFlip &&
        config.mutation_bits == 1)) {
    return fail("only UniformProbs and single-bit PureBitFlip mutation "
                "kernels have class-space transition matrices");
  }
  if (config.ssets < 2) return fail("need at least 2 SSets");
  return true;
}

PreviewModel build_preview_model(const core::SimConfig& config) {
  std::string why;
  if (!preview_supported(config, &why)) {
    throw std::invalid_argument("mean-field preview unsupported: " + why);
  }
  PreviewModel pm;
  pm.classes = enumerate_classes(config);
  const std::uint32_t d = static_cast<std::uint32_t>(pm.classes.size());

  pm.model.dim = d;
  pm.model.population = config.ssets;
  pm.model.beta = config.beta;
  pm.model.pc_rate = config.pc_rate;
  pm.model.mutation_rate = config.mutation_rate;
  pm.model.mutation = mutation_matrix(config, pm.classes);
  // Class-pair payoffs on the engine's fitness scale (see
  // ReplicatorModel::payoff): PerRoundAverage divides the whole-game
  // totals by rounds (the per-opponent 1/(N-1) cancels against fitness()
  // summing N-1 encounters); Total multiplies by N-1 instead.
  const double to_scale =
      config.fitness_scale == core::FitnessScale::Total
          ? static_cast<double>(config.ssets - 1)
          : 1.0 / config.game.rounds;
  pm.model.payoff.resize(static_cast<std::size_t>(d) * d);
  for (std::uint32_t i = 0; i < d; ++i) {
    for (std::uint32_t j = 0; j < d; ++j) {
      pm.model.payoff[static_cast<std::size_t>(i) * d + j] =
          to_scale * mean_pair_payoff(config, pm.classes[i], pm.classes[j]);
    }
  }

  pm.labels.reserve(d);
  pm.coop.reserve(d);
  std::unordered_map<std::uint64_t, std::uint32_t> by_hash;
  for (std::uint32_t i = 0; i < d; ++i) {
    pm.labels.push_back(pm.classes[i].is_nway()
                            ? pm.classes[i].as_nway().to_string()
                            : pm.classes[i].as_pure().to_string());
    pm.coop.push_back(class_coop(pm.classes[i]));
    by_hash.emplace(pm.classes[i].hash(), i);
  }

  // The exact population the agent engines would start from.
  const pop::Population initial = core::make_initial_population(config);
  pm.x0.assign(d, 0.0);
  for (pop::SSetId s = 0; s < config.ssets; ++s) {
    const auto it = by_hash.find(initial.strategy(s).hash());
    if (it == by_hash.end()) {
      throw std::logic_error(
          "preview: initial population holds a strategy outside the "
          "enumerated class space");
    }
    pm.x0[it->second] += 1.0 / static_cast<double>(config.ssets);
  }
  return pm;
}

PreviewResult run_preview(const core::SimConfig& config,
                          std::uint32_t samples) {
  PreviewResult out;
  out.model = build_preview_model(config);
  const double t_end = static_cast<double>(config.generations);
  IntegrateOptions opts;
  if (samples > 0 && t_end > 0.0) opts.sample_every = t_end / samples;
  out.trajectory = integrate(out.model.model, out.model.x0, t_end, opts);
  out.initial_cooperation = out.model.cooperation(out.model.x0);
  out.final_cooperation = out.model.cooperation(out.trajectory.final_state);
  return out;
}

}  // namespace egt::analysis::meanfield
