#include "analysis/meanfield/replicator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace egt::analysis::meanfield {

namespace {

void rk4_step(const ReplicatorModel& model, const std::vector<double>& y,
              double h, std::vector<double>& out) {
  const std::size_t d = y.size();
  const auto k1 = model.drift(y);
  std::vector<double> tmp(d);
  for (std::size_t i = 0; i < d; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  const auto k2 = model.drift(tmp);
  for (std::size_t i = 0; i < d; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  const auto k3 = model.drift(tmp);
  for (std::size_t i = 0; i < d; ++i) tmp[i] = y[i] + h * k3[i];
  const auto k4 = model.drift(tmp);
  out.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = y[i] + (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

}  // namespace

std::vector<double> ReplicatorModel::fitness(
    const std::vector<double>& x) const {
  std::vector<double> f(dim, 0.0);
  for (std::uint32_t i = 0; i < dim; ++i) {
    double acc = 0.0;
    const double* row = payoff.data() + static_cast<std::size_t>(i) * dim;
    for (std::uint32_t j = 0; j < dim; ++j) acc += row[j] * x[j];
    if (population >= 2) {
      // Self-excluded finite-N fitness: a class-i member faces N-1
      // opponents drawn from the population minus itself, so the i-vs-i
      // term loses exactly one encounter (DESIGN.md §13).
      const double n = static_cast<double>(population);
      f[i] = (n * acc - row[i]) / (n - 1.0);
    } else {
      f[i] = acc;
    }
  }
  return f;
}

std::vector<double> ReplicatorModel::drift(const std::vector<double>& x) const {
  const auto f = fitness(x);
  // One PC event per generation picks teacher T and learner L uniformly
  // (distinct); adoption probability is Fermi. Gains minus losses for
  // class i collapse to tanh(β Δf / 2); the 1/(N-1) is the exact
  // teacher-learner pairing factor. population == 0 drops the finite-N
  // prefactors (textbook imitation flow, time in sweeps).
  const double imit_rate =
      population >= 2 ? pc_rate / (static_cast<double>(population) - 1.0)
                      : pc_rate;
  const double mut_rate =
      population >= 2 ? mutation_rate / static_cast<double>(population)
                      : mutation_rate;
  std::vector<double> dx(dim, 0.0);
  for (std::uint32_t i = 0; i < dim; ++i) {
    double flow = 0.0;
    for (std::uint32_t j = 0; j < dim; ++j) {
      if (j == i) continue;
      flow += x[j] * std::tanh(0.5 * beta * (f[i] - f[j]));
    }
    dx[i] = imit_rate * x[i] * flow;
  }
  if (mut_rate > 0.0) {
    for (std::uint32_t i = 0; i < dim; ++i) {
      double inflow = 0.0;
      if (mutation.empty()) {
        inflow = 1.0 / static_cast<double>(dim);  // uniform target kernel
      } else {
        for (std::uint32_t s = 0; s < dim; ++s) {
          inflow += x[s] * mutation[static_cast<std::size_t>(s) * dim + i];
        }
      }
      dx[i] += mut_rate * (inflow - x[i]);
    }
  }
  return dx;
}

void ReplicatorModel::validate() const {
  if (dim == 0) throw std::invalid_argument("ReplicatorModel: dim == 0");
  if (payoff.size() != static_cast<std::size_t>(dim) * dim) {
    throw std::invalid_argument("ReplicatorModel: payoff must be dim x dim");
  }
  if (!mutation.empty()) {
    if (mutation.size() != static_cast<std::size_t>(dim) * dim) {
      throw std::invalid_argument(
          "ReplicatorModel: mutation kernel must be dim x dim (or empty)");
    }
    for (std::uint32_t s = 0; s < dim; ++s) {
      double row = 0.0;
      for (std::uint32_t t = 0; t < dim; ++t) {
        const double p = mutation[static_cast<std::size_t>(s) * dim + t];
        if (p < 0.0) {
          throw std::invalid_argument(
              "ReplicatorModel: negative mutation probability");
        }
        row += p;
      }
      if (std::abs(row - 1.0) > 1e-9) {
        throw std::invalid_argument(
            "ReplicatorModel: mutation kernel rows must sum to 1");
      }
    }
  }
  if (population == 1) {
    throw std::invalid_argument(
        "ReplicatorModel: population must be 0 (infinite) or >= 2");
  }
  if (!(beta >= 0.0)) throw std::invalid_argument("ReplicatorModel: beta < 0");
  if (!(pc_rate >= 0.0 && pc_rate <= 1.0)) {
    throw std::invalid_argument("ReplicatorModel: pc_rate outside [0, 1]");
  }
  if (!(mutation_rate >= 0.0 && mutation_rate <= 1.0)) {
    throw std::invalid_argument("ReplicatorModel: mutation_rate outside [0,1]");
  }
}

ReplicatorResult integrate(const ReplicatorModel& model,
                           const std::vector<double>& x0, double t_end,
                           const IntegrateOptions& opts) {
  model.validate();
  if (x0.size() != model.dim) {
    throw std::invalid_argument("integrate: x0 has wrong dimension");
  }
  double sum0 = 0.0;
  for (double v : x0) {
    if (v < -1e-12) throw std::invalid_argument("integrate: x0 negative");
    sum0 += v;
  }
  if (std::abs(sum0 - 1.0) > 1e-9) {
    throw std::invalid_argument("integrate: x0 must lie on the simplex");
  }
  if (!(t_end >= 0.0)) throw std::invalid_argument("integrate: t_end < 0");

  ReplicatorResult result;
  std::vector<double> y = x0;
  double t = 0.0;
  result.times.push_back(0.0);
  result.states.push_back(y);

  const double max_step =
      opts.max_step > 0.0 ? opts.max_step : std::max(t_end / 8.0, 1e-6);
  double h = std::min(std::max(opts.initial_step, 1e-9), max_step);
  double next_sample =
      opts.sample_every > 0.0 ? opts.sample_every : t_end + 1.0;

  std::vector<double> full(model.dim), half(model.dim), two_half(model.dim);
  while (t < t_end) {
    bool hit_sample = false;
    double step = std::min(h, t_end - t);
    if (opts.sample_every > 0.0 && next_sample <= t_end + 1e-12 &&
        t + step >= next_sample - 1e-12) {
      step = next_sample - t;
      hit_sample = true;
    }

    rk4_step(model, y, step, full);
    rk4_step(model, y, 0.5 * step, half);
    rk4_step(model, half, 0.5 * step, two_half);

    // Step doubling: RK4 local error ~ C h^5, so the half-step pair is
    // 2^4 = 16x more accurate and err ≈ |Δ| / 15 estimates the
    // half-step solution's error.
    double err = 0.0;
    for (std::uint32_t i = 0; i < model.dim; ++i) {
      err = std::max(err, std::abs(two_half[i] - full[i]) / 15.0);
    }
    if (err > opts.tolerance && step > 1e-9) {
      ++result.rejected_steps;
      const double shrink =
          0.9 * std::pow(opts.tolerance / err, 0.2);  // fifth-order control
      h = step * std::clamp(shrink, 0.1, 0.5);
      continue;
    }

    // Accept, with local extrapolation to fifth order.
    for (std::uint32_t i = 0; i < model.dim; ++i) {
      y[i] = two_half[i] + (two_half[i] - full[i]) / 15.0;
    }
    t += step;
    ++result.steps;

    // Simplex invariant: the drift sums to zero and RK preserves linear
    // invariants, so any growth here is a bug or catastrophic rounding.
    double sum = 0.0, min_v = 0.0;
    for (double v : y) {
      sum += v;
      min_v = std::min(min_v, v);
    }
    result.max_simplex_drift =
        std::max(result.max_simplex_drift, std::abs(sum - 1.0));
    if (std::abs(sum - 1.0) > opts.simplex_tolerance ||
        min_v < -opts.simplex_tolerance) {
      throw std::runtime_error(
          "replicator integrate: simplex invariant violated (|sum-1| = " +
          std::to_string(std::abs(sum - 1.0)) +
          ", min = " + std::to_string(min_v) + ") at t = " +
          std::to_string(t));
    }
    // Boundary trajectories can land a rounding error below zero; clamp
    // and renormalize so long integrations stay exactly on the simplex.
    for (double& v : y) v = std::max(v, 0.0);
    sum = 0.0;
    for (double v : y) sum += v;
    for (double& v : y) v /= sum;

    if (hit_sample) {
      result.times.push_back(t);
      result.states.push_back(y);
      next_sample += opts.sample_every;
    }

    if (err > 0.0) {
      const double grow = 0.9 * std::pow(opts.tolerance / err, 0.2);
      h = std::min(step * std::clamp(grow, 1.0, 4.0), max_step);
    } else {
      h = std::min(step * 4.0, max_step);
    }
  }

  if (result.times.back() != t_end && t_end > 0.0) {
    result.times.push_back(t_end);
    result.states.push_back(y);
  }
  result.final_state = y;
  return result;
}

std::vector<std::vector<double>> sample_at(const ReplicatorModel& model,
                                           const std::vector<double>& x0,
                                           const std::vector<double>& times,
                                           const IntegrateOptions& opts) {
  std::vector<std::vector<double>> out;
  out.reserve(times.size());
  std::vector<double> y = x0;
  double t = 0.0;
  for (double target : times) {
    if (target < t - 1e-12) {
      throw std::invalid_argument("sample_at: times must be non-decreasing");
    }
    if (target > t) {
      IntegrateOptions seg = opts;
      seg.sample_every = 0.0;
      ReplicatorModel m = model;
      const auto r = integrate(m, y, target - t, seg);
      y = r.final_state;
      t = target;
    }
    out.push_back(y);
  }
  return out;
}

}  // namespace egt::analysis::meanfield
