// Mean-field ground truth #1: the pairwise-comparison replicator flow
// (DESIGN.md §13).
//
// The agent-based dynamics — Nature draws one teacher/learner pair per
// generation and the learner adopts via the Fermi rule — has an exact
// mean-field drift. With x the strategy-class abundance vector, Π the
// pairwise per-round payoff table and f(x) the engine's (self-excluded)
// fitness, the expected per-generation change of class i is
//
//   E[Δx_i | x] = pc_rate/(N-1) · x_i Σ_j x_j tanh(β (f_i - f_j) / 2)
//               + mutation_rate/N · ((Mᵀx)_i - x_i)
//
// because a teacher-learner Fermi comparison gains minus losses collapses
// to g(+δ) - g(-δ) = tanh(βδ/2). As N→∞ (rescaling time by N/pc_rate)
// this is the imitation dynamics of Fontanari, whose β→0 limit is the
// classic replicator equation — the correspondence simcheck --stats
// validates against every engine. ReplicatorModel integrates exactly this
// drift in *generation* time with adaptive RK4, so finite-N agent
// trajectories are comparable without any time-unit gymnastics.
//
// Invariants: the drift sums to zero, so Σx is conserved; Runge-Kutta
// methods preserve linear invariants exactly, and the integrator verifies
// the simplex constraint (Σx = 1, x ≥ 0) after every accepted step —
// drift beyond the tolerance throws instead of silently leaving the
// simplex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace egt::analysis::meanfield {

/// The mean-field model of one well-mixed population: d strategy classes
/// with a fixed pairwise payoff table. Build by hand for synthetic models
/// or via preview.hpp's build_model for a full SimConfig.
struct ReplicatorModel {
  std::uint32_t dim = 0;
  /// d x d row-major pairwise payoff of the row class against the column
  /// class, on the engine's fitness scale (PerRoundAverage: per-round
  /// expected payoff; Total: whole-game totals pre-multiplied by N-1 so
  /// fitness() lands on raw sums).
  std::vector<double> payoff;
  /// Population size N >= 2: fitness self-excludes and the drift carries
  /// the engine's exact 1/(N-1) and 1/N event prefactors. 0 = infinite
  /// population (f = Πx, unit prefactors — the textbook flow, time then
  /// measured in sweeps of N/pc_rate generations).
  std::uint32_t population = 0;
  double beta = 1.0;
  double pc_rate = 1.0;
  double mutation_rate = 0.0;
  /// d x d row-stochastic mutation kernel: mutation[s*dim + t] is the
  /// probability a mutation event on a class-s member yields class t.
  /// Empty = uniform over all classes (MutationKernel::UniformProbs).
  std::vector<double> mutation;

  /// Engine fitness of every class at abundance x (self-excluded when
  /// population >= 2).
  std::vector<double> fitness(const std::vector<double>& x) const;

  /// The mean-field drift dx/dt (t in generations for population >= 2).
  std::vector<double> drift(const std::vector<double>& x) const;

  /// Throws std::invalid_argument on inconsistent dimensions/parameters.
  void validate() const;
};

struct IntegrateOptions {
  /// Per-component local error target of the step doubling control.
  double tolerance = 1e-9;
  double initial_step = 1.0;   ///< generations
  double max_step = 0.0;       ///< 0 = t_end / 8
  /// Allowed |Σx - 1| drift before the simplex invariant check throws.
  double simplex_tolerance = 1e-7;
  /// Record the state every `sample_every` generations (0 = endpoints
  /// only). The integrator shortens steps to land exactly on grid times.
  double sample_every = 0.0;
};

struct ReplicatorResult {
  std::vector<double> times;               ///< sample times (generations)
  std::vector<std::vector<double>> states; ///< abundance vector per sample
  std::vector<double> final_state;
  std::uint64_t steps = 0;          ///< accepted RK4 steps
  std::uint64_t rejected_steps = 0; ///< halved by the error control
  double max_simplex_drift = 0.0;   ///< worst |Σx - 1| seen (post-check)
};

/// Integrate the model from `x0` (a simplex point) for `t_end` generations
/// with adaptive RK4 (step doubling, fifth-order error estimate). Throws
/// std::invalid_argument on a bad model/x0 and std::runtime_error if the
/// simplex invariant degrades beyond opts.simplex_tolerance.
ReplicatorResult integrate(const ReplicatorModel& model,
                           const std::vector<double>& x0, double t_end,
                           const IntegrateOptions& opts = {});

/// State at a list of times (convenience over one integrate call;
/// `times` must be non-decreasing, starting at >= 0).
std::vector<std::vector<double>> sample_at(const ReplicatorModel& model,
                                           const std::vector<double>& x0,
                                           const std::vector<double>& times,
                                           const IntegrateOptions& opts = {});

}  // namespace egt::analysis::meanfield
