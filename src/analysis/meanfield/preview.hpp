// The mean-field preview engine (DESIGN.md §13): a SimConfig compiled
// down to a ReplicatorModel over the config's *enumerable* pure-strategy
// classes, integrated in milliseconds instead of simulated in minutes —
// the ~1000x-faster trajectory predictor behind `run_simulation
// --preview` and the per-preset simcheck --stats observables.
//
// The compilation is exact in expectation: class-pair payoffs come from
// the same analytic kernels the fitness tier uses (PairEvaluator /
// spec::expected_game), the drift carries the engine's event rates, and
// the initial mix is classified from the very population
// make_initial_population(config) would hand the agent engine. What the
// mean field drops is finite-N fluctuation — so previews are previews,
// and simcheck quantifies the gap at 99% confidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/meanfield/replicator.hpp"
#include "core/config.hpp"
#include "game/strategy.hpp"

namespace egt::analysis::meanfield {

/// A SimConfig compiled to its mean-field model.
struct PreviewModel {
  ReplicatorModel model;
  /// The enumerated strategy classes, index-aligned with the model: all
  /// 2^(4^memory) pure binary strategies (memory <= 1), or the m one-hot
  /// actions of an n-way game.
  std::vector<game::Strategy> classes;
  std::vector<std::string> labels;  ///< Strategy::to_string per class
  /// Cooperation propensity per class: mean cooperation probability over
  /// the strategy's states (binary), or the action-0 share (n-way) — the
  /// weight vector turning a strategy mix into the headline number.
  std::vector<double> coop;
  /// Initial abundance: make_initial_population(config) classified into
  /// the classes above (so the preview starts exactly where the agent
  /// run would).
  std::vector<double> x0;

  /// Mix-weighted cooperation propensity of an abundance vector.
  double cooperation(const std::vector<double>& x) const;
};

/// True when `config` has a mean-field compilation: well-mixed,
/// pairwise-comparison, matrix game (not public goods), pure strategy
/// space with memory <= 1, and a class-representable mutation kernel
/// (UniformProbs, or single-bit PureBitFlip). `why`, when given, gets the
/// first failed requirement.
bool preview_supported(const core::SimConfig& config,
                       std::string* why = nullptr);

/// Compile `config`. Throws std::invalid_argument with the
/// preview_supported reason when unsupported.
PreviewModel build_preview_model(const core::SimConfig& config);

struct PreviewResult {
  PreviewModel model;
  ReplicatorResult trajectory;  ///< sampled over config.generations
  double initial_cooperation = 0.0;
  double final_cooperation = 0.0;
};

/// Compile and integrate over config.generations, sampling ~`samples`
/// evenly spaced trajectory points.
PreviewResult run_preview(const core::SimConfig& config,
                          std::uint32_t samples = 200);

}  // namespace egt::analysis::meanfield
