// Metrics registry: named counters, gauges and histogram timers shared by
// both engines, the benches and the run_simulation front door.
//
// Design constraints (the measurement backbone must not perturb what it
// measures):
//   * the hot path — Counter::inc, Gauge::set, Histogram::record — is
//     lock-free: plain relaxed atomics on pre-registered instruments;
//   * registration (name -> instrument lookup) takes a mutex, so callers
//     resolve instruments once up front and keep the reference
//     (std::map nodes are stable, references never invalidate);
//   * one registry per rank in the parallel engine, merged after the run —
//     no cross-rank contention during the timed region.
//
// Naming convention: dotted lowercase paths. Phase timers use the
// "phase." prefix (obs::phase below) and are surfaced as the manifest's
// "phases" section; engine event counters use "engine.".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace egt::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (e.g. ranks, gen/s).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket count of every Histogram (power-of-two nanosecond buckets).
inline constexpr std::size_t kHistogramBuckets = 48;

/// Plain-data copy of one histogram, used by snapshots and merging.
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Estimate the q-quantile (q in [0, 1]) from the power-of-two buckets:
  /// linear interpolation inside the covering bucket, clamped to the
  /// recorded [min, max]. 0 when the histogram is empty.
  double quantile_seconds(double q) const noexcept;
};

/// Duration histogram: count/total/min/max plus power-of-two latency
/// buckets (bucket i counts samples in [2^i, 2^(i+1)) nanoseconds).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = kHistogramBuckets;

  void record_seconds(double seconds) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  double min_seconds() const noexcept;
  double max_seconds() const noexcept;
  std::array<std::uint64_t, kBuckets> buckets() const noexcept;

  /// Fold another histogram's samples into this one.
  void merge(const Histogram& other) noexcept;
  /// Fold a snapshotted histogram's samples into this one (cross-rank
  /// aggregation goes through snapshots to avoid holding two locks).
  void merge(const HistogramSample& other) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> total_{0.0};
  // Nanosecond extremes as integers: atomic min/max via CAS on doubles is
  // noisier than fetch-style loops on u64, and ns resolution is the clock's.
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// RAII span: records the elapsed wall time into a histogram on
/// destruction (or an explicit stop()). A null histogram makes the timer
/// a no-op, so instrumented code needs no branches at the call site.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : hist_(h) {}
  explicit ScopedTimer(Histogram& h) : hist_(&h) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit. Idempotent.
  void stop() noexcept {
    if (hist_ == nullptr) return;
    hist_->record_seconds(timer_.seconds());
    hist_ = nullptr;
  }

 private:
  Histogram* hist_;
  util::Timer timer_;
};

/// Plain-data copy of a registry, safe to move across threads, compare in
/// tests and feed to the exporters (manifest JSON / time-series CSV).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  using HistogramSample = obs::HistogramSample;

  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  /// Null when absent.
  const CounterSample* find_counter(std::string_view name) const noexcept;
  const HistogramSample* find_histogram(std::string_view name) const noexcept;
  /// Counter value, 0 when absent.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  /// Histogram total seconds, 0 when absent.
  double histogram_seconds(std::string_view name) const noexcept;
  /// Sum of total_seconds over every "phase." histogram.
  double phase_total_seconds() const noexcept;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime; resolve once, then update lock-free.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Convenience: RAII span on histogram(name). Resolves under the lock —
  /// hot paths should keep the Histogram& instead.
  ScopedTimer time(std::string_view name) {
    return ScopedTimer(histogram(name));
  }

  /// Fold another registry's instruments into this one: counters and
  /// histograms add, gauges take the other's value when set there.
  /// Used to aggregate the parallel engine's per-rank registries.
  void merge(const MetricsRegistry& other);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Canonical per-generation phase timers (paper §VI splits runtime into
/// game-dynamics vs population-dynamics/communication time; these five
/// phases refine that split). Both engines emit the same names, so serial
/// and parallel manifests are directly comparable.
namespace phase {
inline constexpr const char* kGamePlay = "phase.game_play";
inline constexpr const char* kPlanBcast = "phase.plan_bcast";
inline constexpr const char* kFitnessReturn = "phase.fitness_return";
inline constexpr const char* kDecisionBcast = "phase.decision_bcast";
inline constexpr const char* kApplyUpdate = "phase.apply_update";

/// All five, in schema order.
inline constexpr const char* kAll[] = {kGamePlay, kPlanBcast, kFitnessReturn,
                                       kDecisionBcast, kApplyUpdate};
}  // namespace phase

}  // namespace egt::obs
