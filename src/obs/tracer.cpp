#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace egt::obs {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Session epoch and flow ids are statics (not Impl members) so the record
// fast path never takes the registration mutex.
std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<std::uint64_t> g_flow_id{0};
std::atomic<std::uint64_t> g_session{0};

struct Slab {
  explicit Slab(std::size_t capacity, std::uint32_t tid_,
                std::uint64_t session_, const char* name)
      : events(capacity), tid(tid_), session(session_), thread_name(name) {}

  std::vector<TraceEvent> events;  ///< ring storage, capacity fixed
  std::atomic<std::uint64_t> count{0};  ///< events ever recorded
  std::uint32_t tid;
  std::uint64_t session;
  const char* thread_name;  ///< static string

  std::uint64_t kept() const noexcept {
    const auto n = count.load(std::memory_order_acquire);
    return std::min<std::uint64_t>(n, events.size());
  }
  std::uint64_t dropped() const noexcept {
    const auto n = count.load(std::memory_order_acquire);
    return n > events.size() ? n - events.size() : 0;
  }
};

struct ThreadState {
  Slab* slab = nullptr;
  std::uint64_t session = 0;
  int pid = 0;
  const char* name = "thread";
};

ThreadState& tls() noexcept {
  thread_local ThreadState state;
  return state;
}

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  std::size_t capacity = Tracer::kDefaultCapacity;
  std::vector<std::unique_ptr<Slab>> slabs;    ///< current session
  std::vector<std::unique_ptr<Slab>> retired;  ///< prior sessions (writes
                                               ///< from stragglers land
                                               ///< here harmlessly)
  std::map<std::string, std::string> meta;

  Slab* attach(const char* name) {
    std::lock_guard<std::mutex> lock(mu);
    const auto tid = static_cast<std::uint32_t>(slabs.size() + 1);
    slabs.push_back(std::make_unique<Slab>(
        capacity, tid, g_session.load(std::memory_order_relaxed), name));
    return slabs.back().get();
  }
};

std::atomic<bool> Tracer::enabled_{false};

Tracer& Tracer::instance() {
  // Leaky: pool workers (static-lifetime threads) may record at exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

void Tracer::start(std::size_t events_per_thread) {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.capacity = std::max<std::size_t>(events_per_thread, 8);
    for (auto& s : im.slabs) im.retired.push_back(std::move(s));
    im.slabs.clear();
  }
  g_session.fetch_add(1, std::memory_order_relaxed);
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.slabs.clear();
  im.retired.clear();
  im.meta.clear();
  g_session.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::set_meta(const std::string& key, const std::string& value) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.meta[key] = value;
}

std::uint64_t Tracer::dropped_events() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::uint64_t total = 0;
  for (const auto& s : im.slabs) total += s->dropped();
  return total;
}

std::uint64_t Tracer::recorded_events() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::uint64_t total = 0;
  for (const auto& s : im.slabs) total += s->kept();
  return total;
}

std::int64_t Tracer::now_ns() noexcept {
  return steady_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::new_flow_id() noexcept {
  if (!enabled()) return 0;
  return g_flow_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

int Tracer::current_pid() noexcept { return tls().pid; }

void Tracer::set_current_pid(int pid) noexcept { tls().pid = pid; }

void Tracer::set_thread_name(const char* name) noexcept {
  ThreadState& state = tls();
  state.name = name;
  if (state.slab != nullptr) state.slab->thread_name = name;
}

void Tracer::record(TraceEvent ev) noexcept {
  if (!enabled()) return;
  ThreadState& state = tls();
  const auto session = g_session.load(std::memory_order_relaxed);
  if (state.slab == nullptr || state.session != session) {
    state.slab = instance().impl().attach(state.name);
    state.session = session;
  }
  Slab& slab = *state.slab;
  ev.pid = state.pid;
  ev.tid = slab.tid;
  // Single-writer ring: the slot store needs no atomicity, the count
  // release-store publishes it to the (post-quiesce) serializer.
  const auto n = slab.count.load(std::memory_order_relaxed);
  slab.events[static_cast<std::size_t>(n % slab.events.size())] = ev;
  slab.count.store(n + 1, std::memory_order_release);
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  Impl& im = impl();
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, const char*> thread_names;
  std::uint64_t dropped = 0;
  std::map<std::string, std::string> meta;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    std::uint64_t total_kept = 0;
    for (const auto& s : im.slabs) total_kept += s->kept();
    events.reserve(total_kept);
    for (const auto& s : im.slabs) {
      const auto n = s->count.load(std::memory_order_acquire);
      const auto cap = static_cast<std::uint64_t>(s->events.size());
      const auto kept = std::min(n, cap);
      for (std::uint64_t i = n - kept; i < n; ++i) {
        events.push_back(s->events[static_cast<std::size_t>(i % cap)]);
      }
      dropped += s->dropped();
      thread_names[s->tid] = s->thread_name;
    }
    meta = im.meta;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  // Rows of the timeline: every (pid, tid) pair that recorded.
  std::set<std::pair<std::int32_t, std::uint32_t>> rows;
  for (const auto& ev : events) rows.insert({ev.pid, ev.tid});

  util::JsonWriter w(os, 0);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Metadata first: process (rank) and thread display names.
  std::set<std::int32_t> pids;
  for (const auto& [pid, tid] : rows) pids.insert(pid);
  for (const auto pid : pids) {
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "process_name");
    w.field("pid", static_cast<std::int64_t>(pid));
    w.field("tid", 0);
    w.key("args").begin_object();
    w.field("name", pid == kPoolPid ? std::string("pool")
                                    : "rank " + std::to_string(pid));
    w.end_object();
    w.end_object();
  }
  for (const auto& [pid, tid] : rows) {
    const auto it = thread_names.find(tid);
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "thread_name");
    w.field("pid", static_cast<std::int64_t>(pid));
    w.field("tid", static_cast<std::uint64_t>(tid));
    w.key("args").begin_object();
    w.field("name", it != thread_names.end() ? it->second : "thread");
    w.end_object();
    w.end_object();
  }

  for (const auto& ev : events) {
    w.begin_object();
    w.field("name", ev.name != nullptr ? ev.name : "?");
    w.field("cat", ev.cat != nullptr ? ev.cat : "misc");
    w.field("pid", static_cast<std::int64_t>(ev.pid));
    w.field("tid", static_cast<std::uint64_t>(ev.tid));
    w.field("ts", static_cast<double>(ev.ts_ns) / 1000.0);
    switch (ev.kind) {
      case TraceEvent::Kind::Span:
        w.field("ph", "X");
        w.field("dur", static_cast<double>(ev.dur_ns) / 1000.0);
        break;
      case TraceEvent::Kind::Instant:
        w.field("ph", "i");
        w.field("s", "t");
        break;
      case TraceEvent::Kind::FlowStart:
        w.field("ph", "s");
        w.field("id", ev.flow_id);
        break;
      case TraceEvent::Kind::FlowEnd:
        w.field("ph", "f");
        w.field("bp", "e");
        w.field("id", ev.flow_id);
        break;
    }
    if (ev.arg_name != nullptr) {
      w.key("args").begin_object();
      w.field(ev.arg_name, ev.arg);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("otherData").begin_object();
  w.field("schema", "egt.trace/v1");
  w.field("dropped_events", dropped);
  for (const auto& [key, value] : meta) w.field(key, value);
  w.end_object();

  w.end_object();
  os << "\n";
}

}  // namespace egt::obs
