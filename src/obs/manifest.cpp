#include "obs/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace egt::obs {

std::string git_describe() {
#ifdef EGT_GIT_DESCRIBE
  return EGT_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

void write_run_manifest(std::ostream& os, const ManifestInfo& info) {
  util::JsonWriter w(os);
  w.begin_object();
  w.field("schema", kManifestSchema);
  w.field("tool", info.tool);
  w.field("git_describe", git_describe());

  w.key("config").begin_object();
  w.field("summary", info.config_summary);
  w.field("fingerprint", info.config_fingerprint);
  if (info.config_fields) info.config_fields(w);
  w.end_object();

  if (info.game != nullptr) {
    const auto& g = *info.game;
    w.key("game").begin_object();
    w.field("kind", g.kind == game::GameKind::PublicGoods ? "public_goods"
                                                          : "matrix");
    w.field("name", g.display_name);
    w.field("actions", static_cast<std::uint64_t>(g.actions));
    w.field("play",
            g.play == game::PlayMode::OneShot ? "one_shot" : "iterated");
    w.key("labels").begin_array();
    for (std::uint32_t a = 0; a < g.actions; ++a) w.value(g.label(a));
    w.end_array();
    w.field("rounds", static_cast<std::uint64_t>(g.rounds));
    w.field("noise", g.noise);
    // Hex string: a u64 would be rounded by JSON's double number model.
    char hash[24];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(g.matrix_hash()));
    w.field("matrix_hash", hash);
    if (g.kind == game::GameKind::PublicGoods) {
      w.field("pgg_r", g.pgg_r);
      w.field("pgg_cost", g.pgg_cost);
      w.field("pgg_k", static_cast<std::uint64_t>(g.pgg_k));
    }
    w.end_object();
  }

  w.key("run").begin_object();
  w.field("ranks", info.ranks);
  w.field("generations", info.generations);
  w.field("wall_seconds", info.wall_seconds);
  w.end_object();

  const auto histogram_body = [&w](const MetricsSnapshot::HistogramSample& h,
                                   const std::string& key) {
    w.key(key).begin_object();
    w.field("seconds", h.total_seconds);
    w.field("count", h.count);
    w.field("min_seconds", h.min_seconds);
    w.field("max_seconds", h.max_seconds);
    w.field("p50_seconds", h.quantile_seconds(0.50));
    w.field("p95_seconds", h.quantile_seconds(0.95));
    w.field("p99_seconds", h.quantile_seconds(0.99));
    w.end_object();
  };

  w.key("phases").begin_object();
  if (info.metrics != nullptr) {
    for (const auto& h : info.metrics->histograms) {
      if (h.name.rfind("phase.", 0) != 0) continue;
      histogram_body(h, h.name.substr(6));
    }
  }
  w.end_object();

  // Every other histogram (e.g. a bench's "bench.sweep_point") lands here
  // under its full name, so no recorded timer is silently dropped.
  w.key("timers").begin_object();
  if (info.metrics != nullptr) {
    for (const auto& h : info.metrics->histograms) {
      if (h.name.rfind("phase.", 0) == 0) continue;
      histogram_body(h, h.name);
    }
  }
  w.end_object();

  w.key("counters").begin_object();
  if (info.metrics != nullptr) {
    for (const auto& c : info.metrics->counters) w.field(c.name, c.value);
  }
  w.end_object();

  w.key("gauges").begin_object();
  if (info.metrics != nullptr) {
    for (const auto& g : info.metrics->gauges) w.field(g.name, g.value);
  }
  w.end_object();

  if (info.traffic != nullptr) {
    const auto& t = *info.traffic;
    w.key("traffic").begin_object();
    w.field("bytes", t.bytes);
    w.field("messages", t.messages);
    w.key("p2p").begin_object();
    w.field("bytes", t.p2p_bytes);
    w.field("messages", t.p2p_messages);
    w.end_object();
    w.key("broadcast").begin_object();
    w.field("bytes", t.bcast_bytes);
    w.field("messages", t.bcast_messages);
    w.end_object();
    w.key("per_rank").begin_array();
    for (std::size_t r = 0; r < t.per_rank.size(); ++r) {
      const auto& rt = t.per_rank[r];
      w.begin_object();
      w.field("rank", static_cast<std::uint64_t>(r));
      w.field("p2p_bytes", rt.p2p_bytes);
      w.field("p2p_messages", rt.p2p_messages);
      w.field("bcast_bytes", rt.bcast_bytes);
      w.field("bcast_messages", rt.bcast_messages);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
  os << "\n";
}

void write_run_manifest_file(const std::string& path,
                             const ManifestInfo& info) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open manifest file for writing: " + path);
  }
  write_run_manifest(out, info);
}

}  // namespace egt::obs
