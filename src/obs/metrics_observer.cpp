#include "obs/metrics_observer.hpp"

#include <cstdio>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace egt::obs {

MetricsObserver::MetricsObserver(MetricsRegistry& registry,
                                 MetricsObserverOptions options)
    : registry_(&registry), options_(std::move(options)) {
  if (!options_.csv_path.empty()) {
    try {
      csv_ =
          std::make_unique<util::CsvWriter>(options_.csv_path, csv_header());
    } catch (const std::exception& e) {
      // Warn-and-continue: losing the time series must not kill the run.
      registry_->counter("obs.write_errors").inc();
      util::log_warn() << "metrics CSV disabled: " << e.what();
      csv_.reset();
    }
  }
}

std::vector<std::string> MetricsObserver::csv_header() {
  std::vector<std::string> header = {"generation",       "wall_seconds",
                                     "gens_per_sec",     "mean_fitness",
                                     "pairs_evaluated",  "pc_events",
                                     "adoptions",        "mutations",
                                     "phase_game_play_s",
                                     "phase_plan_bcast_s",
                                     "phase_fitness_return_s",
                                     "phase_decision_bcast_s",
                                     "phase_apply_update_s"};
  for (const char* name : phase::kAll) {
    const std::string base = "phase_" + std::string(name).substr(6);
    header.push_back(base + "_p50_s");
    header.push_back(base + "_p95_s");
    header.push_back(base + "_p99_s");
  }
  return header;
}

void MetricsObserver::on_generation(const pop::Population& pop,
                                    const core::GenerationRecord& record) {
  ++seen_;
  if (csv_ != nullptr &&
      (options_.sample_interval == 0 ||
       record.generation % options_.sample_interval == 0)) {
    sample(pop, record.generation);
  }
  if (options_.progress) heartbeat(record.generation);
}

void MetricsObserver::sample(const pop::Population& pop,
                             std::uint64_t generation) {
  const double wall = wall_.seconds();
  const MetricsSnapshot snap = registry_->snapshot();
  std::vector<double> cells = {
      static_cast<double>(generation), wall,
      wall > 0.0 ? static_cast<double>(seen_) / wall : 0.0,
      util::mean(pop.fitness()),
      static_cast<double>(snap.counter_value("engine.pairs_evaluated")),
      static_cast<double>(snap.counter_value("engine.pc_events")),
      static_cast<double>(snap.counter_value("engine.adoptions")),
      static_cast<double>(snap.counter_value("engine.mutations")),
      snap.histogram_seconds(phase::kGamePlay),
      snap.histogram_seconds(phase::kPlanBcast),
      snap.histogram_seconds(phase::kFitnessReturn),
      snap.histogram_seconds(phase::kDecisionBcast),
      snap.histogram_seconds(phase::kApplyUpdate)};
  for (const char* name : phase::kAll) {
    static const HistogramSample kEmpty{};
    const auto* h = snap.find_histogram(name);
    if (h == nullptr) h = &kEmpty;
    cells.push_back(h->quantile_seconds(0.50));
    cells.push_back(h->quantile_seconds(0.95));
    cells.push_back(h->quantile_seconds(0.99));
  }
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(util::fmt_num(v));
  csv_->row(row);
  ++samples_;
}

void MetricsObserver::heartbeat(std::uint64_t generation) {
  const double now = wall_.seconds();
  if (now - last_heartbeat_s_ < options_.progress_interval_seconds) return;
  const double window = now - last_heartbeat_s_;
  const double rate =
      window > 0.0
          ? static_cast<double>(generation - last_heartbeat_gen_) / window
          : 0.0;
  char line[160];
  if (options_.total_generations > 0 && rate > 0.0) {
    const std::uint64_t total = options_.total_generations;
    const std::uint64_t done = generation < total ? generation : total;
    const double eta = static_cast<double>(total - done) / rate;
    std::snprintf(line, sizeof line,
                  "gen %llu/%llu (%.1f%%) | %.0f gen/s | ETA %.0f s",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total),
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(total),
                  rate, eta);
  } else {
    std::snprintf(line, sizeof line, "gen %llu | %.0f gen/s",
                  static_cast<unsigned long long>(generation), rate);
  }
  util::log_info() << line;
  last_heartbeat_s_ = now;
  last_heartbeat_gen_ = generation;
}

}  // namespace egt::obs
