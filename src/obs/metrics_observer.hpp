// MetricsObserver: samples a MetricsRegistry on the engine's observer hook
// into a CSV time series, and optionally emits a progress heartbeat
// (generations/s and ETA) through util::log. Serial runs therefore produce
// the same per-phase schema the parallel engine's manifests report.
//
// CSV schema (one row per sample; also the header order):
//   generation, wall_seconds, gens_per_sec, mean_fitness, pairs_evaluated,
//   pc_events, adoptions, mutations, phase_game_play_s, phase_plan_bcast_s,
//   phase_fitness_return_s, phase_decision_bcast_s, phase_apply_update_s,
//   then per-sample latency quantiles for each of the five phases:
//   phase_<name>_p50_s, phase_<name>_p95_s, phase_<name>_p99_s
//
// An unwritable csv_path is a warning, not an error: the run continues
// without the CSV and the drop is counted in obs.write_errors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/observer.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"

namespace egt::obs {

struct MetricsObserverOptions {
  /// CSV time-series path; empty disables the CSV output.
  std::string csv_path;
  /// Generations between CSV samples (0 samples every generation).
  std::uint64_t sample_interval = 0;
  /// Emit heartbeat lines via util::log_info.
  bool progress = false;
  /// Seconds between heartbeats.
  double progress_interval_seconds = 2.0;
  /// Total planned generations (for % complete and ETA; 0 disables both).
  std::uint64_t total_generations = 0;
};

class MetricsObserver final : public core::Observer {
 public:
  MetricsObserver(MetricsRegistry& registry, MetricsObserverOptions options);

  void on_generation(const pop::Population& pop,
                     const core::GenerationRecord& record) override;

  /// Columns of the CSV output, in order.
  static std::vector<std::string> csv_header();

  std::uint64_t samples_written() const noexcept { return samples_; }

 private:
  void sample(const pop::Population& pop, std::uint64_t generation);
  void heartbeat(std::uint64_t generation);

  MetricsRegistry* registry_;
  MetricsObserverOptions options_;
  std::unique_ptr<util::CsvWriter> csv_;
  util::Timer wall_;
  std::uint64_t seen_ = 0;     ///< generations observed
  std::uint64_t samples_ = 0;  ///< CSV rows written
  double last_heartbeat_s_ = 0.0;
  std::uint64_t last_heartbeat_gen_ = 0;
};

}  // namespace egt::obs
