// Flight recorder: a low-overhead tracing layer recording timestamped
// span / instant / flow events into per-thread ring buffers, serialized to
// Chrome trace-event JSON (Perfetto / chrome://tracing loadable).
//
// Design constraints (same discipline as obs/metrics.hpp — the recorder
// must not perturb what it records):
//   * disabled is the default and costs one relaxed-ish atomic load + a
//     predictable branch per call site (TraceSpan holds no state and
//     records nothing when the tracer is off);
//   * the record path is lock-free: each thread owns a fixed-capacity
//     ring-buffer slab (single writer), so recording is two clock reads
//     and a handful of plain stores — no allocation, no contention;
//   * a full slab wraps around: the newest events win, and the number of
//     overwritten (dropped) events is reported in the serialized trace
//     (otherData.dropped_events), never silently lost;
//   * event names/categories must be string literals (or otherwise
//     outlive the tracer session) — the slab stores the pointer only.
//
// Attribution: Chrome's pid is the EGT rank (TraceRankScope, default 0 so
// the serial engine needs no setup), tid is the recording thread. The
// shared agent-tier ThreadPool records under the pseudo-rank kPoolPid so
// worker activity is visible without being misattributed to a rank.
//
// Lifecycle: Tracer::instance().start() enables recording; stop() disables
// it; write_chrome_trace() serializes after every traced thread has
// quiesced (engines joined / parallel_for returned). This layer depends
// only on egt_util so the par runtime can link it (egt_tracer in CMake).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace egt::obs {

/// Pseudo-rank (Chrome pid) of shared ThreadPool workers.
inline constexpr int kPoolPid = 999;

/// Event categories (Chrome "cat"). Static strings by contract.
inline constexpr const char* kCatEngine = "engine";
inline constexpr const char* kCatPhase = "phase";
inline constexpr const char* kCatComm = "comm";
inline constexpr const char* kCatFt = "ft";
inline constexpr const char* kCatPool = "pool";

/// Well-known span names shared between recording sites and trace_report.
inline constexpr const char* kGenerationSpan = "generation";
inline constexpr const char* kCommSend = "comm.send";
inline constexpr const char* kCommBcastSend = "comm.bcast_send";
inline constexpr const char* kCommRecv = "comm.recv";
inline constexpr const char* kCommFlow = "msg";
inline constexpr const char* kPoolChunk = "pool.chunk";

/// One recorded event. Plain data; sized to keep slabs cache-friendly.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Span,       ///< Chrome "X" (complete: ts + dur)
    Instant,    ///< Chrome "i"
    FlowStart,  ///< Chrome "s" (flow arrow tail, matched by flow_id)
    FlowEnd,    ///< Chrome "f" (flow arrow head)
  };

  std::int64_t ts_ns = 0;   ///< since session epoch
  std::int64_t dur_ns = 0;  ///< spans only
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;  ///< null = no args object
  std::uint64_t arg = 0;
  std::uint64_t flow_id = 0;  ///< flow events only
  std::int32_t pid = 0;
  std::uint32_t tid = 0;
  Kind kind = Kind::Instant;
};

class Tracer {
 public:
  /// Events each thread's ring holds before wrapping (~64 B per event).
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The process-wide recorder (leaky singleton: outlives pool workers).
  static Tracer& instance();

  /// True between start() and stop(). The per-call-site fast path.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Begin a recording session: resets the epoch, forgets previous slabs.
  /// Threads (re)attach a fresh slab on their first record.
  void start(std::size_t events_per_thread = kDefaultCapacity);

  /// Disable recording. Events already in slabs stay serializable.
  void stop();

  /// Drop every recorded event and metadata entry (does not stop()).
  void clear();

  /// Key/value metadata serialized into otherData (config summary,
  /// calibration inputs for trace_report --calibrate, ...).
  void set_meta(const std::string& key, const std::string& value);

  /// Events overwritten by ring wrap-around, over all slabs this session.
  std::uint64_t dropped_events() const;
  /// Events currently held (after wrap: capacity per full slab).
  std::uint64_t recorded_events() const;

  /// Serialize the session as Chrome trace-event JSON. Call only after
  /// every traced thread has quiesced (joined or returned).
  void write_chrome_trace(std::ostream& os) const;

  // -- record path (static: one TLS lookup, no instance indirection) ---------

  /// Append one event to the calling thread's slab. No-op when disabled.
  static void record(TraceEvent ev) noexcept;

  /// Nanoseconds since the session epoch (steady clock).
  static std::int64_t now_ns() noexcept;

  /// Fresh process-unique flow id (0 when disabled = "no flow").
  static std::uint64_t new_flow_id() noexcept;

  /// Rank attribution of the calling thread (Chrome pid). Cheap TLS.
  static int current_pid() noexcept;
  static void set_current_pid(int pid) noexcept;

  /// Display name of the calling thread's timeline row. Must be a static
  /// string; applies to the slab the thread attaches (or has attached).
  static void set_thread_name(const char* name) noexcept;

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;

  static std::atomic<bool> enabled_;
};

/// RAII span: one Chrome complete ("X") event recorded at scope exit.
/// Recording the pair as a single event keeps spans well-formed even when
/// the ring wraps (no dangling begin/end halves).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = kCatEngine) {
    if (Tracer::enabled()) {
      name_ = name;
      cat_ = cat;
      start_ns_ = Tracer::now_ns();
    }
  }
  TraceSpan(const char* name, const char* cat, const char* arg_name,
            std::uint64_t arg)
      : TraceSpan(name, cat) {
    arg_name_ = arg_name;
    arg_ = arg;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { finish(); }

  /// Attach/overwrite the span's numeric argument (e.g. a work count
  /// known only at scope exit). No-op on a disabled span.
  void set_arg(const char* arg_name, std::uint64_t arg) noexcept {
    if (name_ == nullptr) return;
    arg_name_ = arg_name;
    arg_ = arg;
  }

  /// Record now instead of at scope exit. Idempotent.
  void finish() noexcept {
    if (name_ == nullptr) return;
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Span;
    ev.ts_ns = start_ns_;
    ev.dur_ns = Tracer::now_ns() - start_ns_;
    ev.name = name_;
    ev.cat = cat_;
    ev.arg_name = arg_name_;
    ev.arg = arg_;
    Tracer::record(ev);
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;  ///< null = disabled / already finished
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::int64_t start_ns_ = 0;
};

/// Record an instant event ("i") at the current time.
inline void trace_instant(const char* name, const char* cat,
                          const char* arg_name = nullptr,
                          std::uint64_t arg = 0) noexcept {
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::Instant;
  ev.ts_ns = Tracer::now_ns();
  ev.name = name;
  ev.cat = cat;
  ev.arg_name = arg_name;
  ev.arg = arg;
  Tracer::record(ev);
}

/// Flow arrow tail / head (matched by id; both ends use kCommFlow so
/// Chrome pairs them). 0 ids are ignored — a message sent while tracing
/// was off carries no flow.
inline void trace_flow_start(std::uint64_t flow_id) noexcept {
  if (flow_id == 0 || !Tracer::enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::FlowStart;
  ev.ts_ns = Tracer::now_ns();
  ev.name = kCommFlow;
  ev.cat = kCatComm;
  ev.flow_id = flow_id;
  Tracer::record(ev);
}

inline void trace_flow_end(std::uint64_t flow_id) noexcept {
  if (flow_id == 0 || !Tracer::enabled()) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::FlowEnd;
  ev.ts_ns = Tracer::now_ns();
  ev.name = kCommFlow;
  ev.cat = kCatComm;
  ev.flow_id = flow_id;
  Tracer::record(ev);
}

/// Scoped rank attribution: events recorded by this thread inside the
/// scope carry `pid`. Rank threads install it at rank entry; the shared
/// pool installs kPoolPid for its workers' lifetime.
class TraceRankScope {
 public:
  explicit TraceRankScope(int pid) : prev_(Tracer::current_pid()) {
    Tracer::set_current_pid(pid);
  }
  TraceRankScope(const TraceRankScope&) = delete;
  TraceRankScope& operator=(const TraceRankScope&) = delete;
  ~TraceRankScope() { Tracer::set_current_pid(prev_); }

 private:
  int prev_;
};

}  // namespace egt::obs
