#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace egt::obs {

namespace {

std::uint64_t to_nanos(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns >= 9e18) return ~0ull >> 1;
  return static_cast<std::uint64_t>(ns);
}

std::size_t bucket_of(std::uint64_t nanos) noexcept {
  if (nanos == 0) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(nanos) - 1);
  return std::min(b, Histogram::kBuckets - 1);
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSample::quantile_seconds(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the wanted sample (1-based, nearest-rank with interpolation).
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    // Bucket i covers [2^i, 2^(i+1)) ns (bucket 0 additionally holds 0).
    const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
    const double hi = static_cast<double>(2ull << i);
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    const double ns = lo + frac * (hi - lo);
    return std::clamp(ns * 1e-9, min_seconds, max_seconds);
  }
  return max_seconds;
}

void Histogram::record_seconds(double seconds) noexcept {
  if (std::isnan(seconds) || seconds < 0.0) seconds = 0.0;
  const std::uint64_t ns = to_nanos(seconds);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(total_, seconds);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min_seconds() const noexcept {
  const auto ns = min_ns_.load(std::memory_order_relaxed);
  return ns == ~0ull ? 0.0 : static_cast<double>(ns) * 1e-9;
}

double Histogram::max_seconds() const noexcept {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::merge(const Histogram& other) noexcept {
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(total_, other.total_seconds());
  const auto omin = other.min_ns_.load(std::memory_order_relaxed);
  if (omin != ~0ull) atomic_min(min_ns_, omin);
  atomic_max(max_ns_, other.max_ns_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

void Histogram::merge(const HistogramSample& other) noexcept {
  if (other.count == 0) return;
  count_.fetch_add(other.count, std::memory_order_relaxed);
  atomic_add(total_, other.total_seconds);
  atomic_min(min_ns_, to_nanos(other.min_seconds));
  atomic_max(max_ns_, to_nanos(other.max_seconds));
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot first so the two registry locks are never held together.
  const MetricsSnapshot snap = other.snapshot();
  for (const auto& c : snap.counters) counter(c.name).inc(c.value);
  for (const auto& g : snap.gauges) gauge(g.name).set(g.value);
  for (const auto& h : snap.histograms) histogram(h.name).merge(h);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.count = h.count();
    s.total_seconds = h.total_seconds();
    s.min_seconds = h.min_seconds();
    s.max_seconds = h.max_seconds();
    s.buckets = h.buckets();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

const MetricsSnapshot::CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(
    std::string_view name) const noexcept {
  const auto* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

double MetricsSnapshot::histogram_seconds(
    std::string_view name) const noexcept {
  const auto* h = find_histogram(name);
  return h == nullptr ? 0.0 : h->total_seconds;
}

double MetricsSnapshot::phase_total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& h : histograms) {
    if (h.name.rfind("phase.", 0) == 0) total += h.total_seconds;
  }
  return total;
}

}  // namespace egt::obs
