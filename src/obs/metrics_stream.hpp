// Live telemetry stream: one NDJSON line per generation, written while
// the run is still going (the serving-layer backbone for egtd's planned
// SSE endpoint; also consumable by `tail -f` + jq).
//
// Schema "egt.metrics_stream/v1" (one compact JSON object per line,
// validated by tests/obs/metrics_stream_test.cpp):
//
//   {
//     "schema": "egt.metrics_stream/v1",
//     "generation": u64,
//     "wall_seconds": double,             // since the writer was created
//     "mean_fitness": double,
//     "phases": { "game_play": double, "plan_bcast": double,
//                 "fitness_return": double, "decision_bcast": double,
//                 "apply_update": double },    // cumulative seconds
//     "counters": { "games_played": u64, "pairs_evaluated": u64 },
//     "strategy_classes": u64,            // distinct strategies
//     "top_class_counts": [ u64, ... ],   // top-8 census cluster sizes
//     "ft": { "<ft.* counter>": u64, ... }     // only when any exist
//   }
//
// The writer is shared across engine threads (rank 0 / the acting ft
// master stream through the same instance a failover may migrate), so
// emission is serialized by a mutex and generations are deduplicated —
// a replanned generation after failover is not streamed twice.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "core/observer.hpp"
#include "obs/metrics.hpp"
#include "pop/population.hpp"
#include "util/timer.hpp"

namespace egt::obs {

inline constexpr const char* kMetricsStreamSchema = "egt.metrics_stream/v1";

class MetricsStreamWriter {
 public:
  struct Options {
    std::string path;
    /// Generations between emitted lines (1 = every generation).
    std::uint64_t every = 1;
  };

  /// Opening the path may fail; the writer then stays inert (ok() false)
  /// so callers can warn-and-continue instead of aborting the run.
  explicit MetricsStreamWriter(Options options);

  MetricsStreamWriter(const MetricsStreamWriter&) = delete;
  MetricsStreamWriter& operator=(const MetricsStreamWriter&) = delete;

  bool ok() const noexcept { return ok_; }
  const std::string& path() const noexcept { return options_.path; }
  std::uint64_t lines_written() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

  /// Would `generation` produce a line (sampling gate only)? Deterministic
  /// across ranks — lets every rank agree on whether to join the fitness
  /// reduction that feeds the rank-0 emission.
  bool wants(std::uint64_t generation) const noexcept {
    return ok_ && generation % options_.every == 0;
  }

  /// Emit one snapshot line for `generation`. Thread-safe; lines are
  /// emitted in generation order and duplicates (failover replays) are
  /// dropped. `registry` is sampled inside the call — pass the registry
  /// of whichever rank is streaming.
  void on_generation(std::uint64_t generation, const pop::Population& pop,
                     const MetricsRegistry& registry);

  /// As above with a caller-supplied mean fitness: parallel ranks own only
  /// a block of the fitness vector, so the caller reduces it first instead
  /// of reading `pop.fitness()` (stale off the owning rank).
  void on_generation(std::uint64_t generation, const pop::Population& pop,
                     const MetricsRegistry& registry, double mean_fitness);

 private:
  Options options_;
  bool ok_ = false;
  std::ofstream out_;
  std::mutex mu_;
  std::int64_t last_generation_ = -1;
  util::Timer wall_;
  std::atomic<std::uint64_t> lines_{0};
};

/// Serial-engine adapter: forwards the Observer hook to a stream writer.
class MetricsStreamObserver final : public core::Observer {
 public:
  MetricsStreamObserver(MetricsStreamWriter& writer,
                        const MetricsRegistry& registry)
      : writer_(&writer), registry_(&registry) {}

  void on_generation(const pop::Population& pop,
                     const core::GenerationRecord& record) override {
    writer_->on_generation(record.generation, pop, *registry_);
  }

 private:
  MetricsStreamWriter* writer_;
  const MetricsRegistry* registry_;
};

}  // namespace egt::obs
