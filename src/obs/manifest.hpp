// Run manifest: one JSON document per run recording what was executed
// (config, build), what it cost (wall time, per-phase times, counters) and
// what it moved (broadcast vs point-to-point traffic, per rank).
//
// Schema "egt.run_manifest/v3" (validated by tests/obs/manifest_test.cpp;
// documented for external consumers in DESIGN.md §Observability). v2 added
// p50/p95/p99 latency quantiles (estimated from the power-of-two buckets)
// to every histogram body; v3 adds the optional "game" block recording the
// GameSpec a simulation played (tools that run no simulation omit it):
//
//   {
//     "schema": "egt.run_manifest/v3",
//     "tool": "<producing binary>",
//     "git_describe": "<git describe --always --dirty, or 'unknown'>",
//     "config": { "summary": "...", "fingerprint": u64, ...tool extras },
//     "game": {                              // v3, when ManifestInfo.game set
//       "kind": "matrix" | "public_goods",
//       "name": "<registry / display name>",
//       "actions": u64, "play": "iterated" | "one_shot",
//       "labels": [ "<action 0>", ... ],     // exactly `actions` entries
//       "rounds": u64, "noise": double,
//       "matrix_hash": "hex16",             // GameSpec::matrix_hash()
//       "pgg_r": double, "pgg_cost": double, "pgg_k": u64  // PGG only
//     },
//     "run": { "ranks": int (0 = serial), "generations": u64,
//              "wall_seconds": double },
//     "phases": { "<name>": { "seconds": double, "count": u64,
//                             "min_seconds": double, "max_seconds": double,
//                             "p50_seconds": double, "p95_seconds": double,
//                             "p99_seconds": double },
//                 ... },                     // "phase." prefix stripped
//     "timers": { "<full name>": { ...same shape... }, ... },
//                                            // every non-"phase." histogram
//     "counters": { "<name>": u64, ... },
//     "gauges": { "<name>": double, ... },
//     "traffic": {                           // parallel runs only
//       "bytes": u64, "messages": u64,
//       "p2p": { "bytes": u64, "messages": u64 },
//       "broadcast": { "bytes": u64, "messages": u64 },
//       "per_rank": [ { "rank": int, "p2p_bytes": u64, "p2p_messages": u64,
//                       "bcast_bytes": u64, "bcast_messages": u64 }, ... ]
//     }
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "game/spec/gamespec.hpp"
#include "obs/metrics.hpp"
#include "par/runtime.hpp"

namespace egt::util {
class JsonWriter;
}

namespace egt::obs {

inline constexpr const char* kManifestSchema = "egt.run_manifest/v3";

/// Build identity baked in by CMake ("unknown" outside a git checkout).
std::string git_describe();

/// Everything a manifest records. `metrics` and `traffic` are optional;
/// `config_fields` (when set) is invoked inside the "config" object to add
/// tool-specific fields beyond summary + fingerprint.
struct ManifestInfo {
  std::string tool;
  std::string config_summary;
  std::uint64_t config_fingerprint = 0;
  std::function<void(util::JsonWriter&)> config_fields;

  /// When set, emitted as the v3 "game" block (kind, actions, labels,
  /// matrix hash). Must outlive the write call.
  const game::GameSpec* game = nullptr;

  int ranks = 0;  ///< 0 = serial engine
  std::uint64_t generations = 0;
  double wall_seconds = 0.0;

  const MetricsSnapshot* metrics = nullptr;
  const par::TrafficReport* traffic = nullptr;
};

/// Emit the manifest JSON (schema above) to `os`.
void write_run_manifest(std::ostream& os, const ManifestInfo& info);

/// Emit to `path`; throws std::runtime_error when the file cannot be
/// opened.
void write_run_manifest_file(const std::string& path,
                             const ManifestInfo& info);

}  // namespace egt::obs
