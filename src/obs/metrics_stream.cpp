#include "obs/metrics_stream.hpp"

#include <algorithm>

#include "pop/stats.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace egt::obs {

MetricsStreamWriter::MetricsStreamWriter(Options options)
    : options_(std::move(options)) {
  if (options_.every == 0) options_.every = 1;
  out_.open(options_.path);
  ok_ = static_cast<bool>(out_);
}

void MetricsStreamWriter::on_generation(std::uint64_t generation,
                                        const pop::Population& pop,
                                        const MetricsRegistry& registry) {
  on_generation(generation, pop, registry, util::mean(pop.fitness()));
}

void MetricsStreamWriter::on_generation(std::uint64_t generation,
                                        const pop::Population& pop,
                                        const MetricsRegistry& registry,
                                        double mean_fitness) {
  if (!wants(generation)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::int64_t>(generation) <= last_generation_) return;
  last_generation_ = static_cast<std::int64_t>(generation);

  const MetricsSnapshot snap = registry.snapshot();
  const auto census = pop::census(pop);

  util::JsonWriter w(out_, 0);
  w.begin_object();
  w.field("schema", kMetricsStreamSchema);
  w.field("generation", generation);
  w.field("wall_seconds", wall_.seconds());
  w.field("mean_fitness", mean_fitness);

  w.key("phases").begin_object();
  for (const char* name : phase::kAll) {
    // Strip the "phase." prefix, matching the manifest's phases section.
    w.field(std::string(name).substr(6), snap.histogram_seconds(name));
  }
  w.end_object();

  w.key("counters").begin_object();
  w.field("games_played", snap.counter_value("engine.games_played"));
  w.field("pairs_evaluated", snap.counter_value("engine.pairs_evaluated"));
  w.end_object();

  w.field("strategy_classes", static_cast<std::uint64_t>(census.size()));
  w.key("top_class_counts").begin_array();
  const std::size_t top = std::min<std::size_t>(census.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    w.value(static_cast<std::uint64_t>(census[i].count));
  }
  w.end_array();

  bool have_ft = false;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("ft.", 0) != 0) continue;
    if (!have_ft) {
      w.key("ft").begin_object();
      have_ft = true;
    }
    w.field(c.name, c.value);
  }
  if (have_ft) w.end_object();

  w.end_object();
  out_ << "\n";
  out_.flush();  // a live stream is only live if lines land promptly
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace egt::obs
