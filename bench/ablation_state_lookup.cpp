// Ablation: the paper's linear find_state versus O(1) indexed state lookup.
//
// The paper's §VI-B.1 attributes the dramatic runtime growth with memory
// steps to state identification ("the increase in runtime actually comes
// from identifying this state"). This bench quantifies exactly that design
// choice on the real kernel: same games, same results, only the lookup
// differs.
#include <iostream>

#include "game/ipd.hpp"
#include "game/strategy.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double bench_mode(int memory, egt::game::LookupMode mode,
                  std::uint64_t rounds) {
  using namespace egt;
  game::IpdParams params;
  params.rounds = 2048;
  const game::IpdEngine engine(memory, params, mode);
  util::Xoshiro256 rng(7 + static_cast<unsigned>(memory));
  const std::uint64_t games = std::max<std::uint64_t>(1, rounds / params.rounds);
  double sink = 0.0;
  util::Timer t;
  for (std::uint64_t g = 0; g < games; ++g) {
    const auto a = game::PureStrategy::random(memory, rng);
    const auto b = game::PureStrategy::random(memory, rng);
    sink += engine.play(a, b, util::StreamRng(2, g)).payoff_a;
  }
  const double ns = t.nanos() / static_cast<double>(games * params.rounds);
  if (sink < 0) std::abort();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_state_lookup",
                "linear find_state (paper) vs indexed lookup (ours)");
  auto budget =
      cli.opt<std::int64_t>("rounds", 500000, "rounds per (memory, mode)");
  cli.parse(argc, argv);

  std::cout << "state-lookup ablation — real kernel on this host\n\n";
  util::TextTable table({"memory", "states", "linear ns/round",
                         "indexed ns/round", "speedup"});
  for (int memory = 1; memory <= 6; ++memory) {
    const auto lin_budget = std::max<std::uint64_t>(
        20000, static_cast<std::uint64_t>(*budget) >> (2 * (memory - 1)));
    const double lin =
        bench_mode(memory, game::LookupMode::LinearSearch, lin_budget);
    const double idx = bench_mode(memory, game::LookupMode::Indexed,
                                  static_cast<std::uint64_t>(*budget));
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", lin / idx);
    table.add_row({"memory-" + std::to_string(memory),
                   std::to_string(game::num_states(memory)),
                   std::to_string(lin), std::to_string(idx), speedup});
  }
  table.print(std::cout);
  std::cout << "\nconclusion: with indexed lookup the memory-step runtime "
               "growth of Table VI / Fig. 4 essentially disappears — the "
               "state table never needs to be scanned (or even stored).\n";
  return 0;
}
