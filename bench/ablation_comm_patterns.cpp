// Ablation: communication patterns of the population-dynamics tier.
//
//   PaperBcast        — rank 0 (Nature) broadcasts the per-generation plan
//                       and mutated strategy payloads (§V-B of the paper).
//   ReplicatedNature  — every rank replays Nature's RNG; only PC fitness
//                       values are exchanged.
//
// Both run on the real mini message-passing runtime and must produce the
// identical population; we report the traffic, then ask the machine model
// what each pattern costs at Blue Gene scale.
#include <iostream>

#include "bench_common.hpp"

#include "core/parallel_engine.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_comm_patterns",
                "Nature broadcast (paper) vs replicated-RNG coordination");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 400, "generations");
  auto ranks = cli.opt<int>("ranks", 8, "ranks (threads)");
  auto memory = cli.opt<int>("memory", 6, "memory steps");
  cli.parse(argc, argv);

  core::SimConfig cfg;
  cfg.ssets = static_cast<pop::SSetId>(*ssets);
  cfg.memory = *memory;
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.pc_rate = 0.1;
  cfg.mutation_rate = 0.05;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 77;

  std::cout << "communication-pattern ablation — " << cfg.summary() << ", "
            << *ranks << " ranks\n\n";

  util::TextTable table({"pattern", "p2p bytes", "p2p messages",
                         "final table hash"});
  std::uint64_t bytes[2] = {0, 0};
  int idx = 0;
  for (auto pattern :
       {core::CommPattern::PaperBcast, core::CommPattern::ReplicatedNature}) {
    cfg.comm_pattern = pattern;
    const auto res = core::run_parallel(cfg, *ranks);
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(res.population.table_hash()));
    table.add_row({pattern == core::CommPattern::PaperBcast
                       ? "paper broadcast"
                       : "replicated nature",
                   std::to_string(res.traffic.bytes),
                   std::to_string(res.traffic.messages), hash});
    bytes[idx++] = res.traffic.bytes;
  }
  table.print(std::cout);
  std::cout << "\ntraffic saved by replicating Nature's RNG: "
            << (bytes[0] == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(bytes[1]) /
                                         static_cast<double>(bytes[0])))
            << "% (memory-" << *memory << " strategy payloads are "
            << game::num_states(*memory) / 8 << " bytes each)\n";

  // What the model says this buys at scale: mutation payload broadcasts
  // stop scaling with 4^memory.
  const machine::PerfSimulator sim(machine::bluegene_p(),
                                   machine::default_round_costs());
  machine::Workload w;
  w.memory = *memory;
  w.ssets = 4096 * 1024;
  w.games_per_sset = 1;
  w.generations = 1000;
  w.pc_rate = 0.01;
  const auto rep = sim.simulate(w, 262144);
  std::cout << "\nat 262,144 BG/P procs the plan broadcast is "
            << bench::pct_str(rep.comm_fraction())
            << " of runtime (model); replicated-Nature removes most of its "
               "payload bytes but keeps the latency-bound synchronisation.\n";
  return 0;
}
