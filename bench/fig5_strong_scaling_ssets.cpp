// Figure 5 reproduction: strong-scaling efficiency as a function of the
// population size (number of SSets), baseline 256 processors.
//
// Paper's finding: small populations leave processors starved — when the
// computation per processor drops below the population-dynamics overhead,
// efficiency falls; larger populations scale better.
#include <memory>

#include "bench_common.hpp"

#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig5_strong_scaling_ssets",
                "Fig. 5: strong scaling efficiency vs population size");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto nature_us = cli.opt<double>(
      "nature-overhead-us", 5000.0,
      "serialized Nature bookkeeping per generation (paper-implied ~5ms; "
      "see EXPERIMENTS.md)");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_l(), costs);

  machine::Workload w;
  w.memory = 1;
  w.generations = 100;
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;
  w.nature_overhead_us = *nature_us;

  constexpr std::uint64_t kSsets[6] = {1024, 2048, 4096, 8192, 16384, 32768};
  constexpr std::uint64_t kProcs[4] = {256, 512, 1024, 2048};

  bench::print_header(
      "Figure 5 — strong-scaling efficiency vs number of SSets",
      "baseline 256 processors; simulated BlueGene/L, memory-one");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{"ssets", "procs", "efficiency"});
  }

  util::TextTable table({"SSets", "256p", "512p", "1024p", "2048p"});
  std::vector<double> eff_at_2048;
  for (auto ssets : kSsets) {
    w.ssets = ssets;
    const auto base = sim.simulate(w, kProcs[0]);
    std::vector<std::string> row{std::to_string(ssets)};
    for (auto procs : kProcs) {
      const auto rep = sim.simulate(w, procs);
      const double eff = machine::strong_scaling_efficiency(base, rep);
      if (procs == 2048) eff_at_2048.push_back(eff);
      row.push_back(bench::pct_str(eff));
      if (csv) {
        csv->row({static_cast<double>(ssets), static_cast<double>(procs), eff});
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\npaper claim: efficiency improves with population size "
               "(more compute per processor relative to the population-"
               "dynamics overhead).\nmodel 2,048-proc efficiency, smallest "
               "-> largest population: "
            << bench::pct_str(eff_at_2048.front()) << " -> "
            << bench::pct_str(eff_at_2048.back()) << "\n";
  return 0;
}
