// Figure 6 reproduction: weak scaling with 4,096 SSets per processor from
// 1,024 up to 262,144 Blue Gene/P processors (64 racks), memory-six.
//
// The paper reports near-perfect weak scaling — total runtime fluctuating
// by at most one second across the whole sweep. At the 10^18-agent scale
// each agent plays one game per generation (see EXPERIMENTS.md on the
// workload interpretation), so per-processor work stays constant and only
// the O(log p) broadcast depth grows.
#include <memory>

#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig6_weak_scaling",
                "Fig. 6: weak scaling, 4,096 SSets per processor");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto gens = cli.opt<std::int64_t>("generations", 1000, "generations");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_p(), costs);

  util::Timer wall;
  obs::MetricsRegistry metrics;
  obs::Histogram& sweep_point = metrics.histogram("bench.sweep_point");
  obs::Counter& rows = metrics.counter("bench.rows");

  machine::Workload w;
  w.memory = 6;
  w.generations = static_cast<std::uint64_t>(*gens);
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;
  w.games_per_sset = 1;  // one game per agent per generation at this scale

  constexpr std::uint64_t kProcs[9] = {1024,  2048,  4096,   8192,  16384,
                                       32768, 65536, 131072, 262144};

  bench::print_header(
      "Figure 6 — weak scaling, 4,096 SSets/processor, memory-six",
      "model: simulated BlueGene/P; population grows to 1.07e9 SSets "
      "(~1.15e18 agents) at 262,144 processors");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{"procs", "ssets", "seconds",
                                            "comm_fraction"});
  }

  util::TextTable table(
      {"procs", "SSets", "agents", "runtime (s)", "delta vs 1024p", "comm %"});
  double base = 0.0;
  double worst_delta = 0.0;
  for (auto procs : kProcs) {
    const obs::ScopedTimer t(sweep_point);
    rows.inc();
    w.ssets = 4096 * procs;
    const auto rep = sim.simulate(w, procs);
    if (procs == kProcs[0]) base = rep.total_seconds;
    const double delta = rep.total_seconds - base;
    worst_delta = std::max(worst_delta, std::abs(delta));
    char agents[32];
    std::snprintf(agents, sizeof agents, "%.3g",
                  static_cast<double>(w.ssets) * static_cast<double>(w.ssets));
    table.add_row({std::to_string(procs), std::to_string(w.ssets), agents,
                   bench::seconds_str(rep.total_seconds),
                   bench::seconds_str(delta),
                   bench::pct_str(rep.comm_fraction())});
    if (csv) {
      csv->row({static_cast<double>(procs), static_cast<double>(w.ssets),
                rep.total_seconds, rep.comm_fraction()});
    }
  }
  table.print(std::cout);

  std::cout << "\npaper claim: runtime fluctuates by at most ~1 s across the "
               "sweep.\nmodel worst-case drift from the 1,024-proc baseline: "
            << bench::seconds_str(worst_delta) << " s\n";
  bench::write_bench_manifest(
      *csv_path, "egtsim/fig6_weak_scaling",
      "4096 SSets/proc, memory-6, 1024..262144 procs", wall.seconds(),
      metrics);
  return 0;
}
