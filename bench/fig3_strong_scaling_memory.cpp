// Figure 3 reproduction: strong-scaling parallel efficiency for memory-one
// through memory-six strategies, 1,024 SSets (the Table VI sweep expressed
// as percent of ideal speedup, baseline 128 processors).
//
// Paper's finding: "the addition of more memory steps has only a small
// impact on parallel efficiency."
#include <memory>

#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig3_strong_scaling_memory",
                "Fig. 3: strong scaling efficiency vs memory steps");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_l(), costs);

  util::Timer wall;
  obs::MetricsRegistry metrics;
  obs::Histogram& sweep_point = metrics.histogram("bench.sweep_point");
  obs::Counter& rows = metrics.counter("bench.rows");

  machine::Workload w;
  w.ssets = 1024;
  w.generations = 1000;
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;

  constexpr std::uint64_t kProcs[5] = {128, 256, 512, 1024, 2048};

  bench::print_header(
      "Figure 3 — strong-scaling efficiency, 1,024 SSets",
      "baseline 128 processors; simulated BlueGene/L, linear find_state");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path,
        std::vector<std::string>{"memory", "procs", "efficiency"});
  }

  util::TextTable table(
      {"memory", "128p", "256p", "512p", "1024p", "2048p", "spread@2048p"});
  double eff_min = 1.0, eff_max = 0.0;
  for (int memory = 1; memory <= 6; ++memory) {
    w.memory = memory;
    const auto base =
        sim.simulate(w, kProcs[0], game::LookupMode::LinearSearch);
    std::vector<std::string> row{"memory-" + std::to_string(memory)};
    double last_eff = 1.0;
    for (auto procs : kProcs) {
      const obs::ScopedTimer t(sweep_point);
      rows.inc();
      const auto rep = sim.simulate(w, procs, game::LookupMode::LinearSearch);
      last_eff = machine::strong_scaling_efficiency(base, rep);
      row.push_back(bench::pct_str(last_eff));
      if (csv) {
        csv->row({static_cast<double>(memory), static_cast<double>(procs),
                  last_eff});
      }
    }
    eff_min = std::min(eff_min, last_eff);
    eff_max = std::max(eff_max, last_eff);
    row.push_back("");
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\npaper claim: memory steps barely change efficiency.\n"
            << "model spread of 2,048-proc efficiency across memory-1..6: "
            << bench::pct_str(eff_max - eff_min) << "\n";
  bench::write_bench_manifest(
      *csv_path, "egtsim/fig3_strong_scaling_memory",
      "1024 SSets, 1000 generations, memory 1..6, 128..2048 procs",
      wall.seconds(), metrics);
  return 0;
}
