// Figure 4 reproduction: overall runtime as a function of memory steps.
//
// The paper attributes the growth to state identification: agents find the
// current state by scanning the state list, and the list has 4^n entries.
// We show both the paper's linear find_state (dramatic growth) and this
// library's O(1) indexed lookup (nearly flat) — measured for real on this
// host and predicted for BG/L.
#include <memory>

#include "bench_common.hpp"

#include "game/ipd.hpp"
#include "game/strategy.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

double measure_round_ns(int memory, egt::game::LookupMode mode,
                        std::uint64_t rounds_budget) {
  using namespace egt;
  game::IpdParams params;
  params.rounds = 2048;
  const game::IpdEngine engine(memory, params, mode);
  util::Xoshiro256 rng(17 + static_cast<unsigned>(memory));
  const std::uint64_t games =
      std::max<std::uint64_t>(1, rounds_budget / params.rounds);
  double sink = 0.0;
  util::Timer t;
  for (std::uint64_t g = 0; g < games; ++g) {
    const auto a = game::PureStrategy::random(memory, rng);
    const auto b = game::PureStrategy::random(memory, rng);
    sink += engine.play(a, b, util::StreamRng(1, g)).payoff_a;
  }
  const double ns = t.nanos() / static_cast<double>(games * params.rounds);
  if (sink < 0) std::abort();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig4_runtime_vs_memory",
                "Fig. 4: runtime growth with memory steps");
  auto budget = cli.opt<std::int64_t>(
      "rounds", 400000, "host-measured rounds per (memory, mode) cell");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_l(), costs);

  machine::Workload w;
  w.ssets = 1024;
  w.generations = 1000;
  w.pc_rate = 0.01;

  bench::print_header(
      "Figure 4 — runtime vs memory steps",
      "host ns/round measured live; BG/L full-run seconds from the model "
      "(1,024 SSets, 1,000 generations, 2,048 procs)");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{
                       "memory", "host_linear_ns", "host_indexed_ns",
                       "bgl_linear_seconds", "bgl_indexed_seconds"});
  }

  util::TextTable table({"memory", "host linear ns/round",
                         "host indexed ns/round", "BG/L linear (s)",
                         "BG/L indexed (s)"});
  for (int memory = 1; memory <= 6; ++memory) {
    // Linear search is slow at deep memories; shrink its budget.
    const auto linear_budget = std::max<std::uint64_t>(
        20000, static_cast<std::uint64_t>(*budget) >> (2 * (memory - 1)));
    const double lin =
        measure_round_ns(memory, game::LookupMode::LinearSearch, linear_budget);
    const double idx = measure_round_ns(
        memory, game::LookupMode::Indexed,
        static_cast<std::uint64_t>(*budget));
    w.memory = memory;
    const double bgl_lin =
        sim.simulate(w, 2048, game::LookupMode::LinearSearch).total_seconds;
    const double bgl_idx =
        sim.simulate(w, 2048, game::LookupMode::Indexed).total_seconds;
    table.add_row("memory-" + std::to_string(memory),
                  {lin, idx, bgl_lin, bgl_idx});
    if (csv) {
      csv->row({static_cast<double>(memory), lin, idx, bgl_lin, bgl_idx});
    }
  }
  table.print(std::cout);

  std::cout << "\npaper explanation (§VI-B.1): the increase comes from "
               "identifying the state, not from the strategy lookup — the "
               "indexed column is the ablation proving it.\n";
  return 0;
}
