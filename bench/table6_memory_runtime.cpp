// Table VI reproduction: full-simulation time (seconds) for 1,024 SSets and
// 1,000 generations as memory steps go from one to six, across 128..2,048
// Blue Gene/L processors.
//
// The paper measured wall clock on BG/L; we predict it with the calibrated
// performance simulator (DESIGN.md §2) using the paper's own find_state
// implementation (linear search), whose cost growth the paper identifies as
// the source of the memory-step slowdown. A host-measured column (tiny real
// run of the actual engine) validates the kernel-side growth shape.
#include <memory>

#include "bench_common.hpp"

#include "core/engine.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"

namespace {

// Paper Table VI, seconds (rows memory-one..six, columns 128..2048 procs).
constexpr double kPaper[6][5] = {
    {26.5, 13.6, 5.9, 4.59, 4.04},     {2207, 1106, 552, 442, 277},
    {2401, 1206, 605, 478, 305},       {3079, 1581, 824, 732, 420},
    {7903, 4011, 2007, 1829, 1005},    {8690, 4367, 2188, 2054, 1097},
};
constexpr std::uint64_t kProcs[5] = {128, 256, 512, 1024, 2048};

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("table6_memory_runtime",
                "Table VI: runtime vs memory steps on simulated BG/L");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto measure = cli.opt<int>(
      "measure-ssets", 24,
      "SSets for the real host measurement column (0 disables)");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_l(), costs);

  util::Timer wall;
  obs::MetricsRegistry metrics;
  obs::Histogram& sweep_point = metrics.histogram("bench.sweep_point");
  obs::Counter& rows = metrics.counter("bench.rows");

  machine::Workload w;
  w.ssets = 1024;
  w.generations = 1000;
  w.pc_rate = 0.01;  // paper §VI-B.1
  w.mutation_rate = 0.05;
  w.rounds = 200;

  bench::print_header(
      "Table VI — runtime (s), 1,024 SSets, 1,000 generations",
      "model: simulated BlueGene/L, linear find_state (the paper's kernel)");

  util::TextTable table({"memory", "128p", "256p", "512p", "1024p", "2048p",
                         "paper@128p", "paper@2048p"});
  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{"memory", "procs", "model_seconds",
                                            "paper_seconds"});
  }

  for (int memory = 1; memory <= 6; ++memory) {
    w.memory = memory;
    std::vector<std::string> row{"memory-" + std::to_string(memory)};
    for (int c = 0; c < 5; ++c) {
      const obs::ScopedTimer t(sweep_point);
      rows.inc();
      const auto rep =
          sim.simulate(w, kProcs[c], game::LookupMode::LinearSearch);
      row.push_back(bench::seconds_str(rep.total_seconds));
      if (csv) {
        csv->row({static_cast<double>(memory), static_cast<double>(kProcs[c]),
                  rep.total_seconds, kPaper[memory - 1][c]});
      }
    }
    row.push_back(bench::seconds_str(kPaper[memory - 1][0]));
    row.push_back(bench::seconds_str(kPaper[memory - 1][4]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  if (*measure > 0) {
    std::cout << "\nhost validation: real engine, " << *measure
              << " SSets, 3 generations, sampled fitness, linear find_state\n";
    util::TextTable mt({"memory", "seconds/generation", "vs memory-1"});
    double base = 0.0;
    for (int memory = 1; memory <= 6; ++memory) {
      core::SimConfig cfg;
      cfg.memory = memory;
      cfg.ssets = static_cast<pop::SSetId>(*measure);
      cfg.generations = 3;
      cfg.pc_rate = 0.01;
      cfg.lookup = game::LookupMode::LinearSearch;
      cfg.fitness_mode = core::FitnessMode::Sampled;
      core::Engine engine(cfg);
      util::Timer t;
      engine.run_all();
      const double per_gen = t.seconds() / 3.0;
      if (memory == 1) base = per_gen;
      mt.add_row("memory-" + std::to_string(memory),
                 {per_gen, per_gen / base});
    }
    mt.print(std::cout);
  }

  std::cout << "\nreading: absolute seconds are a machine model; the "
               "reproduction targets are the growth with memory steps and "
               "the per-row drop with processor count (see EXPERIMENTS.md).\n";
  bench::write_bench_manifest(
      *csv_path, "egtsim/table6_memory_runtime",
      "1024 SSets, 1000 generations, memory 1..6, 128..2048 procs",
      wall.seconds(), metrics);
  return 0;
}
