// Shared plumbing for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "machine/costmodel.hpp"
#include "machine/perfsim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace egt::bench {

/// Resolve the kernel cost table: the baked-in reference by default, a
/// fresh measurement of this host when --calibrate is passed.
inline machine::RoundCostTable resolve_costs(bool calibrate) {
  if (!calibrate) return machine::default_round_costs();
  std::fprintf(stderr, "calibrating game kernel on this host...\n");
  return machine::calibrate_host();
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "==================================================\n"
            << title << "\n"
            << what << "\n"
            << "==================================================\n";
}

inline std::string seconds_str(double s) {
  char buf[32];
  if (s >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", s);
  } else if (s >= 1) {
    std::snprintf(buf, sizeof buf, "%.2f", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", s);
  }
  return buf;
}

inline std::string pct_str(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * frac);
  return buf;
}

}  // namespace egt::bench
