// Shared plumbing for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "machine/costmodel.hpp"
#include "machine/perfsim.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace egt::bench {

/// Resolve the kernel cost table: the baked-in reference by default, a
/// fresh measurement of this host when --calibrate is passed.
inline machine::RoundCostTable resolve_costs(bool calibrate) {
  if (!calibrate) return machine::default_round_costs();
  std::fprintf(stderr, "calibrating game kernel on this host...\n");
  return machine::calibrate_host();
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "==================================================\n"
            << title << "\n"
            << what << "\n"
            << "==================================================\n";
}

inline std::string seconds_str(double s) {
  char buf[32];
  if (s >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", s);
  } else if (s >= 1) {
    std::snprintf(buf, sizeof buf, "%.2f", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", s);
  }
  return buf;
}

inline std::string pct_str(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * frac);
  return buf;
}

/// Emit an egt.run_manifest/v3 next to a bench's primary output file
/// (`<output_path>.manifest.json`), so a sweep's CSV always travels with
/// the provenance needed to re-run it: tool, config summary, git describe,
/// wall time and whatever metrics the bench recorded (e.g. a
/// "bench.sweep_point" timer). No-op when `output_path` is empty — benches
/// call this unconditionally after their `--csv` handling.
inline void write_bench_manifest(const std::string& output_path,
                                 const std::string& tool,
                                 const std::string& config_summary,
                                 double wall_seconds,
                                 const obs::MetricsRegistry& metrics) {
  if (output_path.empty()) return;
  const obs::MetricsSnapshot snap = metrics.snapshot();
  obs::ManifestInfo info;
  info.tool = tool;
  info.config_summary = config_summary;
  info.wall_seconds = wall_seconds;
  info.metrics = &snap;
  const std::string path = output_path + ".manifest.json";
  obs::write_run_manifest_file(path, info);
  std::cout << "manifest written: " << path << "\n";
}

}  // namespace egt::bench
