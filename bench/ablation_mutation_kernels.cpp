// Ablation: mutation kernels.
//
// The paper's gen_new_strat() draws a completely fresh random strategy
// (global exploration). The literature the validation study rests on uses a
// U-shaped distribution (near-deterministic mutants), and evolutionary
// computation commonly uses *local* kernels (bit flips, Gaussian
// perturbation). This bench runs the identical noisy mixed memory-one
// workload under each kernel and reports where the population ends up —
// showing that the Fig. 2 WSLS result depends on mutants being able to
// reach deterministic corners.
#include <iostream>

#include "analysis/coop.hpp"
#include "core/engine.hpp"
#include "game/named.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_mutation_kernels",
                "fresh-uniform vs U-shaped vs Gaussian-local mutants");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 400000, "generations");
  auto seed = cli.opt<std::uint64_t>("seed", 11, "random seed");
  cli.parse(argc, argv);

  core::SimConfig base;
  base.memory = 1;
  base.ssets = static_cast<pop::SSetId>(*ssets);
  base.generations = static_cast<std::uint64_t>(*gens);
  base.space = pop::StrategySpace::Mixed;
  base.game.noise = 0.02;
  base.pc_rate = 1.0;
  base.mutation_rate = 0.02;
  base.beta = 10.0;
  base.seed = *seed;
  base.fitness_mode = core::FitnessMode::Analytic;

  std::cout << "mutation-kernel ablation — " << base.summary() << "\n\n";

  struct Row {
    const char* name;
    pop::MutationKernel kernel;
  };
  const Row rows[] = {
      {"uniform (paper gen_new_strat)", pop::MutationKernel::UniformProbs},
      {"U-shaped (Nowak&Sigmund 1993)", pop::MutationKernel::UShapedProbs},
      {"Gaussian local (sigma 0.1)", pop::MutationKernel::MixedGaussian},
  };

  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  util::TextTable table({"kernel", "WSLS share", "play coop rate",
                         "distinct", "nearest-named", "wall (s)"});
  for (const auto& row : rows) {
    auto cfg = base;
    cfg.mutation_kernel = row.kernel;
    core::Engine engine(cfg);
    util::Timer t;
    engine.run_all();
    const auto& pop = engine.population();
    const auto coop = analysis::expected_play_cooperation(pop, cfg.game.ipd_params());
    const auto c = pop::census(pop);
    const auto [name, dist] =
        game::named::nearest_named(pop.strategy(c.front().example));
    char wshare[16], crate[16], wall[16];
    std::snprintf(wshare, sizeof wshare, "%.1f%%",
                  100.0 * pop::fraction_near(pop, wsls, 0.25));
    std::snprintf(crate, sizeof crate, "%.3f", coop.mean_coop_rate);
    std::snprintf(wall, sizeof wall, "%.1f", t.seconds());
    table.add_row({row.name, wshare, crate, std::to_string(c.size()), name,
                   wall});
  }
  table.print(std::cout);
  std::cout << "\nreading: reaching the WSLS corner requires mutants with "
               "near-deterministic entries; uniform mutants keep the "
               "population sloppy and exploitable.\n";
  return 0;
}
