// Table VIII reproduction: agents handled per processor.
//
// With the paper's configuration (agents per SSet = number of SSets, each
// agent playing one opponent per generation) the population holds ssets^2
// agents, so each processor handles ssets^2 / procs of them. The published
// table contains several internally inconsistent cells (e.g. a 1,024-proc
// column entry larger than the 512-proc one); this bench prints the
// formula-consistent values and flags where the paper deviates.
#include "bench_common.hpp"

#include "par/partition.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("table8_agents_per_proc", "Table VIII: agents per processor");
  cli.parse(argc, argv);

  constexpr std::uint64_t kSsets[6] = {1024, 2048, 4096, 8192, 16384, 32768};
  constexpr std::uint64_t kProcs[4] = {256, 512, 1024, 2048};

  // The published table for cross-checking (rows SSets, columns procs).
  constexpr std::uint64_t kPaper[6][4] = {
      {4096, 2048, 16384, 2048},
      {16384, 8192, 262144, 32768},
      {65536, 32768, 4194304, 524288},
      {262144, 131072, 67108864, 8388608},
      {1048576, 524288, 1073741824, 134217728},
      {4194304, 2097152, 17179869184ULL, 2147483648ULL},
  };

  bench::print_header("Table VIII — agents per processor",
                      "population = ssets^2 agents (one agent per opponent)");

  util::TextTable table(
      {"SSets", "256p", "512p", "1024p", "2048p", "matches paper"});
  for (int r = 0; r < 6; ++r) {
    std::vector<std::string> row{std::to_string(kSsets[r])};
    int matches = 0;
    for (int c = 0; c < 4; ++c) {
      const auto agents = par::agents_per_processor(kSsets[r], kProcs[c]);
      row.push_back(std::to_string(agents));
      if (agents == kPaper[r][c]) ++matches;
    }
    row.push_back(std::to_string(matches) + "/4");
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nnote: the paper's 1,024- and 2,048-processor columns are "
               "not consistent with its own ssets^2/procs construction "
               "(§V-C, Table VIII); the 256p and 512p columns match the "
               "formula exactly.\n";
  return 0;
}
