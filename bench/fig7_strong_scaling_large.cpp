// Figure 7 reproduction: large-system strong scaling on Blue Gene/P —
// fixed population, 1,024 up to 262,144 processors. The paper reports 99%
// efficiency through 16,384 processors and 82% at 262,144, plus ~15%
// degradation on the non-power-of-two 294,912-processor (72-rack)
// partition (§VI-D).
#include <memory>

#include "bench_common.hpp"

#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig7_strong_scaling_large",
                "Fig. 7: strong scaling to 262,144 processors");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_p(), costs);

  // Fixed problem: the 1,024-processor weak-scaling workload kept constant
  // while processors grow (4,096 SSets/proc at the base).
  machine::Workload w;
  w.memory = 6;
  w.ssets = 4096 * 1024;
  w.games_per_sset = 1;
  w.generations = 1000;
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;

  // The paper's tested partitions plus the 72-rack non-power-of-two run.
  constexpr std::uint64_t kProcs[6] = {1024,  2048,   8192,
                                       16384, 262144, 294912};

  bench::print_header(
      "Figure 7 — strong scaling for large systems (simulated BG/P)",
      "fixed population of 4,194,304 SSets, memory-six, 1,000 generations");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{"procs", "seconds", "efficiency",
                                            "comm_fraction"});
  }

  util::TextTable table({"procs", "runtime (s)", "speedup", "efficiency",
                         "comm %", "torus", "note"});
  const auto base = sim.simulate(w, kProcs[0]);
  for (auto procs : kProcs) {
    const auto rep = sim.simulate(w, procs);
    const double eff = machine::strong_scaling_efficiency(base, rep);
    const double speedup = base.total_seconds / rep.total_seconds;
    char sp[32];
    std::snprintf(sp, sizeof sp, "%.1fx", speedup);
    const machine::Torus3D torus(procs);
    table.add_row({std::to_string(procs),
                   bench::seconds_str(rep.total_seconds), sp,
                   bench::pct_str(eff), bench::pct_str(rep.comm_fraction()),
                   torus.to_string(),
                   rep.mapping_penalty > 1.0 ? "non-pow2 (72 racks)" : ""});
    if (csv) {
      csv->row({static_cast<double>(procs), rep.total_seconds, eff,
                rep.comm_fraction()});
    }
  }
  table.print(std::cout);

  const auto e16k = machine::strong_scaling_efficiency(
      base, sim.simulate(w, 16384));
  const auto e262k = machine::strong_scaling_efficiency(
      base, sim.simulate(w, 262144));
  std::cout << "\npaper: 99% efficiency through 16,384 procs, 82% at "
               "262,144, ~15% degradation at 294,912.\nmodel:  "
            << bench::pct_str(e16k) << " at 16,384; " << bench::pct_str(e262k)
            << " at 262,144.\n";
  return 0;
}
