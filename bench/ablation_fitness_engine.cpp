// Ablation: fitness-engine variants.
//
//   Sampled        — the paper's behaviour: replay every game every
//                    generation (O(ssets^2 * rounds) per generation).
//   SampledFrozen  — play each pair once, refresh on strategy change.
//   Analytic       — exact expected payoffs (cycle detection / Markov).
//
// All three produce the identical trajectory for deterministic games
// (asserted in tests); this bench shows what each costs.
#include <iostream>

#include "core/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_fitness_engine",
                "sampled vs frozen vs analytic fitness evaluation");
  auto ssets = cli.opt<int>("ssets", 48, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 300, "generations");
  cli.parse(argc, argv);

  core::SimConfig base;
  base.ssets = static_cast<pop::SSetId>(*ssets);
  base.memory = 2;
  base.generations = static_cast<std::uint64_t>(*gens);
  base.pc_rate = 0.1;
  base.mutation_rate = 0.05;
  base.seed = 99;

  std::cout << "fitness-engine ablation — " << base.summary() << "\n\n";

  struct Row {
    const char* name;
    core::FitnessMode mode;
  };
  const Row rows[] = {
      {"sampled (paper)", core::FitnessMode::Sampled},
      {"sampled-frozen", core::FitnessMode::SampledFrozen},
      {"analytic", core::FitnessMode::Analytic},
  };

  util::TextTable table({"engine", "wall time (s)", "pair evaluations",
                         "final table hash"});
  for (const auto& row : rows) {
    auto cfg = base;
    cfg.fitness_mode = row.mode;
    core::Engine engine(cfg);
    util::Timer t;
    engine.run_all();
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(
                      engine.population().table_hash()));
    table.add_row({row.name, std::to_string(t.seconds()),
                   std::to_string(engine.pairs_evaluated()), hash});
  }
  table.print(std::cout);
  std::cout << "\nall hashes must match: the engines differ only in cost. "
               "The analytic/frozen engines are what make the 10^5..10^7-"
               "generation Fig. 2 validation runs feasible on one core.\n";
  return 0;
}
