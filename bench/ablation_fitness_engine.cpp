// Ablation: fitness-engine variants.
//
//   Sampled        — the paper's behaviour: replay every game every
//                    generation (O(ssets^2 * rounds) per generation).
//   SampledFrozen  — play each pair once, refresh on strategy change.
//   Analytic       — exact expected payoffs (cycle detection / Markov).
//   Analytic rows additionally run with the strategy-interned dedup cache
//   on and off — the pairs vs games columns show what interning saves on a
//   population that PC imitation has driven toward few unique strategies.
//
// All variants produce the identical trajectory for deterministic games
// (asserted in tests); this bench shows what each costs. --json writes an
// egt.bench_fitness/v1 document (consumed by tools/bench_check in the CI
// perf-smoke job).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "game/simd.hpp"
#include "game/spec/registry.hpp"
#include "obs/tracer.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_fitness_engine",
                "sampled vs frozen vs analytic fitness evaluation, with and "
                "without strategy-interned dedup");
  auto ssets = cli.opt<int>("ssets", 48, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 300, "generations");
  auto warmup = cli.opt<int>("warmup", 1,
                            "untimed warmup runs per variant (touch caches, "
                            "fault in pages, settle the clock governor)");
  auto repeats = cli.opt<int>(
      "repeats", 3, "timed runs per variant; min wall time is reported");
  auto json_out = cli.opt<std::string>(
      "json", "", "write an egt.bench_fitness/v1 JSON document here");
  cli.parse(argc, argv);

  core::SimConfig base;
  base.ssets = static_cast<pop::SSetId>(*ssets);
  base.memory = 2;
  base.generations = static_cast<std::uint64_t>(*gens);
  base.pc_rate = 0.1;
  base.mutation_rate = 0.05;
  base.seed = 99;

  std::cout << "fitness-engine ablation — " << base.summary() << "\n\n";

  struct Variant {
    std::string name;
    core::SimConfig cfg;
    bool traced = false;        ///< run with the flight recorder enabled
    bool force_scalar = false;  ///< pin the scalar batch kernel for the run
  };
  std::vector<Variant> variants;
  {
    auto cfg = base;
    cfg.fitness_mode = core::FitnessMode::Sampled;
    variants.push_back({"sampled (paper)", cfg});
    // The flight-recorder overhead row: identical run, tracer on. CI's
    // bench_check --trace-overhead gates the wall-time delta vs the
    // untraced row above; the counters and hash must not move at all.
    variants.push_back({"sampled (paper) + trace", cfg, /*traced=*/true});
    cfg.fitness_mode = core::FitnessMode::SampledFrozen;
    variants.push_back({"sampled-frozen", cfg});
    cfg.fitness_mode = core::FitnessMode::Analytic;
    cfg.dedup = false;
    variants.push_back({"analytic (no dedup)", cfg});
    cfg.dedup = true;
    variants.push_back({"analytic + dedup", cfg});
    // The dedup showcase: memory-one pure strategies converge onto a few
    // classes under imitation, so almost every pair is a cache hit.
    auto conv = base;
    conv.fitness_mode = core::FitnessMode::Analytic;
    conv.memory = 1;
    conv.ssets = 256;
    conv.pc_rate = 0.6;
    conv.mutation_rate = 0.01;
    conv.dedup = false;
    variants.push_back({"converged-256 (no dedup)", conv});
    conv.dedup = true;
    variants.push_back({"converged-256 + dedup", conv});
    // The m-action analytic kernel (DESIGN.md §10): rock-paper-scissors
    // played through the n-way stationary-distribution solve instead of
    // the binary memory-n Markov engine.
    auto rps = base;
    rps.fitness_mode = core::FitnessMode::Analytic;
    rps.memory = 0;
    rps.game = *game::find_game("rps");
    variants.push_back({"analytic rps (n-way)", rps});
    // The mem1-markov batch kernel (DESIGN.md §12): mixed memory-one
    // strategies never cycle, so every pair goes through the analytic
    // stationary solve — the row the SoA/AVX2 batch kernels accelerate.
    // The forced-scalar twin pins the scalar fallback's cost so a
    // dispatch regression (silently losing the AVX2 path) shows up as a
    // kernel-row delta rather than hiding inside run-to-run noise.
    auto mem1 = base;
    mem1.fitness_mode = core::FitnessMode::Analytic;
    mem1.memory = 1;
    mem1.space = pop::StrategySpace::Mixed;
    mem1.dedup = false;
    variants.push_back({"analytic mem1-markov (no dedup)", mem1});
    variants.push_back(
        {"analytic mem1-markov scalar", mem1, false, /*force_scalar=*/true});
    mem1.dedup = true;
    variants.push_back({"analytic mem1-markov + dedup", mem1});
  }

  struct Result {
    std::string name;
    double wall_s = 0.0;
    std::uint64_t pairs = 0;
    std::uint64_t games = 0;
    std::string hash;
  };
  std::vector<Result> results;
  util::TextTable table({"engine", "wall time (s)", "pair evaluations",
                         "games played", "final table hash"});
  // Timing discipline: each variant gets --warmup untimed runs (the first
  // run of a process pays for page faults, branch-predictor and allocator
  // warmup — single-shot timing once recorded a *traced* run as faster
  // than its untraced twin purely from run order), then --repeats timed
  // runs of which the minimum is reported. min-of-N is the standard
  // estimator for a deterministic workload: noise is strictly additive.
  for (const auto& v : variants) {
    Result r;
    r.name = v.name;
    r.wall_s = 0.0;
    const int timed = std::max(1, *repeats);
    for (int run = -std::max(0, *warmup); run < timed; ++run) {
      if (v.traced) obs::Tracer::instance().start();
      if (v.force_scalar) game::simd::set_force_scalar(true);
      core::Engine engine(v.cfg);
      util::Timer t;
      engine.run_all();
      const double wall = t.seconds();
      if (v.force_scalar) game::simd::set_force_scalar(false);
      if (v.traced) {
        obs::Tracer::instance().stop();
        obs::Tracer::instance().clear();  // measure recording, not serializing
      }
      if (run < 0) continue;  // warmup: never timed
      if (run == 0 || wall < r.wall_s) r.wall_s = wall;
      // Counters and hash are deterministic across repeats; take them from
      // the first timed run and verify the rest agree.
      if (run == 0) {
        r.pairs = engine.pairs_evaluated();
        r.games = engine.games_played();
        char hash[32];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(
                          engine.population().table_hash()));
        r.hash = hash;
      } else if (r.pairs != engine.pairs_evaluated() ||
                 r.games != engine.games_played()) {
        std::cerr << "FATAL [" << v.name
                  << "]: counters diverged across repeats\n";
        return 1;
      }
    }
    table.add_row({r.name, std::to_string(r.wall_s), std::to_string(r.pairs),
                   std::to_string(r.games), r.hash});
    results.push_back(std::move(r));
  }
  table.print(std::cout);
  std::cout << "\nhashes must match within each config: the engines differ "
               "only in cost. Dedup leaves pair evaluations (and the "
               "trajectory) untouched and collapses games played to "
               "O(classes^2) per full pass.\n";

  if (!json_out->empty()) {
    std::ofstream os(*json_out);
    if (!os) {
      std::cerr << "cannot write " << *json_out << "\n";
      return 1;
    }
    util::JsonWriter w(os);
    w.begin_object();
    w.field("schema", "egt.bench_fitness/v1");
    w.key("config");
    w.begin_object();
    w.field("ssets", static_cast<std::uint64_t>(base.ssets));
    w.field("generations", base.generations);
    w.field("seed", base.seed);
    w.field("warmup", static_cast<std::uint64_t>(std::max(0, *warmup)));
    w.field("repeats", static_cast<std::uint64_t>(std::max(1, *repeats)));
    w.end_object();
    w.key("rows");
    w.begin_array();
    for (const auto& r : results) {
      w.begin_object();
      w.field("name", r.name);
      w.field("wall_s", r.wall_s);
      w.field("pairs_evaluated", r.pairs);
      w.field("games_played", r.games);
      w.field("table_hash", r.hash);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "wrote " << *json_out << "\n";
  }
  return 0;
}
