// Figure 2 reproduction (validation study, §VI-A): probabilistic memory-one
// strategies under execution errors evolve towards Win-Stay Lose-Shift.
//
// The paper ran 5,000 SSets for 10^7 generations on 2,048 BG/L processors
// and found 85% of SSets on WSLS at the end. We run the same dynamics at
// laptop scale using the analytic fitness engine (exact expected payoffs —
// DESIGN.md §2), render the before/after strategy heat maps with k-means
// row ordering exactly as the paper does, and report the WSLS share.
#include <iostream>

#include "analysis/heatmap.hpp"
#include "analysis/kmeans.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "game/named.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("fig2_wsls_validation",
                "Fig. 2: WSLS emergence in noisy mixed memory-one play");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets (paper: 5000)");
  auto gens = cli.opt<std::int64_t>("generations", 1500000,
                                    "generations (paper: 1e7)");
  auto noise = cli.opt<double>("noise", 0.02, "execution error rate");
  auto pc_rate = cli.opt<double>("pc-rate", 1.0, "pairwise comparison rate");
  auto mu = cli.opt<double>("mu", 0.02, "mutation rate");
  auto beta = cli.opt<double>("beta", 10.0, "selection intensity");
  auto seed = cli.opt<std::uint64_t>("seed", 20120101, "random seed");
  auto out_prefix = cli.opt<std::string>("out", "fig2",
                                         "prefix for .ppm heat maps");
  auto k = cli.opt<int>("clusters", 8, "k-means clusters (Lloyd)");
  cli.parse(argc, argv);

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = static_cast<pop::SSetId>(*ssets);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game.noise = *noise;
  cfg.pc_rate = *pc_rate;
  cfg.mutation_rate = *mu;
  cfg.beta = *beta;
  cfg.seed = *seed;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  // Nowak & Sigmund's U-shaped mutant distribution: near-deterministic
  // rules (the WSLS corner) are reachable.
  cfg.mutation_kernel = pop::MutationKernel::UShapedProbs;

  std::cout << "Fig. 2 validation — " << cfg.summary() << "\n\n";

  core::Engine engine(cfg);
  core::SnapshotRecorder snaps({0, cfg.generations - 1});
  core::TimeSeriesRecorder series(
      std::max<std::uint64_t>(1, cfg.generations / 40),
      game::named::win_stay_lose_shift(1), 0.25);
  core::MultiObserver obs;
  obs.add(snaps);
  obs.add(series);

  util::Timer timer;
  engine.run_all(&obs);
  const double elapsed = timer.seconds();

  const auto& initial = snaps.snapshots().front().second;
  const auto& final_pop = snaps.snapshots().back().second;

  // Heat maps, k-means-sorted like the paper's Fig. 2(b).
  const auto initial_rows = analysis::strategy_matrix(initial);
  const auto final_rows = analysis::strategy_matrix(final_pop);
  const auto clusters =
      analysis::kmeans(final_rows, static_cast<std::size_t>(*k));
  analysis::HeatmapOptions opt;
  opt.cell_width = 24;
  opt.cell_height = 2;
  analysis::write_heatmap_ppm(*out_prefix + "_initial.ppm", initial_rows, opt);
  opt.row_order = analysis::cluster_sorted_order(clusters);
  analysis::write_heatmap_ppm(*out_prefix + "_final.ppm", final_rows, opt);

  // The paper's headline number: share of SSets on (approximately) WSLS.
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  util::TextTable table({"metric", "initial", "final", "paper final"});
  auto frac = [&](const pop::Population& p, double tol) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * pop::fraction_near(p, wsls, tol));
    return std::string(buf);
  };
  table.add_row({"WSLS share (tol 0.25)", frac(initial, 0.25),
                 frac(final_pop, 0.25), "85%"});
  table.add_row({"WSLS share (tol 0.5)", frac(initial, 0.5),
                 frac(final_pop, 0.5), ""});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", pop::mean_coop_probability(initial));
  std::string mi = buf;
  std::snprintf(buf, sizeof buf, "%.3f", pop::mean_coop_probability(final_pop));
  table.add_row({"mean coop probability", mi, buf, ""});
  table.print(std::cout);

  std::cout << "\nfinal population census:\n"
            << pop::format_census(final_pop, 5)
            << "\ndominant-cluster size (k-means, k=" << *k
            << "): " << clusters.cluster_sizes[0] << "/" << final_pop.size()
            << "\nheat maps: " << *out_prefix << "_initial.ppm, "
            << *out_prefix << "_final.ppm\nwall time: " << elapsed << " s ("
            << engine.pairs_evaluated() << " pair evaluations)\n";

  // WSLS takeover trajectory, the paper's headline phenomenon.
  std::cout << "\nWSLS share over time (tolerance 0.25):\n";
  for (const auto& s : series.samples()) {
    const int bars = static_cast<int>(s.tracked_fraction * 50);
    std::printf("  gen %9llu  %5.1f%%  %s\n",
                static_cast<unsigned long long>(s.generation),
                100.0 * s.tracked_fraction, std::string(bars, '#').c_str());
  }
  return 0;
}
