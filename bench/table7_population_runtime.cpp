// Table VII reproduction: full-run time as the number of SSets grows from
// 1,024 to 32,768 across 256..2,048 Blue Gene/L processors.
//
// The paper's observation: runtime grows with the *square* of the SSet
// count because each SSet's agents play every other SSet's strategy.
#include <memory>

#include "bench_common.hpp"

#include "util/csv.hpp"

namespace {

// Paper Table VII, seconds (rows SSets, columns 256..2048 procs).
constexpr double kPaper[6][4] = {
    {5.61, 3.18, 1.86, 1.29}, {22.7, 11.7, 6.7, 4.3},
    {90.5, 47.9, 24.2, 12.2}, {360, 179.7, 88.9, 48.4},
    {1502, 699, 344, 190},    {5785, 2861, 1430, 736},
};
constexpr std::uint64_t kSsets[6] = {1024, 2048, 4096, 8192, 16384, 32768};
constexpr std::uint64_t kProcs[4] = {256, 512, 1024, 2048};

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("table7_population_runtime",
                "Table VII: runtime vs population size on simulated BG/L");
  auto calibrate = cli.flag("calibrate", "re-measure kernel costs first");
  auto nature_us = cli.opt<double>(
      "nature-overhead-us", 5000.0,
      "serialized Nature bookkeeping per generation (paper-implied ~5ms; "
      "see EXPERIMENTS.md)");
  auto csv_path = cli.opt<std::string>("csv", "", "also write CSV here");
  cli.parse(argc, argv);

  const auto costs = bench::resolve_costs(*calibrate);
  const machine::PerfSimulator sim(machine::bluegene_l(), costs);

  machine::Workload w;
  w.memory = 1;
  w.generations = 100;  // the paper's exact generation count is not stated
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;
  w.nature_overhead_us = *nature_us;

  bench::print_header(
      "Table VII — runtime (s) vs number of SSets",
      "model: simulated BlueGene/L, memory-one, all-pairs game play");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<util::CsvWriter>(
        *csv_path, std::vector<std::string>{"ssets", "procs", "model_seconds",
                                            "paper_seconds"});
  }

  util::TextTable table({"SSets", "256p", "512p", "1024p", "2048p",
                         "paper@256p", "paper@2048p", "growth vs prev row"});
  double prev_at_256 = 0.0;
  for (int r = 0; r < 6; ++r) {
    w.ssets = kSsets[r];
    std::vector<std::string> row{std::to_string(kSsets[r])};
    double at_256 = 0.0;
    for (int c = 0; c < 4; ++c) {
      const auto rep = sim.simulate(w, kProcs[c]);
      if (c == 0) at_256 = rep.total_seconds;
      row.push_back(bench::seconds_str(rep.total_seconds));
      if (csv) {
        csv->row({static_cast<double>(kSsets[r]),
                  static_cast<double>(kProcs[c]), rep.total_seconds,
                  kPaper[r][c]});
      }
    }
    row.push_back(bench::seconds_str(kPaper[r][0]));
    row.push_back(bench::seconds_str(kPaper[r][3]));
    char growth[32];
    std::snprintf(growth, sizeof growth, "%.2fx",
                  prev_at_256 == 0.0 ? 0.0 : at_256 / prev_at_256);
    row.push_back(r == 0 ? "-" : growth);
    prev_at_256 = at_256;
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\npaper claim: games grow with the square of the SSets — "
               "each doubling of SSets should roughly quadruple runtime "
               "(the paper's own 256p column grows 4.0x, 4.0x, 4.0x, 4.2x, "
               "3.9x).\n";
  return 0;
}
